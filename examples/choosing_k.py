"""Choosing the number of factors (§5.2).

Run:  python examples/choosing_k.py

Reproduces the paper's performance-vs-k experiment on a synthetic
collection and shows the automatic selectors: the spectrum-only
heuristics (energy fraction, spectral gap) against the judged sweep.
"""

import numpy as np

from repro.core import (
    choose_k_by_energy,
    choose_k_by_gap,
    choose_k_by_sweep,
    fit_lsi,
)
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation.metrics import three_point_average_precision
from repro.retrieval import KeywordRetrieval, LSIRetrieval


def main() -> None:
    col = topic_collection(
        SyntheticSpec(
            n_topics=8, docs_per_topic=15, doc_length=40,
            concepts_per_topic=12, synonyms_per_concept=4,
            queries_per_topic=2, query_length=2, query_synonym_shift=0.9,
            polysemy=0.3, background_vocab=40, background_rate=0.3,
        ),
        seed=23,
    )
    kmax = 48
    model = fit_lsi(col.documents, k=kmax, scheme="log_entropy",
                    method="dense", seed=0)

    def metric(m):
        eng = LSIRetrieval(m)
        vals = []
        for qi, q in enumerate(col.queries):
            ranked = [j for j, _ in eng.search(q)]
            vals.append(three_point_average_precision(ranked, col.relevant(qi)))
        return float(np.mean(vals))

    print("performance vs k (the §5.2 curve):")
    for k in (1, 2, 4, 8, 16, 32, 48):
        bar = "#" * int(40 * metric(model.truncated(k)))
        print(f"  k={k:<3d} {metric(model.truncated(k)):.3f} {bar}")
    kw = KeywordRetrieval.from_texts(col.documents, scheme="log_entropy")
    kw_vals = []
    for qi, q in enumerate(col.queries):
        ranked = [j for j, _ in kw.search(q)]
        kw_vals.append(three_point_average_precision(ranked, col.relevant(qi)))
    print(f"  keyword-vector baseline: {np.mean(kw_vals):.3f}")

    sweep = choose_k_by_sweep(model, metric, candidates=[1, 2, 4, 8, 16, 32, 48])
    energy = choose_k_by_energy(model.s, target=0.7)
    gap = choose_k_by_gap(model.s, min_k=2)
    print("\nautomatic selectors:")
    print(f"  sweep (judged reference): k={sweep.k}")
    print(f"  70% Frobenius energy    : k={energy.k}")
    print(f"  largest spectral gap    : k={gap.k}")
    print("\n(the paper: performance 'peaks between 70 and 100 dimensions'"
          " on real MED abstracts — smaller synthetic collections peak"
          " proportionally earlier)")


if __name__ == "__main__":
    main()
