"""Tests for phrase indexing, LSI-feature classification, significance."""

import numpy as np
import pytest

from repro.apps import (
    CentroidClassifier,
    classification_accuracy,
    lsi_features,
)
from repro.core import fit_lsi, fit_lsi_from_tdm
from repro.corpus import SyntheticSpec, topic_collection
from repro.errors import EvaluationError, ShapeError
from repro.evaluation import randomization_test, sign_test
from repro.text import PhraseRules, build_phrase_tdm, extract_phrases
from repro.text.phrases import query_with_phrases


# --------------------------------------------------------------------- #
# phrases
# --------------------------------------------------------------------- #
def test_extract_phrases_min_df():
    texts = ["new york city", "new york state", "old boston town"]
    phrases = extract_phrases(texts, PhraseRules(n=2, min_doc_freq=2))
    assert phrases == ["new_york"]


def test_extract_phrases_max_cap():
    texts = ["a b c", "a b c", "b c d", "b c d"]
    phrases = extract_phrases(
        texts, PhraseRules(n=2, min_doc_freq=2, max_phrases=1)
    )
    assert len(phrases) == 1


def test_phrase_rules_validation():
    with pytest.raises(ShapeError):
        PhraseRules(n=1)
    with pytest.raises(ShapeError):
        PhraseRules(min_doc_freq=0)
    with pytest.raises(ShapeError):
        PhraseRules(max_phrases=0)


def test_build_phrase_tdm_adds_rows():
    texts = ["blood pressure rises", "blood pressure falls",
             "oestrogen output rises"]
    tdm = build_phrase_tdm(texts)
    assert "blood_pressure" in tdm.vocabulary
    assert tdm.term_frequency("blood_pressure", 0) == 1.0
    assert tdm.term_frequency("blood_pressure", 2) == 0.0
    # word rows still present
    assert "blood" in tdm.vocabulary


def test_phrase_model_distinguishes_contexts():
    """The §3 polysemy pair: 'blood pressure' vs behavioral 'pressure'
    get separate rows, so the phrase carries the medical sense."""
    texts = [
        "high blood pressure and vascular disease",
        "blood pressure measured in the clinic",
        "social pressure changed behavior",
        "pressure to perform affects behavior",
    ]
    tdm = build_phrase_tdm(texts)
    model = fit_lsi_from_tdm(tdm, 2)
    from repro.core.query import query_counts, pseudo_document
    from repro.core.similarity import cosine_similarities

    tokens = query_with_phrases("blood pressure", model.vocabulary)
    assert "blood_pressure" in tokens
    counts = query_counts(model, tokens)
    qhat = pseudo_document(model, counts * model.global_weights)
    cos = cosine_similarities(model, qhat)
    assert cos[:2].min() > cos[2:].max()  # medical docs beat behavioral


def test_query_with_phrases_no_match():
    from repro.text import Vocabulary

    vocab = Vocabulary(["alpha", "beta"])
    assert query_with_phrases("alpha beta", vocab) == ["alpha", "beta"]


# --------------------------------------------------------------------- #
# classification
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def labelled_corpus():
    col = topic_collection(
        SyntheticSpec(n_topics=4, docs_per_topic=16, doc_length=40,
                      concepts_per_topic=10, synonyms_per_concept=3,
                      queries_per_topic=0),
        seed=13,
    )
    labels = [t for t in range(4) for _ in range(16)]
    # interleave train/test
    train_idx = [i for i in range(64) if i % 2 == 0]
    test_idx = [i for i in range(64) if i % 2 == 1]
    return col, labels, train_idx, test_idx


def test_lsi_classifier_beats_chance(labelled_corpus):
    col, labels, train_idx, test_idx = labelled_corpus
    model = fit_lsi(
        [col.documents[i] for i in train_idx], k=8,
        scheme="log_entropy", seed=0,
    )
    X_train = lsi_features(model, [col.documents[i] for i in train_idx])
    X_test = lsi_features(model, [col.documents[i] for i in test_idx])
    clf = CentroidClassifier.fit(X_train, [labels[i] for i in train_idx])
    acc = classification_accuracy(clf, X_test, [labels[i] for i in test_idx])
    assert acc > 0.8  # 4 classes, chance = 0.25


def test_discriminant_weighting_not_worse(labelled_corpus):
    col, labels, train_idx, test_idx = labelled_corpus
    model = fit_lsi(
        [col.documents[i] for i in train_idx], k=8,
        scheme="log_entropy", seed=0,
    )
    X_train = lsi_features(model, [col.documents[i] for i in train_idx])
    X_test = lsi_features(model, [col.documents[i] for i in test_idx])
    y_train = [labels[i] for i in train_idx]
    y_test = [labels[i] for i in test_idx]
    plain = CentroidClassifier.fit(X_train, y_train)
    disc = CentroidClassifier.fit(X_train, y_train, discriminant=True)
    assert disc.discriminant is not None
    acc_p = classification_accuracy(plain, X_test, y_test)
    acc_d = classification_accuracy(disc, X_test, y_test)
    assert acc_d >= acc_p - 0.1


def test_classifier_validation():
    with pytest.raises(ShapeError):
        CentroidClassifier.fit(np.zeros((3, 2)), [0, 1])  # length mismatch
    with pytest.raises(ShapeError):
        CentroidClassifier.fit(np.zeros((3, 2)), [0, 0, 0])  # one class
    clf = CentroidClassifier.fit(np.eye(4), [0, 0, 1, 1])
    with pytest.raises(ShapeError):
        clf.predict(np.zeros((1, 9)))


def test_classification_accuracy_empty():
    clf = CentroidClassifier.fit(np.eye(4), [0, 0, 1, 1])
    assert classification_accuracy(clf, np.zeros((0, 4)), []) == 0.0


# --------------------------------------------------------------------- #
# significance
# --------------------------------------------------------------------- #
def test_sign_test_obvious_difference():
    a = [0.9] * 12
    b = [0.1] * 12
    res = sign_test(a, b)
    assert res.p_value < 0.001
    assert res.significant()
    assert res.n == 12 and res.statistic == 12


def test_sign_test_no_difference():
    a = [0.5] * 10
    res = sign_test(a, a)
    assert res.p_value == 1.0
    assert res.n == 0


def test_sign_test_mixed():
    a = [1, 0, 1, 0, 1, 0]
    b = [0, 1, 0, 1, 0, 1]
    res = sign_test(a, b)
    assert res.p_value > 0.5  # 3 vs 3: dead even


def test_randomization_test_detects_shift(rng):
    base = rng.random(20)
    res = randomization_test(base + 0.3, base, rounds=2000, seed=1)
    assert res.p_value < 0.01
    assert res.statistic == pytest.approx(0.3, abs=1e-9)


def test_randomization_test_null(rng):
    a = rng.random(20)
    b = a + rng.normal(0, 1e-3, 20)
    res = randomization_test(a, b, rounds=2000, seed=2)
    assert res.p_value > 0.05


def test_significance_validation():
    with pytest.raises(EvaluationError):
        sign_test([1.0], [1.0, 2.0])
    with pytest.raises(EvaluationError):
        sign_test([], [])
    with pytest.raises(EvaluationError):
        randomization_test([1.0], [1.0], rounds=0)
