"""Tests for model save/load."""

import numpy as np
import pytest

from repro.core import load_model, save_model
from repro.errors import ModelStateError


def test_round_trip_bit_exact(med_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(med_model, path)
    loaded = load_model(path)
    assert np.array_equal(loaded.U, med_model.U)
    assert np.array_equal(loaded.s, med_model.s)
    assert np.array_equal(loaded.V, med_model.V)
    assert np.array_equal(loaded.global_weights, med_model.global_weights)
    assert loaded.vocabulary.to_list() == med_model.vocabulary.to_list()
    assert loaded.doc_ids == med_model.doc_ids
    assert loaded.scheme == med_model.scheme
    assert loaded.provenance == med_model.provenance


def test_loaded_model_is_usable(med_model, tmp_path):
    from repro.core import project_query, rank_documents

    path = tmp_path / "model.npz"
    save_model(med_model, path)
    loaded = load_model(path)
    q = "age blood abnormalities"
    assert rank_documents(loaded, project_query(loaded, q)) == rank_documents(
        med_model, project_query(med_model, q)
    )


def test_loaded_vocabulary_is_frozen(med_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(med_model, path)
    assert load_model(path).vocabulary.frozen


def test_reject_wrong_version(med_model, tmp_path):
    import json

    path = tmp_path / "model.npz"
    save_model(med_model, path)
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    meta = json.loads(bytes(arrays["meta"]).decode())
    meta["version"] = 999
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)
    with pytest.raises(ModelStateError):
        load_model(path)


def test_reject_corrupt_metadata(med_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(med_model, path)
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    arrays["meta"] = np.frombuffer(b"not json", dtype=np.uint8)
    np.savez(path, **arrays)
    with pytest.raises(ModelStateError):
        load_model(path)
