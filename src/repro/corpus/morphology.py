"""Morphological-family corpus — the "doctor/doctors/doctoral" claim.

§5.4 (Cross-Language Retrieval) explains why LSI needs no stemming:

    "If words with the same stem are used in similar documents they will
    have similar vectors in the truncated SVD; otherwise, they will not.
    (For example, in analyzing an encyclopedia, *doctor* is quite near
    *doctors* but not as similar to *doctoral*.)"

This generator produces word families with exactly that usage split:
each family has a base form, an *inflectional* variant used
interchangeably with the base in the same contexts (doctor/doctors),
and a *derivational* variant used in a systematically different context
(doctoral — academia rather than medicine).  The claim then becomes a
measurable inequality: cos(base, inflection) > cos(base, derivation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["MorphologyCorpus", "morphology_corpus"]


@dataclass
class MorphologyCorpus:
    """Generated documents plus the word families to test.

    Attributes
    ----------
    documents:
        The corpus texts.
    families:
        ``(base, inflection, derivation)`` triples, e.g. conceptually
        (doctor, doctors, doctoral).
    """

    documents: list[str]
    families: list[tuple[str, str, str]]


def morphology_corpus(
    *,
    n_families: int = 8,
    docs_per_context: int = 15,
    doc_length: int = 30,
    context_vocab: int = 12,
    seed=0,
) -> MorphologyCorpus:
    """Generate the corpus.

    For each family ``f``:

    * a *primary context* (shared vocabulary ``ctxA_f_*``) hosts both the
      base form ``basef`` and its inflection ``basefs`` — each document
      picks one of the two forms (so they share contexts but, like real
      inflections, tend not to co-occur);
    * a *secondary context* (vocabulary ``ctxB_f_*``) hosts the
      derivation ``basefal`` exclusively.
    """
    rng = ensure_rng(seed)
    documents: list[str] = []
    families: list[tuple[str, str, str]] = []
    for f in range(n_families):
        base = f"base{f}"
        inflection = f"base{f}s"
        derivation = f"base{f}al"
        families.append((base, inflection, derivation))
        ctx_a = [f"ctxa{f}w{i}" for i in range(context_vocab)]
        ctx_b = [f"ctxb{f}w{i}" for i in range(context_vocab)]
        # Primary context: base or inflection, per document.
        for d in range(docs_per_context):
            form = base if d % 2 == 0 else inflection
            tokens = []
            for _ in range(doc_length):
                if rng.random() < 0.25:
                    tokens.append(form)
                else:
                    tokens.append(ctx_a[int(rng.integers(context_vocab))])
            documents.append(" ".join(tokens))
        # Secondary context: the derivation only.
        for _d in range(docs_per_context):
            tokens = []
            for _ in range(doc_length):
                if rng.random() < 0.25:
                    tokens.append(derivation)
                else:
                    tokens.append(ctx_b[int(rng.integers(context_vocab))])
            documents.append(" ".join(tokens))
    order = rng.permutation(len(documents))
    documents = [documents[int(i)] for i in order]
    return MorphologyCorpus(documents, families)
