"""Single-writer exclusion for a store data directory, with takeover fencing.

A :class:`~repro.store.durable.DurableIndexStore` owns its directory
exclusively while open: its :class:`~repro.store.wal.WriteAheadLog`
handle truncates torn tails on open and ``compact`` replaces the WAL
inode, both of which corrupt or orphan a concurrent writer's log.
:class:`StoreLock` makes that ownership explicit — an exclusive
``flock(2)`` on ``<data-dir>/LOCK`` held for the store's lifetime.

``flock`` locks die with their process, so a SIGKILLed server never
leaves a stale lock behind; the ``LOCK`` file itself persisting is
harmless (the next writer locks the same inode).  The lock is advisory:
read-only surfaces (``store inspect``, ``store verify``, ``stats
--data-dir``) deliberately never take it — they scan manifests and the
WAL file without opening a write handle.

The lock is also *adoptable with fencing*: every successful acquire
stamps a monotonically increasing **generation** into the lockfile.  A
standby writer that adopts a dead primary's store (see
:mod:`repro.cluster.standby`) acquires generation ``g+1``; if the old
primary was not dead but merely wedged — alive, flock lost to a racing
close/reopen, scheduler-stalled past its lease — its next seal calls
:meth:`check`, sees a generation newer than its own, and fences itself
with :class:`~repro.errors.StoreLockedError` instead of splitting the
brain with a second line of checkpoints.  The flock remains the actual
mutual exclusion; the generation is the tiebreaker for handles that
*believe* they hold it.
"""

from __future__ import annotations

import os
import pathlib

from repro.errors import StoreLockedError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: exclusion unavailable
    fcntl = None

__all__ = ["LOCK_NAME", "StoreLock"]

#: Fixed lockfile name inside a store data directory.
LOCK_NAME = "LOCK"


def _read_generation(fd: int) -> int:
    """First integer in the lockfile — the current owner generation.

    Pre-fencing lockfiles held just a pid; parsing that pid as the
    generation is harmless (the next acquire writes pid+1 and stays
    monotonic, which is all fencing needs).
    """
    try:
        os.lseek(fd, 0, os.SEEK_SET)
        first = os.read(fd, 64).split()
        return int(first[0]) if first else 0
    except (OSError, ValueError):
        return 0


class StoreLock:
    """An exclusive, non-blocking ``flock`` on ``<data-dir>/LOCK``."""

    def __init__(self, path: pathlib.Path, fd: int | None, generation: int = 0):
        self.path = path
        self._fd = fd
        #: The owner generation this handle acquired — compared against
        #: the lockfile by :meth:`check` to detect takeover.
        self.generation = generation

    @classmethod
    def acquire(cls, data_dir: pathlib.Path) -> "StoreLock":
        """Take the directory's writer lock or raise :class:`StoreLockedError`.

        Never blocks: a held lock means a live server or maintenance
        command owns the store right now, and waiting for it would just
        trade corruption for a deadlock-prone queue.
        """
        data_dir = pathlib.Path(data_dir)
        data_dir.mkdir(parents=True, exist_ok=True)
        path = data_dir / LOCK_NAME
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                raise StoreLockedError(
                    f"{data_dir} is locked by another process (a live "
                    "server or maintenance command owns this store); "
                    "read-only commands (store inspect/verify, stats "
                    "--data-dir) work without the lock"
                ) from None
        generation = _read_generation(fd) + 1
        try:  # the generation is the fence; the pid is diagnostics
            os.ftruncate(fd, 0)
            os.lseek(fd, 0, os.SEEK_SET)
            os.write(fd, f"{generation} {os.getpid()}\n".encode("ascii"))
            os.fsync(fd)
        except OSError:
            pass
        return cls(path, fd, generation)

    def check(self) -> bool:
        """Is this handle still the store's fencing owner?

        Re-reads the lockfile *by path*: a newer generation there means
        another writer acquired after us (a standby adopted what it
        judged a dead primary).  A handle that sees that must stop
        writing — its next checkpoint would interleave with the
        adopter's.  Cheap (one small read), called once per seal, never
        on the per-record append path.
        """
        if self._fd is None:
            return False
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return False
        try:
            return _read_generation(fd) == self.generation
        finally:
            os.close(fd)

    def release(self) -> None:
        """Drop the lock (idempotent); closing the fd releases the flock."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    @property
    def held(self) -> bool:
        """Whether this handle still owns the lock."""
        return self._fd is not None

    def __repr__(self) -> str:
        state = "held" if self.held else "released"
        return f"StoreLock({self.path}, {state}, gen={self.generation})"
