"""Worker lifecycle: spawn, watch, evict on silence, restart with backoff.

The supervisor owns the worker *processes*; the router owns the worker
*connections*.  Each worker slot of the
:class:`~repro.cluster.placement.ReplicaPlan` — R slots per shard range
— gets a ``python -m repro cluster worker`` subprocess whose ready
banner (printed only after the checkpoint is mapped and the socket
bound) is parsed for its ephemeral port, then the router is attached.
From there two independent signals cover the two ways a worker can
fail:

* **exit** — a per-worker watcher task awaits the process and, unless
  the cluster is draining, detaches the router and schedules a restart
  with bounded exponential backoff (``base · 2^(restarts-1)``, capped);
* **silence** — a heartbeat loop pings every live worker through the
  router; a worker that misses ``miss_limit`` consecutive heartbeats is
  considered wedged (alive but not answering — the failure mode exit
  codes cannot see) and is killed, which hands it to the watcher path.

Between a worker's death and its restart the range's *siblings* carry
its reads (the router fails over before declaring rows missing); only
when every replica of a range is down does the query path degrade to
``partial=True``.  Health is therefore judged per *range*, not per
process: :meth:`describe_ranges` reports ``replicas_healthy`` /
``replicas_total`` for each range, and :meth:`quorum_met` answers the
epoch-bump question — has a majority of every range's replicas remapped
onto the new checkpoint?
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import signal
import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.placement import ReplicaPlan, as_replica_plan
from repro.cluster.plan import ShardPlan
from repro.cluster.router import ClusterRouter
from repro.errors import ClusterError
from repro.obs.metrics import registry

__all__ = ["SupervisorConfig", "ClusterSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables for worker lifecycle management."""

    #: Seconds between heartbeat rounds (also the per-ping deadline).
    heartbeat_interval: float = 1.0
    #: Consecutive missed heartbeats before a worker is killed.
    miss_limit: int = 3
    #: First restart delay, seconds; doubles per consecutive restart.
    backoff_base: float = 0.5
    #: Restart delay ceiling, seconds.
    backoff_cap: float = 10.0
    #: Deadline for a spawned worker to print its ready banner, seconds.
    spawn_timeout: float = 60.0
    #: Seconds a SIGTERMed worker gets to exit before SIGKILL on drain.
    drain_timeout: float = 10.0


@dataclass
class _WorkerRecord:
    """Mutable per-worker-slot process state."""

    worker_id: int
    shard_id: int
    replica: int
    proc: asyncio.subprocess.Process | None = None
    port: int = 0
    pid: int = 0
    state: str = "starting"
    missed_heartbeats: int = 0
    restarts: int = 0
    #: Checkpoint epoch this worker last reported serving (banner at
    #: spawn, then bump acks) — the per-worker lag signal healthz shows.
    epoch: int = 0
    tasks: list[asyncio.Task] = field(default_factory=list)


class ClusterSupervisor:
    """Keeps one process per worker slot of ``plan`` alive and attached."""

    def __init__(
        self,
        data_dir: pathlib.Path,
        plan: ShardPlan | ReplicaPlan,
        router: ClusterRouter,
        config: SupervisorConfig | None = None,
        *,
        host: str = "127.0.0.1",
        announce: Callable[[str], None] | None = None,
        tenant: str | None = None,
    ):
        self.data_dir = pathlib.Path(data_dir)
        self.plan = as_replica_plan(plan)
        self.router = router
        self.config = config or SupervisorConfig()
        self.host = host
        #: Tenant id handed to every spawned worker (``--tenant``), so a
        #: restarted worker keeps refusing foreign tenants' frames.
        self.tenant = tenant
        self._announce = announce or (lambda line: None)
        self._records: dict[int, _WorkerRecord] = {
            wid: _WorkerRecord(
                wid, self.plan.range_of(wid), self.plan.replica_of(wid)
            )
            for wid in self.plan.worker_ids()
        }
        self._restarting: set[int] = set()
        self._draining = False
        self._heartbeat_task: asyncio.Task | None = None

    def update_plan(self, plan: ShardPlan | ReplicaPlan) -> None:
        """Point future spawns at a newer epoch's plan.

        Called by the primary writer *before* broadcasting the bump, so
        a worker that dies mid-bump restarts directly onto the new
        checkpoint instead of the superseded one.  Running workers are
        untouched — they catch up through the bump op.
        """
        plan = as_replica_plan(plan)
        if plan.n_shards != self.plan.n_shards:
            raise ClusterError(
                f"plan update changes shard count "
                f"{self.plan.n_shards} -> {plan.n_shards}; worker "
                "processes are fixed per shard"
            )
        if plan.replication != self.plan.replication:
            raise ClusterError(
                f"plan update changes replication "
                f"{self.plan.replication} -> {plan.replication}; worker "
                "slots are fixed for the cluster's lifetime"
            )
        self.plan = plan

    def note_epoch(self, worker_id: int, epoch: int) -> None:
        """Record a worker's acked epoch (bump ack or spawn banner)."""
        record = self._records.get(worker_id)
        if record is None:
            return
        record.epoch = int(epoch)
        registry.set_gauge(f"cluster.worker.{worker_id}.epoch", record.epoch)

    # ------------------------------------------------------------------ #
    # spawn
    # ------------------------------------------------------------------ #
    def _worker_command(self, worker_id: int) -> list[str]:
        record = self._records[worker_id]
        return [
            sys.executable, "-m", "repro", "--no-obs", "cluster", "worker",
            "--data-dir", str(self.data_dir),
            "--shard", str(record.shard_id),
            "--replica", str(record.replica),
            # Workers receive the *shard* plan: their contract is rows,
            # not placement (see repro.cluster.placement).
            "--plan", self.plan.base.to_json(),
            "--host", self.host,
            "--port", "0",
            *(
                ["--tenant", self.tenant]
                if self.tenant is not None
                else []
            ),
        ]

    def _worker_env(self) -> dict[str, str]:
        import repro

        src_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
        return env

    async def _spawn(self, worker_id: int) -> None:
        """Start one worker, parse its banner, attach the router."""
        record = self._records[worker_id]
        record.state = "starting"
        record.missed_heartbeats = 0
        proc = await asyncio.create_subprocess_exec(
            *self._worker_command(worker_id),
            stdout=asyncio.subprocess.PIPE,
            stderr=None,  # inherit: worker errors land in our stderr
            env=self._worker_env(),
        )
        record.proc = proc
        try:
            banner = await asyncio.wait_for(
                self._await_banner(proc), self.config.spawn_timeout
            )
        except asyncio.TimeoutError:
            proc.kill()
            raise ClusterError(
                f"worker {worker_id} produced no ready banner within "
                f"{self.config.spawn_timeout:.0f} s"
            )
        if banner is None:
            code = await proc.wait()
            raise ClusterError(
                f"worker {worker_id} exited with code {code} before "
                "becoming ready"
            )
        record.port = banner["port"]
        record.pid = banner["pid"]
        self.note_epoch(worker_id, banner.get("epoch", 0))
        await self.router.attach(worker_id, self.host, record.port)
        record.state = "up"
        self._announce(
            f"worker {worker_id} (shard {record.shard_id} replica "
            f"{record.replica}) up on {self.host}:{record.port} "
            f"pid={record.pid}"
        )
        record.tasks = [
            asyncio.ensure_future(self._watch(worker_id, proc)),
            asyncio.ensure_future(self._pump_stdout(worker_id, proc)),
        ]

    @staticmethod
    async def _await_banner(
        proc: asyncio.subprocess.Process,
    ) -> dict | None:
        """First ``ready`` line of the worker's stdout, parsed; None on EOF."""
        assert proc.stdout is not None
        while True:
            raw = await proc.stdout.readline()
            if not raw:
                return None
            line = raw.decode("utf-8", "replace").strip()
            if " ready on " not in line:
                continue
            try:
                addr = line.split(" ready on ", 1)[1].split()[0]
                port = int(addr.rsplit(":", 1)[1])
                pid = int(line.rsplit("pid=", 1)[1])
            except (IndexError, ValueError):
                raise ClusterError(f"unparseable worker banner: {line!r}")
            try:
                epoch = int(line.rsplit("epoch=", 1)[1].split()[0])
            except (IndexError, ValueError):
                epoch = 0
            return {"port": port, "pid": pid, "epoch": epoch}

    async def _pump_stdout(
        self, worker_id: int, proc: asyncio.subprocess.Process
    ) -> None:
        """Drain post-banner stdout so the worker can never block on it."""
        assert proc.stdout is not None
        try:
            while True:
                raw = await proc.stdout.readline()
                if not raw:
                    return
                line = raw.decode("utf-8", "replace").strip()
                if line:
                    self._announce(f"worker {worker_id}: {line}")
        except asyncio.CancelledError:
            return

    # ------------------------------------------------------------------ #
    # failure handling
    # ------------------------------------------------------------------ #
    async def _watch(
        self, worker_id: int, proc: asyncio.subprocess.Process
    ) -> None:
        """Await one process; on unexpected death, detach and restart."""
        code = await proc.wait()
        record = self._records[worker_id]
        if self._draining or record.proc is not proc:
            return
        record.state = "dead"
        registry.inc("cluster.worker_exits_total")
        self._announce(
            f"worker {worker_id} (pid {record.pid}) exited with code {code}"
        )
        await self.router.detach(worker_id)
        self._schedule_restart(worker_id)

    def notify_worker_dead(self, worker_id: int) -> None:
        """Router callback: a connection died mid-query.

        The watcher usually fires first (the process exited), but a
        connection can die while the process lives — this path covers
        it by forcing the heartbeat verdict early.
        """
        if self._draining:
            return
        record = self._records.get(worker_id)
        if record is None or record.state != "up":
            return
        record.missed_heartbeats = self.config.miss_limit

    def _schedule_restart(self, worker_id: int) -> None:
        if self._draining or worker_id in self._restarting:
            return
        self._restarting.add(worker_id)
        asyncio.ensure_future(self._restart(worker_id))

    async def _restart(self, worker_id: int) -> None:
        record = self._records[worker_id]
        try:
            record.restarts += 1
            delay = min(
                self.config.backoff_cap,
                self.config.backoff_base * 2 ** (record.restarts - 1),
            )
            record.state = "restarting"
            registry.inc("cluster.restarts_total")
            self._announce(
                f"restarting worker {worker_id} in {delay:.1f} s "
                f"(restart #{record.restarts})"
            )
            await asyncio.sleep(delay)
            if self._draining:
                return
            await self._spawn(worker_id)
        except ClusterError as exc:
            # Spawn failed outright; try again along the backoff curve.
            self._announce(f"worker {worker_id} restart failed: {exc}")
            record.state = "dead"
            self._restarting.discard(worker_id)
            self._schedule_restart(worker_id)
            return
        finally:
            self._restarting.discard(worker_id)

    async def _heartbeat_loop(self) -> None:
        interval = self.config.heartbeat_interval
        while not self._draining:
            await asyncio.sleep(interval)
            for worker_id, record in self._records.items():
                if record.state != "up" or self._draining:
                    continue
                ok = await self.router.ping(worker_id, timeout=interval)
                if ok:
                    record.missed_heartbeats = 0
                    continue
                record.missed_heartbeats += 1
                if record.missed_heartbeats < self.config.miss_limit:
                    continue
                registry.inc("cluster.evictions_total")
                self._announce(
                    f"worker {worker_id} missed "
                    f"{record.missed_heartbeats} heartbeats; evicting"
                )
                if record.proc is not None:
                    try:
                        record.proc.kill()
                    except ProcessLookupError:
                        pass
                # The watcher task sees the exit and restarts it.

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn every worker slot; raises if any fails its first spawn."""
        for worker_id in self.plan.worker_ids():
            await self._spawn(worker_id)
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())

    async def drain(self) -> None:
        """SIGTERM every worker, wait, SIGKILL stragglers, detach all."""
        self._draining = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
        procs = []
        for record in self._records.values():
            record.state = "draining"
            if record.proc is not None and record.proc.returncode is None:
                try:
                    record.proc.send_signal(signal.SIGTERM)
                except ProcessLookupError:
                    continue
                procs.append(record.proc)
        if procs:
            waits = [asyncio.ensure_future(p.wait()) for p in procs]
            _done, pending = await asyncio.wait(
                waits, timeout=self.config.drain_timeout
            )
            if pending:
                for proc in procs:
                    if proc.returncode is None:
                        proc.kill()
                await asyncio.wait(pending)
        for record in self._records.values():
            for task in record.tasks:
                task.cancel()
        await self.router.close()

    # ------------------------------------------------------------------ #
    def _row_state(self, record: _WorkerRecord) -> str:
        # A worker at the miss limit is not serving even if its process
        # record still says "up" — the router's dead-connection report
        # lands here synchronously, so degraded health shows immediately,
        # without waiting for the exit watcher to run.
        if (
            record.state == "up"
            and record.missed_heartbeats >= self.config.miss_limit
        ):
            return "unresponsive"
        return record.state

    def describe(self) -> list[dict]:
        """Per-worker status rows for healthz / ``cluster status``.

        Flat rows in ascending worker-slot order (== shard order at
        replication 1, so unreplicated callers can keep indexing by
        shard id).
        """
        rows = []
        for worker_id in self.plan.worker_ids():
            record = self._records[worker_id]
            shard = self.plan.shard(record.shard_id)
            rows.append(
                {
                    "worker": worker_id,
                    "shard": record.shard_id,
                    "replica": record.replica,
                    "lo": shard.lo,
                    "hi": shard.hi,
                    "state": self._row_state(record),
                    "pid": record.pid,
                    "port": record.port,
                    "epoch": record.epoch,
                    "restarts": record.restarts,
                    "missed_heartbeats": record.missed_heartbeats,
                }
            )
        return rows

    def describe_ranges(self) -> list[dict]:
        """Per-*range* health: one dead replica of a healthy range is
        not degradation.

        Each row aggregates the range's replica set:
        ``replicas_healthy`` counts replicas currently serving
        (state ``up`` and under the heartbeat miss limit) out of
        ``replicas_total``; ``replicas`` nests the per-worker rows.
        """
        rows = []
        workers = {row["worker"]: row for row in self.describe()}
        for rset in self.plan.replicas:
            replica_rows = [workers[wid] for wid in rset.workers]
            healthy = sum(
                1 for row in replica_rows if row["state"] == "up"
            )
            rows.append(
                {
                    "shard": rset.shard_id,
                    "lo": rset.lo,
                    "hi": rset.hi,
                    "replicas_total": len(rset.workers),
                    "replicas_healthy": healthy,
                    "replicas": replica_rows,
                }
            )
        return rows

    def quorum_met(self, plan: ShardPlan | ReplicaPlan) -> bool:
        """True iff every range has a quorum of replicas on ``plan.epoch``.

        The epoch-bump completion test: a bump only *publishes* once a
        majority (``replication // 2 + 1``) of each range's replicas
        are up and have acked the new epoch — otherwise one slow
        replica set could serve a just-published epoch from a minority
        while its siblings still answer the old one after a failover.
        """
        plan = as_replica_plan(plan)
        quorum = plan.quorum()
        for rset in plan.replicas:
            acked = 0
            for wid in rset.workers:
                record = self._records.get(wid)
                if (
                    record is not None
                    and self._row_state(record) == "up"
                    and record.epoch == plan.epoch
                ):
                    acked += 1
            if acked < quorum:
                return False
        return True

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun."""
        return self._draining
