"""Approximate near-neighbour search in k-space (§5.6).

The paper's third open computational issue: "efficiently comparing
queries to documents (i.e., finding near neighbors in high-dimension
spaces)".  This module implements the classic coarse-quantizer answer:

1. cluster the (Σ-scaled) document vectors once with k-means
   (implemented here, seeded, k-means++ initialization);
2. at query time score only the documents in the ``probes`` clusters
   whose centroids are nearest the query — a tunable accuracy/speed
   dial measured in ``bench_ann.py`` (recall@10 vs fraction of the
   collection scored).

Everything is pure NumPy on the same coordinate conventions as
:mod:`repro.core.similarity`, so exact and approximate rankings are
directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.util.rng import ensure_rng

__all__ = ["kmeans", "ClusterIndex"]


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    *,
    max_iter: int = 50,
    tol: float = 1e-6,
    seed=0,
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd k-means with k-means++ seeding.

    Returns ``(centroids (c, d), assignment (n,))``.  Empty clusters are
    re-seeded from the point farthest from its centroid.
    """
    X = np.asarray(points, dtype=np.float64)
    if X.ndim != 2:
        raise ShapeError("points must be 2-D")
    n, d = X.shape
    if not 1 <= n_clusters <= n:
        raise ShapeError(f"n_clusters={n_clusters} outside [1, {n}]")
    rng = ensure_rng(seed)

    # k-means++ initialization.
    centroids = np.empty((n_clusters, d))
    centroids[0] = X[int(rng.integers(n))]
    closest_sq = np.sum((X - centroids[0]) ** 2, axis=1)
    for c in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            centroids[c:] = X[rng.integers(n, size=n_clusters - c)]
            break
        probs = closest_sq / total
        centroids[c] = X[int(rng.choice(n, p=probs))]
        closest_sq = np.minimum(
            closest_sq, np.sum((X - centroids[c]) ** 2, axis=1)
        )

    assignment = np.zeros(n, dtype=np.int64)
    for _it in range(max_iter):
        # Assignment step (squared Euclidean, expanded form).
        sq = (
            np.sum(X**2, axis=1)[:, None]
            - 2.0 * X @ centroids.T
            + np.sum(centroids**2, axis=1)[None, :]
        )
        assignment = np.argmin(sq, axis=1)
        moved = 0.0
        for c in range(n_clusters):
            members = X[assignment == c]
            if members.shape[0] == 0:
                # Re-seed from the globally worst-served point.
                worst = int(np.argmax(np.min(sq, axis=1)))
                new_centroid = X[worst]
            else:
                new_centroid = members.mean(axis=0)
            moved = max(moved, float(np.sum((centroids[c] - new_centroid) ** 2)))
            centroids[c] = new_centroid
        if moved <= tol:
            break
    sq = (
        np.sum(X**2, axis=1)[:, None]
        - 2.0 * X @ centroids.T
        + np.sum(centroids**2, axis=1)[None, :]
    )
    assignment = np.argmin(sq, axis=1)
    return centroids, assignment


@dataclass
class ClusterIndex:
    """Coarse-quantized cosine search over a model's document vectors."""

    model: LSIModel
    centroids: np.ndarray
    assignment: np.ndarray
    members: list[np.ndarray] = field(default_factory=list)

    @classmethod
    def build(
        cls, model: LSIModel, *, n_clusters: int | None = None, seed=0
    ) -> "ClusterIndex":
        """Cluster the scaled document coordinates.

        The default cluster count ``≈ sqrt(n)`` balances probe cost
        against within-cluster scan cost, the standard IVF heuristic.
        """
        n = model.n_documents
        if n == 0:
            raise ShapeError("model has no documents to index")
        if n_clusters is None:
            n_clusters = max(1, int(np.sqrt(n)))
        coords = model.doc_coordinates()
        # Cosine search ⇒ cluster on the unit sphere.
        norms = np.sqrt(np.sum(coords**2, axis=1, keepdims=True))
        unit = np.where(norms > 0, coords / np.where(norms > 0, norms, 1), 0)
        centroids, assignment = kmeans(unit, n_clusters, seed=seed)
        members = [
            np.flatnonzero(assignment == c) for c in range(n_clusters)
        ]
        return cls(model, centroids, assignment, members)

    @property
    def n_clusters(self) -> int:
        """Number of coarse clusters."""
        return self.centroids.shape[0]

    # ------------------------------------------------------------------ #
    def search(
        self,
        qhat: np.ndarray,
        *,
        top: int = 10,
        probes: int = 2,
    ) -> tuple[list[tuple[int, float]], int]:
        """Approximate top-``top`` ``(doc_index, cosine)`` results.

        Returns the result list and the number of documents actually
        scored (the work saved is ``1 - scored/n``).
        """
        if top < 1 or probes < 1:
            raise ShapeError("top and probes must be >= 1")
        qhat = np.asarray(qhat, dtype=np.float64).ravel()
        if qhat.size != self.model.k:
            raise ShapeError(
                f"query vector has {qhat.size} dims for k={self.model.k}"
            )
        target = qhat * self.model.s
        tn = np.sqrt(target @ target)
        if tn == 0:
            return [], 0
        unit_q = target / tn
        # Nearest centroids by cosine (centroids live on the sphere).
        cen_norms = np.sqrt(np.sum(self.centroids**2, axis=1))
        cen_cos = np.where(
            cen_norms > 0,
            (self.centroids @ unit_q) / np.where(cen_norms > 0, cen_norms, 1),
            -np.inf,
        )
        order = np.argsort(-cen_cos, kind="stable")[: min(probes, self.n_clusters)]
        candidates = np.concatenate([self.members[int(c)] for c in order])
        if candidates.size == 0:
            return [], 0
        coords = self.model.doc_coordinates()[candidates]
        norms = np.sqrt(np.sum(coords**2, axis=1))
        denom = norms * tn
        cos = np.zeros(candidates.size)
        ok = denom > 0
        cos[ok] = (coords[ok] @ target) / denom[ok]
        pick = np.argsort(-cos, kind="stable")[:top]
        results = [(int(candidates[i]), float(cos[i])) for i in pick]
        return results, int(candidates.size)

    def recall_at(
        self, qhat: np.ndarray, *, top: int = 10, probes: int = 2
    ) -> float:
        """Fraction of the exact top-``top`` found by the probe search."""
        from repro.core.similarity import cosine_similarities

        exact = cosine_similarities(self.model, qhat)
        true_top = set(np.argsort(-exact, kind="stable")[:top].tolist())
        approx, _ = self.search(qhat, top=top, probes=probes)
        got = {j for j, _ in approx}
        return len(got & true_top) / top
