"""Tests for term-document matrix construction and n-gram features."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.text import ParsingRules, Vocabulary, build_tdm, char_ngrams
from repro.text.ngrams import vocabulary_ngrams, word_ngram_profile
from repro.text.tdm import count_vector, tdm_from_parsed
from repro.text.parser import parse_corpus


def test_build_tdm_counts_frequencies():
    tdm = build_tdm(["apple apple banana", "banana cherry"])
    a = tdm.vocabulary.id_of("apple")
    b = tdm.vocabulary.id_of("banana")
    dense = tdm.to_dense()
    assert dense[a, 0] == 2.0
    assert dense[b, 0] == 1.0 and dense[b, 1] == 1.0
    assert tdm.n_documents == 2


def test_term_frequency_accessor():
    tdm = build_tdm(["apple apple", "apple"])
    assert tdm.term_frequency("apple", 0) == 2.0
    assert tdm.term_frequency("apple", 1) == 1.0


def test_document_frequency():
    tdm = build_tdm(["apple banana", "apple", "cherry"])
    df = tdm.document_frequency()
    assert df[tdm.vocabulary.id_of("apple")] == 2
    assert df[tdm.vocabulary.id_of("cherry")] == 1


def test_doc_ids_default_and_custom():
    tdm = build_tdm(["a b", "b c"], doc_ids=["X", "Y"])
    assert tdm.doc_ids == ["X", "Y"]
    tdm2 = build_tdm(["a b", "b c"])
    assert tdm2.doc_ids == ["D1", "D2"]
    with pytest.raises(ShapeError):
        build_tdm(["a b"], doc_ids=["X", "Y"])


def test_fixed_vocabulary_build():
    vocab = Vocabulary(["apple", "zebra"]).freeze()
    tdm = build_tdm(["apple banana zebra"], vocabulary=vocab)
    assert tdm.n_terms == 2
    dense = tdm.to_dense()
    assert dense[0, 0] == 1.0 and dense[1, 0] == 1.0


def test_count_vector_drops_oov():
    vocab = Vocabulary(["blood", "age"])
    v = count_vector(["age", "of", "children", "blood", "blood"], vocab)
    assert v[vocab.id_of("age")] == 1.0
    assert v[vocab.id_of("blood")] == 2.0
    assert v.sum() == 3.0


def test_tdm_from_parsed():
    parsed = parse_corpus(["x y", "y z"])
    tdm = tdm_from_parsed(parsed)
    assert tdm.shape == (3, 2)


def test_empty_document_column():
    tdm = build_tdm(
        ["apple apple", "apple", "xyzzy"], ParsingRules(min_doc_freq=2)
    )
    # third doc has no indexed terms → all-zero column, still present
    assert tdm.shape[1] == 3
    assert np.all(tdm.to_dense()[:, 2] == 0)


# --------------------------------------------------------------------- #
# n-grams
# --------------------------------------------------------------------- #
def test_char_ngrams_unigrams():
    assert char_ngrams("cat", (1,)) == ["c", "a", "t"]


def test_char_ngrams_bigrams_have_boundaries():
    assert char_ngrams("cat", (2,)) == ["#c", "ca", "at", "t#"]


def test_char_ngrams_mixed_sizes():
    grams = char_ngrams("ab", (1, 2, 3))
    assert "a" in grams and "#a" in grams and "#ab" in grams


def test_char_ngrams_short_word():
    assert char_ngrams("a", (3,)) == ["#a#"]


def test_char_ngrams_case_insensitive():
    assert char_ngrams("CaT", (1,)) == ["c", "a", "t"]


def test_char_ngrams_invalid_size():
    with pytest.raises(ValueError):
        char_ngrams("cat", (0,))


def test_word_ngram_profile_counts():
    prof = word_ngram_profile("aa", (1,))
    assert prof["a"] == 2


def test_vocabulary_ngrams_sorted_union():
    grams = vocabulary_ngrams(["ab", "ba"], (2,))
    assert grams == sorted(set(grams))
    assert "ab" in grams and "ba" in grams
