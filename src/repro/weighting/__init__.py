"""Term weighting (Eq. 5): ``a_ij = L(i, j) × G(i)``.

"A log transformation of the local cell entries combined with a global
entropy weight for terms is the most effective term-weighting scheme.
Averaged over five test collections, log × entropy weighting was 40% more
effective than raw term weighting." (§5.1)

* :mod:`repro.weighting.local` — per-cell transforms L(i, j).
* :mod:`repro.weighting.global_` — per-term weights G(i).
* :mod:`repro.weighting.schemes` — composition, registry, and query-side
  application (queries receive the same term weights as documents).
* :mod:`repro.weighting.correction` — the ``Y_j Z_jᵀ`` blocks of the
  SVD-updating weight-correction step (Eq. 12).
"""

from repro.weighting.local import LOCAL_WEIGHTS, local_weight
from repro.weighting.global_ import GLOBAL_WEIGHTS, global_weight
from repro.weighting.schemes import (
    WeightedMatrix,
    WeightingScheme,
    apply_weighting,
    available_schemes,
)
from repro.weighting.correction import weight_correction_blocks

__all__ = [
    "LOCAL_WEIGHTS",
    "GLOBAL_WEIGHTS",
    "local_weight",
    "global_weight",
    "WeightingScheme",
    "WeightedMatrix",
    "apply_weighting",
    "available_schemes",
    "weight_correction_blocks",
]
