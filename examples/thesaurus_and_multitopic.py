"""Term-side retrieval and multi-topic queries (§5.4).

Run:  python examples/thesaurus_and_multitopic.py

Three of the paper's "novel applications" on the worked example:
returning nearby *terms* (the automatic thesaurus), suggesting index
terms for a new document, and querying with multiple points of interest.
"""

from repro import ParsingRules, fit_lsi
from repro.apps import build_thesaurus, suggest_index_terms
from repro.corpus.med import MED_TOPICS
from repro.retrieval import MultiTopicQuery, multi_topic_search


def main() -> None:
    model = fit_lsi(
        list(MED_TOPICS.values()), k=2,
        rules=ParsingRules(min_doc_freq=2), doc_ids=list(MED_TOPICS),
    )

    # Automatic thesaurus: nearest terms for every keyword.
    print("automatic thesaurus (top-3 neighbours):")
    thesaurus = build_thesaurus(model, top=3)
    for term in ("oestrogen", "rats", "blood", "culture"):
        neighbours = ", ".join(f"{w} ({c:.2f})" for w, c in thesaurus[term])
        print(f"  {term:<10s} → {neighbours}")

    # Index-term suggestion for an unseen abstract.
    new_abstract = "hormone output of treated patients declined rapidly"
    print(f"\nsuggest index terms for: {new_abstract!r}")
    for term, cosine in suggest_index_terms(model, new_abstract, top=5):
        print(f"  {term:<12s} {cosine:.2f}")

    # Multiple points of interest: hormones OR rodent studies.  A 2-D
    # space saturates cosines, so use a k=4 model for this part.
    model4 = fit_lsi(
        list(MED_TOPICS.values()), k=4,
        rules=ParsingRules(min_doc_freq=2), doc_ids=list(MED_TOPICS),
    )
    query = MultiTopicQuery.from_texts(
        model4, ["oestrogen depressed", "rats fast"]
    )
    print("\nmulti-topic query (hormones OR rodent studies), max rule, k=4:")
    for doc_id, score in multi_topic_search(model4, query, rule="max", top=5):
        print(f"  {doc_id:<4s} {score:.2f}  {MED_TOPICS[doc_id][:55]}")


if __name__ == "__main__":
    main()
