"""Stop-word list in the SMART tradition.

The paper's worked example drops *of*, *children*, *with* from the query
"age of children with blood abnormalities" because they "are not indexed
terms (i.e., stop words)" — *of* and *with* by this list, *children* by the
min-document-frequency parsing rule.  The list below is a compact core of
the SMART stop list (Salton's system, the paper's baseline): determiners,
prepositions, conjunctions, pronouns, auxiliaries and a few high-frequency
adverbs.  Deliberately conservative — LSI itself de-weights uninformative
terms, so an aggressive list is unnecessary.
"""

from __future__ import annotations

__all__ = ["DEFAULT_STOPWORDS", "is_stopword"]

DEFAULT_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are aren't as at
    be because been before being below between both but by
    can cannot could couldn't
    did didn't do does doesn't doing don't down during
    each
    few for from further
    had hadn't has hasn't have haven't having he her here hers herself him
    himself his how
    i if in into is isn't it its itself
    just
    like
    me more most my myself
    no nor not now
    of off on once only or other our ours ourselves out over own
    s same she should shouldn't so some such
    t than that the their theirs them themselves then there these they
    this those through to too
    under until up upon
    very
    was wasn't we were weren't what when where which while who whom why
    will with won't would wouldn't
    you your yours yourself yourselves
    """.split()
)


def is_stopword(token: str, stopwords: frozenset[str] | None = None) -> bool:
    """True if ``token`` is in the stop list (case-insensitive)."""
    words = DEFAULT_STOPWORDS if stopwords is None else stopwords
    return token.lower() in words
