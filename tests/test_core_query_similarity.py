"""Tests for query projection (Eq. 6) and similarity ranking."""

import numpy as np
import pytest

from repro.core import (
    nearest_terms,
    project_query,
    rank_documents,
    retrieve,
)
from repro.core.query import pseudo_document, query_counts
from repro.core.similarity import (
    cosine_similarities,
    doc_doc_similarities,
    term_term_similarities,
)
from repro.errors import ShapeError


def test_query_counts_drops_unindexed_words(med_model):
    counts = query_counts(med_model, "age of children with blood abnormalities")
    vocab = med_model.vocabulary
    assert counts[vocab.id_of("age")] == 1
    assert counts[vocab.id_of("blood")] == 1
    assert counts[vocab.id_of("abnormalities")] == 1
    assert counts.sum() == 3  # of / children / with dropped


def test_query_counts_accepts_token_list(med_model):
    counts = query_counts(med_model, ["age", "blood"])
    assert counts.sum() == 2


def test_eq6_projection_formula(med_model):
    """q̂ = qᵀ U_k Σ_k⁻¹, verified against the raw algebra."""
    q = query_counts(med_model, "age blood abnormalities")
    qhat = project_query(med_model, "age blood abnormalities")
    expected = (q @ med_model.U) / med_model.s
    assert np.allclose(qhat, expected)


def test_pseudo_document_validation(med_model):
    with pytest.raises(ShapeError):
        pseudo_document(med_model, np.ones(5))


def test_query_is_weighted_like_documents(med_texts):
    from repro.core import fit_lsi

    model = fit_lsi(med_texts, 2, scheme="log_entropy")
    qhat = project_query(model, "blood blood blood")
    # Raw projection with unweighted counts differs (log damping).
    counts = query_counts(model, "blood blood blood")
    raw = (counts * model.global_weights @ model.U) / model.s
    logged = (
        np.log2(counts + 1) * model.global_weights @ model.U
    ) / model.s
    assert np.allclose(qhat, logged)
    assert not np.allclose(qhat, raw)


def test_cosine_similarities_modes(med_model):
    qhat = project_query(med_model, "age blood abnormalities")
    scaled = cosine_similarities(med_model, qhat, mode="scaled")
    factors = cosine_similarities(med_model, qhat, mode="factors")
    assert scaled.shape == (14,)
    assert np.all(scaled <= 1 + 1e-12) and np.all(scaled >= -1 - 1e-12)
    assert not np.allclose(scaled, factors)  # Σ-scaling matters
    with pytest.raises(ValueError):
        cosine_similarities(med_model, qhat, mode="euclid")
    with pytest.raises(ShapeError):
        cosine_similarities(med_model, np.ones(5))


def test_rank_documents_sorted(med_model):
    qhat = project_query(med_model, "age blood abnormalities")
    ranked = rank_documents(med_model, qhat)
    assert len(ranked) == 14
    cosines = [c for _, c in ranked]
    assert cosines == sorted(cosines, reverse=True)


def test_retrieve_threshold_and_top(med_model):
    qhat = project_query(med_model, "age blood abnormalities")
    by_threshold = retrieve(med_model, qhat, threshold=0.85)
    assert all(c >= 0.85 for _, c in by_threshold)
    top3 = retrieve(med_model, qhat, top=3)
    assert len(top3) == 3
    both = retrieve(med_model, qhat, threshold=0.85, top=2)
    assert len(both) <= 2
    with pytest.raises(ValueError):
        retrieve(med_model, qhat)


def test_zero_query_scores_zero(med_model):
    qhat = np.zeros(2)
    cos = cosine_similarities(med_model, qhat)
    assert np.allclose(cos, 0.0)


def test_term_term_similarity_self_is_one(med_model):
    sims = term_term_similarities(med_model, "blood")
    idx = med_model.vocabulary.id_of("blood")
    assert sims[idx] == pytest.approx(1.0)


def test_doc_doc_similarity(med_model):
    sims = doc_doc_similarities(med_model, "M13")
    assert sims[med_model.doc_index("M13")] == pytest.approx(1.0)
    # M14 shares the fast/rats cluster with M13 (Figure 4).
    assert sims[med_model.doc_index("M14")] > 0.9


def test_nearest_terms_skips_self(med_model):
    out = nearest_terms(med_model, "oestrogen", top=5)
    assert len(out) == 5
    assert all(w != "oestrogen" for w, _ in out)
    out2 = nearest_terms(med_model, "oestrogen", top=3, skip_self=False)
    assert out2[0][0] == "oestrogen"
