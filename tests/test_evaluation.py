"""Tests for the evaluation metrics, harness, and pooling."""

import numpy as np
import pytest

from repro.corpus import TestCollection
from repro.errors import EvaluationError
from repro.evaluation import (
    average_precision,
    compare_engines,
    eleven_point_average_precision,
    evaluate_run,
    interpolated_precision_at,
    percent_improvement,
    pooled_judgments,
    precision_at,
    precision_recall_curve,
    recall_at,
    run_engine,
    three_point_average_precision,
)
from repro.evaluation.harness import RetrievalRun
from repro.retrieval import KeywordRetrieval


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #
def test_precision_and_recall_at():
    ranking = [3, 1, 4, 1_0, 2]
    rel = {1, 2}
    assert precision_at(ranking, rel, 2) == 0.5
    assert precision_at(ranking, rel, 5) == 0.4
    assert recall_at(ranking, rel, 2) == 0.5
    assert recall_at(ranking, rel, 5) == 1.0


def test_precision_cutoff_validation():
    with pytest.raises(EvaluationError):
        precision_at([1], {1}, 0)
    with pytest.raises(EvaluationError):
        recall_at([1], {1}, -1)


def test_duplicate_ranking_rejected():
    with pytest.raises(EvaluationError):
        precision_at([1, 1], {1}, 2)


def test_precision_recall_curve():
    curve = precision_recall_curve([1, 9, 2], {1, 2})
    assert curve == [(0.5, 1.0), (0.5, 0.5), (1.0, 2 / 3)]
    assert precision_recall_curve([1], set()) == []


def test_interpolated_precision():
    ranking = [1, 9, 2]
    rel = {1, 2}
    # Max precision at recall ≥ 0.5 is 1.0 (rank 1); at recall 1.0, 2/3.
    assert interpolated_precision_at(ranking, rel, 0.5) == 1.0
    assert interpolated_precision_at(ranking, rel, 1.0) == pytest.approx(2 / 3)
    assert interpolated_precision_at(ranking, rel, 0.0) == 1.0
    with pytest.raises(EvaluationError):
        interpolated_precision_at(ranking, rel, 1.5)


def test_perfect_ranking_scores_one():
    ranking = [1, 2, 3, 4]
    rel = {1, 2}
    assert three_point_average_precision(ranking, rel) == 1.0
    assert eleven_point_average_precision(ranking, rel) == 1.0
    assert average_precision(ranking, rel) == 1.0


def test_worst_ranking_scores_low():
    ranking = [3, 4, 1, 2]
    rel = {1, 2}
    assert three_point_average_precision(ranking, rel) == 0.5
    assert average_precision(ranking, rel) == pytest.approx(
        (1 / 3 + 2 / 4) / 2
    )


def test_unretrieved_relevant_penalized():
    # relevant doc 7 never appears in the ranking
    assert average_precision([1, 2], {1, 7}) == pytest.approx(0.5)


def test_three_point_levels_are_papers():
    from repro.evaluation.metrics import THREE_POINT_LEVELS

    assert THREE_POINT_LEVELS == (0.25, 0.50, 0.75)


# --------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------- #
@pytest.fixture
def tiny_collection():
    return TestCollection(
        documents=["apple pie recipe", "banana bread", "apple tart dessert"],
        queries=["apple dessert", "banana"],
        relevance=[{0, 2}, {1}],
        name="tiny",
    )


def test_run_engine_and_evaluate(tiny_collection):
    kw = KeywordRetrieval.from_texts(tiny_collection.documents)
    run = run_engine(kw, tiny_collection)
    assert run.n_queries == 2
    assert all(len(r) == 3 for r in run.rankings)
    result = evaluate_run(run, tiny_collection)
    assert 0 <= result["mean_metric"] <= 1
    assert result["engine"] == "keyword-vector"
    assert len(result["per_query"]) == 2


def test_evaluate_run_query_count_mismatch(tiny_collection):
    run = RetrievalRun("x", "tiny", [[0, 1, 2]])
    with pytest.raises(EvaluationError):
        evaluate_run(run, tiny_collection)


def test_percent_improvement():
    assert percent_improvement(1.3, 1.0) == pytest.approx(30.0)
    assert percent_improvement(0.5, 1.0) == pytest.approx(-50.0)
    assert percent_improvement(1.0, 0.0) == float("inf")
    assert percent_improvement(0.0, 0.0) == 0.0


def test_compare_engines_summary(tiny_collection):
    kw = KeywordRetrieval.from_texts(tiny_collection.documents)
    cmp = compare_engines(kw, kw, tiny_collection)
    assert cmp.improvement_pct == pytest.approx(0.0)
    assert "keyword-vector" in cmp.summary()


# --------------------------------------------------------------------- #
# pooling
# --------------------------------------------------------------------- #
def test_pooled_judgments_subset_of_truth(tiny_collection):
    kw = KeywordRetrieval.from_texts(tiny_collection.documents)
    run = run_engine(kw, tiny_collection)
    pooled = pooled_judgments([run], tiny_collection, depth=1)
    for q in range(tiny_collection.n_queries):
        assert pooled.relevant(q) <= tiny_collection.relevant(q)
        assert len(pooled.relevant(q)) <= 1


def test_pooled_judgments_depth_validation(tiny_collection):
    kw = KeywordRetrieval.from_texts(tiny_collection.documents)
    run = run_engine(kw, tiny_collection)
    with pytest.raises(EvaluationError):
        pooled_judgments([run], tiny_collection, depth=0)
    with pytest.raises(EvaluationError):
        pooled_judgments([], tiny_collection)


def test_pooling_bias_shrinks_judgments(small_collection, small_lsi):
    """Footnote 1: systems outside the pool can look worse than they
    are — pooled judgments are never larger than the truth."""
    from repro.retrieval import LSIRetrieval

    eng = LSIRetrieval(small_lsi)
    run = run_engine(eng, small_collection)
    pooled = pooled_judgments([run], small_collection, depth=3)
    total_true = sum(len(small_collection.relevant(q)) for q in range(small_collection.n_queries))
    total_pooled = sum(len(pooled.relevant(q)) for q in range(pooled.n_queries))
    assert total_pooled < total_true
