"""Managed incremental LSI index — the §5.6 "real-time updating" glue.

The paper's open issue: "perform SVD-updating ... in real time for
databases that change frequently".  :class:`LSIIndexManager` packages the
pieces this library provides into the component a production system
would actually run:

* new documents are **folded in immediately** (cheap, Eq. 7), so the
  index is always queryable;
* every update consults the :mod:`repro.updating.planner` budget; once
  the folded fraction exceeds it, the accumulated raw counts are
  consolidated with a true **SVD-update** (Eq. 10) — or a full
  **recompute** when the planner says that is no cheaper;
* orthogonality drift (§4.3) is tracked and exposed, and a drift cap can
  force consolidation regardless of the size budget.

The manager owns the raw count matrix as well as the model, so a
recompute can re-derive global term weights from scratch — matching the
semantics split the paper draws between updating and recomputing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.build import fit_lsi_from_tdm
from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.obs.metrics import registry
from repro.obs.tracing import span
from repro.serving.index import get_document_index, invalidate_model
from repro.sparse.build import from_dense
from repro.sparse.ops import hstack_csc
from repro.text.tdm import TermDocumentMatrix, count_vector
from repro.text.tokenizer import tokenize
from repro.updating.fast_update import fast_update_documents
from repro.updating.folding import fold_in_documents
from repro.updating.orthogonality import drift_report
from repro.updating.planner import plan_update
from repro.updating.svd_update import update_documents

__all__ = ["IndexEvent", "LSIIndexManager"]


@dataclass(frozen=True)
class IndexEvent:
    """One maintenance action taken by the manager (for observability)."""

    action: str  # "fold-in" | "fast-update" | "svd-update" | "recompute"
    n_documents: int
    pending_before: int
    doc_loss: float
    reason: str


@dataclass
class LSIIndexManager:
    """Incrementally maintained LSI index.

    Parameters
    ----------
    tdm:
        The initial raw-count matrix (vocabulary fixed thereafter).
    k:
        Number of factors maintained.
    scheme:
        Weighting scheme (passed to the fit pipeline).
    distortion_budget:
        Maximum folded fraction ``pending / n`` before consolidation
        (the planner's fold-in budget).
    drift_cap:
        Maximum tolerated ``‖V̂ᵀV̂ − I‖₂`` before consolidation is forced.
        Note the §4.3 measure reacts immediately to fold-in (projected
        document vectors are not unit-norm), so a useful cap is O(1);
        the default 2.0 lets the size budget drive consolidation in the
        common case while still catching pathological drift.
    exact_updates:
        Use the residual-retaining (exact) SVD-update variant.
    ingest_method:
        How an incoming batch becomes queryable before consolidation:
        ``"fold-in"`` (Eq. 7, the paper's default — cheapest, but the
        appended vectors corrupt orthogonality) or ``"fast-update"``
        (the Vecharynski-Saad Rayleigh-Ritz projection update of
        :mod:`repro.updating.fast_update` — slightly costlier per
        batch, keeps the factors orthonormal, which is what the
        cluster's primary writer runs under sustained ingest).  Either
        way the raw counts accumulate in the pending block and
        consolidation still applies the exact SVD-update (or a
        recompute) to the pristine base model.
    fast_update_rank:
        Residual sketch rank ``l`` for ``ingest_method="fast-update"``.
    """

    tdm: TermDocumentMatrix
    k: int
    scheme: object = None
    distortion_budget: float = 0.1
    drift_cap: float = 2.0
    exact_updates: bool = True
    seed: int = 0
    ingest_method: str = "fold-in"
    fast_update_rank: int = 8

    model: LSIModel = field(init=False)
    events: list[IndexEvent] = field(init=False, default_factory=list)
    _base_model: LSIModel = field(init=False)
    _pending_counts: list[np.ndarray] = field(init=False, default_factory=list)
    _pending_ids: list[str] = field(init=False, default_factory=list)

    def __post_init__(self):
        self._base_model = fit_lsi_from_tdm(
            self.tdm, self.k, scheme=self.scheme, seed=self.seed
        )
        self.model = self._base_model

    # ------------------------------------------------------------------ #
    @classmethod
    def restore(
        cls,
        *,
        tdm: TermDocumentMatrix,
        k: int,
        model: LSIModel,
        base_model: LSIModel,
        pending_counts: Sequence[np.ndarray] = (),
        pending_ids: Sequence[str] = (),
        events: Sequence[IndexEvent] = (),
        scheme: object = None,
        distortion_budget: float = 0.1,
        drift_cap: float = 2.0,
        exact_updates: bool = True,
        seed: int = 0,
        ingest_method: str = "fold-in",
        fast_update_rank: int = 8,
    ) -> "LSIIndexManager":
        """Rebuild a manager from previously captured state — no refit.

        The durability layer (:mod:`repro.store`) checkpoints a manager's
        full state (consolidated base model, folded serving model, raw
        counts, pending fold-in block) and recovers by calling this and
        then replaying the write-ahead log.  Because every maintenance
        action is a deterministic function of that state, a restored
        manager replaying the same events reproduces bit-identical
        ``U, s, V`` (asserted in the test suite) — which is exactly the
        property crash recovery relies on.
        """
        manager = object.__new__(cls)
        manager.tdm = tdm
        manager.k = k
        manager.scheme = scheme
        manager.distortion_budget = distortion_budget
        manager.drift_cap = drift_cap
        manager.exact_updates = exact_updates
        manager.seed = seed
        manager.ingest_method = ingest_method
        manager.fast_update_rank = fast_update_rank
        manager._base_model = base_model
        manager.model = model
        manager.events = list(events)
        manager._pending_counts = [
            np.asarray(block, dtype=np.float64) for block in pending_counts
        ]
        manager._pending_ids = list(pending_ids)
        total = sum(b.shape[1] for b in manager._pending_counts)
        if total != len(manager._pending_ids):
            raise ShapeError(
                f"pending block has {total} columns for "
                f"{len(manager._pending_ids)} pending ids"
            )
        return manager

    # ------------------------------------------------------------------ #
    @property
    def n_documents(self) -> int:
        """Documents visible to queries (consolidated + folded)."""
        return self.model.n_documents

    @property
    def pending(self) -> int:
        """Documents currently represented only by fold-in."""
        return len(self._pending_ids)

    def drift(self) -> float:
        """Current §4.3 document-side orthogonality loss."""
        return drift_report(self.model).doc_loss

    def serving_index(self, mode: str = "scaled"):
        """The query-serving :class:`~repro.serving.index.DocumentIndex`
        for the *current* model.

        Always fresh: every maintenance action (fold-in, SVD-update,
        recompute) invalidates the superseded model's cached index, so a
        handle obtained before an update reports
        :meth:`~repro.serving.index.DocumentIndex.is_stale` and callers
        re-fetch here — the §5.6 "real-time updating" requirement that
        folded-in documents are immediately visible to queries.
        """
        return get_document_index(self.model, mode=mode)

    # ------------------------------------------------------------------ #
    def add_texts(
        self, texts: Sequence[str], doc_ids: Sequence[str] | None = None
    ) -> IndexEvent:
        """Add documents; returns the maintenance event that resulted."""
        if not texts:
            raise ShapeError("add_texts needs at least one document")
        if doc_ids is None:
            start = self.n_documents + self.pending + 1
            doc_ids = [f"D{start + i}" for i in range(len(texts))]
        elif len(doc_ids) != len(texts):
            raise ShapeError("doc_ids length mismatch")
        counts = np.stack(
            [count_vector(tokenize(t), self.model.vocabulary) for t in texts],
            axis=1,
        )
        return self.add_counts(counts, doc_ids)

    def add_counts(
        self, counts: np.ndarray, doc_ids: Sequence[str]
    ) -> IndexEvent:
        """Add documents given as raw count columns."""
        counts = np.atleast_2d(np.asarray(counts, dtype=np.float64))
        if counts.shape[0] != self.model.n_terms:
            raise ShapeError(
                f"count block has {counts.shape[0]} rows for "
                f"m={self.model.n_terms}"
            )
        pending_before = self.pending
        # Ingest first: the index must answer queries immediately.  The
        # paper's fold-in is the default; the fast-update kernel is the
        # writer-side alternative that keeps the factors orthonormal.
        if self.ingest_method == "fast-update":
            self.model = fast_update_documents(
                self.model, counts, list(doc_ids),
                rank=self.fast_update_rank, seed=self.seed,
            )
            ingest_action = "fast-update"
        else:
            self.model = fold_in_documents(self.model, counts, list(doc_ids))
            ingest_action = "fold-in"
        self._pending_counts.append(counts)
        self._pending_ids.extend(doc_ids)

        plan = plan_update(
            m=self.model.n_terms,
            n=self.tdm.n_documents,
            k=self.k,
            p=self.pending,
            nnz_existing=self.tdm.matrix.nnz,
            distortion_budget=self.distortion_budget,
        )
        doc_loss = self.drift()
        if plan.method == "fold-in" and doc_loss <= self.drift_cap:
            registry.inc(f"manager.events.{ingest_action}")
            event = IndexEvent(
                ingest_action, len(doc_ids), pending_before, doc_loss,
                plan.reason,
            )
        else:
            reason = (
                plan.reason
                if doc_loss <= self.drift_cap
                else f"drift {doc_loss:.3f} exceeded cap {self.drift_cap}"
            )
            event = self._consolidate(plan.method, reason, len(doc_ids))
        self.events.append(event)
        return event

    # ------------------------------------------------------------------ #
    def _pending_block(self) -> np.ndarray:
        return np.hstack(self._pending_counts)

    def _absorb_pending_into_tdm(self) -> None:
        block = from_dense(self._pending_block()).to_csc()
        self.tdm = TermDocumentMatrix(
            hstack_csc([self.tdm.matrix, block]),
            self.tdm.vocabulary,
            list(self.tdm.doc_ids) + list(self._pending_ids),
        )
        self._pending_counts.clear()
        self._pending_ids.clear()

    def _consolidate(self, method: str, reason: str, batch: int) -> IndexEvent:
        pending_before = self.pending
        with span(
            "lsi.manager.consolidate", method=method, pending=pending_before
        ):
            # The folded model is about to be replaced wholesale; the
            # recompute path below does not pass through the updating hooks,
            # so the manager invalidates its serving cache explicitly.
            invalidate_model(self.model)
            if method in ("recompute", "fold-in"):
                # fold-in only reaches here via the drift cap: recompute then.
                self._absorb_pending_into_tdm()
                self._base_model = fit_lsi_from_tdm(
                    self.tdm, self.k, scheme=self.scheme, seed=self.seed
                )
                action = "recompute"
            else:
                # SVD-update the pristine base model with the whole pending
                # block — no refit of the existing collection needed.
                self._base_model = update_documents(
                    self._base_model,
                    self._pending_block(),
                    list(self._pending_ids),
                    exact=self.exact_updates,
                )
                self._absorb_pending_into_tdm()
                action = "svd-update"
            self.model = self._base_model
            registry.inc(f"manager.events.{action}")
            return IndexEvent(
                action, batch, pending_before, self.drift(), reason
            )

    def consolidate(self) -> IndexEvent | None:
        """Force consolidation of any pending fold-ins (maintenance)."""
        if not self.pending:
            return None
        event = self._consolidate("svd-update", "manual consolidation", 0)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------ #
    def add_terms(
        self,
        counts: np.ndarray,
        terms: Sequence[str],
        *,
        global_weights: np.ndarray | None = None,
    ) -> IndexEvent:
        """Add new vocabulary terms (rows) with a true SVD-update.

        Term additions are rarer and structurally heavier than document
        additions (they extend the vocabulary every component shares),
        so the manager always consolidates pending documents first and
        then applies the Eq. 11 update — no folded-term limbo state.
        """
        counts = np.atleast_2d(np.asarray(counts, dtype=np.float64))
        if self.pending:
            self.consolidate()
        if counts.shape[1] != self.tdm.n_documents:
            raise ShapeError(
                f"term block has {counts.shape[1]} columns for "
                f"n={self.tdm.n_documents}"
            )
        from repro.sparse.ops import vstack_csr
        from repro.updating.svd_update import update_terms

        self._base_model = update_terms(
            self._base_model, counts, list(terms),
            global_weights, exact=self.exact_updates,
        )
        self.model = self._base_model
        # Extend the raw matrix so future recomputes see the new rows.
        new_rows = from_dense(counts).to_csr()
        extended = vstack_csr([self.tdm.matrix.to_csr(), new_rows]).to_csc()
        vocab = self.tdm.vocabulary.copy()
        for t in terms:
            vocab.add(t)
        self.tdm = TermDocumentMatrix(
            extended, vocab.freeze(), list(self.tdm.doc_ids)
        )
        event = IndexEvent(
            "svd-update", 0, 0, self.drift(),
            f"added {len(terms)} terms via Eq. 11",
        )
        self.events.append(event)
        return event
