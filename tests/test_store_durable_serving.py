"""Tests for the durable serving layer: store, checkpointer, CLI glue."""

import numpy as np
import pytest

from repro.corpus import SyntheticSpec, topic_collection
from repro.errors import ShapeError, StoreError, StoreLockedError
from repro.obs.metrics import registry
from repro.server import manager_from_texts
from repro.store import (
    CheckpointPolicy,
    DurableIndexStore,
    DurableServingState,
    list_checkpoints,
    open_latest_model,
    read_store_status,
)


@pytest.fixture(scope="module")
def corpus():
    col = topic_collection(
        SyntheticSpec(n_topics=3, docs_per_topic=10, doc_length=25,
                      concepts_per_topic=8, queries_per_topic=2),
        seed=11,
    )
    return col.documents[:20], col.documents[20:], col.queries


def seeded_store(corpus, tmp_path, **kwargs):
    train, _, _ = corpus
    manager = manager_from_texts(train, k=6, distortion_budget=0.2)
    return DurableIndexStore.initialize(tmp_path / "store", manager, **kwargs)


# --------------------------------------------------------------------- #
# the store itself
# --------------------------------------------------------------------- #
def test_initialize_writes_checkpoint_and_refuses_overwrite(corpus, tmp_path):
    store = seeded_store(corpus, tmp_path)
    assert DurableIndexStore.exists(tmp_path / "store")
    assert len(list_checkpoints(store.checkpoints_dir)) == 1
    assert store.dirty_records == 0
    with pytest.raises(StoreError, match="open it instead"):
        DurableIndexStore.initialize(tmp_path / "store", store.manager)
    store.close()


def test_every_add_is_wal_logged_before_apply(corpus, tmp_path):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    store.add_texts([later[0]], doc_ids=["A"])
    store.add_texts([later[1]])
    assert store.wal.n_records == 2
    assert store.dirty_records == 2
    ops = [r.op for r in store.wal.records()]
    assert ops == ["add_counts", "add_counts"]  # texts normalized first
    store.close(flush=False)


def test_invalid_mutation_is_not_logged(corpus, tmp_path):
    store = seeded_store(corpus, tmp_path)
    with pytest.raises(ShapeError):
        store.add_counts(np.zeros((3, 1)), ["bad"])
    with pytest.raises(ShapeError):
        store.add_texts([])
    with pytest.raises(ShapeError):
        store.add_terms(np.zeros((2, 999)), ["t1", "t2"])
    assert store.wal.n_records == 0  # the WAL never saw the rejects
    store.close(flush=False)


def test_consolidate_noop_is_unlogged(corpus, tmp_path):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    assert store.consolidate() is None
    assert store.wal.n_records == 0
    store.add_texts([later[0]])
    event = store.consolidate()
    assert event is not None and event.action != "fold-in"
    assert [r.op for r in store.wal.records()] == [
        "add_counts", "consolidate",
    ]
    store.close(flush=False)


def test_close_flush_writes_final_checkpoint(corpus, tmp_path):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    store.add_texts([later[0]])
    assert store.dirty_records == 1
    store.close(flush=True)
    reopened = DurableIndexStore.open(tmp_path / "store")
    assert reopened.last_recovery.replayed_records == 0  # nothing to replay
    assert reopened.manager.n_documents == 21
    with pytest.raises(StoreError, match="closed"):
        store.add_texts([later[1]])
    reopened.close(flush=False)


def test_retain_prunes_old_checkpoints(corpus, tmp_path):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path, retain=2)
    for i in range(4):
        store.add_texts([later[i]])
        store.checkpoint(reason=f"step{i}")
    infos = list_checkpoints(store.checkpoints_dir)
    assert len(infos) == 2
    assert infos[-1].checkpoint_id == 5  # ids keep counting past pruning
    store.close(flush=False)


def test_store_gauges_published(corpus, tmp_path):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    store.add_texts([later[0]])
    snap = registry.snapshot()["gauges"]
    assert snap["store.wal_records"] == 1
    assert snap["store.dirty_records"] == 1
    assert snap["store.checkpoint_age_seconds"] >= 0.0
    assert "store.last_recovery_replayed" in snap
    store.close(flush=False)


def test_single_writer_lock_excludes_second_open(corpus, tmp_path):
    store = seeded_store(corpus, tmp_path)
    with pytest.raises(StoreLockedError, match="locked"):
        DurableIndexStore.open(tmp_path / "store")
    store.close(flush=False)  # close releases the lock ...
    reopened = DurableIndexStore.open(tmp_path / "store")  # ... so this works
    reopened.close(flush=False)


def test_readonly_status_and_stats_against_live_store(corpus, tmp_path):
    import io

    from repro.cli import main

    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    store.add_texts([later[0]])
    wal_size = store.wal.size_bytes
    data_dir = str(tmp_path / "store")

    # Read-only views work while the live store holds the writer lock.
    status = read_store_status(data_dir)
    assert status["wal"]["records"] == 1
    assert status["dirty_records"] == 1
    assert status["n_documents"] == 21 and status["pending"] == 1
    assert status["last_recovery_replayed"] == 1  # what a cold start replays
    assert status["problems"] == []

    out = io.StringIO()
    assert main(["stats", "--data-dir", data_dir], out=out) == 0
    assert "store.wal_records" in out.getvalue()
    out = io.StringIO()
    assert main(["--no-obs", "store", "inspect", data_dir], out=out) == 0
    assert "would replay 1 record(s)" in out.getvalue()

    # None of that touched the live WAL (no truncation, no writes) ...
    assert (tmp_path / "store" / "wal.log").stat().st_size == wal_size

    # ... while compact, a writer, is refused with the lock held.
    out = io.StringIO()
    assert main(["--no-obs", "store", "compact", data_dir], out=out) == 1

    # The live store is unharmed and still writable.
    store.add_texts([later[1]])
    assert store.wal.n_records == 2
    store.close(flush=False)


def test_readonly_status_tracks_consolidation(corpus, tmp_path):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    store.add_texts([later[0]])
    store.add_texts([later[1]])
    store.consolidate()
    status = read_store_status(tmp_path / "store")
    assert status["n_documents"] == 22
    assert status["pending"] == 0  # the consolidate record zeroes pending
    assert status["dirty_records"] == 3
    store.close(flush=False)


def test_apply_failure_rolls_back_wal(corpus, tmp_path, monkeypatch):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)

    def boom(counts, doc_ids):
        raise RuntimeError("numerical failure after the WAL append")

    monkeypatch.setattr(store.manager, "add_counts", boom)
    with pytest.raises(RuntimeError, match="numerical failure"):
        store.add_texts([later[0]], doc_ids=["X"])
    monkeypatch.undo()

    # The unapplied record was physically rolled back: recovery will
    # never replay a mutation the live index refused.
    assert store.wal.n_records == 0
    store.add_texts([later[0]], doc_ids=["X"])
    assert [r.lsn for r in store.wal.records()] == [1]  # LSN not burned
    store.close(flush=False)

    reopened = DurableIndexStore.open(tmp_path / "store")
    assert reopened.last_recovery.replayed_records == 1
    assert reopened.manager.n_documents == 21
    reopened.close(flush=False)


# --------------------------------------------------------------------- #
# checkpoint policy + background checkpointer
# --------------------------------------------------------------------- #
def test_checkpoint_policy_triggers():
    policy = CheckpointPolicy(every_records=4, every_seconds=60.0)
    assert policy.due(dirty_records=0, seconds_since=0, consolidated=False) is None
    assert policy.due(dirty_records=4, seconds_since=0, consolidated=False)
    assert policy.due(dirty_records=1, seconds_since=61, consolidated=False)
    # idle time alone never fires
    assert policy.due(dirty_records=0, seconds_since=999, consolidated=False) is None
    assert policy.due(dirty_records=1, seconds_since=0, consolidated=True) == (
        "consolidation"
    )
    off = CheckpointPolicy(every_records=None, every_seconds=None,
                           on_consolidate=False)
    assert off.due(dirty_records=99, seconds_since=999, consolidated=True) is None


def test_maybe_checkpoint_follows_policy(corpus, tmp_path):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    checkpointer = store.start_checkpointer(
        CheckpointPolicy(every_records=2, every_seconds=None)
    )
    checkpointer.stop()  # drive it synchronously below
    store.add_texts([later[0]])
    assert checkpointer.maybe_checkpoint() is None
    store.add_texts([later[1]])
    assert checkpointer.maybe_checkpoint() == "wal_records>=2"
    assert store.dirty_records == 0
    assert len(list_checkpoints(store.checkpoints_dir)) == 2
    store.close(flush=False)


def test_consolidation_trigger_survives_checkpoint_failure(
    corpus, tmp_path, monkeypatch
):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    checkpointer = store.start_checkpointer(
        CheckpointPolicy(every_records=None, every_seconds=None,
                         on_consolidate=True)
    )
    checkpointer.stop()  # drive it synchronously
    store.add_texts([later[0]])
    store.consolidate()

    def failing(reason="manual"):
        raise OSError("disk full")

    monkeypatch.setattr(store, "checkpoint", failing)
    assert checkpointer.maybe_checkpoint() is None  # failed ...
    monkeypatch.undo()
    # ... but the consolidation notification was not lost with it.
    assert checkpointer.maybe_checkpoint() == "consolidation"
    # Debited only after the success: no spurious re-trigger.
    assert checkpointer.maybe_checkpoint() is None
    store.close(flush=False)


def test_background_checkpointer_thread(corpus, tmp_path):
    import time

    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    store.start_checkpointer(
        CheckpointPolicy(every_records=1, every_seconds=None),
        poll_seconds=0.05,
    )
    assert store.checkpointer.running
    store.add_texts([later[0]])
    deadline = time.time() + 10.0
    while store.dirty_records > 0 and time.time() < deadline:
        time.sleep(0.02)
    assert store.dirty_records == 0
    store.close()
    assert not store.checkpointer.running


# --------------------------------------------------------------------- #
# durable serving state
# --------------------------------------------------------------------- #
def test_durable_serving_routes_adds_through_wal(corpus, tmp_path):
    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    state = DurableServingState(store)
    assert state.writable
    before = state.current()
    result = state.add_texts([later[0]], doc_ids=["NEW"])
    after = state.current()
    assert after.epoch == before.epoch + 1
    assert result["n_documents"] == after.n_documents == 21
    assert store.wal.n_records == 1  # the add went through the WAL
    assert registry.snapshot()["gauges"]["store.serving_epoch"] == after.epoch
    store.close(flush=False)


def test_recovered_serving_state_search_parity(corpus, tmp_path):
    _, later, queries = corpus
    store = seeded_store(corpus, tmp_path)
    state = DurableServingState(store)
    for i, text in enumerate(later[:4]):
        state.add_texts([text], doc_ids=[f"N{i}"])
    snapshot = state.current()
    Q = np.stack([snapshot.project(q) for q in queries])
    expected = snapshot.score_batch(Q)
    store.close(flush=False)  # crash-like exit

    recovered = DurableServingState(DurableIndexStore.open(tmp_path / "store"))
    snap2 = recovered.current()
    assert snap2.n_documents == snapshot.n_documents
    got = snap2.score_batch(np.stack([snap2.project(q) for q in queries]))
    assert np.array_equal(expected, got)
    recovered.store.close(flush=False)


def test_mmap_replica_scores_match_writer(corpus, tmp_path):
    _, later, queries = corpus
    store = seeded_store(corpus, tmp_path)
    state = DurableServingState(store)
    for text in later[:3]:
        state.add_texts([text])
    store.checkpoint(reason="replica-sync")
    snapshot = state.current()
    expected = snapshot.score_batch(
        np.stack([snapshot.project(q) for q in queries])
    )
    store.close(flush=False)

    from repro.server import ServingState

    replica = ServingState.for_model(
        open_latest_model(tmp_path / "store", mmap=True)
    )
    assert not replica.writable
    snap = replica.current()
    got = snap.score_batch(np.stack([snap.project(q) for q in queries]))
    assert np.array_equal(expected, got)


# --------------------------------------------------------------------- #
# CLI glue
# --------------------------------------------------------------------- #
def test_cli_store_inspect_verify_compact(corpus, tmp_path, capsys):
    import io

    from repro.cli import main

    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    store.add_texts([later[0]])
    store.close(flush=False)
    data_dir = str(tmp_path / "store")

    out = io.StringIO()
    assert main(["--no-obs", "store", "inspect", data_dir], out=out) == 0
    text = out.getvalue()
    assert "ckpt-00000001" in text and "1 record(s)" in text

    out = io.StringIO()
    assert main(["--no-obs", "store", "verify", data_dir], out=out) == 0
    assert "verified clean" in out.getvalue()

    out = io.StringIO()
    assert main(["--no-obs", "store", "compact", data_dir], out=out) == 0
    assert "folded 1 WAL record(s)" in out.getvalue()

    # Corrupt one checkpoint array; verify must fail with exit code 1.
    from repro.store.checkpoint import iter_array_files

    victim = next(iter_array_files(list_checkpoints(store.checkpoints_dir)[-1]))
    blob = bytearray(victim.read_bytes())
    blob[-1] ^= 0x01
    victim.write_bytes(bytes(blob))
    out = io.StringIO()
    assert main(["--no-obs", "store", "verify", data_dir], out=out) == 1
    assert "CORRUPT" in out.getvalue()


def test_cli_store_rejects_non_store(tmp_path):
    import io

    from repro.cli import main

    assert main(
        ["--no-obs", "store", "inspect", str(tmp_path)], out=io.StringIO()
    ) == 1


def test_cli_stats_data_dir_publishes_store_gauges(corpus, tmp_path):
    import io

    from repro.cli import main

    _, later, _ = corpus
    store = seeded_store(corpus, tmp_path)
    store.add_texts([later[0]])
    store.close(flush=False)

    out = io.StringIO()
    assert main(
        ["stats", "--data-dir", str(tmp_path / "store")], out=out
    ) == 0
    text = out.getvalue()
    assert "store.wal_records" in text
    assert "store.checkpoint_age_seconds" in text
    assert "store.last_recovery_replayed" in text
