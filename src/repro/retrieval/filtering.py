"""Information filtering (§5.3): standing profiles over a document stream.

"In information filtering applications, a user has a relatively stable
long-term interest or profile, and new documents are constantly received
and matched against this standing interest. ... An initial sample of
documents is analyzed using standard LSI/SVD tools.  A user's interest is
represented as one (or more) vectors in this reduced-dimension LSI space.
Each new document is matched against the vector and if it is similar
enough to the interest vector it is recommended to the user."

Profiles can be built from a query (the weak baseline) or from known
relevant documents (the method Dumais & Foltz found most effective).
Streamed documents are folded into k-space with the Eq. 7 projection —
they do not change the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.errors import ShapeError
from repro.text.tdm import count_vector
from repro.text.tokenizer import tokenize
from repro.updating.folding import _weight_columns

__all__ = ["FilteringProfile", "stream_filter"]


@dataclass
class FilteringProfile:
    """A standing interest vector in k-space."""

    model: LSIModel
    vector: np.ndarray
    name: str = "profile"

    def __post_init__(self):
        self.vector = np.asarray(self.vector, dtype=np.float64).ravel()
        if self.vector.size != self.model.k:
            raise ShapeError(
                f"profile vector has {self.vector.size} dims for "
                f"k={self.model.k}"
            )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_query(
        cls, model: LSIModel, query: str, *, name: str = "query-profile"
    ) -> "FilteringProfile":
        """Profile = the query's own pseudo-document (the baseline)."""
        return cls(model, project_query(model, query), name=name)

    @classmethod
    def from_relevant_documents(
        cls,
        model: LSIModel,
        indices: Sequence[int],
        *,
        name: str = "relevant-docs-profile",
    ) -> "FilteringProfile":
        """Profile = mean of known relevant documents' vectors — "the most
        effective method used vectors derived from known relevant
        documents (like relevance feedback) combined with LSI matching"."""
        idx = np.asarray(list(indices), dtype=np.int64)
        if idx.size == 0:
            raise ShapeError("need at least one relevant document")
        if idx.min() < 0 or idx.max() >= model.n_documents:
            raise ShapeError("document index out of range")
        vec = (model.V[idx] * model.s).mean(axis=0) / model.s
        return cls(model, vec, name=name)

    # ------------------------------------------------------------------ #
    def match(self, incoming_vectors: np.ndarray) -> np.ndarray:
        """Cosine of the profile with each incoming document vector."""
        M = np.atleast_2d(np.asarray(incoming_vectors, dtype=np.float64))
        scaled_profile = self.vector * self.model.s
        scaled_docs = M * self.model.s
        pn = np.sqrt(np.dot(scaled_profile, scaled_profile))
        dn = np.sqrt(np.sum(scaled_docs**2, axis=1))
        denom = pn * dn
        out = np.zeros(M.shape[0])
        ok = denom > 0
        out[ok] = (scaled_docs[ok] @ scaled_profile) / denom[ok]
        return out


def stream_filter(
    profile: FilteringProfile,
    stream_texts: Sequence[str],
    *,
    threshold: float | None = None,
) -> list[tuple[int, float]]:
    """Match a stream of new documents against a standing profile.

    Each document is projected by Eq. 7 (never added to the model).
    Returns ``(stream_index, score)`` pairs ranked by score; with a
    threshold, only recommended documents.
    """
    model = profile.model
    counts = np.stack(
        [count_vector(tokenize(t), model.vocabulary) for t in stream_texts],
        axis=1,
    )
    weighted = _weight_columns(model, counts)
    vecs = (weighted.T @ model.U) / model.s
    scores = profile.match(vecs)
    order = np.argsort(-scores, kind="stable")
    out = [(int(i), float(scores[i])) for i in order]
    if threshold is not None:
        out = [(i, c) for i, c in out if c >= threshold]
    return out
