"""Relevance feedback in the LSI space (§5.1).

"Most of the tests using LSI have involved a method in which the initial
query is replaced with the vector sum of the documents the user has
selected as relevant. ... Replacing the user's query with the first
relevant document improves performance by an average of 33% and replacing
it with the average of the first three relevant documents improves
performance by an average of 67%."

All functions operate on k-space vectors of a fitted LSI model and return
a new query vector; they never mutate the model.  Negative feedback (the
Rocchio γ term) is included even though "the use of negative information
has not yet been exploited in LSI" — it is the natural extension and is
benchmarked as an ablation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError

__all__ = ["replace_with_relevant", "mean_relevant_query", "rocchio"]


def _doc_vectors(model: LSIModel, indices: Sequence[int]) -> np.ndarray:
    idx = np.asarray(list(indices), dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= model.n_documents):
        raise ShapeError("document index out of range in feedback")
    return model.V[idx] * model.s  # scaled document coordinates


def replace_with_relevant(
    model: LSIModel, relevant: Sequence[int]
) -> np.ndarray:
    """Replace the query with the *first* relevant document's vector."""
    rel = list(relevant)
    if not rel:
        raise ShapeError("replace_with_relevant needs at least one document")
    return _doc_vectors(model, rel[:1])[0] / model.s  # back to q̂ scale


def mean_relevant_query(
    model: LSIModel, relevant: Sequence[int], *, first: int | None = None
) -> np.ndarray:
    """Replace the query with the mean of the first ``first`` relevant
    documents (the paper's strongest protocol uses the first three)."""
    rel = list(relevant)
    if not rel:
        raise ShapeError("mean_relevant_query needs at least one document")
    if first is not None:
        rel = rel[:first]
    vecs = _doc_vectors(model, rel)
    return vecs.mean(axis=0) / model.s


def rocchio(
    model: LSIModel,
    qhat: np.ndarray,
    relevant: Sequence[int],
    nonrelevant: Sequence[int] = (),
    *,
    alpha: float = 1.0,
    beta: float = 0.75,
    gamma: float = 0.15,
) -> np.ndarray:
    """Rocchio reformulation in k-space.

    ``q' = α q + β · mean(relevant) − γ · mean(nonrelevant)`` — the γ term
    moves the query *away* from judged-irrelevant documents, the extension
    the paper mentions as unexplored.
    """
    qhat = np.asarray(qhat, dtype=np.float64).ravel()
    if qhat.size != model.k:
        raise ShapeError(f"query vector has {qhat.size} dims for k={model.k}")
    out = alpha * qhat
    if len(relevant):
        out = out + beta * (_doc_vectors(model, relevant).mean(axis=0) / model.s)
    if len(nonrelevant):
        out = out - gamma * (
            _doc_vectors(model, nonrelevant).mean(axis=0) / model.s
        )
    return out
