"""End-to-end smoke test for ``python -m repro cluster serve``.

Boots the real cluster — HTTP front end, scatter-gather router, and
three shard worker *subprocesses* over one durable-store checkpoint —
and checks the acceptance criteria that only hold across process
boundaries:

* ``/search`` responses are element-identical to the in-process
  ``sharded_batch_search`` over the same checkpoint (same shard count,
  so the same kernel paths);
* probe-bounded (``probes``) responses are element-identical to an
  in-process probe of the same checkpoint quantizer over the same
  shard slices, and probing every cell reproduces the exact scan;
* SIGKILL-ing one worker degrades to ``partial=true`` with exactly
  that worker's ``[lo, hi)`` row range listed as missing — the other
  shards' rows stay exact;
* the supervisor restarts the dead worker and full parity returns;
* SIGTERM drains cleanly — the process prints ``drained cleanly`` and
  exits 0.

Run directly (CI does)::

    PYTHONPATH=src:benchmarks python benchmarks/cluster_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.core.query import project_query
from repro.parallel.sharding import (
    merge_topk,
    shard_bounds,
    sharded_batch_search,
)
from repro.server import ServerClient
from repro.server.state import manager_from_texts
from repro.serving.kernel import row_norms
from repro.store.durable import DurableIndexStore
from repro.store.mmap_io import open_latest_ann, open_latest_model

K = 10
SHARDS = 3
TOP = 10
RESTART_BACKOFF = 3.0  # wide enough to observe the degraded window


def _corpus() -> list[str]:
    rng = np.random.default_rng(43)
    vocab = [f"w{i}" for i in range(50)]
    return [" ".join(rng.choice(vocab, size=15)) for _ in range(61)]


def _seed_store(data_dir: str, texts: list[str]) -> None:
    ids = [f"D{i}" for i in range(len(texts))]
    store = DurableIndexStore.initialize(
        data_dir, manager_from_texts(texts, ids, k=K)
    )
    store.close(flush=False)


def _start_cluster(data_dir: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro cluster serve``; return (proc, http port)."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--no-obs", "cluster", "serve",
            "--data-dir", data_dir, "--workers", str(SHARDS),
            "--port", "0", "--heartbeat-interval", "0.25",
            "--restart-backoff", str(RESTART_BACKOFF),
            "--restart-backoff-cap", str(RESTART_BACKOFF),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"cluster exited before its banner (rc={proc.poll()})"
            )
        line = line.strip()
        print(f"  | {line}")
        if line.startswith("cluster serving ") and "on http://" in line:
            return proc, int(line.rsplit(":", 1)[1])
    proc.kill()
    raise SystemExit("cluster banner never appeared")


def _search_pairs(
    client: ServerClient, query: str, probes: int | None = None
) -> tuple[dict, list]:
    data = client.search(query, top=TOP, probes=probes)
    return data, [(int(j), float(s)) for j, s, _ in data["results"]]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "store")
        texts = _corpus()
        _seed_store(data_dir, texts)
        model = open_latest_model(data_dir)
        queries = texts[:5]
        # Single-query HTTP requests take the q=1 kernel path, so the
        # reference is computed one query at a time as well.
        expected = {
            q: sharded_batch_search(model, [q], top=TOP, shards=SHARDS)[0]
            for q in queries
        }
        full = {
            q: sharded_batch_search(
                model, [q], top=model.n_documents, shards=SHARDS
            )[0]
            for q in queries
        }

        proc, port = _start_cluster(data_dir)
        try:
            client = ServerClient(port=port)
            health = client.healthz()
            assert health["status"] == "ok", health
            assert health["workers_live"] == SHARDS, health

            # Phase 1: parity with the flat in-process sharded search.
            for q in queries:
                data, got = _search_pairs(client, q)
                assert data["partial"] is False, data
                assert got == expected[q], (q, got, expected[q])
            print(f"parity: {len(queries)} responses element-identical "
                  f"to sharded_batch_search (shards={SHARDS})")

            # Phase 1b: ANN parity.  Every worker maps the same
            # checkpoint quantizer and cell selection is a pure
            # function of the scaled query, so a cluster probe-bounded
            # search must merge to exactly an in-process probe of the
            # same quantizer over the same shard slices (gathered BLAS
            # shapes must match shard-for-shard, like the exact phase's
            # ``shards=SHARDS`` reference) — and probing every cell
            # must equal the exact scan.
            assert health["ann"] is True, health
            ann = open_latest_ann(data_dir)
            assert ann is not None, "seeded checkpoint has no quantizer"
            shard_slices = []
            for lo, hi in shard_bounds(model.n_documents, SHARDS):
                coords = np.ascontiguousarray(model.V[lo:hi] * model.s)
                shard_slices.append((lo, coords, row_norms(coords)))
            probes = max(1, ann.n_clusters // 2)
            for q in queries:
                qhat = project_query(model, q)
                per_shard = [
                    ann.select(
                        coords, norms, qhat * model.s,
                        probes=probes, top=TOP, lo=lo,
                        n_total=model.n_documents,
                    )[0]
                    for lo, coords, norms in shard_slices
                ]
                ref = [
                    (int(j), float(s))
                    for j, s in merge_topk(per_shard, TOP)
                ]
                data, got = _search_pairs(client, q, probes=probes)
                assert data["partial"] is False, data
                assert got == ref, (q, got, ref)
                _, got_full = _search_pairs(
                    client, q, probes=ann.n_clusters
                )
                assert got_full == expected[q], (q, got_full, expected[q])
            print(f"ann parity: probes={probes} element-identical to the "
                  f"sharded in-process probe; probes={ann.n_clusters} "
                  f"(all cells) identical to the exact scan")

            # Phase 2: SIGKILL one worker → partial with its range.
            victim = 1
            row = health["workers"][victim]
            lo, hi = row["lo"], row["hi"]
            os.kill(row["pid"], signal.SIGKILL)
            degraded = None
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                data, got = _search_pairs(client, queries[0])
                if data["partial"]:
                    degraded = (data, got)
                    break
                time.sleep(0.05)
            assert degraded is not None, "never observed a partial response"
            data, got = degraded
            assert data["missing"] == [[lo, hi]], data["missing"]
            survivors = [
                p for p in full[queries[0]] if not lo <= p[0] < hi
            ][:TOP]
            assert got == survivors, (got, survivors)
            print(f"degradation: SIGKILL shard {victim} -> partial=true, "
                  f"missing=[[{lo},{hi})], survivors exact")

            # Phase 3: the supervisor restarts it → full parity again.
            # A single request may still see a transient partial right
            # after the restart (a deadline miss on a cold worker is
            # degradation, not an error), so retry until the response
            # is complete — completeness, not the first attempt, is the
            # contract.
            deadline = time.monotonic() + 45
            while time.monotonic() < deadline:
                if client.healthz()["workers_live"] == SHARDS:
                    break
                time.sleep(0.1)
            health = client.healthz()
            assert health["workers_live"] == SHARDS, health
            pending = list(queries)
            while pending and time.monotonic() < deadline:
                q = pending[0]
                data, got = _search_pairs(client, q)
                if data["partial"]:
                    time.sleep(0.1)
                    continue
                assert got == expected[q], (q, got, expected[q])
                pending.pop(0)
            assert not pending, f"still partial after restart: {pending}"
            restarts = health["workers"][victim]["restarts"]
            assert restarts >= 1, health["workers"]
            print(f"recovery: worker {victim} restarted "
                  f"(restarts={restarts}), full parity restored")

            # The status verb agrees with what we just saw.
            status = subprocess.run(
                [
                    sys.executable, "-m", "repro", "--no-obs", "cluster",
                    "status", "--port", str(port), "--json",
                ],
                capture_output=True, text=True,
                env=dict(os.environ, PYTHONPATH="src"),
                timeout=30,
            )
            assert status.returncode == 0, status.stderr
            assert json.loads(status.stdout)["workers_live"] == SHARDS

            # Phase 4: graceful drain on SIGTERM.
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=45)
            assert proc.returncode == 0, (proc.returncode, out)
            assert "drained cleanly" in out, out
            print("drain: exit 0, drained cleanly")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

    print("cluster smoke: OK")


if __name__ == "__main__":
    t0 = time.perf_counter()
    main()
    print(f"({time.perf_counter() - t0:.1f}s)")
