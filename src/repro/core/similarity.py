"""Cosine similarity and ranking in the semantic space (§2.2, §3.1).

"The query vector can then be compared to all existing document vectors,
and the documents ranked by their similarity (nearness) to the query. ...
Typically the z closest documents or all documents exceeding some cosine
threshold are returned to the user."

Comparison convention
---------------------
Document positions in the figures are ``V_k Σ_k`` (Fig. 4 uses the columns
of ``V₂`` scaled by the singular values), so the default comparison space
scales both query and documents by ``Σ_k`` ("scaled" mode).  The unscaled
alternative — cosine between ``q̂`` and raw rows of ``V_k`` — is exposed as
``mode="factors"`` for completeness; the paper itself notes the cosine "is
merely used to rank-order documents and its numerical value is not always
an adequate measure of relevance".

Execution
---------
Scoring routes through the serving fast path
(:mod:`repro.serving`): :func:`cosine_similarities` is the q=1 case of
the batched GEMM kernel, reading ``V_k Σ_k`` and its row norms from the
per-model :class:`~repro.serving.index.DocumentIndex` cache instead of
recomputing them per query, and the ranked/filtered entry points select
top-z with ``argpartition`` instead of a full sort — with output
element-identical to the historical stable-argsort implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.serving.index import get_document_index
from repro.serving.kernel import cosine_scores
from repro.serving.topk import ranked_order, topk_indices

__all__ = [
    "cosine_similarities",
    "rank_documents",
    "retrieve",
    "term_term_similarities",
    "doc_doc_similarities",
    "nearest_terms",
]


def _cosine_rows(M: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Cosine of each row of ``M`` with vector ``v`` (0 for zero rows)."""
    return cosine_scores(M, v)[0]


def cosine_similarities(
    model: LSIModel, qhat: np.ndarray, *, mode: str = "scaled"
) -> np.ndarray:
    """Cosine of the query pseudo-vector with every document (length n).

    The q=1 case of the batch GEMM path, served from the cached
    :class:`~repro.serving.index.DocumentIndex` for ``model``.
    """
    qhat = np.asarray(qhat, dtype=np.float64).ravel()
    if qhat.size != model.k:
        raise ShapeError(f"query vector has {qhat.size} dims for k={model.k}")
    return get_document_index(model, mode=mode).scores(qhat)


def rank_documents(
    model: LSIModel, qhat: np.ndarray, *, mode: str = "scaled"
) -> list[tuple[str, float]]:
    """All documents ranked by descending cosine: ``[(doc_id, cos), ...]``."""
    cos = cosine_similarities(model, qhat, mode=mode)
    order = topk_indices(cos, None)
    return [(model.doc_ids[j], float(cos[j])) for j in order]


def retrieve(
    model: LSIModel,
    qhat: np.ndarray,
    *,
    threshold: float | None = None,
    top: int | None = None,
    mode: str = "scaled",
) -> list[tuple[str, float]]:
    """Documents above a cosine threshold and/or the top-z closest.

    Mirrors §3.1: "the z closest documents or all documents exceeding some
    cosine threshold are returned".  Both filters may be combined; they
    are applied as vectorized masks before any Python pairs materialize.
    """
    if threshold is None and top is None:
        raise ValueError("retrieve() needs a threshold, a top count, or both")
    cos = cosine_similarities(model, qhat, mode=mode)
    order = ranked_order(cos, top=top, threshold=threshold)
    return [(model.doc_ids[j], float(cos[j])) for j in order]


# --------------------------------------------------------------------- #
# term-term and document-document structure (thesaurus, synonym test,
# clustering claims of Figures 4/7/8/9)
# --------------------------------------------------------------------- #
def term_term_similarities(model: LSIModel, term: str) -> np.ndarray:
    """Cosine of one term against every term, in scaled term space.

    Term comparisons use rows of ``U_k Σ_k`` — "terms which occur in
    similar documents ... will be near each other in the k-dimensional
    factor space even if they never co-occur".
    """
    coords = model.term_coordinates()
    return _cosine_rows(coords, coords[model.vocabulary.id_of(term)])


def doc_doc_similarities(model: LSIModel, doc_id: str) -> np.ndarray:
    """Cosine of one document against every document (scaled space)."""
    coords = model.doc_coordinates()
    return _cosine_rows(coords, coords[model.doc_index(doc_id)])


def nearest_terms(
    model: LSIModel, term: str, *, top: int = 10, skip_self: bool = True
) -> list[tuple[str, float]]:
    """The ``top`` terms nearest to ``term`` — the online-thesaurus
    application of §5.4 ("there is no reason that similar terms could not
    be returned")."""
    cos = term_term_similarities(model, term)
    # One extra candidate absorbs the query term itself when it is
    # skipped; selection order matches the historical full stable sort.
    order = topk_indices(cos, top + 1 if skip_self else top)
    out = []
    self_id = model.vocabulary.id_of(term)
    for idx in order:
        if skip_self and idx == self_id:
            continue
        out.append((model.vocabulary[int(idx)], float(cos[idx])))
        if len(out) >= top:
            break
    return out
