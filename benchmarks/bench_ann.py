"""§5.6 — near-neighbour search: cluster-pruned vs exhaustive scoring.

Regenerates the accuracy/cost dial behind "efficiently comparing queries
to documents (finding near neighbors in high-dimension spaces)":
recall@10 and fraction-of-collection-scored as the probe count grows,
against exhaustive cosine scoring.  Times the 2-probe search.
"""

import numpy as np

from conftest import emit
from repro.core.model import LSIModel
from repro.core.similarity import cosine_similarities
from repro.retrieval.ann import ClusterIndex
from repro.text import Vocabulary
from repro.util.rng import ensure_rng


def _model(n=20_000, k=32, hubs=24, seed=4):
    rng = ensure_rng(seed)
    H = rng.standard_normal((hubs, k))
    V = H[rng.integers(hubs, size=n)] + 0.2 * rng.standard_normal((n, k))
    s = np.sort(rng.random(k) + 0.5)[::-1]
    return LSIModel(
        U=np.eye(k), s=s, V=V,
        vocabulary=Vocabulary([f"t{i}" for i in range(k)]).freeze(),
        doc_ids=[f"d{j}" for j in range(n)],
    )


def test_ann_recall_cost_curve(benchmark):
    model = _model()
    index = ClusterIndex.build(model, seed=0)
    rng = ensure_rng(7)
    queries = rng.standard_normal((25, model.k))

    def probe2():
        return index.search(queries[0], top=10, probes=2)

    benchmark(probe2)

    rows = [
        f"n={model.n_documents} documents, {index.n_clusters} clusters",
        f"{'probes':>7s}{'recall@10':>11s}{'scored frac':>13s}",
    ]
    curve = {}
    for probes in (1, 2, 4, 8):
        recalls, fracs = [], []
        for q in queries:
            recalls.append(index.recall_at(q, top=10, probes=probes))
            _, scored = index.search(q, top=10, probes=probes)
            fracs.append(scored / model.n_documents)
        curve[probes] = (float(np.mean(recalls)), float(np.mean(fracs)))
        rows.append(
            f"{probes:>7d}{curve[probes][0]:>11.3f}{curve[probes][1]:>13.3f}"
        )
    rows.append("exhaustive scoring = recall 1.0 at fraction 1.0")
    emit("§5.6 — cluster-pruned near-neighbour search", rows)

    # Shape claims: recall rises with probes; even 8 probes scan a small
    # fraction; 4+ probes reach high recall on hub-structured data.
    recalls = [curve[p][0] for p in (1, 2, 4, 8)]
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert curve[8][1] < 0.25
    assert curve[4][0] > 0.8

    # Sanity: full probing equals exact search.
    q = queries[0]
    exact_top = np.argsort(-cosine_similarities(model, q), kind="stable")[:10]
    full, _ = index.search(q, top=10, probes=index.n_clusters)
    assert [j for j, _ in full] == exact_top.tolist()
