"""Matching people instead of documents (§5.4).

Run:  python examples/reviewer_assignment.py

Reviewers are represented by texts they have written; submitted
abstracts are folded into the same space; the assignment honours the
paper's constraints (each paper reviewed p times, each reviewer at most
r papers).  Also demos the Bellcore-Advisor expert finder.
"""

from repro.apps import assign_reviewers
from repro.apps.people import find_experts, people_vectors
from repro.core import fit_lsi
from repro.corpus import SyntheticSpec, topic_collection


def main() -> None:
    n_topics = 5
    col = topic_collection(
        SyntheticSpec(
            n_topics=n_topics, docs_per_topic=8, queries_per_topic=2,
            query_length=4, query_synonym_shift=0.3,
        ),
        seed=6,
    )
    model = fit_lsi(col.documents, k=10, scheme="log_entropy", seed=0)

    # Two reviewers per research area, each described by 4 of their texts.
    authored = [
        [t * 8 + i, t * 8 + i + 2, t * 8 + i + 4, t * 8 + i + 6]
        for t in range(n_topics)
        for i in range(2)
    ]
    reviewer_area = [t for t in range(n_topics) for _ in range(2)]
    reviewers = people_vectors(model, authored)
    print(f"{reviewers.shape[0]} reviewers across {n_topics} areas")

    # Bellcore Advisor: who should answer this question?
    question = col.queries[2]
    print(f"\nadvisor query: {question!r}")
    for person, cosine in find_experts(model, reviewers, question, top=3):
        print(f"  reviewer {person} (area {reviewer_area[person]}) "
              f"cos={cosine:.2f}")

    # Conference assignment: 10 submissions, p=2 reviews each, r=5 cap.
    submissions = col.queries
    assignment = assign_reviewers(
        model, reviewers, submissions,
        reviews_per_paper=2, max_papers_per_reviewer=5,
    )
    print(f"\nassignment (p=2, r=5), total similarity "
          f"{assignment.total_similarity:.2f}:")
    for paper, revs in enumerate(assignment.assignments):
        areas = [reviewer_area[r] for r in revs]
        print(f"  paper {paper} (area {paper // 2}) → reviewers {revs} "
              f"(areas {areas})")
    load = assignment.reviewer_load(reviewers.shape[0])
    print(f"reviewer loads: {load.tolist()} (cap 5)")


if __name__ == "__main__":
    main()
