"""Cross-module integration tests: full pipelines as a user runs them."""

import numpy as np
import pytest

from repro import (
    LSIRetrieval,
    fit_lsi,
    fold_in_texts,
    load_model,
    project_query,
    retrieve,
    save_model,
    update_documents,
)
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation import compare_engines, evaluate_run, run_engine
from repro.retrieval import KeywordRetrieval
from repro.text.tdm import count_vector
from repro.text.tokenizer import tokenize


@pytest.fixture(scope="module")
def pipeline_collection():
    return topic_collection(
        SyntheticSpec(
            n_topics=5, docs_per_topic=12, doc_length=35,
            concepts_per_topic=10, synonyms_per_concept=3,
            queries_per_topic=2, query_length=2, query_synonym_shift=0.8,
        ),
        seed=77,
    )


def test_full_pipeline_fit_query_update_persist(pipeline_collection, tmp_path):
    col = pipeline_collection
    train = col.documents[:-6]
    later = col.documents[-6:]

    # fit
    model = fit_lsi(train, k=10, scheme="log_entropy", seed=0)
    assert model.k == 10

    # query
    qhat = project_query(model, col.queries[0])
    hits = retrieve(model, qhat, top=5)
    assert len(hits) == 5

    # incremental growth: fold, then a real SVD-update
    folded = fold_in_texts(model, later[:3])
    assert folded.n_documents == model.n_documents + 3
    counts = np.stack(
        [count_vector(tokenize(t), model.vocabulary) for t in later[3:]],
        axis=1,
    )
    updated = update_documents(folded, counts, ["u1", "u2", "u3"])
    assert updated.n_documents == model.n_documents + 6

    # persist → reload → identical ranking
    path = tmp_path / "m.npz"
    save_model(updated, path)
    reloaded = load_model(path)
    q2 = project_query(reloaded, col.queries[1])
    assert retrieve(reloaded, q2, top=3) == retrieve(updated, q2, top=3)


def test_update_then_query_sees_new_documents(pipeline_collection):
    """A document about topic T folded in after fitting must be
    retrievable by a topic-T query."""
    col = pipeline_collection
    rel0 = sorted(col.relevant(0))
    held_out = col.documents[rel0[-1]]
    train = [d for i, d in enumerate(col.documents) if i != rel0[-1]]
    model = fit_lsi(train, k=10, scheme="log_entropy", seed=0)
    grown = fold_in_texts(model, [held_out], doc_ids=["HELD-OUT"])
    qhat = project_query(grown, col.queries[0])
    top_ids = [d for d, _ in retrieve(grown, qhat, top=8)]
    assert "HELD-OUT" in top_ids


def test_evaluation_pipeline_end_to_end(pipeline_collection):
    col = pipeline_collection
    lsi = LSIRetrieval.from_texts(
        col.documents, 10, scheme="log_entropy", seed=0
    )
    kw = KeywordRetrieval.from_texts(col.documents, scheme="log_entropy")
    cmp = compare_engines(lsi, kw, col)
    assert 0 <= cmp.baseline["mean_metric"] <= 1
    assert 0 <= cmp.candidate["mean_metric"] <= 1
    assert cmp.candidate["mean_metric"] >= cmp.baseline["mean_metric"] - 0.05
    res = evaluate_run(run_engine(lsi, col), col)
    assert len(res["per_query"]) == col.n_queries


def test_public_api_surface():
    """Everything advertised in repro.__all__ is importable and real."""
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_k_sweep_consistency(pipeline_collection):
    """Truncating a big model must equal fitting a small one (dense
    backend, same data ⇒ same leading singular subspace)."""
    col = pipeline_collection
    big = fit_lsi(col.documents, k=12, scheme="log_entropy", method="dense")
    small = fit_lsi(col.documents, k=5, scheme="log_entropy", method="dense")
    assert np.allclose(big.truncated(5).s, small.s, atol=1e-8)
