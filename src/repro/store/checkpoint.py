"""Atomic, checksummed, versioned checkpoints of index state.

One checkpoint is one directory under ``<data-dir>/checkpoints``::

    checkpoints/
      ckpt-00000001/
        manifest.json      format version, epoch, doc count, scheme,
                           WAL position, per-array CRC32 + shape + dtype
        base_U.npy ...     one .npy file per array

The write protocol makes a checkpoint appear atomically even across a
crash: every array is written into a ``.tmp`` sibling directory and
fsynced, the manifest (written last) is fsynced, the directory is
renamed to its final ``ckpt-<id>`` name, and the parent directory is
fsynced.  A reader therefore either sees a complete checkpoint or none;
leftover ``.tmp`` directories are garbage from a crash and are skipped
(and reaped) by :func:`list_checkpoints`.

Arrays are stored as individual ``.npy`` files rather than one ``.npz``
so read-only serving replicas can open them with
``np.load(mmap_mode="r")`` (:mod:`repro.store.mmap_io`) — zero-copy,
O(file-count) open time.  Each file's CRC32 (over the complete ``.npy``
bytes, header included) lives in the manifest, so ``repro store
verify`` detects any single flipped byte.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import time
import zlib
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.core.persistence import fsync_directory
from repro.errors import StoreCorruptError, StoreError

__all__ = [
    "CHECKPOINT_FORMAT",
    "SUPPORTED_CHECKPOINT_FORMATS",
    "MANIFEST_NAME",
    "CheckpointInfo",
    "checkpoint_name",
    "write_checkpoint",
    "load_manifest",
    "verify_checkpoint",
    "read_arrays",
    "list_checkpoints",
    "latest_valid_checkpoint",
    "checkpoint_bytes",
]

#: Format history — readers accept every version in
#: :data:`SUPPORTED_CHECKPOINT_FORMATS`, writers emit the newest:
#:
#: 1. base factors + serving ``V`` + raw matrix + pending block;
#: 2. adds the optional ANN coarse-quantizer arrays (``ann_centroids``,
#:    ``ann_indptr``, ``ann_docs``) and an ``ann`` meta block.  All
#:    format-1 arrays are unchanged, so a v1 checkpoint loads cleanly —
#:    serving simply falls back to the exact scan.
CHECKPOINT_FORMAT = 2
SUPPORTED_CHECKPOINT_FORMATS = (1, 2)
MANIFEST_NAME = "manifest.json"

_PREFIX = "ckpt-"
_CRC_CHUNK = 1 << 20


@dataclass(frozen=True)
class CheckpointInfo:
    """One on-disk checkpoint: its directory, id, and parsed manifest."""

    path: pathlib.Path
    checkpoint_id: int
    manifest: dict

    @property
    def meta(self) -> dict:
        """The caller-supplied metadata block (epoch, doc count, ...)."""
        return self.manifest.get("meta", {})


def checkpoint_name(checkpoint_id: int) -> str:
    """Directory name for checkpoint ``checkpoint_id`` (sorts by id)."""
    return f"{_PREFIX}{checkpoint_id:08d}"


def _parse_id(name: str) -> int | None:
    if not name.startswith(_PREFIX):
        return None
    try:
        return int(name[len(_PREFIX):])
    except ValueError:
        return None


def _file_crc32(path: pathlib.Path) -> int:
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CRC_CHUNK)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def _write_fsynced(path: pathlib.Path, writer) -> None:
    with open(path, "wb") as fh:
        writer(fh)
        fh.flush()
        os.fsync(fh.fileno())


def write_checkpoint(
    root: pathlib.Path,
    arrays: Mapping[str, np.ndarray],
    meta: dict,
    *,
    checkpoint_id: int | None = None,
) -> CheckpointInfo:
    """Write one checkpoint atomically; returns its :class:`CheckpointInfo`.

    ``meta`` is the caller's JSON-serializable state block (epoch, doc
    count, scheme, WAL position, labellings); it is stored verbatim
    under the manifest's ``meta`` key next to the integrity data this
    module owns.
    """
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if checkpoint_id is None:
        existing = [info.checkpoint_id for info in list_checkpoints(root)]
        checkpoint_id = (max(existing) + 1) if existing else 1
    final = root / checkpoint_name(checkpoint_id)
    if final.exists():
        raise StoreError(f"checkpoint {final} already exists")
    tmp = root / (final.name + ".tmp")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        entries: dict[str, dict] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            file = tmp / f"{name}.npy"
            _write_fsynced(file, lambda fh, a=array: np.save(fh, a))
            entries[name] = {
                "file": file.name,
                "bytes": file.stat().st_size,
                "crc32": _file_crc32(file),
                "shape": list(array.shape),
                "dtype": str(array.dtype),
            }
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "checkpoint_id": checkpoint_id,
            "created_unix": time.time(),
            "arrays": entries,
            "meta": dict(meta),
        }
        blob = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
        _write_fsynced(tmp / MANIFEST_NAME, lambda fh: fh.write(blob))
        fsync_directory(tmp)
        os.rename(tmp, final)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    fsync_directory(root)
    return CheckpointInfo(final, checkpoint_id, manifest)


def load_manifest(path: pathlib.Path) -> dict:
    """Parse a checkpoint directory's manifest (corruption → error)."""
    path = pathlib.Path(path)
    try:
        manifest = json.loads((path / MANIFEST_NAME).read_text("utf-8"))
    except FileNotFoundError:
        raise StoreError(f"{path} has no {MANIFEST_NAME}") from None
    except (OSError, ValueError) as exc:
        raise StoreCorruptError(f"unreadable manifest in {path}: {exc}") from exc
    if not isinstance(manifest, dict) or "arrays" not in manifest:
        raise StoreCorruptError(f"malformed manifest in {path}")
    if manifest.get("format") not in SUPPORTED_CHECKPOINT_FORMATS:
        raise StoreError(
            f"unsupported checkpoint format {manifest.get('format')} in {path}"
        )
    return manifest


def verify_checkpoint(path: pathlib.Path) -> list[str]:
    """Integrity-check one checkpoint; returns problems (empty = valid).

    Every array file is re-read and its CRC32 compared against the
    manifest — a single flipped byte anywhere (array payload, ``.npy``
    header, or manifest JSON) surfaces as a problem string.
    """
    path = pathlib.Path(path)
    try:
        manifest = load_manifest(path)
    except StoreError as exc:
        return [str(exc)]
    problems = []
    for name, entry in sorted(manifest["arrays"].items()):
        file = path / entry["file"]
        if not file.is_file():
            problems.append(f"{path.name}: missing array file {entry['file']}")
            continue
        size = file.stat().st_size
        if size != entry["bytes"]:
            problems.append(
                f"{path.name}/{entry['file']}: size {size} != "
                f"recorded {entry['bytes']}"
            )
            continue
        crc = _file_crc32(file)
        if crc != entry["crc32"]:
            problems.append(
                f"{path.name}/{entry['file']}: crc32 {crc:#010x} != "
                f"recorded {entry['crc32']:#010x}"
            )
    return problems


def read_arrays(
    path: pathlib.Path,
    *,
    mmap: bool = False,
    verify: bool = True,
) -> dict[str, np.ndarray]:
    """Load every array of a checkpoint, optionally memory-mapped.

    ``verify=True`` (the default for recovery) CRC-checks each file
    before loading and raises :class:`StoreCorruptError` on mismatch;
    mmap opens skip verification by default at the call sites that want
    O(1) open time.
    """
    path = pathlib.Path(path)
    manifest = load_manifest(path)
    if verify:
        problems = verify_checkpoint(path)
        if problems:
            raise StoreCorruptError(
                f"checkpoint {path} failed verification: "
                + "; ".join(problems)
            )
    arrays: dict[str, np.ndarray] = {}
    for name, entry in manifest["arrays"].items():
        try:
            arrays[name] = np.load(
                path / entry["file"], mmap_mode="r" if mmap else None
            )
        except Exception as exc:
            raise StoreCorruptError(
                f"cannot load array {name!r} from {path}: {exc}"
            ) from exc
    return arrays


def list_checkpoints(root: pathlib.Path) -> list[CheckpointInfo]:
    """All complete checkpoints under ``root``, ascending by id.

    Incomplete ``.tmp`` directories (crash debris) are removed; a
    directory whose manifest cannot be parsed is skipped here (it still
    shows up in ``repro store verify``).
    """
    root = pathlib.Path(root)
    if not root.is_dir():
        return []
    infos = []
    for entry in sorted(root.iterdir()):
        if entry.name.endswith(".tmp"):
            shutil.rmtree(entry, ignore_errors=True)
            continue
        cid = _parse_id(entry.name)
        if cid is None or not entry.is_dir():
            continue
        try:
            manifest = load_manifest(entry)
        except StoreError:
            continue
        infos.append(CheckpointInfo(entry, cid, manifest))
    infos.sort(key=lambda info: info.checkpoint_id)
    return infos


def latest_valid_checkpoint(
    root: pathlib.Path,
) -> tuple[CheckpointInfo | None, list[str]]:
    """Newest checkpoint that passes verification, plus skip diagnostics.

    Walks newest → oldest so recovery degrades gracefully: a corrupt
    latest checkpoint costs replaying a longer WAL suffix from the
    previous one, not the whole index.
    """
    problems: list[str] = []
    for info in reversed(list_checkpoints(root)):
        bad = verify_checkpoint(info.path)
        if not bad:
            return info, problems
        problems.extend(bad)
    return None, problems


def checkpoint_bytes(info: CheckpointInfo) -> int:
    """Total on-disk array bytes of one checkpoint (manifest excluded)."""
    return sum(int(e["bytes"]) for e in info.manifest["arrays"].values())


def iter_array_files(info: CheckpointInfo) -> Iterator[pathlib.Path]:
    """The array files of a checkpoint (for tooling/tests)."""
    for entry in info.manifest["arrays"].values():
        yield info.path / entry["file"]
