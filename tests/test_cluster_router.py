"""Tests for the scatter-gather router against in-process fake workers.

Each "worker" here is an asyncio server wrapping a real
:class:`ShardWorker`'s :meth:`handle` dispatch — the genuine scoring
core over the genuine wire framing, minus the subprocess machinery, so
these tests cover parity, degradation, deadlines, and hedging without
process-spawn latency.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.cluster.plan import ShardPlan
from repro.cluster.router import ClusterRouter, RouterConfig
from repro.cluster.wire import read_frame, write_frame
from repro.cluster.worker import ShardWorker
from repro.core.build import fit_lsi
from repro.obs.metrics import registry
from repro.parallel.batch import batch_project_queries
from repro.parallel.sharding import sharded_batch_search

SHARDS = 3
TOP = 7


@pytest.fixture(scope="module")
def router_model():
    rng = np.random.default_rng(23)
    vocab = [f"w{i}" for i in range(40)]
    texts = [" ".join(rng.choice(vocab, size=15)) for _ in range(57)]
    return fit_lsi(texts, 12), texts


class _FakeWorker:
    """One in-loop asyncio frame server around a real ShardWorker."""

    def __init__(self, worker: ShardWorker, *, delay: float = 0.0):
        self.worker = worker
        self.delay = delay
        self.server: asyncio.AbstractServer | None = None
        self.port = 0
        self.calls = 0
        self._writers: list[asyncio.StreamWriter] = []

    async def start(self) -> None:
        self.server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0
        )
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting AND drop live connections — a process death."""
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None
        for writer in self._writers:
            writer.transport.abort()
        self._writers.clear()
        await asyncio.sleep(0)  # let the aborts propagate

    async def _serve(self, reader, writer) -> None:
        self._writers.append(writer)
        try:
            while True:
                message = await read_frame(reader)
                if message is None:
                    return
                self.calls += 1
                if self.delay and message.get("op") == "score":
                    await asyncio.sleep(self.delay)
                # JSON-round-trip the response exactly as a process would.
                response = json.loads(
                    json.dumps(self.worker.handle(message))
                )
                if "id" in message:
                    response["id"] = message["id"]
                await write_frame(writer, response)
        except ConnectionError:
            pass
        finally:
            writer.close()


async def _cluster(model, *, shards=SHARDS, config=None, delays=None):
    plan = ShardPlan.compute(model.n_documents, shards)
    fakes = []
    for i in range(shards):
        fake = _FakeWorker(
            ShardWorker(model, plan.shard(i)),
            delay=(delays or {}).get(i, 0.0),
        )
        await fake.start()
        fakes.append(fake)
    router = ClusterRouter(plan, config or RouterConfig(hedge=False))
    for i, fake in enumerate(fakes):
        await router.attach(i, "127.0.0.1", fake.port)
    return plan, router, fakes


async def _teardown(router, fakes):
    await router.close()
    for fake in fakes:
        await fake.stop()


def _scaled(model, texts):
    return batch_project_queries(model, texts) * model.s


# --------------------------------------------------------------------- #
def test_router_batch_element_identical_to_flat(router_model):
    model, texts = router_model
    queries = texts[:5]
    flat = sharded_batch_search(model, queries, top=TOP, shards=SHARDS)

    async def main():
        _, router, fakes = await _cluster(model)
        try:
            return await router.search_batch(
                _scaled(model, queries), top=TOP
            )
        finally:
            await _teardown(router, fakes)

    result = asyncio.run(main())
    assert result.partial is False
    assert result.missing == []
    assert result.results == flat  # indices, scores, tie order


def test_router_single_query_matches_flat_single(router_model):
    # q=1 takes the GEMV path in the kernel on both sides; parity must
    # hold for it specifically, not only for batches.
    model, texts = router_model
    flat = sharded_batch_search(model, [texts[2]], top=TOP, shards=SHARDS)

    async def main():
        _, router, fakes = await _cluster(model)
        try:
            return await router.search_batch(
                _scaled(model, [texts[2]]), top=TOP
            )
        finally:
            await _teardown(router, fakes)

    assert asyncio.run(main()).results == flat


def test_router_dead_worker_degrades_to_partial(router_model):
    model, texts = router_model
    dead_sid = 1
    reported = []

    async def main():
        plan, router, fakes = await _cluster(model)
        router.on_worker_dead = reported.append
        await fakes[dead_sid].stop()  # kills the accepted connection too
        try:
            result = await router.search_batch(
                _scaled(model, texts[:2]), top=TOP
            )
            return plan, result, router.live_shards()
        finally:
            await _teardown(router, fakes)

    plan, result, live = asyncio.run(main())
    assert result.partial is True
    assert result.missing == [tuple(plan.shard(dead_sid).as_pair())]
    assert reported == [dead_sid]
    assert dead_sid not in live
    # Surviving shards' rows are still exact.
    lo, hi = plan.shard(dead_sid).as_pair()
    flat = sharded_batch_search(
        model, texts[:2], top=model.n_documents, shards=SHARDS
    )
    for qi, merged in enumerate(result.results):
        expected = [p for p in flat[qi] if not lo <= p[0] < hi][:TOP]
        assert merged == expected


def test_router_all_workers_dead_still_answers(router_model):
    model, texts = router_model

    async def main():
        plan, router, fakes = await _cluster(model)
        for fake in fakes:
            await fake.stop()
        try:
            result = await router.search_batch(
                _scaled(model, texts[:2]), top=TOP
            )
            return plan, result
        finally:
            await _teardown(router, fakes)

    plan, result = asyncio.run(main())
    assert result.partial is True
    assert result.results == [[], []]
    assert result.missing == [
        tuple(s.as_pair()) for s in plan.shards
    ]


def test_router_deadline_miss_is_partial_without_detach(router_model):
    model, texts = router_model
    before = registry.counter("cluster.deadline_misses_total")

    async def main():
        plan, router, fakes = await _cluster(
            model,
            config=RouterConfig(hedge=False, worker_timeout_ms=150.0),
            delays={2: 3.0},  # shard 2 answers far too slowly
        )
        try:
            result = await router.search_batch(
                _scaled(model, texts[:1]), top=TOP
            )
            return plan, result, router.live_shards()
        finally:
            await _teardown(router, fakes)

    plan, result, live = asyncio.run(main())
    assert result.partial is True
    assert result.missing == [tuple(plan.shard(2).as_pair())]
    # Slow is not dead: the channel stays attached (heartbeats decide).
    assert 2 in live
    assert registry.counter("cluster.deadline_misses_total") == before + 1


def test_router_hedges_slow_worker_and_still_answers(router_model):
    model, texts = router_model
    sid = 0
    # Seed shard 0's latency history fast so the hedge arms early.
    registry.reset(f"cluster.worker.{sid}.rpc_seconds")
    for _ in range(30):
        registry.observe(f"cluster.worker.{sid}.rpc_seconds", 0.01)
    before = registry.counter("cluster.hedges_total")
    flat = sharded_batch_search(model, texts[:1], top=TOP, shards=SHARDS)

    async def main():
        plan, router, fakes = await _cluster(
            model,
            config=RouterConfig(
                hedge=True,
                hedge_quantile=0.95,
                hedge_min_samples=20,
                worker_timeout_ms=10_000.0,
            ),
            delays={sid: 0.4},
        )
        try:
            return await router.search_batch(
                _scaled(model, texts[:1]), top=TOP
            )
        finally:
            await _teardown(router, fakes)

    result = asyncio.run(main())
    # The hedge fired...
    assert registry.counter("cluster.hedges_total") > before
    # ...and the answer is still complete and exact (hedge hits the same
    # worker, so results are identical whichever copy wins).
    assert result.partial is False
    assert result.results == flat


def test_router_ping_and_gauge(router_model):
    model, _ = router_model

    async def main():
        plan, router, fakes = await _cluster(model)
        try:
            pings = [await router.ping(i) for i in range(SHARDS)]
            live_before = registry.gauge("cluster.workers_live")
            await router.detach(0)
            live_after = registry.gauge("cluster.workers_live")
            dead_ping = await router.ping(0)
            return pings, live_before, live_after, dead_ping
        finally:
            await _teardown(router, fakes)

    pings, live_before, live_after, dead_ping = asyncio.run(main())
    assert pings == [True, True, True]
    assert live_before == SHARDS
    assert live_after == SHARDS - 1
    assert dead_ping is False
