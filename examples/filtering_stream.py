"""Information filtering (§5.3): standing profiles over a news stream.

Run:  python examples/filtering_stream.py

A user has a long-term interest; new documents stream past.  The example
compares the two profile representations of Dumais & Foltz — the user's
query vs the centroid of documents they marked relevant — and shows the
stream recommendation loop with a cosine threshold.
"""

import numpy as np

from repro.core import fit_lsi
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation.metrics import average_precision
from repro.retrieval import FilteringProfile, stream_filter


def main() -> None:
    # "Netnews": 6 interest areas, 24 articles each.
    col = topic_collection(
        SyntheticSpec(
            n_topics=6, docs_per_topic=24, doc_length=40,
            concepts_per_topic=12, synonyms_per_concept=4,
            queries_per_topic=1, query_length=2, query_synonym_shift=0.9,
        ),
        seed=31,
    )
    # Index an initial sample; the rest arrives as a stream.
    head, stream_docs, stream_rel = col.split_documents(col.n_documents // 2)
    model = fit_lsi(head.documents, k=12, scheme="log_entropy", seed=0)
    print(f"indexed sample: {model}; stream length: {len(stream_docs)}")

    user_topic = 0
    query = col.queries[user_topic]
    train_relevant = sorted(head.relevant(user_topic))[:3]
    print(f"\nuser interest (query): {query!r}")
    print(f"documents the user marked relevant: {train_relevant}")

    profile_q = FilteringProfile.from_query(model, query)
    profile_d = FilteringProfile.from_relevant_documents(
        model, train_relevant
    )

    for name, profile in (("query profile", profile_q),
                          ("relevant-docs profile", profile_d)):
        ranked = stream_filter(profile, stream_docs)
        ap = average_precision([i for i, _ in ranked], stream_rel[user_topic])
        recommended = stream_filter(profile, stream_docs, threshold=0.5)
        hits = sum(1 for i, _ in recommended if i in stream_rel[user_topic])
        print(f"\n{name}:")
        print(f"  stream average precision: {ap:.3f}")
        print(f"  recommended at cos ≥ 0.5: {len(recommended)} docs, "
              f"{hits} relevant")

    print("\n(the paper: profiles built from known relevant documents "
          "were the most effective representation)")


if __name__ == "__main__":
    main()
