"""Single-query serving throughput: seed path vs the fast path.

The seed path recomputed ``V_k Σ_k`` and every row norm on *every*
query, ran a full ``argsort`` over all n documents, and built the
complete n-pair Python list before applying ``top``.  The fast path
caches the scaled coordinates and norms once per model
(:class:`repro.serving.DocumentIndex`), selects top-k with
``argpartition``, and converts only the k survivors to pairs.

Acceptance: ≥ 3× single-query search throughput at n≈10⁴ documents,
k≈100, with rankings element-identical to the seed path.
"""

import time

import numpy as np

from conftest import emit
from obs_export import maybe_export_obs
from repro.core.model import LSIModel
from repro.obs import span, tracing_enabled
from repro.serving import get_document_index
from repro.text.vocabulary import Vocabulary
from repro.util.timing import serving_counters

N_DOCS = 10_000
K = 100
TOP = 10
N_QUERIES = 60
MIN_SPEEDUP = 3.0

#: Observability budget: disabled tracing may cost at most this fraction
#: of a fast-path query (ISSUE acceptance criterion).
MAX_OVERHEAD = 0.02
#: Spans a single query can cross on the serving path (search + project
#: + sharded wrapper + per-shard child) — the conservative multiplier.
SPANS_PER_QUERY = 4


def _serving_model(seed: int = 123) -> LSIModel:
    """A synthetic k=100 model over 10⁴ documents, built directly from
    random factors — fitting a real SVD at this size is not what this
    bench measures."""
    rng = np.random.default_rng(seed)
    m = 500
    vocab = Vocabulary(f"term{i}" for i in range(m))
    vocab.freeze()
    return LSIModel(
        U=rng.standard_normal((m, K)),
        s=np.sort(rng.random(K) + 0.5)[::-1],
        V=rng.standard_normal((N_DOCS, K)),
        vocabulary=vocab,
        doc_ids=[f"D{j}" for j in range(N_DOCS)],
    )


def _seed_search(model: LSIModel, qhat: np.ndarray, top: int):
    """The seed query path, verbatim in shape: recompute coordinates and
    norms per query, full stable argsort, full n-pair list, then slice."""
    docs = model.V * model.s
    target = qhat * model.s
    norms = np.sqrt(np.sum(docs * docs, axis=1))
    tn = np.sqrt(np.dot(target, target))
    denom = norms * tn
    cos = np.zeros(model.n_documents)
    ok = denom > 0
    cos[ok] = (docs[ok] @ target) / denom[ok]
    order = np.argsort(-cos, kind="stable")
    results = [(int(j), float(cos[j])) for j in order]
    return results[:top]


def test_query_fastpath_speedup():
    model = _serving_model()
    rng = np.random.default_rng(7)
    qhats = rng.standard_normal((N_QUERIES, K))

    index = get_document_index(model)  # build outside the timed region
    serving_counters.reset()

    # Warm-up + byte-identical ranking check on every query.
    for q in qhats:
        fast = index.search_vector(q, top=TOP)
        seed = _seed_search(model, q, TOP)
        assert [j for j, _ in fast] == [j for j, _ in seed]
        assert [c for _, c in fast] == [c for _, c in seed]

    t0 = time.perf_counter()
    for q in qhats:
        index.search_vector(q, top=TOP)
    fast_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    for q in qhats:
        _seed_search(model, q, TOP)
    seed_time = time.perf_counter() - t0

    speedup = seed_time / fast_time
    snap = serving_counters.snapshot()
    emit(
        "query-serving fast path",
        [
            f"{N_QUERIES} queries × {N_DOCS} documents, k={K}, top={TOP}",
            f"seed path (recompute + full argsort):  "
            f"{seed_time / N_QUERIES * 1e3:8.3f} ms/query",
            f"fast path (cached index + argpartition): "
            f"{fast_time / N_QUERIES * 1e3:8.3f} ms/query",
            f"speedup: {speedup:.1f}x   (floor {MIN_SPEEDUP:.0f}x)",
            f"counters: queries_served={snap.get('queries_served')}, "
            f"gemm={snap.get('gemm_seconds', 0.0):.3f}s, "
            f"topk={snap.get('topk_seconds', 0.0):.3f}s",
            "rankings byte-identical to seed on all queries",
        ],
    )
    maybe_export_obs(
        "query_fastpath",
        extra={
            "speedup": speedup,
            "seed_ms_per_query": seed_time / N_QUERIES * 1e3,
            "fast_ms_per_query": fast_time / N_QUERIES * 1e3,
            "n_docs": N_DOCS,
            "k": K,
            "top": TOP,
        },
    )
    assert speedup >= MIN_SPEEDUP, f"fast path only {speedup:.2f}x"


def test_disabled_tracing_overhead():
    """Tracing off (the default) must cost < 2% of a fast-path query.

    Measures the disabled ``span`` enter/exit directly — a single global
    bool check — then compares SPANS_PER_QUERY of that cost against the
    measured per-query fast-path latency.
    """
    assert not tracing_enabled(), "bench must run with tracing disabled"
    model = _serving_model()
    rng = np.random.default_rng(7)
    qhats = rng.standard_normal((N_QUERIES, K))
    index = get_document_index(model)

    for q in qhats:  # warm-up
        index.search_vector(q, top=TOP)
    t0 = time.perf_counter()
    for q in qhats:
        index.search_vector(q, top=TOP)
    per_query = (time.perf_counter() - t0) / N_QUERIES

    reps = 200_000
    t0 = time.perf_counter()
    for _ in range(reps):
        with span("lsi.overhead.probe", top=TOP):
            pass
    per_span = (time.perf_counter() - t0) / reps

    overhead = SPANS_PER_QUERY * per_span / per_query
    emit(
        "disabled-tracing overhead",
        [
            f"disabled span enter/exit: {per_span * 1e9:8.1f} ns",
            f"fast-path query:          {per_query * 1e6:8.1f} us",
            f"overhead at {SPANS_PER_QUERY} spans/query: "
            f"{overhead * 100:.4f}%   (budget {MAX_OVERHEAD * 100:.0f}%)",
        ],
    )
    assert overhead < MAX_OVERHEAD, (
        f"disabled tracing costs {overhead * 100:.3f}% per query, "
        f"budget is {MAX_OVERHEAD * 100:.0f}%"
    )
