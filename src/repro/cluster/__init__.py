"""Multi-process cluster serving: shard workers behind a scatter router.

The single-process server (:mod:`repro.server`) scores every query in
one address space.  This package scales the same exact-search semantics
across *processes*: a deterministic :class:`~repro.cluster.plan.
ShardPlan` splits one checkpointed LSI space into contiguous row
ranges; each :mod:`~repro.cluster.worker` process memory-maps the
checkpoint (zero-copy — the page cache is shared between workers) and
scores only its rows; the :mod:`~repro.cluster.router` scatters query
batches, hedges stragglers, and merges per-shard top-k lists with the
same ``merge_topk`` the in-process sharded search uses — so with all
workers live, answers are element-identical to ``sharded_batch_search``.
The :mod:`~repro.cluster.supervisor` keeps workers alive (heartbeats,
eviction, backoff restarts), and while one is down the router serves
``partial=True`` responses naming the unscored row ranges instead of
failing.  :class:`~repro.cluster.service.ClusterService` packages the
whole thing behind the existing HTTP front end (``repro cluster
serve``).

With ``--writable`` the cluster also ingests: the
:class:`~repro.cluster.primary.PrimaryWriter` owns the durable store's
write lock, WAL-logs every ``/add`` (acknowledged = fsynced, SIGKILL
recovers bit-identically), applies the Vecharynski-Saad fast SVD
update per batch, seals format-v2 checkpoints on its policy, and
broadcasts epoch *bumps* — each worker hot-remaps the new checkpoint
behind an atomic swap while keeping the previous epoch's state alive
(:mod:`~repro.cluster.epochs`), so in-flight queries finish against
the epoch they started on and zero queries drop across a bump.

With ``--replication R`` the cluster is highly available on both paths.
Reads: a :class:`~repro.cluster.placement.ReplicaPlan` assigns every
shard range R distinct worker processes; the router load-balances with
power-of-two-choices over live per-replica load (latency-history
tiebreak), fails a dead
or skewed replica over to a sibling before declaring rows missing, and
hedges stragglers across replicas — a SIGKILL'd worker costs nothing
while a sibling lives, and epoch bumps publish only once a quorum of
each range's replicas remap.  Writes: ``--standby`` runs a
:class:`~repro.cluster.standby.StandbyWriter` that tails checkpoints
and the WAL read-only, and on primary death adopts the store lock
(fencing generation bumped — see :mod:`repro.store.lock`), replays the
WAL tail, and resumes sealing with zero acked records lost.
"""

from repro.cluster.epochs import (
    EpochHandle,
    handle_for_checkpoint,
    latest_handle,
)
from repro.cluster.placement import (
    REPLICA_PLAN_FORMAT,
    ReplicaPlan,
    ReplicaSet,
    as_replica_plan,
)
from repro.cluster.plan import PLAN_FORMAT, ShardPlan, ShardRange
from repro.cluster.primary import PrimaryWriter, WriterConfig
from repro.cluster.standby import StandbyConfig, StandbyWriter
from repro.cluster.router import (
    ClusterResult,
    ClusterRouter,
    RouterConfig,
    WorkerChannel,
)
from repro.cluster.service import ClusterConfig, ClusterService
from repro.cluster.supervisor import ClusterSupervisor, SupervisorConfig
from repro.cluster.worker import ShardWorker, WorkerServer, run_worker

__all__ = [
    "PLAN_FORMAT",
    "REPLICA_PLAN_FORMAT",
    "EpochHandle",
    "handle_for_checkpoint",
    "latest_handle",
    "PrimaryWriter",
    "WriterConfig",
    "StandbyConfig",
    "StandbyWriter",
    "ShardPlan",
    "ShardRange",
    "ReplicaPlan",
    "ReplicaSet",
    "as_replica_plan",
    "ClusterResult",
    "ClusterRouter",
    "RouterConfig",
    "WorkerChannel",
    "ClusterConfig",
    "ClusterService",
    "ClusterSupervisor",
    "SupervisorConfig",
    "ShardWorker",
    "WorkerServer",
    "run_worker",
]
