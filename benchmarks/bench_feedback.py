"""§5.1 (Relevance Feedback) — replacing the query with relevant docs.

Regenerates: "Replacing the user's query with the first relevant
document improves performance by an average of 33% and replacing it with
the average of the first three relevant documents improves performance
by an average of 67%" — both protocols plus the Rocchio extension with
negative feedback (which the paper flags as unexplored).
Times the mean-of-3 protocol.
"""

import numpy as np

from conftest import emit
from repro.core import fit_lsi, project_query
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation.metrics import three_point_average_precision
from repro.evaluation import percent_improvement
from repro.retrieval import LSIRetrieval, mean_relevant_query, rocchio


def _setup():
    col = topic_collection(
        SyntheticSpec(
            n_topics=6, docs_per_topic=15, doc_length=30,
            concepts_per_topic=12, synonyms_per_concept=4,
            queries_per_topic=3, query_length=1, query_synonym_shift=1.0,
            polysemy=0.3, background_vocab=30, background_rate=0.3,
        ),
        seed=11,
    )
    model = fit_lsi(col.documents, k=12, scheme="log_entropy", seed=0)
    return col, model, LSIRetrieval(model)


def _mean_metric(col, eng, query_vectors):
    scores = []
    for qi, qv in enumerate(query_vectors):
        ranked = [
            j for j, _ in sorted(
                enumerate(eng.scores_for_vector(qv)), key=lambda t: -t[1]
            )
        ]
        scores.append(
            three_point_average_precision(ranked, col.relevant(qi))
        )
    return float(np.mean(scores))


def test_relevance_feedback_protocols(benchmark):
    col, model, eng = _setup()
    base_vecs = [project_query(model, q) for q in col.queries]
    rels = [sorted(col.relevant(qi)) for qi in range(col.n_queries)]

    def mean3():
        return [
            mean_relevant_query(model, rels[qi], first=3)
            for qi in range(col.n_queries)
        ]

    first1 = [
        mean_relevant_query(model, rels[qi], first=1)
        for qi in range(col.n_queries)
    ]
    mean3_vecs = benchmark(mean3)
    rocchio_vecs = [
        rocchio(model, base_vecs[qi], rels[qi][:3],
                nonrelevant=[d for d in range(col.n_documents)
                             if d not in col.relevant(qi)][:3])
        for qi in range(col.n_queries)
    ]

    base = _mean_metric(col, eng, base_vecs)
    results = {
        "original query": base,
        "replace with 1st relevant": _mean_metric(col, eng, first1),
        "mean of first 3 relevant": _mean_metric(col, eng, mean3_vecs),
        "rocchio (+negative info)": _mean_metric(col, eng, rocchio_vecs),
    }

    rows = [f"{'protocol':<28s}{'metric':>8s}{'vs base':>9s}"]
    for name, val in results.items():
        rows.append(
            f"{name:<28s}{val:>8.3f}"
            f"{percent_improvement(val, base):>+8.1f}%"
        )
    rows.append("paper: 1st relevant +33%, mean of first 3 +67%")
    emit("§5.1 — relevance feedback", rows)

    # Shape claims: both replacement protocols improve; three documents
    # beat one (the paper's ordering).
    assert results["replace with 1st relevant"] > base
    assert results["mean of first 3 relevant"] > base
    assert (
        results["mean of first 3 relevant"]
        >= results["replace with 1st relevant"]
    )
