"""Table 4 — returned documents at different numbers of LSI factors.

Regenerates: the ranked lists with cosines at k = 2, 4, 8 under the
threshold 0.40, printed beside the paper's columns.  Times the k-sweep
(three truncations + three retrievals over one k=8 decomposition).
"""

from conftest import emit
from repro.core import fit_lsi_from_tdm, project_query, retrieve
from repro.corpus.med import MED_QUERY

PAPER_COLUMNS = {
    2: [("M9", 1.00), ("M12", 0.88), ("M8", 0.85), ("M11", 0.82),
        ("M10", 0.79), ("M7", 0.74), ("M14", 0.72), ("M13", 0.71),
        ("M4", 0.67), ("M1", 0.56), ("M2", 0.42)],
    4: [("M8", 0.92), ("M9", 0.89), ("M2", 0.64), ("M10", 0.48),
        ("M12", 0.46)],
    8: [("M8", 0.67), ("M12", 0.55), ("M10", 0.54), ("M11", 0.40)],
}


def test_table4_factor_sweep(benchmark, med_tdm):
    def sweep():
        base = fit_lsi_from_tdm(med_tdm, 8)
        out = {}
        for k in (2, 4, 8):
            model = base.truncated(k)
            qhat = project_query(model, MED_QUERY)
            out[k] = retrieve(model, qhat, threshold=0.40)
        return out

    ours = benchmark(sweep)

    rows = []
    for k in (2, 4, 8):
        rows.append(f"k={k}:")
        rows.append(
            "  ours : " + ", ".join(f"{d} {c:.2f}" for d, c in ours[k])
        )
        rows.append(
            "  paper: "
            + ", ".join(f"{d} {c:.2f}" for d, c in PAPER_COLUMNS[k])
        )
    emit("Table 4 — returned documents by number of factors", rows)

    # Shape claims: list shrinks as k grows; M8 near the top throughout;
    # the cosine of any fixed document moves with k (the paper's point
    # that the cosine is only a rank-ordering device).
    assert len(ours[8]) < len(ours[2])
    for k in (2, 4, 8):
        top4 = [d for d, _ in ours[k][:4]]
        assert "M8" in top4
    cos_m8 = {k: dict(ours[k]).get("M8") for k in (2, 4, 8)}
    assert abs(cos_m8[2] - cos_m8[8]) > 0.05
