"""The query service: admission → quotas → micro-batching → epoch state.

:class:`QueryService` is the transport-independent core of the server —
the HTTP front end (:mod:`repro.server.http`), the benchmarks, and the
integration tests all drive this one object.  Since the multi-tenant
refactor it serves N named tenants, each resolved through an
:class:`~repro.tenancy.registry.IndexRegistry`; constructing it from a
bare :class:`~repro.server.state.ServingState` wraps the state in a
one-tenant registry, so single-tenant serving is the ``tenant=None``
special case of the same code path:

* :meth:`search` pins the request's tenant (lazily attaching a cold
  one), admits it against the global bounded queue *and* the tenant's
  quota share (fast 429-style rejection on overload — per-tenant
  ``reason="tenant_quota"`` when one hot tenant is over budget),
  enqueues it with that tenant's micro-batcher, and awaits its row of
  the batched GEMM — results element-identical to
  ``LSIRetrieval.search``;
* :meth:`add` serializes document additions through the tenant's
  epoch-swapped :class:`~repro.server.state.ServingState` (fold-in →
  §4.3-policy consolidation via the index manager) on an executor
  thread, so the event loop keeps serving while the SVD machinery runs;
* :meth:`drain` is graceful shutdown: flip the admission latch (new
  work → 503), flush every tenant's queued requests, stop the
  schedulers.

Every stage reports through :data:`repro.obs.metrics.registry` under
``server.*`` plus per-tenant ``tenant.<id>.*`` counters/gauges — all
visible via ``/stats`` or ``python -m repro stats``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Sequence

from repro.obs.export import SCHEMA
from repro.obs.metrics import registry
from repro.obs.prom import render_snapshot
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace_context import current_trace
from repro.obs.tracing import recent_spans, spans_for_trace
from repro.server.admission import AdmissionController
from repro.server.batching import MicroBatcher, SearchRequest
from repro.server.state import ServingState
from repro.tenancy.quotas import TenantQuotas
from repro.tenancy.registry import IndexRegistry

__all__ = ["ServerConfig", "QueryService"]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one service instance (CLI flags map 1:1 onto these).

    ``max_wait_ms`` is the batching window: how long the scheduler holds
    an open batch hoping for more requests.  Larger windows mean larger
    batches (better GEMM amortization), at the cost of adding up to the
    window to an isolated request's latency.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_depth: int = 256
    shards: int = 1
    workers: int | None = None
    default_timeout_ms: float | None = None
    query_cache_size: int = 256
    #: Default probe count for requests that don't specify one.  ``None``
    #: keeps the exact exhaustive scan as the default; requests opt into
    #: the ANN path with ``probes``, or force exactness with ``exact``.
    default_probes: int | None = None
    #: Slow-query log threshold (milliseconds); <= 0 disables the log.
    slow_ms: float = 500.0
    #: JSONL file for slow-query records (``None`` keeps them in-memory).
    slowlog_path: str | None = None
    #: Bound on retained slow-query records (memory and on-disk).
    slowlog_max_records: int = 256


class QueryService:
    """Admission-controlled, micro-batched query service over N tenants."""

    def __init__(
        self,
        state: ServingState | IndexRegistry,
        config: ServerConfig | None = None,
    ):
        if isinstance(state, IndexRegistry):
            self.registry = state
        else:
            self.registry = IndexRegistry.single(state)
        self.config = config or ServerConfig()
        self.admission = AdmissionController(self.config.queue_depth)
        self.quotas = TenantQuotas(self.config.queue_depth)
        self.quotas.ensure(self.registry.tenant_ids)
        self.slowlog = SlowQueryLog(
            self.config.slowlog_path,
            threshold_ms=self.config.slow_ms,
            max_records=self.config.slowlog_max_records,
        )
        #: One scheduler per resident tenant, created on first query.
        self._batchers: dict[str, MicroBatcher] = {}
        self._add_lock = asyncio.Lock()
        self._started = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self.registry.add_detach_hook(self._on_detach)

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> ServingState:
        """The default tenant's state (single-tenant back-compat)."""
        return self.registry.resolve(None)[1]

    @property
    def multi_tenant(self) -> bool:
        """Whether the registry hosts more than one tenant."""
        return len(self.registry.tenant_ids) > 1

    def _batcher_for(self, tenant_id: str, state: ServingState) -> MicroBatcher:
        """The tenant's scheduler, created (and started) on demand."""
        batcher = self._batchers.get(tenant_id)
        if batcher is None or batcher.state is not state:
            # New tenant, or the tenant was detached and re-attached with
            # a fresh state (the old batcher died with the old state).
            batcher = MicroBatcher(
                state,
                max_batch=self.config.max_batch,
                max_wait_ms=self.config.max_wait_ms,
                shards=self.config.shards,
                workers=self.config.workers,
            )
            self._batchers[tenant_id] = batcher
            if self._started:
                batcher.start()
        return batcher

    def _on_detach(self, tenant_id: str, state: ServingState) -> None:
        """Registry detach hook: retire the tenant's scheduler.

        Detach only happens with zero pins, and every queued request
        holds a pin until its future resolves — so the batcher's queue
        is empty here and cancelling its task drops no work.
        """
        batcher = self._batchers.pop(tenant_id, None)
        if batcher is None or self._loop is None or self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(batcher.stop())
        )

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start the batching schedulers (idempotent)."""
        if not self._started:
            self._loop = asyncio.get_running_loop()
            for batcher in self._batchers.values():
                batcher.start()
            self._started = True
            registry.set_gauge("server.draining", 0.0)

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, finish queued work, stop."""
        self.admission.begin_drain()
        for batcher in list(self._batchers.values()):
            await batcher.drain()
        for batcher in list(self._batchers.values()):
            await batcher.stop()
        self._started = False

    @property
    def draining(self) -> bool:
        """Whether the service has begun (or finished) draining."""
        return self.admission.draining

    # ------------------------------------------------------------------ #
    async def search(
        self,
        query,
        *,
        top: int | None = None,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
        tenant: str | None = None,
    ) -> dict:
        """One ranked search, answered from a coalesced batch.

        ``tenant`` routes the query (``None`` means the default/sole
        tenant); an unknown id raises
        :class:`~repro.errors.UnknownTenantError` before any admission
        work.  The tenant stays pinned until the response resolves, so
        an LRU eviction decided mid-flight detaches only after this (and
        every other in-flight) query drains.  ``probes`` bounds the scan
        to that many coarse cells (falling back to
        ``config.default_probes``, then to the exact scan);
        ``exact=True`` overrides any default.  Raises
        :class:`~repro.errors.ServerOverloadError` when the bounded
        queue is full, the tenant is over its quota share
        (``reason="tenant_quota"``), or the service is draining, and
        :class:`~repro.errors.DeadlineExceededError` when the request's
        deadline expires before its batch is scored.
        """
        registry.inc("server.requests_total")
        with self.registry.pin(tenant) as (tid, state):
            self.quotas.ensure(self.registry.tenant_ids)
            self.admission.admit()
            try:
                self.quotas.admit(tid)
            except BaseException:
                self.admission.release()
                raise
            t0 = time.perf_counter()
            try:
                request = SearchRequest(
                    query=query,
                    top=top,
                    threshold=threshold,
                    probes=(
                        probes if probes is not None
                        else self.config.default_probes
                    ),
                    exact=exact,
                    deadline=AdmissionController.deadline_from(
                        timeout_ms
                        if timeout_ms is not None
                        else self.config.default_timeout_ms
                    ),
                    trace=current_trace(),
                    future=asyncio.get_running_loop().create_future(),
                )
                self._batcher_for(tid, state).submit(request)
                result = await request.future
                if tenant is not None or self.multi_tenant:
                    result["tenant"] = tid
                self._record_slow(
                    time.perf_counter() - t0,
                    top=top,
                    probes=probes,
                    tenant=tid,
                )
                return result
            finally:
                self.quotas.release(tid)
                self.admission.release()
                registry.observe(
                    "server.request_seconds", time.perf_counter() - t0
                )

    def _record_slow(
        self,
        elapsed_s: float,
        *,
        top: int | None,
        probes: int | None,
        tenant: str | None = None,
    ) -> None:
        """Dump an over-threshold request's trace evidence to the slow log."""
        if not self.slowlog.is_slow(elapsed_s):
            return
        registry.inc("server.slow_queries_total")
        ctx = current_trace()
        trace_id = ctx.trace_id if ctx is not None else None
        entry = {
            "ts": time.time(),
            "trace_id": trace_id,
            "duration_ms": elapsed_s * 1000.0,
            "top": top,
            "probes": probes,
            "queue_depth": self.admission.pending,
        }
        if tenant is not None:
            entry["tenant"] = tenant
        if trace_id is not None:
            entry["spans"] = [
                s.to_dict() for s in spans_for_trace(trace_id)
            ]
        self.slowlog.record(entry)

    async def add(
        self,
        texts: Sequence[str],
        doc_ids: Sequence[str] | None = None,
        *,
        tenant: str | None = None,
    ) -> dict:
        """Add documents live; returns the new epoch description.

        Updates are serialized (one writer at a time) and run on an
        executor thread; readers never wait — in-flight batches finish
        against their pinned epoch, later batches see the new one.
        Lazily attached tenants are read-only mmap opens, so ``/add``
        against one raises (HTTP 400) like any saved-model server.
        """
        registry.inc("server.adds_total")
        t0 = time.perf_counter()
        with self.registry.pin(tenant) as (_tid, state):
            async with self._add_lock:
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(
                    None, state.add_texts, list(texts), doc_ids
                )
        registry.observe("server.add_seconds", time.perf_counter() - t0)
        return result

    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        """Liveness/readiness summary for ``/healthz``."""
        base = {
            "status": "draining" if self.admission.draining else "ok",
            "draining": self.admission.draining,
            "queue_depth": self.admission.pending,
            "queue_capacity": self.admission.queue_depth,
            "default_probes": self.config.default_probes,
            "slowlog": self.slowlog.describe(),
        }
        if self.multi_tenant:
            base["tenants"] = self.registry.describe()
            base["max_resident"] = self.registry.max_resident
            return base
        snapshot = self.state.current()
        base.update(
            {
                "epoch": snapshot.epoch,
                "n_documents": snapshot.n_documents,
                "writable": self.state.writable,
                "ann": snapshot.ann is not None,
            }
        )
        return base

    def tenants(self) -> dict:
        """Registry + quota status for ``/tenants``."""
        return {
            "tenants": self.registry.describe(),
            "max_resident": self.registry.max_resident,
            "quotas": self.quotas.describe(),
        }

    def stats(self) -> dict:
        """The observability snapshot for ``/stats`` (obs-export schema)."""
        return {
            "schema": SCHEMA,
            "server": self.healthz(),
            "metrics": registry.snapshot(),
            "spans": [s.to_dict() for s in recent_spans(50)],
            "slow_queries": self.slowlog.recent(20),
        }

    def metrics(self) -> dict:
        """The bare metrics registry dump for ``/metrics``."""
        return registry.snapshot()

    def metrics_prom(self) -> str:
        """Prometheus text exposition for ``/metrics?format=prom``."""
        return render_snapshot(registry.snapshot(), {"worker": "server"})

    def trace(self, trace_id: str) -> dict:
        """One request's spans for ``/trace?id=`` (single process)."""
        return {
            "trace_id": trace_id,
            "workers": [],
            "spans": [s.to_dict() for s in spans_for_trace(trace_id)],
        }
