"""Figure 7 / Table 5 — folding-in the update topics M15, M16.

Regenerates: the folded coordinates and the invariance of the original
14 topics' positions.  Times the Eq. 7 fold of the two documents.
"""

import numpy as np

from conftest import emit
from repro.corpus.med import MED_UPDATE_TOPICS, UPDATE_COLUMNS
from repro.updating import fold_in_documents


def test_fig7_folding_in(benchmark, med_model):
    folded = benchmark(
        fold_in_documents, med_model, UPDATE_COLUMNS, ["M15", "M16"]
    )

    dc = folded.doc_coordinates()
    rows = [f"topics folded in: {list(MED_UPDATE_TOPICS)}"]
    for j, d in enumerate(folded.doc_ids):
        marker = "  <- new" if d in MED_UPDATE_TOPICS else ""
        rows.append(f"  {d:<4s} ({dc[j, 0]:+.3f}, {dc[j, 1]:+.3f}){marker}")
    emit("Figure 7 — folded-in medical topics", rows)

    # "the coordinates of the original topics stay fixed"
    assert np.array_equal(folded.V[:14], med_model.V)
    assert np.array_equal(folded.U, med_model.U)
    assert np.array_equal(folded.s, med_model.s)
    assert folded.doc_ids[-2:] == ["M15", "M16"]
