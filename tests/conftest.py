"""Shared fixtures.

Expensive artifacts (fitted models, generated collections) are session-
scoped; tests must not mutate them — the library's immutability rules are
themselves under test, so accidental mutation fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import fit_lsi, fit_lsi_from_tdm
from repro.corpus import SyntheticSpec, med_matrix, topic_collection
from repro.corpus.med import MED_TOPICS


@pytest.fixture(autouse=True)
def _obs_state_in_tmp(tmp_path, monkeypatch):
    """Keep the CLI observability state file out of the repo tree: any
    in-process ``repro`` command persists to a per-test temp path."""
    monkeypatch.setenv("REPRO_OBS_STATE", str(tmp_path / "obs_state.json"))


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def med_tdm():
    """The canonical 18×14 Table 3 matrix."""
    return med_matrix()


@pytest.fixture(scope="session")
def med_model(med_tdm):
    """The k=2 model of the paper's worked example (raw weighting)."""
    return fit_lsi_from_tdm(med_tdm, 2)


@pytest.fixture(scope="session")
def med_model_k8(med_tdm):
    """A higher-rank model of the same example for k-sweep tests."""
    return fit_lsi_from_tdm(med_tdm, 8)


@pytest.fixture(scope="session")
def med_texts():
    return [MED_TOPICS[f"M{i}"] for i in range(1, 15)]


@pytest.fixture(scope="session")
def small_collection():
    """A small synthetic collection with strong synonymy."""
    return topic_collection(
        SyntheticSpec(
            n_topics=4,
            docs_per_topic=10,
            doc_length=40,
            concepts_per_topic=10,
            synonyms_per_concept=3,
            queries_per_topic=2,
            query_length=3,
            query_synonym_shift=0.8,
            background_vocab=15,
            background_rate=0.1,
        ),
        seed=42,
    )


@pytest.fixture(scope="session")
def small_lsi(small_collection):
    return fit_lsi(
        small_collection.documents, k=8, scheme="log_entropy", seed=0
    )
