"""§5.2 — choosing the number of factors k.

Regenerates: "LSI performance can improve considerably after 10 or 20
dimensions, peaks ..., and then begins to diminish slowly.  ...
Eventually performance must approach the level of performance attained
by standard vector methods, since with k=n factors A_k will exactly
reconstruct the original term by document matrix" — the performance-vs-k
curve with the keyword baseline as the k→n asymptote.  Times one sweep
point (the peak-region model).
"""

import numpy as np

from conftest import emit
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation import evaluate_run, run_engine
from repro.retrieval import KeywordRetrieval, LSIRetrieval


def test_performance_vs_k_curve(benchmark):
    col = topic_collection(
        SyntheticSpec(
            n_topics=8, docs_per_topic=15, doc_length=40,
            concepts_per_topic=12, synonyms_per_concept=4,
            queries_per_topic=2, query_length=2, query_synonym_shift=0.9,
            polysemy=0.3, background_vocab=40, background_rate=0.3,
        ),
        seed=23,
    )
    n = col.n_documents
    full = LSIRetrieval.from_texts(
        col.documents, k=n, scheme="log_entropy", seed=0, method="dense"
    )

    def eval_at(k):
        eng = full.with_k(k) if k < n else full
        return evaluate_run(run_engine(eng, col), col)["mean_metric"]

    ks = [1, 2, 4, 8, 12, 16, 24, 48, 80, n]
    curve = {}
    for k in ks:
        if k == 12:
            curve[k] = benchmark(eval_at, k)
        else:
            curve[k] = eval_at(k)

    kw = KeywordRetrieval.from_texts(col.documents, scheme="log_entropy")
    kw_score = evaluate_run(run_engine(kw, col), col)["mean_metric"]

    rows = [f"{'k':>5s}{'3-pt avg prec':>14s}"]
    rows += [f"{k:>5d}{curve[k]:>14.3f}" for k in ks]
    rows.append(f"{'kw':>5s}{kw_score:>14.3f}  (keyword vector baseline)")
    rows.append("paper: sharp rise, intermediate peak, slow decay toward "
                "the word-based level (k=n reconstructs A exactly)")
    emit("§5.2 — retrieval performance vs number of factors", rows)

    peak_k = max(curve, key=curve.get)
    # Shape claims: the curve rises sharply from k=1, peaks strictly
    # inside (1, n), and at k=n sits near the keyword baseline.
    assert curve[peak_k] > curve[1] + 0.1
    assert 1 < peak_k < n
    assert curve[peak_k] > curve[n]
    assert abs(curve[n] - kw_score) < 0.12
