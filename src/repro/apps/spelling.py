"""LSI spelling correction (§5.4, Kukich).

"Kukich used LSI for a related problem, spelling correction.  In this
application, the rows were unigrams and bigrams and the columns were
correctly spelled words.  An input word (correctly or incorrectly
spelled) was broken down into its bigrams and trigrams, the query vector
was located at the weighted vector sum of these elements, and the nearest
word in LSI space was returned as the suggested correct spelling."

The corrector builds an n-gram × lexicon matrix, decomposes it, and
answers queries through the standard Eq. 6 projection — the *identical*
machinery as document retrieval with n-grams as "terms" and words as
"documents", which is the paper's point about descriptor-object matrices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import pseudo_document
from repro.core.similarity import rank_documents
from repro.errors import ShapeError
from repro.linalg.svd import truncated_svd
from repro.sparse.build import MatrixBuilder
from repro.text.ngrams import char_ngrams, vocabulary_ngrams
from repro.text.vocabulary import Vocabulary
from repro.weighting.schemes import WeightingScheme, apply_weighting

__all__ = ["SpellingCorrector"]


class SpellingCorrector:
    """n-gram × word LSI model with a nearest-word query interface."""

    def __init__(
        self,
        lexicon: Sequence[str],
        *,
        k: int | None = None,
        ngram_sizes: Sequence[int] = (1, 2),
        scheme: WeightingScheme | str | None = None,
        seed=0,
    ):
        lexicon = [w.lower() for w in lexicon]
        if len(set(lexicon)) != len(lexicon):
            raise ShapeError("lexicon contains duplicate words")
        if len(lexicon) < 2:
            raise ShapeError("lexicon needs at least two words")
        self.lexicon = list(lexicon)
        self.ngram_sizes = tuple(ngram_sizes)
        grams = vocabulary_ngrams(lexicon, self.ngram_sizes)
        gram_vocab = Vocabulary(grams).freeze()
        builder = MatrixBuilder((len(grams), len(lexicon)))
        for j, word in enumerate(lexicon):
            for g in char_ngrams(word, self.ngram_sizes):
                builder.add(gram_vocab.id_of(g), j, 1.0)
        if isinstance(scheme, str):
            scheme = WeightingScheme.from_name(scheme)
        scheme = scheme or WeightingScheme("raw", "entropy")
        weighted = apply_weighting(builder.to_csc(), scheme)
        dim = min(len(grams), len(lexicon))
        if k is None:
            k = max(2, dim * 2 // 3)
        k = min(k, dim)  # small lexica cap the usable rank
        svd = truncated_svd(weighted.matrix, k, seed=seed)
        self.model = LSIModel(
            U=svd.U,
            s=svd.s,
            V=svd.V,
            vocabulary=gram_vocab,
            doc_ids=list(lexicon),
            scheme=scheme,
            global_weights=weighted.global_weights,
            provenance="svd",
        )

    # ------------------------------------------------------------------ #
    def _query_vector(self, word: str) -> np.ndarray:
        counts = np.zeros(self.model.n_terms)
        for g in char_ngrams(word.lower(), self.ngram_sizes):
            idx = self.model.vocabulary.get(g)
            if idx is not None:
                counts[idx] += 1.0
        weighted = counts * self.model.global_weights
        return pseudo_document(self.model, weighted)

    def suggest(self, word: str, *, top: int = 5) -> list[tuple[str, float]]:
        """Ranked corrections: the nearest lexicon words in LSI space."""
        qhat = self._query_vector(word)
        if not np.any(qhat):
            return []
        return rank_documents(self.model, qhat)[:top]

    def correct(self, word: str) -> str:
        """Single best correction (the input itself if already nearest)."""
        suggestions = self.suggest(word, top=1)
        return suggestions[0][0] if suggestions else word

    def accuracy(self, pairs: Sequence[tuple[str, str]]) -> float:
        """Top-1 accuracy over ``(misspelling, truth)`` pairs."""
        if not pairs:
            return 0.0
        return sum(
            1 for wrong, truth in pairs if self.correct(wrong) == truth.lower()
        ) / len(pairs)
