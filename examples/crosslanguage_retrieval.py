"""Cross-language retrieval (§5.4) — no translation involved.

Run:  python examples/crosslanguage_retrieval.py

Implements the Landauer-Littman recipe on a generated French/English
corpus: train the LSI space on combined dual-language abstracts, fold in
monolingual documents, then match queries across languages and measure
mate retrieval.
"""

from repro.apps import CrossLanguageRetrieval, mate_retrieval_accuracy
from repro.corpus import crosslang_collection


def main() -> None:
    corpus = crosslang_collection(seed=13)
    print(f"training pairs (combined EN+FR abstracts): {len(corpus.combined)}")
    print(f"held-out monolingual mates: {len(corpus.english)} EN + "
          f"{len(corpus.french)} FR")
    print(f"sample combined doc: {corpus.combined[0][:70]}...")

    # Train on combined abstracts; fold both monolingual sets in (Eq. 7).
    retrieval = CrossLanguageRetrieval.train(corpus, k=24, seed=0)
    print(f"\nspace: {retrieval.model}")

    # A French query against English documents — "there is no difficult
    # translation involved in retrieval from the multilingual LSI space".
    fq = corpus.queries_fr[0]
    print(f"\nFrench query: {fq!r}")
    for doc_id, cosine in retrieval.search(fq, language="en", top=3):
        idx = int(doc_id[2:])
        print(f"  {doc_id:<6s} cos={cosine:.2f} topic={corpus.doc_topic[idx]}"
              f" (query topic: {corpus.query_topic[0]})")

    # Mate retrieval: each English document should find its French
    # translation first, and vice versa.
    fr_ids = [f"fr{i}" for i in range(len(corpus.french))]
    en_ids = [f"en{i}" for i in range(len(corpus.english))]
    acc_ef = mate_retrieval_accuracy(
        retrieval, corpus.english, fr_ids, target_language="fr"
    )
    acc_fe = mate_retrieval_accuracy(
        retrieval, corpus.french, en_ids, target_language="en"
    )
    print(f"\nmate retrieval EN→FR: {acc_ef:.0%}")
    print(f"mate retrieval FR→EN: {acc_fe:.0%}")
    print("(the original study found cross-language retrieval as "
          "effective as translating the query first)")


if __name__ == "__main__":
    main()
