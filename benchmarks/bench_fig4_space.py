"""Figure 4 — two-dimensional plot of terms and documents (k=2).

Regenerates: the UΣ / VΣ coordinates of the 18 terms and 14 documents
and the two cluster claims the paper reads off the plot (hormone/behavior
topics vs the blood-disease/fasting group).  Times the k=2 truncated SVD.
"""

import numpy as np

from conftest import emit
from repro.core import fit_lsi_from_tdm
from repro.corpus.med import MED_DOC_IDS, MED_TERMS


def _cluster_cos(coords, labels, a, b):
    va, vb = coords[labels.index(a)], coords[labels.index(b)]
    return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb)))


def test_fig4_coordinates(benchmark, med_tdm):
    model = benchmark(fit_lsi_from_tdm, med_tdm, 2)

    tc = model.term_coordinates()
    dc = model.doc_coordinates()
    rows = ["terms (x = σ₁u₁, y = σ₂u₂):"]
    rows += [
        f"  {t:<16s} ({tc[i, 0]:+.3f}, {tc[i, 1]:+.3f})"
        for i, t in enumerate(MED_TERMS)
    ]
    rows.append("documents (x = σ₁v₁, y = σ₂v₂):")
    rows += [
        f"  {d:<4s} ({dc[j, 0]:+.3f}, {dc[j, 1]:+.3f})"
        for j, d in enumerate(MED_DOC_IDS)
    ]
    emit("Figure 4 — term/document coordinates", rows)

    # The paper's reading of the plot: {M2, M3, M4} are similar in
    # meaning, as are {M10, M11, M12}; the rats/fast topics cluster.
    assert _cluster_cos(dc, MED_DOC_IDS, "M3", "M4") > 0.9
    assert _cluster_cos(dc, MED_DOC_IDS, "M13", "M14") > 0.9
    assert _cluster_cos(dc, MED_DOC_IDS, "M10", "M12") > 0.9
    # Polysemy claim: M1 and M2 share 'culture'/'discharge' yet are NOT
    # represented by nearly identical vectors — their plotted positions
    # are well separated (by ~44% of the coordinate scale here).
    d12 = np.linalg.norm(
        dc[MED_DOC_IDS.index("M1")] - dc[MED_DOC_IDS.index("M2")]
    )
    assert d12 > 0.25 * np.abs(dc).max()
