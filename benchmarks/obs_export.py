"""Export the observability registry as a ``BENCH_obs_*.json`` blob.

Benchmarks print their reproduction tables to stderr; this helper gives
them a machine-readable companion: after a bench has exercised the
instrumented paths, ``export_obs("query_fastpath")`` dumps the metrics
registry (counters, gauges, histograms with p50/p95/p99) plus recent
tracing spans to ``BENCH_obs_query_fastpath.json`` — the same
``BENCH_*.json`` naming CI already collects as artifacts.

Opt-in per run: benchmarks call :func:`maybe_export_obs`, which is a
no-op unless ``BENCH_OBS_EXPORT`` is set, so local ``pytest benchmarks``
runs do not litter the tree with blobs.
"""

from __future__ import annotations

import os
import pathlib

from repro import obs

__all__ = ["export_obs", "maybe_export_obs", "EXPORT_ENV"]

#: Set (to anything non-empty) to make :func:`maybe_export_obs` write.
EXPORT_ENV = "BENCH_OBS_EXPORT"


def export_obs(
    name: str,
    extra: dict | None = None,
    out_dir=None,
) -> pathlib.Path:
    """Write ``BENCH_obs_<name>.json`` and return its path.

    ``extra`` carries bench-specific scalars (speedups, problem sizes)
    alongside the registry snapshot; ``out_dir`` defaults to the
    current working directory (the repo root under CI).
    """
    out_dir = pathlib.Path(out_dir) if out_dir is not None else pathlib.Path(".")
    path = out_dir / f"BENCH_obs_{name}.json"
    return obs.write_json(path, obs.snapshot_blob(name=name, extra=extra))


def maybe_export_obs(
    name: str,
    extra: dict | None = None,
    out_dir=None,
) -> pathlib.Path | None:
    """:func:`export_obs`, but only when ``$BENCH_OBS_EXPORT`` is set."""
    if not os.environ.get(EXPORT_ENV):
        return None
    return export_obs(name, extra=extra, out_dir=out_dir)
