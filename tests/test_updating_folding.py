"""Tests for folding-in (Eq. 7/8)."""

import numpy as np
import pytest

from repro.core import fit_lsi, project_query
from repro.corpus.med import MED_UPDATE_TOPICS, UPDATE_COLUMNS
from repro.errors import ShapeError
from repro.updating import fold_in_documents, fold_in_terms, fold_in_texts


def test_fold_documents_is_query_projection(med_model):
    """Eq. 7 == Eq. 6: a folded document lands exactly where the same
    word bag lands as a query ('folding-in documents is essentially the
    process described ... for query representation')."""
    folded = fold_in_documents(med_model, UPDATE_COLUMNS[:, :1], ["M15"])
    qhat = project_query(
        med_model, ["behavior", "oestrogen", "rats", "rise"]
    )
    assert np.allclose(folded.V[-1], qhat)


def test_fold_texts_matches_fold_counts(med_model):
    by_text = fold_in_texts(
        med_model, list(MED_UPDATE_TOPICS.values()), ["M15", "M16"]
    )
    by_counts = fold_in_documents(med_model, UPDATE_COLUMNS, ["M15", "M16"])
    assert np.allclose(by_text.V, by_counts.V)
    assert by_text.doc_ids == by_counts.doc_ids


def test_fold_texts_default_ids(med_model):
    folded = fold_in_texts(med_model, ["rats rise"])
    assert folded.doc_ids[-1] == "D15"


def test_fold_documents_validation(med_model):
    with pytest.raises(ShapeError):
        fold_in_documents(med_model, np.zeros((5, 1)), ["x"])
    with pytest.raises(ShapeError):
        fold_in_documents(med_model, UPDATE_COLUMNS, ["only-one"])


def test_fold_single_vector_promoted_to_column(med_model):
    folded = fold_in_documents(med_model, UPDATE_COLUMNS[:, 0], ["M15"])
    assert folded.n_documents == 15


def test_fold_terms_eq8(med_model):
    """t̂ = t V_k Σ_k⁻¹ for a new term row."""
    t_row = np.zeros((1, 14))
    t_row[0, [12, 13]] = 1.0  # occurs in M13, M14
    folded = fold_in_terms(med_model, t_row, ["rodents"])
    expected = (t_row @ med_model.V) / med_model.s
    assert np.allclose(folded.U[-1], expected[0])
    assert "rodents" in folded.vocabulary
    assert folded.n_terms == 19
    # Existing term vectors untouched.
    assert np.array_equal(folded.U[:18], med_model.U)


def test_fold_terms_near_related_terms(med_model):
    """A term occurring exactly where 'rats' occurs lands on 'rats'."""
    t_row = np.zeros((1, 14))
    t_row[0, [12, 13]] = 1.0
    folded = fold_in_terms(med_model, t_row, ["rodents"])
    coords = folded.term_coordinates()
    a = coords[folded.vocabulary.id_of("rodents")]
    b = coords[folded.vocabulary.id_of("rats")]
    cos = a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
    assert cos > 0.999


def test_fold_terms_validation(med_model):
    with pytest.raises(ShapeError):
        fold_in_terms(med_model, np.zeros((1, 9)), ["x"])
    with pytest.raises(ShapeError):
        fold_in_terms(med_model, np.zeros((2, 14)), ["x"])
    with pytest.raises(ShapeError):
        fold_in_terms(med_model, np.zeros((1, 14)), ["blood"])  # duplicate


def test_fold_respects_weighting_scheme(med_texts):
    model = fit_lsi(med_texts, 2, scheme="log_entropy")
    counts = np.zeros((model.n_terms, 1))
    counts[0] = 3.0
    folded = fold_in_documents(model, counts, ["new"])
    weighted = np.log2(counts + 1)[:, 0] * model.global_weights
    expected = (weighted @ model.U) / model.s
    assert np.allclose(folded.V[-1], expected)


def test_fold_terms_with_global_weights(med_model):
    t_row = np.ones((1, 14))
    folded = fold_in_terms(
        med_model, t_row, ["everywhere"], global_weights=np.array([0.5])
    )
    expected = (0.5 * t_row @ med_model.V) / med_model.s
    assert np.allclose(folded.U[-1], expected[0])
    assert folded.global_weights[-1] == 0.5
