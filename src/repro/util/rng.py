"""Random-number-generator discipline.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an integer, or a ready-made :class:`numpy.random.Generator`.
Centralizing the coercion here keeps experiments reproducible: benchmarks
pass explicit integer seeds, tests derive independent child streams with
:func:`spawn_rngs` instead of reusing one generator across workers.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {type(seed).__name__} as a random seed")


def spawn_rngs(seed: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used by the parallel helpers so each worker gets its own stream; child
    streams are stable functions of the parent seed, making sharded runs
    reproducible regardless of worker scheduling.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
