"""Thread-pool mapping with a deterministic fallback.

NumPy's compiled kernels release the GIL, so CPU-bound scoring over
disjoint shards genuinely parallelizes under threads — without the
pickling costs and copy-on-write hazards of process pools (the guidance
of the scientific-Python optimization notes: measure, avoid copies).
Results are always returned in input order regardless of completion
order, so parallel and sequential execution are bit-identical.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across a thread pool.

    Parameters
    ----------
    workers:
        ``None`` or ``0``/``1`` → plain sequential map (no pool overhead);
        ``>= 2`` → a thread pool of that many workers.

    Results preserve input order.  Exceptions propagate from the failing
    item exactly as in the sequential case.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
