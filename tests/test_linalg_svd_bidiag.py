"""Tests for the truncated-SVD front-end and Golub-Kahan bidiagonalization."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import golub_kahan_bidiag, truncated_svd
from repro.linalg.bidiag import bidiagonal_dense
from repro.linalg.svd import SVDResult
from repro.sparse import from_dense


@pytest.fixture
def matrix(rng):
    d = rng.standard_normal((40, 30)) * (rng.random((40, 30)) < 0.3)
    return d, from_dense(d).to_csc()


@pytest.mark.parametrize("method", ["dense", "lanczos", "gkl"])
def test_backends_agree_with_reference(matrix, method):
    d, a = matrix
    res = truncated_svd(a, 5, method=method)
    s_ref = np.linalg.svd(d, compute_uv=False)[:5]
    assert np.allclose(res.s, s_ref, atol=1e-6), method
    assert res.method == method
    assert res.k == 5
    assert res.shape == d.shape


def test_auto_uses_dense_for_small(matrix):
    _, a = matrix
    res = truncated_svd(a, 3, method="auto")
    assert res.method == "dense"


def test_auto_uses_lanczos_for_large(rng):
    d = rng.standard_normal((300, 260)) * (rng.random((300, 260)) < 0.02)
    res = truncated_svd(from_dense(d).to_csr(), 4, method="auto")
    assert res.method == "lanczos"
    assert np.allclose(res.s, np.linalg.svd(d, compute_uv=False)[:4], atol=1e-7)


def test_reconstruct_is_best_rank_k(matrix):
    """Eckart-Young (Theorem 2.2): ‖A − A_k‖_F² = Σ_{i>k} σ_i²."""
    d, a = matrix
    res = truncated_svd(a, 4, method="dense")
    resid = np.linalg.norm(d - res.reconstruct())
    s_all = np.linalg.svd(d, compute_uv=False)
    assert resid == pytest.approx(np.sqrt(np.sum(s_all[4:] ** 2)), rel=1e-9)


def test_frobenius_property(matrix):
    """Theorem 2.1 norm property: ‖A_k‖_F = sqrt(Σ_{i≤k} σ_i²)."""
    d, a = matrix
    res = truncated_svd(a, 6, method="dense")
    assert res.frobenius() == pytest.approx(
        np.linalg.norm(res.reconstruct()), rel=1e-9
    )


def test_truncate(matrix):
    _, a = matrix
    res = truncated_svd(a, 6, method="dense")
    t = res.truncate(2)
    assert t.k == 2
    assert np.allclose(t.s, res.s[:2])
    with pytest.raises(ShapeError):
        res.truncate(0)
    with pytest.raises(ShapeError):
        res.truncate(7)


def test_vt_view(matrix):
    _, a = matrix
    res = truncated_svd(a, 3, method="dense")
    assert np.array_equal(res.Vt, res.V.T)


def test_k_validation(matrix):
    _, a = matrix
    with pytest.raises(ShapeError):
        truncated_svd(a, 0)
    with pytest.raises(ShapeError):
        truncated_svd(a, 31)


def test_unknown_method(matrix):
    _, a = matrix
    with pytest.raises(ValueError):
        truncated_svd(a, 2, method="magic")


def test_dense_ndarray_input(rng):
    d = rng.standard_normal((12, 9))
    res = truncated_svd(d, 3, method="dense")
    assert np.allclose(res.s, np.linalg.svd(d, compute_uv=False)[:3], atol=1e-9)


# --------------------------------------------------------------------- #
# Golub-Kahan bidiagonalization
# --------------------------------------------------------------------- #
def test_gkl_recurrence_holds(rng):
    d = rng.standard_normal((25, 18))
    steps = 10
    U, V, alphas, betas = golub_kahan_bidiag(d, steps, seed=1)
    B = bidiagonal_dense(alphas, betas)
    # A V = U B exactly (the remainder term enters the Aᵀ U recurrence).
    assert np.allclose(d @ V, U @ B, atol=1e-8)


def test_gkl_bases_orthonormal(rng):
    d = rng.standard_normal((30, 22))
    U, V, _, _ = golub_kahan_bidiag(d, 12, seed=2)
    assert np.allclose(U.T @ U, np.eye(12), atol=1e-9)
    assert np.allclose(V.T @ V, np.eye(12), atol=1e-9)


def test_gkl_full_steps_capture_spectrum(rng):
    d = rng.standard_normal((15, 9))
    U, V, alphas, betas = golub_kahan_bidiag(d, 9, seed=0)
    B = bidiagonal_dense(alphas, betas)
    s_b = np.linalg.svd(B, compute_uv=False)
    s_a = np.linalg.svd(d, compute_uv=False)
    assert np.allclose(np.sort(s_b), np.sort(s_a), atol=1e-8)


def test_gkl_step_validation(rng):
    d = rng.standard_normal((6, 4))
    with pytest.raises(ShapeError):
        golub_kahan_bidiag(d, 0)
    with pytest.raises(ShapeError):
        golub_kahan_bidiag(d, 5)


def test_svd_result_dataclass_fields():
    res = SVDResult(np.eye(3), np.ones(3), np.eye(3))
    assert res.stats is None
    assert res.k == 3
