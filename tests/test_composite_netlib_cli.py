"""Tests for composite queries, the NETLIB app, and the CLI."""

import numpy as np
import pytest

from repro.apps import NetlibSearch
from repro.cli import main as cli_main
from repro.core import project_query
from repro.core.similarity import cosine_similarities
from repro.corpus import netlib_catalogue
from repro.errors import ShapeError
from repro.retrieval import CompositeQuery


# --------------------------------------------------------------------- #
# composite queries
# --------------------------------------------------------------------- #
def test_text_only_composite_matches_plain_query(med_model):
    q = CompositeQuery(med_model).add_text("age blood abnormalities")
    assert np.allclose(
        q.vector(), project_query(med_model, "age blood abnormalities")
    )


def test_term_component(med_model):
    q = CompositeQuery(med_model).add_term("rats")
    vec = q.vector()
    scores = cosine_similarities(med_model, vec)
    top = med_model.doc_ids[int(np.argmax(scores))]
    assert top in ("M13", "M14")


def test_document_component_query_by_example(med_model):
    q = CompositeQuery(med_model).add_document("M13")
    results = q.search(top=2)
    ids = [d for d, _ in results]
    assert "M13" not in ids        # example excluded
    assert "M14" in ids            # its cluster mate found


def test_example_not_excluded_when_disabled(med_model):
    q = CompositeQuery(med_model).add_document("M13")
    ids = [d for d, _ in q.search(top=3, exclude_examples=False)]
    assert "M13" in ids


def test_mixed_components_weighted(med_model):
    # heavy weight on the rats document dominates the text component
    q = (
        CompositeQuery(med_model)
        .add_text("oestrogen", weight=0.1)
        .add_document("M14", weight=5.0)
    )
    top = q.search(top=1)[0][0]
    assert top in ("M13", "M10", "M12")  # the fast/rats region


def test_subtract_document_moves_away(med_model):
    base = CompositeQuery(med_model).add_text("depressed patients")
    with_neg = (
        CompositeQuery(med_model)
        .add_text("depressed patients")
        .subtract_document("M1", weight=0.8)
    )
    m1 = med_model.doc_index("M1")
    before = cosine_similarities(med_model, base.vector())[m1]
    after = cosine_similarities(med_model, with_neg.vector())[m1]
    assert after < before


def test_composite_validation(med_model):
    with pytest.raises(ShapeError):
        CompositeQuery(med_model).vector()
    with pytest.raises(ShapeError):
        CompositeQuery(med_model).add_document(999)
    assert CompositeQuery(med_model).add_term("rats").n_components == 1


# --------------------------------------------------------------------- #
# NETLIB fuzzy search
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def netlib():
    cat = netlib_catalogue(seed=5)
    return cat, NetlibSearch.build(cat, k=16, seed=0)


def test_catalogue_structure(netlib):
    cat, _ = netlib
    assert len(cat.names) == len(cat.descriptions) == len(cat.entry_family)
    assert len(set(cat.names)) == len(cat.names)
    col = cat.collection()
    assert col.n_documents == len(cat.names)


def test_fuzzy_search_finds_family(netlib):
    cat, search = netlib
    hits = 0
    for q, fam in zip(cat.queries, cat.query_family):
        top = search.fuzzy(q, top=3)
        families = {
            cat.entry_family[cat.names.index(name)] for name, _ in top
        }
        hits += fam in families
    assert hits / len(cat.queries) > 0.7


def test_exact_lookup_fails_on_task_phrasing(netlib):
    cat, search = netlib
    assert search.exact("regression") == []      # tasks aren't names
    assert len(search.exact("gesvd")) == 5       # names still work


def test_more_like_returns_same_family(netlib):
    cat, search = netlib
    name = cat.names[0]
    fam = cat.entry_family[0]
    similar = search.more_like(name, top=3)
    assert all(n != name for n, _ in similar)
    same_fam = sum(
        1 for n, _ in similar
        if cat.entry_family[cat.names.index(n)] == fam
    )
    assert same_fam >= 2


def test_build_rejects_empty_catalogue():
    from repro.corpus.netlib_like import NetlibCatalogue

    with pytest.raises(ShapeError):
        NetlibSearch.build(NetlibCatalogue([], [], [], [], []))


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "docs.txt"
    path.write_text(
        "study of depressed patients after discharge\n"
        "culture of organisms in vaginal discharge of patients\n"
        "fast rise of cerebral oxygen pressure in rats\n"
        "fast cell generation in the eye of rats\n"
    )
    return path


def _run(argv, tmp_path):
    out_file = tmp_path / "out.txt"
    with open(out_file, "w") as fh:
        code = cli_main(argv, out=fh)
    return code, out_file.read_text()


def test_cli_index_query_terms(tmp_path, corpus_file):
    db = tmp_path / "db.npz"
    code, out = _run(
        ["index", str(corpus_file), str(db), "-k", "3",
         "--scheme", "raw_none"], tmp_path,
    )
    assert code == 0 and "indexed 4 documents" in out
    code, out = _run(["query", str(db), "rats", "fast", "-n", "2"], tmp_path)
    assert code == 0
    assert "L3" in out or "L4" in out
    code, out = _run(["terms", str(db), "rats", "-n", "2"], tmp_path)
    assert code == 0 and out.strip()
    code, out = _run(["info", str(db)], tmp_path)
    assert "documents : 4" in out and "raw×none" in out


def test_cli_add_fold_and_update(tmp_path, corpus_file):
    db = tmp_path / "db.npz"
    _run(["index", str(corpus_file), str(db), "-k", "3"], tmp_path)
    new = tmp_path / "new.txt"
    new.write_text("depressed patients feel pressure\n")
    db2 = tmp_path / "db2.npz"
    code, out = _run(
        ["add", str(db), str(new), "--method", "fold",
         "--output", str(db2)], tmp_path,
    )
    assert code == 0 and "fold" in out and db2.exists()
    db3 = tmp_path / "db3.npz"
    code, out = _run(
        ["add", str(db), str(new), "--method", "update",
         "--output", str(db3)], tmp_path,
    )
    assert code == 0 and "svd-update" in out


def test_cli_index_directory(tmp_path):
    docdir = tmp_path / "corpus"
    docdir.mkdir()
    (docdir / "a.txt").write_text("rats fast generation")
    (docdir / "b.txt").write_text("patients depressed culture")
    db = tmp_path / "dir.npz"
    code, out = _run(["index", str(docdir), str(db), "-k", "2"], tmp_path)
    assert code == 0 and "indexed 2 documents" in out
    code, out = _run(["query", str(db), "rats"], tmp_path)
    assert code == 0 and "a" in out


def test_cli_errors_return_nonzero(tmp_path):
    code = cli_main(
        ["index", str(tmp_path / "missing"), str(tmp_path / "x.npz")],
        out=open(tmp_path / "o.txt", "w"),
    )
    assert code == 1
