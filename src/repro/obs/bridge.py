"""Bridges from the existing instrumentation objects into the registry.

The paper's cost claims are validated by three measurement mechanisms
that predate the observability layer: :class:`~repro.linalg.counters.\
OperatorCounter` (matvec / flop counts for the §4 Lanczos model
``I × cost(GᵀGx) + trp × cost(Gx)``), :class:`~repro.linalg.lanczos.\
LanczosStats` (iteration and convergence counts), and the §4.3
orthogonality-drift reports.  These helpers copy their readings into
the metrics registry as gauges, so Table 7 validation and drift
diagnostics are queryable from ``python -m repro stats`` alongside the
serving counters — one place instead of three.

Everything is duck-typed (``getattr`` on the instrumentation objects),
so this module imports nothing from the numerical layers and can be
used from any of them without cycles.
"""

from __future__ import annotations

from repro.obs.metrics import registry

__all__ = [
    "record_operator",
    "record_lanczos_stats",
    "record_drift",
]


def record_operator(counter, prefix: str = "lanczos") -> None:
    """Publish an ``OperatorCounter``'s readings as gauges.

    Gauges: ``<prefix>.matvecs``, ``<prefix>.rmatvecs``,
    ``<prefix>.gram_products`` (the paper's ``I``), and
    ``<prefix>.flops`` (2·nnz per sparse product).
    """
    registry.set_gauge(f"{prefix}.matvecs", counter.matvecs)
    registry.set_gauge(f"{prefix}.rmatvecs", counter.rmatvecs)
    registry.set_gauge(f"{prefix}.gram_products", counter.gram_products)
    registry.set_gauge(f"{prefix}.flops", counter.flops.total)


def record_lanczos_stats(stats, prefix: str = "lanczos") -> None:
    """Publish ``LanczosStats`` as gauges (iterations, convergence, ...).

    Gauges: ``<prefix>.iterations`` (the paper's ``I``),
    ``<prefix>.gram_dim``, ``<prefix>.converged``, ``<prefix>.restarts``,
    and ``<prefix>.stat_matvecs`` (the solver's own product count —
    distinct from the operator-measured ``<prefix>.matvecs``).
    """
    registry.set_gauge(f"{prefix}.iterations", stats.iterations)
    registry.set_gauge(f"{prefix}.gram_dim", stats.gram_dim)
    registry.set_gauge(f"{prefix}.converged", stats.converged)
    registry.set_gauge(f"{prefix}.restarts", stats.restarts)
    registry.set_gauge(f"{prefix}.stat_matvecs", stats.matvecs)


def record_drift(report, prefix: str = "orthogonality") -> None:
    """Publish a §4.3 :class:`OrthogonalityReport` as gauges.

    Gauges: ``<prefix>.term_loss`` (``‖ÛᵀÛ − I‖₂``),
    ``<prefix>.doc_loss`` (``‖V̂ᵀV̂ − I‖₂``); counter
    ``<prefix>.reports`` counts measurements taken.
    """
    registry.set_gauge(f"{prefix}.term_loss", report.term_loss)
    registry.set_gauge(f"{prefix}.doc_loss", report.doc_loss)
    registry.inc(f"{prefix}.reports")
