"""Vectorized sparse kernels.

All kernels are pure NumPy with no Python-level iteration over nonzeros.
Two segment-reduction strategies are used:

* **bincount scatter** for matrix-vector products: exact per-bin summation
  in a single C loop, the workhorse inside Lanczos iterations.
* **cumsum differencing** for matrix-matrix products: contributions for a
  chunk of right-hand-side columns are accumulated with one ``cumsum`` along
  the nnz axis and differenced at the row boundaries.  Chunking bounds the
  temporary at ``nnz × chunk`` floats, per the memory guidance of the
  scientific-Python optimization notes (avoid large copies; stream in
  cache-sized blocks).

Shapes are validated at the edges; kernels assume validated inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "csr_matvec",
    "csr_rmatvec",
    "csr_matmat",
    "csr_rmatmat",
    "csc_matvec",
    "csc_rmatvec",
    "csc_matmat",
    "csc_rmatmat",
    "frobenius_norm",
    "hstack_csc",
    "vstack_csr",
]

#: Number of dense right-hand-side columns processed per chunk in matmat
#: kernels.  The cumsum temporary is ``nnz × chunk`` float64s: at 10⁶
#: nonzeros that is 64 columns × 8 B = 512 MB per million nonzeros — too
#: big; chunking at 16 caps it at 128 MB worst-case, measured within 5%
#: of larger chunks on term-document workloads.
MATMAT_CHUNK = 16


def _as_vec(x, length, name):
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.shape[0] != length:
        raise ShapeError(f"{name} must be a vector of length {length}, got shape {x.shape}")
    return x


def _as_mat(X, rows, name):
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != rows:
        raise ShapeError(f"{name} must be 2-D with {rows} rows, got shape {X.shape}")
    return X


# --------------------------------------------------------------------- #
# CSR kernels
# --------------------------------------------------------------------- #
def csr_matvec(a, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for CSR ``A``: gather then per-row scatter-add."""
    m, n = a.shape
    x = _as_vec(x, n, "x")
    if a.nnz == 0:
        return np.zeros(m, dtype=np.float64)
    prod = a.data * x[a.indices]
    return np.bincount(a.expanded_rows(), weights=prod, minlength=m)


def csr_rmatvec(a, y: np.ndarray) -> np.ndarray:
    """``x = Aᵀ @ y`` for CSR ``A``: scatter into column bins."""
    m, n = a.shape
    y = _as_vec(y, m, "y")
    if a.nnz == 0:
        return np.zeros(n, dtype=np.float64)
    prod = a.data * y[a.expanded_rows()]
    return np.bincount(a.indices, weights=prod, minlength=n)


def _segment_sums(contrib: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum contiguous nnz segments of ``contrib`` delimited by ``indptr``.

    Handles empty segments correctly (they yield exact zeros), unlike
    ``np.add.reduceat`` whose repeated-offset semantics differ.
    """
    cum = np.zeros((contrib.shape[0] + 1,) + contrib.shape[1:], dtype=np.float64)
    np.cumsum(contrib, axis=0, out=cum[1:])
    return cum[indptr[1:]] - cum[indptr[:-1]]


def csr_matmat(a, X: np.ndarray, chunk: int = MATMAT_CHUNK) -> np.ndarray:
    """``Y = A @ X`` for CSR ``A`` and dense ``X``, chunked over X's columns."""
    m, n = a.shape
    X = _as_mat(X, n, "X")
    k = X.shape[1]
    out = np.empty((m, k), dtype=np.float64)
    if a.nnz == 0:
        out.fill(0.0)
        return out
    gathered = X[a.indices]  # (nnz, k) gather once when small enough
    if k <= chunk:
        contrib = a.data[:, None] * gathered
        return _segment_sums(contrib, a.indptr)
    for lo in range(0, k, chunk):
        hi = min(lo + chunk, k)
        contrib = a.data[:, None] * gathered[:, lo:hi]
        out[:, lo:hi] = _segment_sums(contrib, a.indptr)
    return out


def csr_rmatmat(a, Y: np.ndarray, chunk: int = MATMAT_CHUNK) -> np.ndarray:
    """``X = Aᵀ @ Y`` for CSR ``A`` and dense ``Y``.

    Implemented as the CSC matmat of the O(1) transpose: the transpose of a
    CSR matrix reuses the same arrays as a CSC matrix, so no data moves.
    """
    return csc_matmat(a.transpose(), Y, chunk)


# --------------------------------------------------------------------- #
# CSC kernels
# --------------------------------------------------------------------- #
def csc_matvec(a, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for CSC ``A``: scale columns by x, scatter into rows."""
    m, n = a.shape
    x = _as_vec(x, n, "x")
    if a.nnz == 0:
        return np.zeros(m, dtype=np.float64)
    prod = a.data * x[a.expanded_cols()]
    return np.bincount(a.indices, weights=prod, minlength=m)


def csc_rmatvec(a, y: np.ndarray) -> np.ndarray:
    """``x = Aᵀ @ y`` for CSC ``A``: per-column gather-reduce."""
    m, n = a.shape
    y = _as_vec(y, m, "y")
    if a.nnz == 0:
        return np.zeros(n, dtype=np.float64)
    prod = a.data * y[a.indices]
    return np.bincount(a.expanded_cols(), weights=prod, minlength=n)


def csc_matmat(a, X: np.ndarray, chunk: int = MATMAT_CHUNK) -> np.ndarray:
    """``Y = A @ X`` for CSC ``A`` and dense ``X``.

    Column-major scatter: contribution of column ``j`` of ``A`` is
    ``data[j-range] ⊗ X[j]``; rows are accumulated with bincount per output
    column chunk via an index-flattening trick (row id + column offset).
    """
    m, n = a.shape
    X = _as_mat(X, n, "X")
    k = X.shape[1]
    if a.nnz == 0 or k == 0:
        return np.zeros((m, k), dtype=np.float64)
    out = np.empty((m, k), dtype=np.float64)
    cols = a.expanded_cols()
    for lo in range(0, k, chunk):
        hi = min(lo + chunk, k)
        c = hi - lo
        contrib = a.data[:, None] * X[cols, lo:hi]  # (nnz, c)
        # Flatten (row, local col) into one bincount over m*c bins.
        flat = (a.indices[:, None] * c + np.arange(c, dtype=np.int64)).ravel()
        sums = np.bincount(flat, weights=contrib.ravel(), minlength=m * c)
        out[:, lo:hi] = sums.reshape(m, c)
    return out


def csc_rmatmat(a, Y: np.ndarray, chunk: int = MATMAT_CHUNK) -> np.ndarray:
    """``X = Aᵀ @ Y`` for CSC ``A`` and dense ``Y`` — CSR matmat of Aᵀ."""
    return csr_matmat(a.transpose(), Y, chunk)


# --------------------------------------------------------------------- #
# reductions / stacking
# --------------------------------------------------------------------- #
def frobenius_norm(a) -> float:
    """``‖A‖_F`` for any of the three formats (all expose ``.data``)."""
    return float(np.sqrt(np.dot(a.data, a.data)))


def hstack_csc(blocks) -> "CSCMatrix":
    """Concatenate CSC matrices side by side: ``[A | B | ...]``.

    This is the sparse analogue of appending new document columns — the
    ``D`` block of the SVD-updating step (Eq. 10 of the paper).
    """
    from repro.sparse.csc import CSCMatrix

    blocks = list(blocks)
    if not blocks:
        raise ShapeError("hstack_csc needs at least one block")
    m = blocks[0].shape[0]
    for b in blocks:
        if b.shape[0] != m:
            raise ShapeError(
                f"hstack_csc row mismatch: {b.shape[0]} != {m}"
            )
    n_total = sum(b.shape[1] for b in blocks)
    indptr = np.zeros(n_total + 1, dtype=np.int64)
    pos, offset = 1, 0
    for b in blocks:
        indptr[pos : pos + b.shape[1]] = b.indptr[1:] + offset
        pos += b.shape[1]
        offset += b.nnz
    indices = np.concatenate([b.indices for b in blocks]) if blocks else np.empty(0)
    data = np.concatenate([b.data for b in blocks])
    return CSCMatrix((m, n_total), indptr, indices, data)


def vstack_csr(blocks) -> "CSRMatrix":
    """Concatenate CSR matrices top to bottom: ``[A ; B ; ...]``.

    The sparse analogue of appending new term rows — the ``T`` block of the
    SVD-updating step (Eq. 11 of the paper).
    """
    from repro.sparse.csr import CSRMatrix

    blocks = list(blocks)
    if not blocks:
        raise ShapeError("vstack_csr needs at least one block")
    n = blocks[0].shape[1]
    for b in blocks:
        if b.shape[1] != n:
            raise ShapeError(f"vstack_csr column mismatch: {b.shape[1]} != {n}")
    m_total = sum(b.shape[0] for b in blocks)
    indptr = np.zeros(m_total + 1, dtype=np.int64)
    pos, offset = 1, 0
    for b in blocks:
        indptr[pos : pos + b.shape[0]] = b.indptr[1:] + offset
        pos += b.shape[0]
        offset += b.nnz
    indices = np.concatenate([b.indices for b in blocks])
    data = np.concatenate([b.data for b in blocks])
    return CSRMatrix((m_total, n), indptr, indices, data)
