"""The paper's full worked example (§3-§4), end to end.

Run:  python examples/medline_walkthrough.py

Reproduces, in order: the Table 3 matrix, the Figure 4 coordinates, the
Figure 5 query projection, the Figure 6 threshold retrieval, the Table 4
factor sweep, and the §3.3-§4.4 update study (folding-in vs SVD-updating
vs recomputing, with the §4.3 orthogonality measurements).
"""

import numpy as np

from repro.core import fit_lsi_from_tdm, project_query, retrieve
from repro.corpus.med import (
    MED_QUERY,
    MED_TERMS,
    MED_UPDATE_TOPICS,
    PAPER_QHAT,
    PAPER_SIGMA_2,
    UPDATE_COLUMNS,
    med_matrix,
)
from repro.updating import (
    drift_report,
    fold_in_documents,
    recompute_with_documents,
    update_documents,
)


def doc_cos(model, a, b):
    c = model.doc_coordinates()
    va, vb = c[model.doc_index(a)], c[model.doc_index(b)]
    return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb)))


def main() -> None:
    tdm = med_matrix()
    print(f"Table 3: {tdm.shape[0]} terms × {tdm.shape[1]} documents, "
          f"{tdm.matrix.nnz} nonzeros")

    # ---- Figures 4-5: the k=2 space ---------------------------------- #
    model = fit_lsi_from_tdm(tdm, 2)
    print(f"\nsingular values: ours {model.s.round(4)}, "
          f"paper {PAPER_SIGMA_2}")
    tc = model.term_coordinates()
    print("a few term coordinates (Figure 4):")
    for term in ("depressed", "fast", "rats", "culture"):
        i = MED_TERMS.index(term)
        print(f"  {term:<12s} ({tc[i, 0]:+.3f}, {tc[i, 1]:+.3f})")

    qhat = project_query(model, MED_QUERY)
    print(f"\nquery {MED_QUERY!r}")
    print(f"q̂ = {qhat.round(4)}  (paper, up to column signs: {PAPER_QHAT})")

    # ---- Figure 6: threshold retrieval ------------------------------- #
    for thr in (0.85, 0.75):
        hits = retrieve(model, qhat, threshold=thr)
        print(f"cosine ≥ {thr}: " + ", ".join(f"{d}({c:.2f})" for d, c in hits))

    # ---- Table 4: the effect of k ------------------------------------ #
    base8 = fit_lsi_from_tdm(tdm, 8)
    print("\nTable 4 — returned documents (cosine ≥ 0.40) by k:")
    for k in (2, 4, 8):
        mk = base8.truncated(k)
        qk = project_query(mk, MED_QUERY)
        hits = retrieve(mk, qk, threshold=0.40)
        print(f"  k={k}: " + ", ".join(f"{d} {c:.2f}" for d, c in hits))

    # ---- §3.3-§4.4: updating with M15, M16 --------------------------- #
    print(f"\nupdate topics: {MED_UPDATE_TOPICS}")
    folded = fold_in_documents(model, UPDATE_COLUMNS, ["M15", "M16"])
    updated = update_documents(
        model, UPDATE_COLUMNS, ["M15", "M16"], exact=True
    )
    recomputed = recompute_with_documents(
        tdm, UPDATE_COLUMNS, ["M15", "M16"], 2
    )
    print("does M15 join the {M13, M14} rats cluster?  cos(M13, M15):")
    for name, m in (
        ("fold-in   (Fig. 7)", folded),
        ("svd-update (Fig. 9)", updated),
        ("recompute (Fig. 8)", recomputed),
    ):
        rep = drift_report(m)
        print(f"  {name:<20s} {doc_cos(m, 'M13', 'M15'):.3f}   "
              f"‖V̂ᵀV̂−I‖₂ = {rep.doc_loss:.2e}")
    print("\nfold-in leaves old coordinates untouched but corrupts "
          "orthogonality; SVD-updating/recomputing re-derive the "
          "structure (the rats cluster forms) with exact orthogonality.")


if __name__ == "__main__":
    main()
