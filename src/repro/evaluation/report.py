"""Classic IR report formatting.

The era's papers summarize runs as recall-precision tables and
percent-improvement grids; these helpers render them as fixed-width text
so benches, examples, and the CLI print comparable artifacts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.corpus.collection import TestCollection
from repro.errors import EvaluationError
from repro.evaluation.harness import RetrievalRun, percent_improvement
from repro.evaluation.metrics import (
    ELEVEN_POINT_LEVELS,
    interpolated_precision_at,
)

__all__ = ["recall_precision_table", "comparison_table"]


def recall_precision_table(
    runs: Sequence[RetrievalRun],
    collection: TestCollection,
    *,
    levels: Sequence[float] = ELEVEN_POINT_LEVELS,
) -> str:
    """The classic 11-point table: one column per run, one row per
    recall level, entries = mean interpolated precision."""
    if not runs:
        raise EvaluationError("need at least one run")
    for run in runs:
        if run.n_queries != collection.n_queries:
            raise EvaluationError(
                f"run {run.engine_name} has {run.n_queries} queries for "
                f"a {collection.n_queries}-query collection"
            )
    names = [run.engine_name for run in runs]
    width = max(12, max(len(n) for n in names) + 2)
    header = "recall".rjust(8) + "".join(n.rjust(width) for n in names)
    lines = [header]
    means = {n: [] for n in names}
    for level in levels:
        cells = []
        for run in runs:
            vals = [
                interpolated_precision_at(
                    ranking, collection.relevant(q), level
                )
                for q, ranking in enumerate(run.rankings)
            ]
            mean = float(np.mean(vals)) if vals else 0.0
            means[run.engine_name].append(mean)
            cells.append(f"{mean:.4f}".rjust(width))
        lines.append(f"{level:8.2f}" + "".join(cells))
    lines.append(
        "avg".rjust(8)
        + "".join(
            f"{float(np.mean(means[n])):.4f}".rjust(width) for n in names
        )
    )
    return "\n".join(lines)


def comparison_table(
    results: dict[str, float], *, baseline: str
) -> str:
    """Percent-improvement grid vs a named baseline.

    ``results`` maps system name → summary metric.
    """
    if baseline not in results:
        raise EvaluationError(f"baseline {baseline!r} not among results")
    base = results[baseline]
    width = max(len(n) for n in results) + 2
    lines = [f"{'system'.ljust(width)}{'metric':>9s}{'vs base':>10s}"]
    for name, value in sorted(results.items(), key=lambda kv: -kv[1]):
        delta = percent_improvement(value, base)
        marker = "  (baseline)" if name == baseline else ""
        lines.append(
            f"{name.ljust(width)}{value:>9.4f}{delta:>+9.1f}%{marker}"
        )
    return "\n".join(lines)
