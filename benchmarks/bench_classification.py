"""§5.7 — LSI dimensions as predictor variables for classification.

Regenerates the related-work recipe (Hull; Yang & Chute; Wu et al.):
LSI-derived features match or beat raw term-vector features for document
classification while using an order of magnitude fewer dimensions —
"using the LSI-derived dimensions effectively reduces the number of
predictor variables".  Times the LSI-feature train+test cycle.
"""

import numpy as np

from conftest import emit
from repro.apps import (
    CentroidClassifier,
    classification_accuracy,
    lsi_features,
)
from repro.core import fit_lsi
from repro.corpus import SyntheticSpec, topic_collection
from repro.text import build_tdm
from repro.text.tdm import count_vector
from repro.text.tokenizer import tokenize


def test_lsi_features_vs_raw_terms(benchmark):
    n_topics = 5
    col = topic_collection(
        SyntheticSpec(
            n_topics=n_topics, docs_per_topic=24, doc_length=40,
            concepts_per_topic=12, synonyms_per_concept=3,
            queries_per_topic=0, polysemy=0.3,
            background_vocab=30, background_rate=0.3,
        ),
        seed=13,
    )
    labels = [t for t in range(n_topics) for _ in range(24)]
    train_idx = [i for i in range(len(labels)) if i % 2 == 0]
    test_idx = [i for i in range(len(labels)) if i % 2 == 1]
    train_docs = [col.documents[i] for i in train_idx]
    test_docs = [col.documents[i] for i in test_idx]
    y_train = [labels[i] for i in train_idx]
    y_test = [labels[i] for i in test_idx]

    # LSI features: k = 10 predictors.
    def lsi_cycle():
        model = fit_lsi(train_docs, k=10, scheme="log_entropy", seed=0)
        Xtr = lsi_features(model, train_docs)
        Xte = lsi_features(model, test_docs)
        clf = CentroidClassifier.fit(Xtr, y_train, discriminant=True)
        return classification_accuracy(clf, Xte, y_test), model.n_terms

    lsi_acc, n_terms = benchmark(lsi_cycle)

    # Raw term features: m predictors.
    tdm = build_tdm(train_docs)
    Xtr_raw = np.stack(
        [count_vector(tokenize(t), tdm.vocabulary) for t in train_docs]
    )
    Xte_raw = np.stack(
        [count_vector(tokenize(t), tdm.vocabulary) for t in test_docs]
    )
    raw_clf = CentroidClassifier.fit(Xtr_raw, y_train)
    raw_acc = classification_accuracy(raw_clf, Xte_raw, y_test)

    rows = [
        f"{'features':<24s}{'dims':>6s}{'accuracy':>10s}",
        f"{'raw term vectors':<24s}{tdm.n_terms:>6d}{raw_acc:>10.3f}",
        f"{'LSI dimensions':<24s}{10:>6d}{lsi_acc:>10.3f}",
        f"chance = {1 / n_topics:.2f} ({n_topics} classes)",
        "§5.7: LSI reduces the predictor count for downstream "
        "classifiers (Hull; Yang & Chute; Wu et al.)",
    ]
    emit("§5.7 — LSI features for classification", rows)

    assert lsi_acc > 0.8
    assert lsi_acc >= raw_acc - 0.05
    assert 10 < tdm.n_terms / 5  # an order-of-magnitude style reduction