"""Tests for the k-selection heuristics (§5.2)."""

import numpy as np
import pytest

from repro.core import (
    choose_k_by_energy,
    choose_k_by_gap,
    choose_k_by_sweep,
    fit_lsi,
)
from repro.errors import ShapeError


# --------------------------------------------------------------------- #
# energy
# --------------------------------------------------------------------- #
def test_energy_basic():
    s = np.array([3.0, 2.0, 1.0, 0.5])
    # cumulative energy fractions: 9/14.25, 13/14.25, 14/14.25, 1.0
    sel = choose_k_by_energy(s, target=0.6)
    assert sel.k == 1
    assert choose_k_by_energy(s, target=0.95).k == 3
    assert choose_k_by_energy(s, target=1.0).k == 4
    assert sel.criterion == "energy"
    assert len(sel.curve) == 4


def test_energy_exact_boundary():
    s = np.array([1.0, 1.0])
    assert choose_k_by_energy(s, target=0.5).k == 1


def test_energy_zero_spectrum():
    assert choose_k_by_energy(np.zeros(3)).k == 1


def test_energy_validation():
    with pytest.raises(ShapeError):
        choose_k_by_energy(np.array([]))
    with pytest.raises(ShapeError):
        choose_k_by_energy(np.ones(3), target=0.0)
    with pytest.raises(ShapeError):
        choose_k_by_energy(np.array([-1.0, 1.0]))


# --------------------------------------------------------------------- #
# gap
# --------------------------------------------------------------------- #
def test_gap_finds_spectral_cliff():
    s = np.array([10.0, 9.0, 8.5, 0.1, 0.09])
    assert choose_k_by_gap(s).k == 3


def test_gap_min_k_skips_early_gaps():
    s = np.array([100.0, 1.0, 0.9, 0.1])
    assert choose_k_by_gap(s).k == 1
    assert choose_k_by_gap(s, min_k=2).k == 3


def test_gap_zero_tail():
    s = np.array([5.0, 2.0, 0.0])
    assert choose_k_by_gap(s).k == 2  # infinite ratio at the zero


def test_gap_validation():
    with pytest.raises(ShapeError):
        choose_k_by_gap(np.array([1.0]))
    with pytest.raises(ShapeError):
        choose_k_by_gap(np.ones(4), min_k=4)


# --------------------------------------------------------------------- #
# sweep
# --------------------------------------------------------------------- #
def test_sweep_returns_argmax(small_collection, small_lsi):
    from repro.evaluation.metrics import three_point_average_precision
    from repro.retrieval import LSIRetrieval

    def metric(model):
        eng = LSIRetrieval(model)
        vals = []
        for qi, q in enumerate(small_collection.queries):
            ranked = [j for j, _ in eng.search(q)]
            vals.append(
                three_point_average_precision(
                    ranked, small_collection.relevant(qi)
                )
            )
        return float(np.mean(vals))

    sel = choose_k_by_sweep(small_lsi, metric, candidates=[2, 4, 8])
    assert sel.k in (2, 4, 8)
    assert sel.criterion == "sweep"
    assert len(sel.curve) == 3
    assert max(sel.curve) == sel.curve[[2, 4, 8].index(sel.k)]


def test_sweep_default_ladder(small_lsi):
    sel = choose_k_by_sweep(small_lsi, lambda m: float(m.k))  # prefers big k
    assert sel.k == small_lsi.k


def test_sweep_validation(small_lsi):
    with pytest.raises(ShapeError):
        choose_k_by_sweep(small_lsi, lambda m: 0.0, candidates=[])
    with pytest.raises(ShapeError):
        choose_k_by_sweep(small_lsi, lambda m: 0.0, candidates=[99])


def test_energy_selector_on_real_model(med_model_k8):
    sel = choose_k_by_energy(med_model_k8.s, target=0.75)
    assert 1 <= sel.k <= med_model_k8.k
