"""Multi-tenant cluster front end: N per-tenant fleets, one registry.

:class:`TenantClusterService` presents the same duck-typed surface the
HTTP front end expects from a :class:`~repro.server.service.QueryService`
(``start`` / ``drain`` / ``search`` / ``healthz`` / ``stats`` /
``metrics`` / ``trace`` / ``tenants``), but routes every request to one
of N named :class:`~repro.cluster.service.ClusterService` fleets — each
a data directory with its own checkpoints, shard plan, and worker
processes.  Fleets attach lazily through the same
:class:`~repro.tenancy.registry.IndexRegistry` discipline the
single-process server uses: the first query to a cold tenant constructs
its service and spawns its workers; past ``max_resident``, the
least-recently-used fleet is drained (SIGTERM, in-flight queries
finished first — the registry defers detach until the tenant's pin
count reaches zero) and its processes reaped.

Isolation mirrors the single-process service: a global admission queue
bounds the front end, :class:`~repro.tenancy.quotas.TenantQuotas`
carves it into per-tenant shares (429 ``reason="tenant_quota"``), each
fleet's slow-query log lands in its own ``<path>.<tenant>`` file, and
``/metrics`` federates every fleet's workers under
``tenant.<id>.shard.<sid>.`` prefixes.

Multi-tenant clusters are read-only serving tiers: ``writable`` and
``standby`` configs are refused up front — a primary writer owns one
store lock and one WAL, which is exactly the per-index assumption this
layer exists to lift; run writers per tenant behind their own
single-tenant front ends instead.
"""

from __future__ import annotations

import asyncio
import dataclasses
import pathlib
from typing import Callable, Mapping

from repro.cluster.service import ClusterConfig, ClusterService
from repro.errors import ClusterConfigError
from repro.obs.aggregate import label_snapshots
from repro.obs.export import SCHEMA
from repro.obs.metrics import registry
from repro.obs.prom import render_prometheus
from repro.obs.tracing import recent_spans, spans_for_trace
from repro.server.admission import AdmissionController
from repro.tenancy.quotas import TenantQuotas
from repro.tenancy.registry import IndexRegistry

__all__ = ["TenantClusterService"]


class TenantClusterService:
    """Tenant-routed scatter-gather serving over per-tenant worker fleets."""

    def __init__(
        self,
        tenants: Mapping[str, str | pathlib.Path],
        config: ClusterConfig | None = None,
        *,
        max_resident: int | None = None,
        queue_depth: int = 256,
        host: str = "127.0.0.1",
        announce: Callable[[str], None] | None = None,
    ):
        if not tenants:
            raise ClusterConfigError("a tenant cluster needs >= 1 tenant")
        self.config = config or ClusterConfig()
        if self.config.writable or self.config.standby:
            raise ClusterConfigError(
                "multi-tenant cluster serving is read-only: --writable/"
                "--standby own one store lock and one WAL each — run the "
                "writer per tenant behind its own front end"
            )
        self._host = host
        self._announce = announce or (lambda line: None)
        self.registry = IndexRegistry(max_resident=max_resident)
        for tid, data_dir in tenants.items():
            path = pathlib.Path(data_dir)
            self.registry.register(
                tid, data_dir=path, loader=self._fleet_loader(tid, path)
            )
        self.admission = AdmissionController(queue_depth)
        self.quotas = TenantQuotas(queue_depth)
        self.quotas.ensure(self.registry.tenant_ids)
        self.registry.add_detach_hook(self._on_detach)
        self._start_locks: dict[str, asyncio.Lock] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = False

    # ------------------------------------------------------------------ #
    def _fleet_loader(
        self, tenant_id: str, data_dir: pathlib.Path
    ) -> Callable[[], ClusterService]:
        def build() -> ClusterService:
            slowlog = self.config.slowlog_path
            per_tenant = dataclasses.replace(
                self.config,
                # Two SlowQueryLog instances over one file would clobber
                # each other's compaction; suffix per tenant.
                slowlog_path=(
                    f"{slowlog}.{tenant_id}" if slowlog else None
                ),
            )
            self._announce(f"tenant {tenant_id}: attaching {data_dir}")
            return ClusterService(
                data_dir,
                per_tenant,
                host=self._host,
                announce=self._announce,
                tenant=tenant_id,
            )

        return build

    def _on_detach(self, tenant_id: str, service: ClusterService) -> None:
        """Registry detach hook: drain the evicted tenant's fleet.

        Fires only at pin count zero, so no in-flight query loses its
        workers; the drain (SIGTERM + reap) runs as a task off the
        serving path.
        """
        self._announce(f"tenant {tenant_id}: detaching (LRU)")
        if self._loop is None or self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(service.drain())
        )

    async def _ensure_started(
        self, tenant_id: str, service: ClusterService
    ) -> None:
        """Spawn the fleet's workers on first use (serialized per tenant)."""
        if service._started:
            return
        lock = self._start_locks.setdefault(tenant_id, asyncio.Lock())
        async with lock:
            if not service._started:
                await service.start()

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Ready the front end; fleets spawn lazily on first query."""
        self._loop = asyncio.get_running_loop()
        self._started = True
        registry.set_gauge("cluster.tenants", float(len(self.registry.tenant_ids)))

    async def drain(self) -> None:
        """Reject new work, then drain every resident fleet."""
        self.admission.begin_drain()
        for tid, service in self.registry.resident_states().items():
            self._announce(f"tenant {tid}: draining")
            await service.drain()
        self._started = False

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun."""
        return self.admission.draining

    # ------------------------------------------------------------------ #
    async def search(
        self,
        query,
        *,
        top: int | None = None,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
        tenant: str | None = None,
    ) -> dict:
        """One tenant-routed scatter-gather search.

        Resolves (attaching a cold fleet — workers spawn on this first
        query), admits against the global queue and the tenant's quota
        share, and scatters through the tenant's own router.  The
        tenant stays pinned until the response lands, so an LRU
        eviction decided mid-flight drains this fleet only afterwards.
        """
        registry.inc("server.requests_total")
        with self.registry.pin(tenant) as (tid, service):
            self.quotas.ensure(self.registry.tenant_ids)
            self.admission.admit()
            try:
                self.quotas.admit(tid)
            except BaseException:
                self.admission.release()
                raise
            try:
                await self._ensure_started(tid, service)
                result = await service.search(
                    query,
                    top=top,
                    threshold=threshold,
                    timeout_ms=timeout_ms,
                    probes=probes,
                    exact=exact,
                    tenant=tid,
                )
                result["tenant"] = tid
                return result
            finally:
                self.quotas.release(tid)
                self.admission.release()

    async def add(self, texts, doc_ids=None, *, tenant: str | None = None):
        """Refused per tenant: these fleets are read-only serving tiers."""
        with self.registry.pin(tenant) as (tid, service):
            await self._ensure_started(tid, service)
            # Raises ClusterReadOnlyError (the config refuses writable).
            return await service.add(texts, doc_ids, tenant=tid)

    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        """Front-end liveness plus a per-tenant block for resident fleets.

        Sync (like :meth:`QueryService.healthz`): reads each resident
        fleet's supervisor tables without touching worker sockets.
        """
        resident = self.registry.resident_states()
        per_tenant = {tid: svc.healthz() for tid, svc in resident.items()}
        if self.draining:
            status = "draining"
        elif any(h["status"] == "degraded" for h in per_tenant.values()):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "draining": self.draining,
            "queue_depth": self.admission.pending,
            "queue_capacity": self.admission.queue_depth,
            "max_resident": self.registry.max_resident,
            "tenants": self.registry.describe(),
            "fleets": per_tenant,
        }

    def tenants(self) -> dict:
        """Registry + quota status for ``/tenants``."""
        return {
            "tenants": self.registry.describe(),
            "max_resident": self.registry.max_resident,
            "quotas": self.quotas.describe(),
        }

    def stats(self) -> dict:
        """The observability snapshot for ``/stats`` (obs-export schema)."""
        slow: list[dict] = []
        for svc in self.registry.resident_states().values():
            slow.extend(svc.slowlog.recent(20))
        slow.sort(key=lambda e: e.get("ts", 0.0))
        return {
            "schema": SCHEMA,
            "server": self.healthz(),
            "metrics": registry.snapshot(),
            "spans": [s.to_dict() for s in recent_spans(50)],
            "slow_queries": slow[-20:],
        }

    async def metrics(self) -> dict:
        """Fleet-federated metrics: every tenant's workers, prefixed.

        The front-end process's registry lands verbatim; each resident
        tenant's worker registries merge in under
        ``tenant.<id>.shard.<sid>.`` — one flat JSON dump, same shape as
        the single-tenant cluster's.
        """
        merged = registry.snapshot()
        for tid, svc in sorted(self.registry.resident_states().items()):
            worker_snaps = await svc.router.fetch_stats()
            merged = label_snapshots(
                merged,
                {sid: snap for sid, snap in worker_snaps.items()},
                prefix=f"tenant.{tid}.shard.",
            )
        return merged

    async def metrics_prom(self) -> str:
        """Prometheus exposition with ``worker`` + ``tenant`` labels."""
        series = [({"worker": "router"}, registry.snapshot())]
        for tid, svc in sorted(self.registry.resident_states().items()):
            worker_snaps = await svc.router.fetch_stats()
            for sid in sorted(worker_snaps):
                series.append(
                    (
                        {"worker": str(sid), "tenant": tid},
                        worker_snaps[sid],
                    )
                )
        return render_prometheus(series)

    async def trace(self, trace_id: str) -> dict:
        """One request's spans across the front end and every fleet."""
        local = [s.to_dict() for s in spans_for_trace(trace_id)]
        for record in local:
            record["worker"] = "router"
        workers: list[str] = []
        for tid, svc in sorted(self.registry.resident_states().items()):
            remote = await svc.router.fetch_trace(trace_id)
            for sid, spans in sorted(remote.items()):
                label = f"{tid}:{sid}"
                workers.append(label)
                for record in spans:
                    record["worker"] = label
                local.extend(spans)
        local.sort(key=lambda r: float(r.get("start", 0.0)))
        return {"trace_id": trace_id, "workers": workers, "spans": local}
