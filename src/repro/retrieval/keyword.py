"""The standard keyword vector method (SMART [25]) — the paper's baseline.

Documents and queries are vectors in *term* space (no dimension
reduction); similarity is the cosine between the weighted query vector
and each weighted document column.  "Results were obtained for LSI and
compared against published or computed results for other retrieval
techniques, notably the standard keyword vector method in SMART."

The same weighting machinery (Eq. 5) is shared with LSI so comparisons
isolate the effect of the truncated SVD, exactly as the paper's
evaluations do.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.text.parser import ParsingRules
from repro.text.tdm import TermDocumentMatrix, build_tdm, count_vector
from repro.text.tokenizer import tokenize
from repro.weighting.local import NEEDS_COL_MAX, local_weight
from repro.weighting.schemes import WeightingScheme, apply_weighting

__all__ = ["KeywordRetrieval"]


class KeywordRetrieval:
    """Lexical vector-space engine over a weighted term-document matrix."""

    name = "keyword-vector"

    def __init__(
        self,
        tdm: TermDocumentMatrix,
        scheme: WeightingScheme | str | None = None,
    ):
        if isinstance(scheme, str):
            scheme = WeightingScheme.from_name(scheme)
        self.scheme = scheme or WeightingScheme()
        self.tdm = tdm
        weighted = apply_weighting(tdm.matrix, self.scheme)
        self.matrix = weighted.matrix  # CSC, weighted
        self.global_weights = weighted.global_weights
        # Column norms for cosine; zero-norm columns (documents with no
        # indexed terms) score 0 against everything.
        sq = np.zeros(tdm.n_documents)
        np.add.at(sq, self.matrix.expanded_cols(), self.matrix.data**2)
        self._col_norms = np.sqrt(sq)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        *,
        scheme: WeightingScheme | str | None = None,
        rules: ParsingRules | None = None,
        doc_ids: Sequence[str] | None = None,
    ) -> "KeywordRetrieval":
        """Build the engine straight from raw document texts."""
        return cls(build_tdm(texts, rules, doc_ids=doc_ids), scheme)

    @property
    def n_documents(self) -> int:
        """Documents in the indexed matrix."""
        return self.tdm.n_documents

    # ------------------------------------------------------------------ #
    def query_vector(self, query: str | Sequence[str]) -> np.ndarray:
        """Weighted query vector in term space (Eq. 5 applied to counts)."""
        tokens = tokenize(query) if isinstance(query, str) else list(query)
        counts = count_vector(tokens, self.tdm.vocabulary)
        if self.scheme.local in NEEDS_COL_MAX:
            cmax = max(counts.max(), 1.0)
            local = local_weight(
                self.scheme.local, counts, np.full_like(counts, cmax)
            )
        else:
            local = local_weight(self.scheme.local, counts)
        return local * self.global_weights

    def scores(self, query: str | Sequence[str]) -> np.ndarray:
        """Cosine of the query against every document (length n)."""
        q = self.query_vector(query)
        qnorm = np.sqrt(np.dot(q, q))
        if qnorm == 0.0:
            return np.zeros(self.n_documents)
        raw = self.matrix.rmatvec(q)  # Aᵀ q
        denom = self._col_norms * qnorm
        out = np.zeros(self.n_documents)
        ok = denom > 0
        out[ok] = raw[ok] / denom[ok]
        return out

    def search(
        self,
        query: str | Sequence[str],
        *,
        top: int | None = None,
        threshold: float | None = None,
    ) -> list[tuple[int, float]]:
        """Ranked ``(doc_index, score)`` list, optionally filtered."""
        s = self.scores(query)
        order = np.argsort(-s, kind="stable")
        out = [(int(j), float(s[j])) for j in order]
        if threshold is not None:
            out = [(j, c) for j, c in out if c >= threshold]
        if top is not None:
            out = out[:top]
        return out

    def matching_documents(self, query: str | Sequence[str]) -> set[int]:
        """Documents sharing ≥1 indexed term with the query — the
        "lexical matching" set of §3.2 (boolean overlap, no ranking)."""
        tokens = tokenize(query) if isinstance(query, str) else list(query)
        counts = count_vector(tokens, self.tdm.vocabulary)
        term_ids = np.flatnonzero(counts > 0)
        if term_ids.size == 0:
            return set()
        hits: set[int] = set()
        csr = self.tdm.matrix.to_csr()
        for t in term_ids:
            cols, _ = csr.row_slice(int(t))
            hits.update(int(c) for c in cols)
        return hits
