"""Tests for tokenization and the stop list."""

from repro.text import DEFAULT_STOPWORDS, is_stopword, tokenize
from repro.text.tokenizer import tokenize_all


def test_basic_tokenization():
    assert tokenize("Hello, World!") == ["hello", "world"]


def test_punctuation_and_whitespace_split():
    assert tokenize("a,b;c  d\te\nf") == list("abcdef")


def test_numbers_kept():
    assert tokenize("the 18x14 matrix") == ["the", "18x14", "matrix"]


def test_internal_apostrophe_and_hyphen_kept():
    assert tokenize("children's pleuropneumonia-like") == [
        "children's",
        "pleuropneumonia-like",
    ]


def test_edge_punctuation_stripped():
    assert tokenize("'quoted' -dashed-") == ["quoted", "dashed"]


def test_no_stemming():
    """The paper is explicit: no morphological collapsing."""
    toks = tokenize("doctor doctors doctoral")
    assert toks == ["doctor", "doctors", "doctoral"]
    assert len(set(toks)) == 3


def test_min_length_filter():
    assert tokenize("a an the cat", min_length=3) == ["the", "cat"]


def test_empty_and_symbol_only_input():
    assert tokenize("") == []
    assert tokenize("!!! ??? ...") == []


def test_tokenize_all():
    out = tokenize_all(["one two", "three"])
    assert out == [["one", "two"], ["three"]]


def test_paper_query_stopwords():
    """'of' and 'with' from the worked query are stop words."""
    assert is_stopword("of")
    assert is_stopword("with")
    assert is_stopword("OF")  # case-insensitive
    assert not is_stopword("blood")
    assert not is_stopword("children")  # dropped by min-df, not the stop list


def test_custom_stopword_set():
    custom = frozenset({"blood"})
    assert is_stopword("blood", custom)
    assert not is_stopword("of", custom)


def test_default_list_is_frozen_and_lowercase():
    assert isinstance(DEFAULT_STOPWORDS, frozenset)
    assert all(w == w.lower() for w in DEFAULT_STOPWORDS)
