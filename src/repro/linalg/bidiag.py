"""Golub-Kahan-Lanczos bidiagonalization.

The alternative route to a truncated sparse SVD: instead of running
symmetric Lanczos on the squared operator ``AᵀA`` (which squares the
condition number), Golub-Kahan builds two coupled orthonormal bases with

    A  V_j ≈ U_j B_j,      Aᵀ U_j ≈ V_j B_jᵀ  (+ rank-1 remainder)

where ``B_j`` is bidiagonal.  The singular values of ``B_j``
approximate those of ``A`` without squaring.  :func:`repro.linalg.svd.truncated_svd`
exposes this as the ``"gkl"`` backend and the test suite cross-checks it
against the Gram-side Lanczos path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.util.rng import ensure_rng

__all__ = ["golub_kahan_bidiag"]


def golub_kahan_bidiag(
    a,
    steps: int,
    *,
    seed=0,
    reorth: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run ``steps`` Golub-Kahan-Lanczos steps on ``a``.

    Parameters
    ----------
    a:
        Sparse matrix, dense ndarray, or matvec/rmatvec object of shape
        ``(m, n)``.
    steps:
        Number of bidiagonalization steps ``j ≤ min(m, n)``.
    seed:
        Seed for the random start vector (unit vector in document space).
    reorth:
        Apply two-pass full reorthogonalization to both bases (default).

    Returns
    -------
    (U, V, alphas, betas):
        ``U (m, j)`` and ``V (n, j)`` with orthonormal columns and the
        bidiagonal coefficients: ``B = diag(alphas) + superdiag(betas)``
        (upper bidiagonal, ``betas`` has length ``j-1``), satisfying
        ``A V = U B`` exactly in exact arithmetic (the remainder enters
        ``Aᵀ U``, not ``A V``, with this ordering of the recurrence).
    """
    if not hasattr(a, "shape"):
        a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    dim = min(m, n)
    if not 1 <= steps <= dim:
        raise ShapeError(f"steps={steps} must be in [1, min(m, n)={dim}]")

    def mv(x):
        return a.matvec(x) if hasattr(a, "matvec") else a @ x

    def rmv(y):
        return a.rmatvec(y) if hasattr(a, "rmatvec") else a.T @ y

    rng = ensure_rng(seed)
    U = np.zeros((m, steps))
    V = np.zeros((n, steps))
    alphas = np.zeros(steps)
    betas = np.zeros(max(steps - 1, 0))

    v = rng.standard_normal(n)
    v /= np.sqrt(np.dot(v, v))
    V[:, 0] = v
    u = mv(v)
    alphas[0] = np.sqrt(np.dot(u, u))
    if alphas[0] > 0:
        u /= alphas[0]
    U[:, 0] = u

    for j in range(1, steps):
        # v_{j} from Aᵀ u_{j-1}
        v = rmv(U[:, j - 1]) - alphas[j - 1] * V[:, j - 1]
        if reorth:
            basis = V[:, :j]
            v -= basis @ (basis.T @ v)
            v -= basis @ (basis.T @ v)
        beta = np.sqrt(np.dot(v, v))
        if beta <= 1e-14:
            # Invariant subspace: restart with a random orthogonal direction.
            v = rng.standard_normal(n)
            basis = V[:, :j]
            v -= basis @ (basis.T @ v)
            nv = np.sqrt(np.dot(v, v))
            if nv <= 1e-12:
                # Entire space exhausted; truncate the factorization.
                return U[:, :j], V[:, :j], alphas[:j], betas[: j - 1]
            v /= nv
            betas[j - 1] = 0.0
        else:
            v /= beta
            betas[j - 1] = beta
        V[:, j] = v

        u = mv(v) - betas[j - 1] * U[:, j - 1]
        if reorth:
            basis = U[:, :j]
            u -= basis @ (basis.T @ u)
            u -= basis @ (basis.T @ u)
        alpha = np.sqrt(np.dot(u, u))
        if alpha <= 1e-14:
            u = rng.standard_normal(m)
            basis = U[:, :j]
            u -= basis @ (basis.T @ u)
            nu = np.sqrt(np.dot(u, u))
            if nu <= 1e-12:
                return U[:, :j], V[:, :j], alphas[:j], betas[: j - 1]
            u /= nu
            alphas[j] = 0.0
        else:
            u /= alpha
            alphas[j] = alpha
        U[:, j] = u

    return U, V, alphas, betas


def bidiagonal_dense(alphas: np.ndarray, betas: np.ndarray) -> np.ndarray:
    """Materialize the upper-bidiagonal ``B`` from GKL coefficients.

    The recurrence used in :func:`golub_kahan_bidiag` gives
    ``A v_j = α_j u_j + β_{j-1} u_{j-1}``, i.e. ``A V = U B`` with ``B``
    upper bidiagonal: diagonal ``α``, superdiagonal ``β``.
    """
    j = alphas.size
    B = np.zeros((j, j))
    B[np.arange(j), np.arange(j)] = alphas
    if j > 1:
        B[np.arange(j - 1), np.arange(1, j)] = betas
    return B
