"""Writable-cluster ingest: fast-update speedup and p99 under ingest.

Two acceptance floors for the primary-writer tier:

* **Kernel**: the Vecharynski-Saad fast update must ingest >= 3x
  faster than the exact Eq. 10 SVD-update at the writer's batch width,
  at equivalent retrieval quality (mean top-10 overlap >= 0.9 against
  the exact update, new-document queries).  The sweep runs over batch
  widths on a topic-structured corpus with ambient noise — the regime
  that makes the exact update pay its O(m p^2) residual factorization
  while the topical signal stays inside the retained subspace.

* **Serving**: a writable cluster mid-ingest must keep query p99
  within 2x of the same cluster serving read-only — sustained writes
  (WAL fsyncs, fast updates, seals, epoch bumps) may not starve the
  scatter path.  The query is a candidate fetch at reranker depth
  (``top=200``) and the writer stream is offered-load (batched adds at
  a fixed pace, YCSB-style), so the budget measures interference on a
  realistic serving unit rather than the IPC floor of a toy ``top=10``.
  The read-only baseline is the median p99 over rounds.  Sustained
  ingest rate is reported alongside.

The sweep is recorded as ``BENCH_cluster_ingest.json``.
``BENCH_SMOKE=1`` shrinks both phases for CI.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import tempfile
import time

import numpy as np

from conftest import emit
from obs_export import maybe_export_obs
from repro.cluster import ClusterConfig, ClusterService
from repro.core import fit_lsi_from_tdm
from repro.server.state import manager_from_texts
from repro.sparse import from_dense
from repro.store.durable import DurableIndexStore
from repro.text import TermDocumentMatrix, Vocabulary
from repro.updating import update_documents
from repro.updating.fast_update import fast_update_documents

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

# -- kernel phase ------------------------------------------------------ #
M_TERMS = 1500
N_BASE = 1200
K = 48
TOPICS = 24
SKETCH_RANK = 8
BATCH_WIDTHS = (8, 16, 32, 64) if SMOKE else (8, 16, 32, 64, 128)
SPEEDUP_AT = 64  # the writer-scale batch the >= 3x floor is enforced at
MIN_SPEEDUP = 3.0
MIN_OVERLAP = 0.9
TOP = 10

# -- serving phase ----------------------------------------------------- #
SHARDS = 2
SERVE_DOCS = 4000 if SMOKE else 8000
SERVE_K = 48
SERVE_TOP = 200  # candidate-fetch depth (reranker feeds), not a toy top-10
SERVE_QUERIES = 800 if SMOKE else 1200
BASELINE_ROUNDS = 3  # read-only p99 = median over rounds (tail is noisy)
INGEST_TOTAL = 64 if SMOKE else 160
INGEST_BATCH = 16  # writer-style batched ingest (what fast-update is for)
INGEST_GAP_S = 0.25  # offered load: one batch per gap (sustained stream)
MAX_P99_RATIO = 2.0


def _topic_corpus(seed: int = 0):
    """A sparse topic-mixture count matrix plus a draw for new batches."""
    rng = np.random.default_rng(seed)
    topics = rng.random((M_TERMS, TOPICS)) * (
        rng.random((M_TERMS, TOPICS)) < 0.05
    )

    def draw(p: int) -> np.ndarray:
        mix = rng.dirichlet(np.ones(TOPICS) * 0.3, size=p).T
        return np.round(topics @ mix * 30.0) + (
            rng.random((M_TERMS, p)) < 0.02
        )

    return draw


def _topk(model, query_vec, top=TOP):
    live = model.s > 1e-10 * model.s[0]
    with np.errstate(divide="ignore", invalid="ignore"):
        qhat = np.where(live, (query_vec @ model.U) / model.s, 0.0)
    coords = model.V * model.s
    scores = coords @ qhat / (
        np.linalg.norm(coords, axis=1) * np.linalg.norm(qhat) + 1e-30
    )
    return np.argsort(-scores, kind="stable")[:top]


def test_fast_update_speedup_and_retrieval_parity():
    draw = _topic_corpus()
    base = draw(N_BASE)
    base[0, :] += 1.0  # no empty documents
    tdm = TermDocumentMatrix(
        from_dense(base).to_csc(),
        Vocabulary([f"w{i}" for i in range(M_TERMS)]).freeze(),
        [f"D{j}" for j in range(N_BASE)],
    )
    model = fit_lsi_from_tdm(tdm, K, scheme="log_entropy")

    rows = [
        f"{'batch':>6s}  {'fast ms':>8s}  {'exact ms':>9s}  "
        f"{'speedup':>8s}  {'overlap@10':>10s}"
    ]
    curve = {}
    for p in BATCH_WIDTHS:
        counts = draw(p)
        ids = [f"N{j}" for j in range(p)]
        fast_update_documents(model, counts, ids, rank=SKETCH_RANK)  # warm
        t0 = time.perf_counter()
        fast = fast_update_documents(model, counts, ids, rank=SKETCH_RANK)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        exact = update_documents(model, counts, ids, exact=True)
        t_exact = time.perf_counter() - t0
        # Retrieval parity: new-document queries, top-10 vs the exact
        # update (the quality bar "equivalent" is measured at).
        overlaps = [
            len(
                set(_topk(fast, counts[:, j]).tolist())
                & set(_topk(exact, counts[:, j]).tolist())
            )
            / TOP
            for j in range(0, p, max(1, p // 16))
        ]
        overlap = float(np.mean(overlaps))
        speedup = t_exact / t_fast
        curve[str(p)] = {
            "fast_ms": t_fast * 1000.0,
            "exact_ms": t_exact * 1000.0,
            "speedup": speedup,
            "overlap_at_10": overlap,
        }
        rows.append(
            f"{p:>6d}  {t_fast * 1000:>8.1f}  {t_exact * 1000:>9.1f}  "
            f"{speedup:>7.2f}x  {overlap:>10.2f}"
        )
        assert overlap >= MIN_OVERLAP, (
            f"batch {p}: top-{TOP} overlap {overlap:.2f} < {MIN_OVERLAP}"
        )
    emit(
        f"fast SVD-update vs exact (m={M_TERMS}, n={N_BASE}, k={K}, "
        f"sketch rank {SKETCH_RANK})",
        rows,
    )
    at_scale = curve[str(SPEEDUP_AT)]["speedup"]
    assert at_scale >= MIN_SPEEDUP, (
        f"fast update {at_scale:.2f}x at batch {SPEEDUP_AT}, "
        f"need >= {MIN_SPEEDUP}x"
    )
    _merge_artifact({"kernel": curve, "speedup_floor_batch": SPEEDUP_AT})
    maybe_export_obs(
        "cluster_ingest_kernel",
        extra={"curve": curve, "speedup_at_scale": at_scale},
    )


# --------------------------------------------------------------------- #
def _serve_corpus(n: int, seed: int = 43) -> list[str]:
    rng = np.random.default_rng(seed)
    vocab = [f"w{i}" for i in range(60)]
    return [" ".join(rng.choice(vocab, size=18)) for _ in range(n)]


async def _measure_p99(service, queries) -> float:
    lat = []
    for q in queries:
        t0 = time.perf_counter()
        result = await service.search(q, top=SERVE_TOP)
        lat.append(time.perf_counter() - t0)
        assert result["partial"] is False
    return float(np.percentile(np.asarray(lat) * 1000.0, 99))


def _p99_readonly(data_dir) -> float:
    async def main():
        service = ClusterService(
            data_dir, ClusterConfig(workers=SHARDS, hedge=False)
        )
        await service.start()
        try:
            queries = _serve_corpus(SERVE_QUERIES, seed=7)
            await _measure_p99(service, queries[:20])  # warm-up
            # The read-only tail on a shared box is noisy (scheduler,
            # page cache); the baseline is the median p99 over rounds.
            rounds = [
                await _measure_p99(service, queries)
                for _ in range(BASELINE_ROUNDS)
            ]
            return float(np.median(rounds))
        finally:
            await service.drain()

    return asyncio.run(main())


def _p99_under_ingest(data_dir) -> tuple[float, float, int]:
    """(p99 ms, sustained docs/s, epoch bumps observed) mid-ingest."""

    async def main():
        service = ClusterService(
            data_dir,
            ClusterConfig(
                workers=SHARDS,
                hedge=False,
                writable=True,
                seal_every_records=2,
                seal_interval_s=2.0,
                ann_clusters=0,
            ),
        )
        await service.start()
        epoch0 = service.epoch
        seals0 = service.healthz()["writer"]["seals_total"]
        try:
            new_docs = _serve_corpus(INGEST_TOTAL, seed=91)
            ingested = {"n": 0}

            async def ingest():
                # A sustained writer stream: batched adds (the regime
                # the fast update exists for — one sketch per batch,
                # not per doc) offered at a fixed pace, YCSB-style.
                # The p99 budget is defined against offered load, not
                # an unbounded backfill saturating every core.
                for start in range(0, len(new_docs), INGEST_BATCH):
                    chunk = new_docs[start : start + INGEST_BATCH]
                    ids = [f"N{start + j}" for j in range(len(chunk))]
                    await service.add(chunk, ids)
                    ingested["n"] += len(chunk)
                    await asyncio.sleep(INGEST_GAP_S)

            queries = _serve_corpus(SERVE_QUERIES, seed=7)
            await _measure_p99(service, queries[:20])  # warm-up
            writer = asyncio.ensure_future(ingest())
            t0 = time.perf_counter()
            lat = []
            # Query until the ingest stream drains (and at least the
            # configured sample count) so every sample races a write.
            i = 0
            while not writer.done() or i < SERVE_QUERIES:
                q = queries[i % len(queries)]
                tq = time.perf_counter()
                result = await service.search(q, top=SERVE_TOP)
                lat.append(time.perf_counter() - tq)
                assert result["partial"] is False
                i += 1
            await writer
            rate = ingested["n"] / (time.perf_counter() - t0)
            p99 = float(np.percentile(np.asarray(lat) * 1000.0, 99))
            # The bump may trail the last add by one seal-loop poll.
            deadline = time.perf_counter() + 30
            while service.epoch == epoch0:
                assert time.perf_counter() < deadline, "no epoch bump"
                await asyncio.sleep(0.1)
            bumps = service.healthz()["writer"]["seals_total"] - seals0
            return p99, rate, bumps
        finally:
            await service.drain()

    return asyncio.run(main())


def test_query_p99_under_ingest_within_budget():
    texts = _serve_corpus(SERVE_DOCS)
    ids = [f"D{i}" for i in range(len(texts))]
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "store")
        store = DurableIndexStore.initialize(
            data_dir, manager_from_texts(texts, ids, k=SERVE_K)
        )
        store.close(flush=False)

        base_p99 = _p99_readonly(data_dir)
        ingest_p99, rate, bumps = _p99_under_ingest(data_dir)

    ratio = ingest_p99 / base_p99
    emit(
        f"query p99 under ingest (docs={SERVE_DOCS}, shards={SHARDS}, "
        f"top={SERVE_TOP}, >= {SERVE_QUERIES} queries)",
        [
            f"read-only p99      : {base_p99:8.2f} ms",
            f"mid-ingest p99     : {ingest_p99:8.2f} ms  ({ratio:.2f}x)",
            f"sustained ingest   : {rate:8.1f} docs/s",
            f"epoch bumps served : {bumps}",
        ],
    )
    blob = {
        "serving": {
            "readonly_p99_ms": base_p99,
            "ingest_p99_ms": ingest_p99,
            "p99_ratio": ratio,
            "ingest_docs_per_s": rate,
            "epoch_bumps": bumps,
        }
    }
    _merge_artifact(blob)
    maybe_export_obs("cluster_ingest_serving", extra=blob)
    assert bumps >= 1, "ingest must drive at least one epoch bump"
    assert ratio <= MAX_P99_RATIO, (
        f"query p99 degraded {ratio:.2f}x under ingest, "
        f"budget {MAX_P99_RATIO}x"
    )


def _merge_artifact(update: dict) -> None:
    """Fold a phase's results into ``BENCH_cluster_ingest.json``."""
    path = pathlib.Path("BENCH_cluster_ingest.json")
    blob = json.loads(path.read_text()) if path.exists() else {}
    blob.update(update)
    blob["smoke"] = SMOKE
    path.write_text(json.dumps(blob, indent=2, sort_keys=True) + "\n")
