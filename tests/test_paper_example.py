"""Integration tests against the paper's worked example (§3-§4).

Every number asserted here is printed in the paper (Tables 2-5, Figures
4-9, §3.1-§3.4).  Transcription caveat: the printed Table 3 differs from
a strict parse of the Table 2 texts in two cells (see
``repro.corpus.med``); we canonicalize the printed matrix, which matches
the printed Figure 5 vectors to ~0.05 and singular values to ~2%.
Set-level and cluster-level claims reproduce exactly.
"""

import numpy as np
import pytest

from repro.core import fit_lsi_from_tdm, project_query, rank_documents, retrieve
from repro.corpus.med import (
    LEXICAL_MATCH_SET,
    MED_QUERY,
    MED_TERMS,
    MED_TOPICS,
    MOST_RELEVANT,
    PAPER_QHAT,
    PAPER_SIGMA_2,
    PAPER_U2,
    TABLE3,
    UPDATE_COLUMNS,
    med_matrix,
    med_tdm_parsed,
)
from repro.retrieval import KeywordRetrieval
from repro.text import ParsingRules, build_tdm
from repro.updating import (
    drift_report,
    fold_in_documents,
    recompute_with_documents,
    update_documents,
)


def _sign_fixed_U2(model):
    U2 = model.U.copy()
    for c in range(2):
        i = np.argmax(np.abs(PAPER_U2[:, c]))
        if np.sign(U2[i, c]) != np.sign(PAPER_U2[i, c]):
            U2[:, c] *= -1
    return U2


# --------------------------------------------------------------------- #
# Tables 2-3: parsing and the matrix
# --------------------------------------------------------------------- #
def test_table3_shape_and_terms(med_tdm):
    assert med_tdm.shape == (18, 14)
    assert med_tdm.vocabulary.to_list() == MED_TERMS


def test_parsing_rule_reproduces_keyword_set():
    """Keywords = words in more than one topic: the same 18 terms."""
    parsed = med_tdm_parsed()
    assert parsed.vocabulary.to_list() == MED_TERMS


def test_parsed_matrix_differs_in_documented_cells_only(med_tdm):
    """Strict parse vs printed Table 3: exactly the two documented cells
    (respect moves M8→M9; culture/M8 needs plural collapsing)."""
    diff = med_tdm_parsed().to_dense() - TABLE3
    cells = {(MED_TERMS[i], f"M{j + 1}"): diff[i, j] for i, j in np.argwhere(diff)}
    assert cells == {
        ("culture", "M8"): -1.0,
        ("respect", "M8"): -1.0,
        ("respect", "M9"): 1.0,
    }


def test_example_matrix_column_checks(med_tdm):
    """Spot-check the paper's own example: in M2, culture, discharge and
    patients all occur once."""
    for term in ("culture", "discharge", "patients"):
        assert med_tdm.term_frequency(term, 1) == 1.0


# --------------------------------------------------------------------- #
# Figure 5: singular values, U2, and the query projection
# --------------------------------------------------------------------- #
def test_figure5_singular_values(med_model):
    assert np.allclose(med_model.s, PAPER_SIGMA_2, atol=0.09)
    # And exactly self-consistent with a reference SVD of the matrix.
    ref = np.linalg.svd(TABLE3, compute_uv=False)[:2]
    assert np.allclose(med_model.s, ref, atol=1e-10)


def test_figure5_u2_block(med_model):
    U2 = _sign_fixed_U2(med_model)
    assert np.abs(U2 - PAPER_U2).max() < 0.06


def test_figure5_query_coordinates(med_model):
    qhat = project_query(med_model, MED_QUERY)
    U2 = _sign_fixed_U2(med_model)
    flip = np.sign(np.sum(U2 * med_model.U, axis=0))
    assert np.abs(qhat * flip - PAPER_QHAT).max() < 0.03


def test_query_projection_matches_paper_algebra(med_model):
    """Fig. 5 computes q̂ = qᵀ U₂ Σ₂⁻¹ with q one-hot on the three query
    terms; verify our pipeline does exactly that."""
    q = np.zeros(18)
    for t in ("abnormalities", "age", "blood"):
        q[MED_TERMS.index(t)] = 1.0
    qhat = project_query(med_model, MED_QUERY)
    assert np.allclose(qhat, (q @ med_model.U) / med_model.s)


# --------------------------------------------------------------------- #
# §3.2: LSI vs lexical matching
# --------------------------------------------------------------------- #
def test_lexical_matching_set(med_texts):
    """Lexical matching returns exactly {M1, M8, M10, M11, M12}."""
    kw = KeywordRetrieval(
        build_tdm(med_texts, ParsingRules(min_doc_freq=2),
                  doc_ids=list(MED_TOPICS)),
    )
    hits = kw.matching_documents(MED_QUERY)
    assert {list(MED_TOPICS)[j] for j in hits} == LEXICAL_MATCH_SET


def test_lsi_retrieves_christmas_disease(med_model):
    """M9 (christmas disease) shares no query terms yet is retrieved at
    cosine ≥ 0.85 — the paper's headline example."""
    qhat = project_query(med_model, MED_QUERY)
    hits = dict(retrieve(med_model, qhat, threshold=0.85))
    assert MOST_RELEVANT in hits
    # ... while lexical matching misses it entirely.
    assert MOST_RELEVANT not in LEXICAL_MATCH_SET


def test_lsi_085_threshold_excludes_m1_m10(med_model):
    """M1 and M10 (lexically matched but irrelevant) fall below 0.85."""
    qhat = project_query(med_model, MED_QUERY)
    hits = {d for d, _ in retrieve(med_model, qhat, threshold=0.85)}
    assert {"M8", "M9", "M12"} <= hits
    assert "M1" not in hits and "M10" not in hits


def test_table4_threshold_040_membership(med_model, med_tdm):
    """Table 4 k=2: eleven documents pass cosine ≥ 0.40 (all but M3, M5,
    M6 in the paper; our matrix adds M3 at the margin and keeps the
    irrelevant behavioral topics M5, M6 out)."""
    qhat = project_query(med_model, MED_QUERY)
    hits = {d for d, _ in retrieve(med_model, qhat, threshold=0.40)}
    paper_hits = {"M9", "M12", "M8", "M11", "M10", "M7", "M14", "M13", "M4",
                  "M1", "M2"}
    assert paper_hits <= hits
    assert "M5" not in hits and "M6" not in hits


def test_table4_factor_sweep_changes_cosines(med_tdm):
    """Table 4's point: returned sets and cosines vary strongly with k."""
    ranks = {}
    for k in (2, 4, 8):
        model = fit_lsi_from_tdm(med_tdm, k)
        qhat = project_query(model, MED_QUERY)
        ranks[k] = dict(rank_documents(model, qhat))
    # M8 stays near the top at every k (it literally contains all terms).
    for k in (2, 4, 8):
        top4 = sorted(ranks[k], key=ranks[k].get, reverse=True)[:4]
        assert "M8" in top4
    # Higher k sharpens: fewer documents above 0.40 at k=8 than k=2.
    n2 = sum(1 for c in ranks[2].values() if c >= 0.40)
    n8 = sum(1 for c in ranks[8].values() if c >= 0.40)
    assert n8 < n2


# --------------------------------------------------------------------- #
# §3.3-§3.4 and §4: folding-in vs SVD-updating vs recomputing
# --------------------------------------------------------------------- #
def _cos(model, a, b):
    coords = model.doc_coordinates()
    va, vb = coords[model.doc_index(a)], coords[model.doc_index(b)]
    return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb)))


def test_folding_in_leaves_existing_coordinates_fixed(med_model):
    folded = fold_in_documents(med_model, UPDATE_COLUMNS, ["M15", "M16"])
    assert folded.n_documents == 16
    assert np.array_equal(folded.V[:14], med_model.V)
    assert np.array_equal(folded.U, med_model.U)
    assert folded.provenance == "fold-in"


def test_folding_in_corrupts_orthogonality(med_model):
    """§4.3: folded-in document vectors break V's orthogonality."""
    folded = fold_in_documents(med_model, UPDATE_COLUMNS, ["M15", "M16"])
    rep = drift_report(folded)
    assert rep.doc_loss > 0.01
    assert rep.term_loss < 1e-10  # U untouched


def test_svd_updating_preserves_orthogonality(med_model):
    updated = update_documents(med_model, UPDATE_COLUMNS, ["M15", "M16"])
    rep = drift_report(updated)
    assert rep.max_loss < 1e-10
    assert updated.provenance == "svd-update"


def test_figure8_9_rats_cluster_forms_under_updating(med_model, med_tdm):
    """M15 ('behavior of rats...') must join the {M13, M14} rats cluster
    under SVD-updating and recomputing (Figs. 8-9) but NOT as tightly
    under folding-in (Fig. 7), because the k=2 model built without M15
    has no behavior-rats association.

    Measured hierarchy (documents of the worked example, k = 2):
    fold-in ≈ printed Eq. 10 construction < residual-exact update <
    recompute — the printed construction restores orthogonality but
    projects D onto span(U₂), so its document *positions* cannot exceed
    fold-in's; the exact variant retains the residual and recovers the
    Figure 9 geometry.
    """
    folded = fold_in_documents(med_model, UPDATE_COLUMNS, ["M15", "M16"])
    updated_exact = update_documents(
        med_model, UPDATE_COLUMNS, ["M15", "M16"], exact=True
    )
    recomputed = recompute_with_documents(
        med_tdm, UPDATE_COLUMNS, ["M15", "M16"], 2
    )
    for model in (updated_exact, recomputed):
        assert _cos(model, "M13", "M15") > 0.9
        assert _cos(model, "M14", "M15") > 0.9
    # Folding-in places M15 measurably further from the cluster.
    assert _cos(folded, "M13", "M15") < _cos(updated_exact, "M13", "M15")
    assert _cos(folded, "M13", "M15") < _cos(recomputed, "M13", "M15")
    assert _cos(folded, "M14", "M15") < _cos(recomputed, "M14", "M15")


def test_svd_update_matches_recompute_of_ak(med_model):
    """Eq. 10 with the residual retained (exact=True) equals the SVD of
    B = (A₂ | D) computed directly."""
    updated = update_documents(
        med_model, UPDATE_COLUMNS, ["M15", "M16"], exact=True
    )
    B = np.hstack([med_model.reconstruct(), UPDATE_COLUMNS])
    s_ref = np.linalg.svd(B, compute_uv=False)[:2]
    assert np.allclose(updated.s, s_ref, atol=1e-9)


def test_paper_update_projects_spectrum_below_exact(med_model):
    approx = update_documents(med_model, UPDATE_COLUMNS, ["M15", "M16"])
    exact = update_documents(
        med_model, UPDATE_COLUMNS, ["M15", "M16"], exact=True
    )
    assert np.all(approx.s <= exact.s + 1e-12)


def test_recompute_reflects_new_latent_structure(med_model, med_tdm):
    """§3.4: recomputing lets new topics redefine the structure — the
    recomputed singular values differ from the original ones."""
    recomputed = recompute_with_documents(
        med_tdm, UPDATE_COLUMNS, ["M15", "M16"], 2
    )
    assert recomputed.n_documents == 16
    assert not np.allclose(recomputed.s, med_model.s, atol=1e-3)
    assert recomputed.provenance == "recompute"
