"""Model persistence: the "LSI database of singular values and vectors".

The paper's toolchain stores a retrieval database of ``U_k``, ``Σ_k``,
``V_k`` plus the labellings; ours serializes to a single ``.npz`` with the
arrays and JSON-encoded metadata (vocabulary, doc ids, scheme) so a model
round-trips bit-exactly.

Durability contract (the :mod:`repro.store` subsystem builds on this):

* :func:`save_model` is **atomic** — the arrays are written to a
  temporary file in the destination directory, fsynced, and renamed
  over the target with :func:`os.replace`, so a crash mid-save leaves
  either the old file or the new one, never a torn hybrid;
* :func:`save_model` returns the path actually written.  NumPy silently
  appends ``.npz`` to suffix-less paths, so ``save_model(model, "m")``
  writes ``m.npz`` — the return value records that, and
  ``load_model("m.npz")`` agrees with it;
* :func:`load_model` raises :class:`~repro.errors.ModelStateError` on
  truncated or garbage files instead of leaking ``zipfile``/``numpy``
  internals (a missing file still raises :class:`FileNotFoundError`).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Union

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ModelStateError
from repro.text.vocabulary import Vocabulary
from repro.weighting.schemes import WeightingScheme

__all__ = ["save_model", "load_model", "fsync_directory"]

_FORMAT_VERSION = 1


def fsync_directory(path: Union[str, os.PathLike]) -> None:
    """fsync a directory so a rename inside it is durable.

    Best-effort: platforms/filesystems that refuse to open directories
    (or lack fsync on them) are skipped silently — the rename itself is
    still atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_model(model: LSIModel, path: Union[str, os.PathLike]) -> pathlib.Path:
    """Serialize ``model`` to ``path`` (``.npz``) atomically.

    Returns the path actually written: NumPy appends ``.npz`` when the
    suffix is missing, and this function does the same *before* writing
    so the temp-file + :func:`os.replace` dance targets the real name.
    """
    path = pathlib.Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    meta = {
        "version": _FORMAT_VERSION,
        "vocabulary": model.vocabulary.to_list(),
        "doc_ids": list(model.doc_ids),
        "scheme_local": model.scheme.local,
        "scheme_global": model.scheme.global_,
        "provenance": model.provenance,
    }
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                U=model.U,
                s=model.s,
                V=model.V,
                global_weights=model.global_weights,
                meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


def load_model(path: Union[str, os.PathLike]) -> LSIModel:
    """Load a model previously written by :func:`save_model`.

    Raises :class:`~repro.errors.ModelStateError` when the file exists
    but is not a complete model database (truncated write, wrong format,
    arbitrary garbage); :class:`FileNotFoundError` when it is absent.
    """
    try:
        with np.load(path) as data:
            try:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            except Exception as exc:  # malformed metadata member
                raise ModelStateError(
                    f"cannot parse model metadata in {path}: {exc}"
                ) from exc
            if meta.get("version") != _FORMAT_VERSION:
                raise ModelStateError(
                    f"unsupported model format version {meta.get('version')}"
                )
            try:
                return LSIModel(
                    U=data["U"],
                    s=data["s"],
                    V=data["V"],
                    vocabulary=Vocabulary(meta["vocabulary"]).freeze(),
                    doc_ids=list(meta["doc_ids"]),
                    scheme=WeightingScheme(
                        meta["scheme_local"], meta["scheme_global"]
                    ),
                    global_weights=data["global_weights"],
                    provenance=meta.get("provenance", "svd"),
                )
            except KeyError as exc:
                raise ModelStateError(
                    f"model database {path} is missing {exc}"
                ) from exc
    except (ModelStateError, FileNotFoundError, IsADirectoryError):
        raise
    except Exception as exc:
        # zipfile.BadZipFile, EOFError from a truncated member, ValueError
        # from np.load on garbage — all mean "not a model database".
        raise ModelStateError(
            f"cannot load model database {path}: {exc}"
        ) from exc
