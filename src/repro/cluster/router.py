"""The scatter-gather router: replica sets, failover, hedging, exact merge.

One :class:`ClusterRouter` holds a persistent, id-multiplexed frame
connection to each live worker slot of a
:class:`~repro.cluster.placement.ReplicaPlan`.  A query batch is scaled
once (``Q Σ``, mirroring :meth:`DocumentIndex.prepare_queries`),
scattered **once per range** — not per worker — and the per-range stable
top-k lists are merged per query with
:func:`repro.parallel.sharding.merge_topk`, the same function the
in-process sharded search uses, over byte-identical inputs.  Every
replica of a range holds identical scoring state for an epoch, so with
any one replica per range live the cluster's answer is element-identical
to ``sharded_batch_search``: indices, scores, tie order — regardless of
*which* replica answered.

Reads load-balance: each scatter picks a range's first candidate by
power-of-two-choices (sample two replicas, send to the one with fewer
requests in flight, breaking ties by the faster latency-history
median), which spreads concurrent requests across replicas without
global coordination.  Failure is failover
before degradation: a replica whose connection dies (or whose epoch
skewed) has a sibling tried immediately; a replica that is merely slow
gets a sibling *hedge* — after its own latency-quantile when history
has armed, else at an even split of the remaining budget — and the
first answer wins, all other attempts cancelled, so one range can never
contribute twice to a merge.  Only when every replica of a range is
exhausted does the response degrade to ``partial=True`` with that
range's ``[lo, hi)`` rows named — a search over most of the collection
is far more useful than a 500.  With replication 1 all of this reduces
to the original single-worker behavior: same-worker one-shot hedging,
deadline misses as partials, eviction left to the heartbeat loop.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.cluster.placement import ReplicaPlan, as_replica_plan
from repro.cluster.plan import ShardPlan
from repro.cluster.wire import BUMP_OP, read_frame, write_frame
from repro.errors import ClusterError
from repro.obs.metrics import registry
from repro.obs.trace_context import TraceContext, current_trace
from repro.obs.tracing import span
from repro.parallel.sharding import merge_topk

__all__ = ["RouterConfig", "WorkerChannel", "ClusterResult", "ClusterRouter"]


@dataclass(frozen=True)
class RouterConfig:
    """Tunables for the scatter-gather path."""

    #: Per-range deadline for one scatter RPC (all replica attempts
    #: share it), milliseconds.
    worker_timeout_ms: float = 2000.0
    #: Quantile of the worker's own latency history after which a
    #: straggling request is hedged with a duplicate.
    hedge_quantile: float = 0.95
    #: Observations a worker's histogram needs before hedging arms —
    #: below this the quantile estimate is noise.
    hedge_min_samples: int = 20
    #: Never hedge earlier than this (milliseconds), however fast the
    #: history says the worker usually is.
    hedge_floor_ms: float = 1.0
    #: Master switch for hedging.
    hedge: bool = True
    #: Deadline for establishing a worker connection, seconds.
    connect_timeout: float = 5.0


class WorkerChannel:
    """One persistent frame connection with id-multiplexed requests.

    Concurrent :meth:`call`\\ s tag their frames with monotonically
    increasing ids; a single reader task resolves each response to its
    waiting future, so one TCP connection carries a whole batch fan-out
    plus interleaved heartbeats.  When the peer hangs up, every pending
    call fails with :class:`ConnectionError` at once.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: float = 5.0
    ) -> "WorkerChannel":
        """Open a channel to a worker (ConnectionError on refusal)."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        except (asyncio.TimeoutError, OSError) as exc:
            raise ConnectionError(
                f"cannot connect to worker at {host}:{port}: {exc!r}"
            )
        return cls(reader, writer)

    @property
    def closed(self) -> bool:
        """True once the connection is gone (calls will fail fast)."""
        return self._closed

    async def _read_loop(self) -> None:
        error: BaseException
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    error = ConnectionError("worker closed the connection")
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError, ClusterError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionError("channel closed")
        self._closed = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionError(f"worker connection lost: {error!r}")
                )
        self._pending.clear()

    async def call(self, message: dict) -> dict:
        """Send one request frame and await its matching response."""
        if self._closed:
            raise ConnectionError("channel is closed")
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        try:
            await write_frame(self._writer, {**message, "id": request_id})
            return await future
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionError(f"worker connection lost: {exc!r}")
        finally:
            self._pending.pop(request_id, None)

    async def close(self) -> None:
        """Tear down the connection and fail any in-flight calls."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


@dataclass
class ClusterResult:
    """One scatter-gather answer, possibly degraded.

    ``results[qi]`` is the merged ``(doc_index, score)`` list for query
    ``qi`` over every range that answered.  ``partial`` is True when any
    range did not, and ``missing`` lists those ranges' ``(lo, hi)`` row
    spans so the caller knows exactly which documents went unscored.
    ``shard_timings`` (range id → RPC milliseconds), ``served_by``
    (range id → the worker slot whose answer won), ``hedged``,
    ``failovers``, and ``deadline_missed`` are the slow-query evidence
    the slow log dumps.
    """

    results: list[list[tuple[int, float]]]
    partial: bool = False
    missing: list[tuple[int, int]] = field(default_factory=list)
    epoch: int = 0
    shard_timings: dict[int, float] = field(default_factory=dict)
    hedged: list[int] = field(default_factory=list)
    deadline_missed: list[int] = field(default_factory=list)
    served_by: dict[int, int] = field(default_factory=dict)
    #: Range ids where at least one replica attempt failed over to a
    #: sibling (connection death or epoch skew) before the answer came.
    failovers: list[int] = field(default_factory=list)


@dataclass
class _RangeOutcome:
    """What one range's replica-set scatter produced."""

    kind: str = "dead"  # ok | deadline | skew | dead | rejected
    response: dict | None = None
    latency: float = 0.0
    served_by: int = -1
    hedged: bool = False
    failovers: int = 0
    skewed: bool = False
    dead: list[int] = field(default_factory=list)
    error: BaseException | None = None


class ClusterRouter:
    """Scatter queries over the plan's replica sets, gather, merge exactly."""

    def __init__(
        self,
        plan: ShardPlan | ReplicaPlan,
        config: RouterConfig | None = None,
        *,
        on_worker_dead: Callable[[int], None] | None = None,
        tenant: str | None = None,
    ):
        self.plan = as_replica_plan(plan)
        self.config = config or RouterConfig()
        self.on_worker_dead = on_worker_dead
        #: Tenant id stamped into every score frame (``None`` omits it);
        #: workers of another tenant reject the frame outright.
        self.tenant = tenant
        #: Channels and endpoints are keyed by worker *slot* id (== shard
        #: id at replication 1).
        self._channels: dict[int, WorkerChannel] = {}
        self._endpoints: dict[int, tuple[str, int]] = {}
        #: Live per-worker in-flight request counts — the load signal
        #: for power-of-two-choices (latency medians adapt too slowly
        #: under bursts and would herd scatters onto one replica).
        self._inflight: dict[int, int] = {}
        registry.set_gauge("cluster.workers_live", 0)

    def update_plan(self, plan: ShardPlan | ReplicaPlan) -> None:
        """Atomically publish a new epoch's plan for *future* scatters.

        One reference assignment: a :meth:`search_batch` already running
        snapshotted the old plan at entry and finishes against it (the
        workers retain that epoch's state through the bump window), so
        nothing in flight is disturbed.
        """
        self.plan = as_replica_plan(plan)
        registry.set_gauge("cluster.plan_epoch", self.plan.epoch)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def live_shards(self) -> list[int]:
        """Worker slot ids with an open channel, ascending.

        (Kept under its historical name: at replication 1 worker ids
        and shard ids coincide.)
        """
        return sorted(
            wid for wid, ch in self._channels.items() if not ch.closed
        )

    async def attach(self, worker_id: int, host: str, port: int) -> None:
        """Connect (or reconnect) the channel for worker slot ``worker_id``."""
        self.plan.range_of(worker_id)  # validates the id
        old = self._channels.pop(worker_id, None)
        if old is not None:
            await old.close()
        self._endpoints[worker_id] = (host, port)
        self._channels[worker_id] = await WorkerChannel.connect(
            host, port, timeout=self.config.connect_timeout
        )
        registry.set_gauge("cluster.workers_live", len(self.live_shards()))

    async def detach(self, worker_id: int) -> None:
        """Drop the channel for ``worker_id`` (worker dead or evicted)."""
        channel = self._channels.pop(worker_id, None)
        if channel is not None:
            await channel.close()
        registry.set_gauge("cluster.workers_live", len(self.live_shards()))

    async def close(self) -> None:
        """Drop every channel."""
        for wid in list(self._channels):
            await self.detach(wid)

    async def ping(self, worker_id: int, *, timeout: float = 1.0) -> bool:
        """One heartbeat: True iff the worker answers in time."""
        channel = self._channels.get(worker_id)
        if channel is None or channel.closed:
            return False
        try:
            response = await asyncio.wait_for(
                channel.call({"op": "ping"}), timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            return False
        return response.get("ok") is True

    # ------------------------------------------------------------------ #
    # replica selection and the per-range RPC
    # ------------------------------------------------------------------ #
    def _hedge_delay(self, worker_id: int) -> float | None:
        """Seconds after which to hedge ``worker_id``, or None (not yet)."""
        if not self.config.hedge:
            return None
        hist = registry.histogram(f"cluster.worker.{worker_id}.rpc_seconds")
        if hist is None or hist.count < self.config.hedge_min_samples:
            return None
        return max(
            hist.quantile(self.config.hedge_quantile),
            self.config.hedge_floor_ms / 1000.0,
        )

    def _latency_estimate(self, worker_id: int) -> float:
        """Median RPC latency from this worker's own history (0 = unknown)."""
        hist = registry.histogram(f"cluster.worker.{worker_id}.rpc_seconds")
        if hist is None or hist.count == 0:
            return 0.0
        return hist.quantile(0.5)

    def _candidate_key(self, worker_id: int) -> tuple[int, float]:
        """(in-flight requests, median latency): less loaded, then faster."""
        return (
            self._inflight.get(worker_id, 0),
            self._latency_estimate(worker_id),
        )

    def _release(self, worker_id: int) -> None:
        left = self._inflight.get(worker_id, 0) - 1
        if left > 0:
            self._inflight[worker_id] = left
        else:
            self._inflight.pop(worker_id, None)

    def _order_candidates(self, worker_ids: Sequence[int]) -> list[int]:
        """Power-of-two-choices over live load, latency as tiebreak.

        Sample two replicas at random and lead with the one carrying
        fewer in-flight requests (faster latency median on a tie) — the
        classic load-balancing result: the random pair breaks herding
        (every scatter picking the one "best" replica), while the
        comparison still avoids the loaded or known-slow one.
        Remaining candidates follow in the same order as failover/hedge
        targets.
        """
        if len(worker_ids) <= 1:
            return list(worker_ids)
        pool = list(worker_ids)
        a, b = random.sample(pool, 2)
        first = a if self._candidate_key(a) <= self._candidate_key(b) else b
        rest = sorted(
            (w for w in pool if w != first), key=self._candidate_key
        )
        return [first, *rest]

    async def _one_shot(self, worker_id: int, message: dict) -> dict:
        """A hedge request on a fresh connection (closed after one use)."""
        host, port = self._endpoints[worker_id]
        channel = await WorkerChannel.connect(
            host, port, timeout=self.config.connect_timeout
        )
        try:
            return await channel.call(message)
        finally:
            await channel.close()

    async def _call_range(
        self,
        shard_id: int,
        candidates: Sequence[int],
        message: dict,
        timeout: float,
    ) -> _RangeOutcome:
        """Scatter one range over its replica set; first answer wins.

        The attempt ladder: lead with the power-of-two choice; on
        ``ConnectionError`` or epoch skew fail over to the next untried
        sibling immediately; on slowness hedge a sibling after the
        leader's own latency quantile (or an even split of the budget
        before history arms).  When no sibling remains, fall back to
        the same-worker one-shot hedge the unreplicated router used.
        All attempts share one deadline and all losers are cancelled —
        exactly one response can represent the range.  Never raises;
        the gather side reads the outcome.
        """
        start = time.perf_counter()
        untried = deque(self._order_candidates(candidates))
        in_flight: dict[asyncio.Future, int] = {}
        outcome = _RangeOutcome()
        one_shot_sent = False
        launched = 0
        last_launch = start
        last_wid = -1

        def _launch_next() -> bool:
            nonlocal launched, last_launch, last_wid
            while untried:
                wid = untried.popleft()
                channel = self._channels.get(wid)
                if channel is None or channel.closed:
                    if channel is not None and wid not in outcome.dead:
                        outcome.dead.append(wid)
                    continue
                task = asyncio.ensure_future(channel.call(message))
                in_flight[task] = wid
                self._inflight[wid] = self._inflight.get(wid, 0) + 1
                launched += 1
                last_launch = time.perf_counter()
                last_wid = wid
                return True
            return False

        if not _launch_next():
            return outcome  # kind == "dead": no live replica at all
        try:
            while True:
                now = time.perf_counter()
                remaining = timeout - (now - start)
                if remaining <= 0:
                    break
                if not in_flight and not _launch_next():
                    break  # every attempt errored, nothing left to try
                # When does the *next* extra attempt launch?  A sibling
                # after the leader's hedge quantile (or an even split of
                # the budget before history arms); with no sibling left,
                # the same-worker one-shot after the quantile.
                spawn_at = None
                if untried:
                    hedge_at = self._hedge_delay(last_wid)
                    if hedge_at is not None:
                        spawn_at = last_launch + hedge_at
                    else:
                        spawn_at = start + timeout * launched / (
                            launched + len(untried)
                        )
                elif not one_shot_sent:
                    hedge_at = self._hedge_delay(last_wid)
                    if hedge_at is not None:
                        spawn_at = last_launch + hedge_at
                slice_ = remaining
                if spawn_at is not None:
                    slice_ = min(slice_, max(0.0, spawn_at - now))
                done, _pending = await asyncio.wait(
                    in_flight,
                    timeout=slice_,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    now = time.perf_counter()
                    if spawn_at is None or now < spawn_at:
                        continue  # pure deadline slice elapsed
                    if untried:
                        if _launch_next():
                            outcome.hedged = True
                            registry.inc("cluster.hedges_total")
                        continue
                    if not one_shot_sent:
                        one_shot_sent = True
                        outcome.hedged = True
                        registry.inc("cluster.hedges_total")
                        task = asyncio.ensure_future(
                            self._one_shot(last_wid, message)
                        )
                        in_flight[task] = last_wid
                        self._inflight[last_wid] = (
                            self._inflight.get(last_wid, 0) + 1
                        )
                    continue
                for task in done:
                    wid = in_flight.pop(task)
                    self._release(wid)
                    exc = task.exception()
                    if exc is None:
                        response = task.result()
                        if "error" in response:
                            if response.get("stale_epoch"):
                                # This replica ran ahead (or restarted
                                # onto a newer checkpoint); a sibling may
                                # still hold the requested epoch.
                                outcome.skewed = True
                                registry.inc("cluster.epoch_skew_total")
                                if _launch_next():
                                    outcome.failovers += 1
                                    registry.inc("cluster.failovers_total")
                                continue
                            outcome.kind = "rejected"
                            outcome.error = ClusterError(
                                f"range {shard_id} worker {wid} rejected "
                                f"the request: {response['error']}"
                            )
                            return outcome
                        latency = time.perf_counter() - start
                        registry.observe(
                            f"cluster.worker.{wid}.rpc_seconds", latency
                        )
                        registry.observe("cluster.rpc_seconds", latency)
                        outcome.kind = "ok"
                        outcome.response = response
                        outcome.latency = latency
                        outcome.served_by = wid
                        return outcome
                    if isinstance(exc, (ConnectionError, OSError)):
                        if wid not in outcome.dead:
                            outcome.dead.append(wid)
                        if _launch_next():
                            outcome.failovers += 1
                            registry.inc("cluster.failovers_total")
                        continue
                    outcome.kind = "rejected"
                    outcome.error = exc
                    return outcome
            # Budget exhausted, or every replica failed.
            if in_flight:
                outcome.kind = "deadline"
            elif outcome.skewed:
                outcome.kind = "skew"
            else:
                outcome.kind = "dead"
            return outcome
        finally:
            for task, wid in in_flight.items():
                task.cancel()
                self._release(wid)

    # ------------------------------------------------------------------ #
    # the scatter-gather search
    # ------------------------------------------------------------------ #
    async def search_batch(
        self,
        Qs: np.ndarray | Sequence[Sequence[float]],
        *,
        top: int | None = 10,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
        plan: ShardPlan | ReplicaPlan | None = None,
    ) -> ClusterResult:
        """Scatter a scaled ``(q, k)`` batch, merge exact per-query top-k.

        ``Qs`` must already be comparison-space scaled (``q̂ Σ``) — the
        service layer does this once, exactly as
        ``DocumentIndex.prepare_queries`` would.  ``probes`` asks every
        worker for the probe-bounded scan (each clips the same global
        candidate cells to its own rows); workers without a quantizer
        answer exactly, which only ever *adds* candidates to the merge.

        ``plan`` pins the epoch to scatter against (the service passes
        its request-entry handle's plan); default is the router's
        current plan, snapshotted once here — a concurrent
        :meth:`update_plan` never splits one request across epochs.
        """
        plan = as_replica_plan(plan) if plan is not None else self.plan
        Q = np.atleast_2d(np.asarray(Qs, dtype=np.float64))
        n_queries = Q.shape[0]
        timeout = (
            timeout_ms if timeout_ms is not None
            else self.config.worker_timeout_ms
        ) / 1000.0
        registry.inc("cluster.requests_total")
        message: dict = {
            "op": "score",
            "queries": Q.tolist(),
            "epoch": plan.epoch,
        }
        if self.tenant is not None:
            message["tenant"] = self.tenant
        if top is not None:
            message["top"] = int(top)
        if threshold is not None:
            message["threshold"] = float(threshold)
        if probes is not None and not exact:
            message["probes"] = int(probes)
        if exact:
            message["exact"] = True

        missing_sids: set[int] = set()
        dead_wids: set[int] = set()
        responses: dict[int, dict] = {}
        shard_timings: dict[int, float] = {}
        served_by: dict[int, int] = {}
        hedged_sids: list[int] = []
        missed_sids: list[int] = []
        failover_sids: list[int] = []
        with span(
            "cluster.scatter",
            shards=plan.n_shards,
            queries=n_queries,
        ) as scatter:
            # Carry the request's trace identity in every score frame,
            # parented under this scatter span, so worker-process spans
            # reassemble into one cluster-wide trace.
            ctx = current_trace()
            if ctx is not None:
                message["trace"] = TraceContext(
                    ctx.trace_id,
                    scatter.span_id or ctx.parent_span_id,
                ).to_wire()
            calls: dict[int, asyncio.Future] = {}
            for rset in plan.replicas:
                sid = rset.shard_id
                candidates = []
                for wid in rset.workers:
                    channel = self._channels.get(wid)
                    if channel is None:
                        continue
                    if channel.closed:
                        dead_wids.add(wid)
                    else:
                        candidates.append(wid)
                if not candidates:
                    missing_sids.add(sid)
                    continue
                calls[sid] = asyncio.ensure_future(
                    self._call_range(sid, candidates, message, timeout)
                )
            if calls:
                await asyncio.wait(calls.values())
            for sid, task in calls.items():
                outcome: _RangeOutcome = task.result()
                dead_wids.update(outcome.dead)
                if outcome.hedged:
                    hedged_sids.append(sid)
                if outcome.failovers:
                    failover_sids.append(sid)
                if outcome.kind == "ok":
                    responses[sid] = outcome.response
                    shard_timings[sid] = outcome.latency * 1000.0
                    served_by[sid] = outcome.served_by
                elif outcome.kind == "deadline":
                    # Slow is not dead: leave eviction to the heartbeat.
                    registry.inc("cluster.deadline_misses_total")
                    missing_sids.add(sid)
                    missed_sids.append(sid)
                elif outcome.kind == "skew":
                    # No replica still holds this epoch — its rows are
                    # missing from *this epoch's* answer, but the
                    # workers are healthy.
                    missing_sids.add(sid)
                elif outcome.kind == "dead":
                    missing_sids.add(sid)
                else:  # "rejected": a structural protocol error
                    raise outcome.error
            for wid in sorted(dead_wids):
                await self.detach(wid)
                if self.on_worker_dead is not None:
                    self.on_worker_dead(wid)
            # Flag degraded ranges on the scatter span itself, so the
            # assembled trace names hedges, failovers, and deadline
            # misses inline.
            if hedged_sids:
                scatter.set_attr("hedged", sorted(hedged_sids))
            if failover_sids:
                scatter.set_attr("failovers", sorted(failover_sids))
            if missed_sids:
                scatter.set_attr("deadline_missed", sorted(missed_sids))
            if missing_sids:
                scatter.set_attr("missing_shards", sorted(missing_sids))

        for sid, response in responses.items():
            if response.get("shard") != sid:
                raise ClusterError(
                    f"range {sid} answered as shard {response.get('shard')}"
                )
            if int(response.get("epoch", -1)) != plan.epoch:
                raise ClusterError(
                    f"range {sid} serves epoch {response.get('epoch')} but "
                    f"the plan covers epoch {plan.epoch}"
                )

        k = int(top) if top is not None else max(1, plan.n_documents)
        answered = sorted(responses)  # ascending range id == document order
        results: list[list[tuple[int, float]]] = []
        with span("cluster.merge", shards=len(answered), queries=n_queries):
            for qi in range(n_queries):
                per_shard = [
                    [
                        (int(i), float(s))
                        for i, s in responses[sid]["results"][qi]
                    ]
                    for sid in answered
                ]
                results.append(merge_topk(per_shard, k))

        partial = bool(missing_sids)
        if partial:
            registry.inc("cluster.partial_responses")
        missing = [
            plan.shard(sid).as_pair() for sid in sorted(missing_sids)
        ]
        return ClusterResult(
            results=results,
            partial=partial,
            missing=[(lo, hi) for lo, hi in missing],
            epoch=plan.epoch,
            shard_timings=shard_timings,
            hedged=sorted(hedged_sids),
            deadline_missed=sorted(missed_sids),
            served_by=served_by,
            failovers=sorted(failover_sids),
        )

    # ------------------------------------------------------------------ #
    # observability scatter ops (stats / trace)
    # ------------------------------------------------------------------ #
    async def _scatter_op(
        self, message: dict, *, timeout: float
    ) -> dict[int, dict]:
        """Broadcast one op to every live worker; best-effort gather.

        A worker that fails or times out is simply absent from the
        result — observability must never take the serving path down.
        """
        wids = self.live_shards()

        async def _one(wid: int) -> dict | None:
            channel = self._channels.get(wid)
            if channel is None or channel.closed:
                return None
            try:
                return await asyncio.wait_for(
                    channel.call(dict(message)), timeout
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                return None

        answers = await asyncio.gather(*(_one(wid) for wid in wids))
        return {
            wid: response
            for wid, response in zip(wids, answers)
            if isinstance(response, dict) and "error" not in response
        }

    async def broadcast_bump(
        self, plan: ShardPlan | ReplicaPlan, *, timeout: float = 30.0
    ) -> dict[int, int]:
        """Tell every live worker to remap onto ``plan``'s checkpoint.

        Workers receive the underlying *shard* plan (their contract is
        rows, not placement).  Returns ``{worker_id: acked_epoch}`` for
        workers that remapped (or already held the epoch).  A worker
        that fails, rejects, or times out is simply absent — the epoch
        only *publishes* once a quorum of every range's replicas acked
        (the supervisor tracks that), and the primary writer re-bumps
        laggards each poll.  The timeout is generous: a remap is
        O(header) mmap opens plus one shard's coordinate
        materialization.
        """
        plan = as_replica_plan(plan)
        responses = await self._scatter_op(
            {"op": BUMP_OP, "plan": plan.base.to_json()}, timeout=timeout
        )
        acked = {
            wid: int(response["epoch"])
            for wid, response in responses.items()
            if response.get("ok") and response.get("epoch") == plan.epoch
        }
        registry.inc("cluster.bump_broadcasts_total")
        if len(acked) < len(self.live_shards()):
            registry.inc("cluster.bump_laggards_total")
        return acked

    async def fetch_stats(self, *, timeout: float = 2.0) -> dict[int, dict]:
        """Every live worker's registry snapshot, keyed by worker id."""
        responses = await self._scatter_op({"op": "stats"}, timeout=timeout)
        return {
            wid: response["snapshot"]
            for wid, response in responses.items()
            if isinstance(response.get("snapshot"), dict)
        }

    async def fetch_trace(
        self, trace_id: str, *, timeout: float = 2.0
    ) -> dict[int, list[dict]]:
        """Every live worker's spans for ``trace_id``, keyed by worker id."""
        responses = await self._scatter_op(
            {"op": "trace", "trace_id": trace_id}, timeout=timeout
        )
        return {
            wid: [s for s in response.get("spans", []) if isinstance(s, dict)]
            for wid, response in responses.items()
            if isinstance(response.get("spans"), list)
        }
