"""Tests for the parallel/blocked execution helpers."""

import numpy as np
import pytest

from repro.core.query import project_query
from repro.core.similarity import cosine_similarities
from repro.errors import ShapeError
from repro.parallel import (
    blocked_cosine_scores,
    blocked_fold_in,
    merge_topk,
    parallel_map,
    shard_documents,
    sharded_search,
)
from repro.updating import fold_in_documents


# --------------------------------------------------------------------- #
# pool
# --------------------------------------------------------------------- #
def test_parallel_map_preserves_order():
    items = list(range(50))
    assert parallel_map(lambda x: x * x, items, workers=4) == [
        x * x for x in items
    ]


def test_parallel_map_sequential_fallback():
    assert parallel_map(str, [1, 2], workers=None) == ["1", "2"]
    assert parallel_map(str, [1, 2], workers=1) == ["1", "2"]
    assert parallel_map(str, [], workers=8) == []


def test_parallel_map_propagates_exceptions():
    def boom(x):
        raise ValueError(f"bad {x}")

    with pytest.raises(ValueError):
        parallel_map(boom, [1, 2, 3], workers=3)


# --------------------------------------------------------------------- #
# blocked scoring / fold-in
# --------------------------------------------------------------------- #
def test_blocked_cosine_matches_flat(med_model):
    qhat = project_query(med_model, "age blood abnormalities")
    flat = cosine_similarities(med_model, qhat)
    for block in (1, 3, 14, 100):
        blocked = blocked_cosine_scores(med_model, qhat, block=block)
        assert np.allclose(blocked, flat)


def test_blocked_cosine_with_workers(med_model):
    qhat = project_query(med_model, "age blood abnormalities")
    flat = cosine_similarities(med_model, qhat)
    blocked = blocked_cosine_scores(med_model, qhat, block=4, workers=3)
    assert np.allclose(blocked, flat)


def test_blocked_cosine_validation(med_model):
    with pytest.raises(ShapeError):
        blocked_cosine_scores(med_model, np.ones(5))
    with pytest.raises(ShapeError):
        blocked_cosine_scores(med_model, np.ones(2), block=0)


def test_blocked_fold_in_matches_plain(med_model, rng):
    counts = rng.integers(0, 3, (18, 10)).astype(float)
    ids = [f"N{i}" for i in range(10)]
    plain = fold_in_documents(med_model, counts, ids)
    blocked = blocked_fold_in(med_model, counts, ids, block=3)
    assert np.allclose(plain.V, blocked.V)
    assert plain.doc_ids == blocked.doc_ids


def test_blocked_fold_in_validation(med_model):
    with pytest.raises(ShapeError):
        blocked_fold_in(med_model, np.zeros((18, 2)), ["only-one"])


# --------------------------------------------------------------------- #
# sharding
# --------------------------------------------------------------------- #
def test_shard_documents_partition():
    shards = shard_documents(10, 3)
    assert len(shards) == 3
    joined = np.concatenate(shards)
    assert np.array_equal(joined, np.arange(10))
    with pytest.raises(ShapeError):
        shard_documents(10, 0)
    with pytest.raises(ShapeError):
        shard_documents(-1, 2)


def test_shard_more_shards_than_docs():
    shards = shard_documents(2, 5)
    assert sum(s.size for s in shards) == 2


def test_merge_topk():
    a = [(0, 0.9), (1, 0.5)]
    b = [(2, 0.7), (3, 0.1)]
    merged = merge_topk([a, b], 3)
    assert merged == [(0, 0.9), (2, 0.7), (1, 0.5)]
    with pytest.raises(ShapeError):
        merge_topk([a], 0)


def test_merge_topk_tie_order_matches_flat_stable_argsort():
    """Property: merging per-shard stable top-k lists reproduces the flat
    stable argsort exactly — indices, scores, AND tie order — for scores
    drawn from a tiny value set, so duplicates straddle shard boundaries
    constantly."""
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.parallel.sharding import shard_bounds
    from repro.serving.topk import topk_indices

    @settings(max_examples=200, deadline=None)
    @given(
        scores=st.lists(
            st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
            min_size=1,
            max_size=60,
        ),
        shards=st.integers(min_value=1, max_value=7),
        top=st.integers(min_value=1, max_value=70),
    )
    def check(scores, shards, top):
        s = np.asarray(scores, dtype=np.float64)
        per_shard = []
        for lo, hi in shard_bounds(s.size, shards):
            chunk = s[lo:hi]
            order = topk_indices(chunk, min(top, chunk.size))
            per_shard.append([(lo + int(j), float(chunk[j])) for j in order])
        merged = merge_topk(per_shard, top)
        flat_order = np.argsort(-s, kind="stable")[:top]
        assert merged == [(int(j), float(s[j])) for j in flat_order]

    check()


def test_sharded_search_matches_flat(med_model):
    qhat = project_query(med_model, "age blood abnormalities")
    flat = cosine_similarities(med_model, qhat)
    order = np.argsort(-flat, kind="stable")[:5]
    expected = [(int(j), pytest.approx(float(flat[j]))) for j in order]
    for shards in (1, 2, 5):
        got = sharded_search(med_model, qhat, shards=shards, top=5)
        assert [g[0] for g in got] == [e[0] for e in expected]
        for (gj, gc), (ej, ec) in zip(got, expected):
            assert gc == ec


def test_sharded_search_with_workers(med_model):
    qhat = project_query(med_model, "age blood abnormalities")
    a = sharded_search(med_model, qhat, shards=3, top=4, workers=None)
    b = sharded_search(med_model, qhat, shards=3, top=4, workers=3)
    assert a == b
