"""Noisy input (§5.4): OCR-robust retrieval and LSI spelling correction.

Run:  python examples/noisy_input_and_spelling.py

Part 1 corrupts a collection at the paper's 8.8% word error rate and
shows LSI retrieval is barely disturbed.  Part 2 builds Kukich's n-gram
× word LSI matrix and corrects misspellings by nearest-word lookup.
"""

from repro.apps import SpellingCorrector, noisy_retrieval_experiment
from repro.corpus import SyntheticSpec, topic_collection
from repro.corpus.noise import ocr_corrupt


def main() -> None:
    # ---- Part 1: retrieving imperfectly recognized text --------------- #
    col = topic_collection(
        SyntheticSpec(
            n_topics=5, docs_per_topic=15, doc_length=50,
            concepts_per_topic=12, synonyms_per_concept=3,
            queries_per_topic=2, query_length=3, query_synonym_shift=0.5,
        ),
        seed=17,
    )
    sample = col.documents[0][:70]
    print("clean scan:    ", sample)
    print("noisy scan:    ", ocr_corrupt(sample, 0.3, seed=1))

    result = noisy_retrieval_experiment(
        col, k=12, word_error_rate=0.088, seed=3
    )
    print(f"\nword error rate 8.8% (the pen-machine study's rate):")
    for engine in ("lsi", "keyword"):
        clean = result["clean"][engine]["mean_metric"]
        noisy = result["noisy"][engine]["mean_metric"]
        print(f"  {engine:<8s} clean {clean:.3f} → noisy {noisy:.3f} "
              f"({result[f'{engine}_degradation_pct']:+.1f}%)")
    print("(the paper: LSI 'was not disrupted' — the correctly spelled "
          "context words carry the meaning)")

    # ---- Part 2: spelling correction ---------------------------------- #
    lexicon = [
        "culture", "discharge", "patients", "pressure", "abnormalities",
        "depressed", "oestrogen", "generation", "behavior", "disease",
        "blood", "study", "respect", "christmas", "hospital", "kidney",
    ]
    corrector = SpellingCorrector(lexicon, ngram_sizes=(1, 2))
    print(f"\nspelling corrector over {len(lexicon)} words "
          "(rows = unigrams+bigrams, columns = words):")
    for wrong in ("pressre", "cultre", "dizease", "hospitl", "pacients"):
        suggestions = corrector.suggest(wrong, top=2)
        pretty = ", ".join(f"{w} ({c:.2f})" for w, c in suggestions)
        print(f"  {wrong:<10s} → {pretty}")


if __name__ == "__main__":
    main()
