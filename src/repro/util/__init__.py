"""Shared utilities: seeded RNG discipline, validation helpers, timing."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import (
    check_axis,
    check_dense_matrix,
    check_positive,
    check_shape_match,
    check_vector,
)
from repro.util.timing import Stopwatch, format_seconds

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_axis",
    "check_dense_matrix",
    "check_positive",
    "check_shape_match",
    "check_vector",
    "Stopwatch",
    "format_seconds",
]
