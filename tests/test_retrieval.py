"""Tests for the retrieval engines, feedback, and filtering."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.retrieval import (
    FilteringProfile,
    KeywordRetrieval,
    LSIRetrieval,
    mean_relevant_query,
    replace_with_relevant,
    rocchio,
    stream_filter,
)
from repro.retrieval.engine import RetrievalEngine


# --------------------------------------------------------------------- #
# keyword engine
# --------------------------------------------------------------------- #
def test_keyword_scores_shape(small_collection):
    kw = KeywordRetrieval.from_texts(small_collection.documents)
    s = kw.scores(small_collection.queries[0])
    assert s.shape == (small_collection.n_documents,)
    assert np.all(s >= -1e-12) and np.all(s <= 1 + 1e-12)


def test_keyword_exact_match_scores_one():
    kw = KeywordRetrieval.from_texts(["apple banana", "cherry durian"])
    top = kw.search("apple banana", top=1)
    assert top[0][1] == pytest.approx(1.0)
    assert top[0][0] == 0


def test_keyword_disjoint_query_scores_zero():
    kw = KeywordRetrieval.from_texts(["apple banana", "cherry"])
    assert np.allclose(kw.scores("zebra xylophone"), 0.0)


def test_keyword_search_filters(small_collection):
    kw = KeywordRetrieval.from_texts(small_collection.documents)
    q = small_collection.queries[0]
    assert len(kw.search(q, top=5)) == 5
    thr = kw.search(q, threshold=0.5)
    assert all(c >= 0.5 for _, c in thr)


def test_keyword_matching_documents_boolean():
    kw = KeywordRetrieval.from_texts(["apple pie", "banana split", "apple cake"])
    assert kw.matching_documents("apple") == {0, 2}
    assert kw.matching_documents("zzz") == set()


def test_keyword_conforms_to_protocol(small_collection):
    kw = KeywordRetrieval.from_texts(small_collection.documents)
    assert isinstance(kw, RetrievalEngine)


# --------------------------------------------------------------------- #
# LSI engine
# --------------------------------------------------------------------- #
def test_lsi_engine_basics(small_collection, small_lsi):
    eng = LSIRetrieval(small_lsi)
    assert isinstance(eng, RetrievalEngine)
    assert eng.n_documents == small_collection.n_documents
    assert eng.k == 8
    s = eng.scores(small_collection.queries[0])
    assert s.shape == (small_collection.n_documents,)


def test_lsi_from_texts(small_collection):
    eng = LSIRetrieval.from_texts(small_collection.documents, 6)
    assert eng.k == 6


def test_lsi_with_k_truncates(small_collection, small_lsi):
    eng = LSIRetrieval(small_lsi)
    eng4 = eng.with_k(4)
    assert eng4.k == 4
    # Rankings differ in general between k=8 and k=4.
    q = small_collection.queries[0]
    assert not np.allclose(eng.scores(q), eng4.scores(q))


def test_lsi_unknown_query_words_score_zero(small_lsi):
    s = LSIRetrieval(small_lsi).scores("qqq www zzz")
    assert np.allclose(s, 0.0)


def test_lsi_beats_keyword_under_synonymy(small_collection, small_lsi):
    """The §5.1 core claim on the synthetic collection."""
    from repro.evaluation import compare_engines

    lsi = LSIRetrieval(small_lsi)
    kw = KeywordRetrieval.from_texts(
        small_collection.documents, scheme="log_entropy"
    )
    cmp = compare_engines(lsi, kw, small_collection)
    assert cmp.improvement_pct > 0


# --------------------------------------------------------------------- #
# relevance feedback
# --------------------------------------------------------------------- #
def test_replace_with_relevant_places_query_on_document(small_lsi):
    q2 = replace_with_relevant(small_lsi, [3])
    # the new query is exactly document 3's position (up to Σ scaling)
    assert np.allclose(q2 * small_lsi.s, small_lsi.V[3] * small_lsi.s)


def test_mean_relevant_query_first_three(small_lsi):
    q3 = mean_relevant_query(small_lsi, [0, 1, 2, 3, 4], first=3)
    manual = (small_lsi.V[:3] * small_lsi.s).mean(axis=0) / small_lsi.s
    assert np.allclose(q3, manual)


def test_feedback_validation(small_lsi):
    with pytest.raises(ShapeError):
        replace_with_relevant(small_lsi, [])
    with pytest.raises(ShapeError):
        mean_relevant_query(small_lsi, [])
    with pytest.raises(ShapeError):
        replace_with_relevant(small_lsi, [10_000])


def test_feedback_improves_retrieval():
    """Replacing the query with relevant documents must improve the
    paper's metric on average (the +33%/+67% §5.1 claim, direction).

    Uses a deliberately hard collection (single-word queries, maximal
    synonym shift) so the baseline is off the ceiling and improvement is
    measurable.
    """
    from repro.core import fit_lsi
    from repro.corpus import SyntheticSpec, topic_collection
    from repro.evaluation.metrics import three_point_average_precision

    col = topic_collection(
        SyntheticSpec(
            n_topics=6, docs_per_topic=12, doc_length=30,
            concepts_per_topic=12, synonyms_per_concept=4,
            queries_per_topic=2, query_length=1, query_synonym_shift=1.0,
            polysemy=0.3, background_vocab=30, background_rate=0.3,
        ),
        seed=11,
    )
    model = fit_lsi(col.documents, k=10, scheme="log_entropy", seed=0)
    eng = LSIRetrieval(model)
    base_scores, fb_scores = [], []
    for qi, query in enumerate(col.queries):
        rel = sorted(col.relevant(qi))
        base_rank = [j for j, _ in eng.search(query)]
        base_scores.append(
            three_point_average_precision(base_rank, set(rel))
        )
        qfb = mean_relevant_query(model, rel, first=3)
        fb_rank = [
            j for j, _ in sorted(
                enumerate(eng.scores_for_vector(qfb)), key=lambda t: -t[1]
            )
        ]
        fb_scores.append(three_point_average_precision(fb_rank, set(rel)))
    assert np.mean(base_scores) < 0.999  # baseline genuinely off-ceiling
    assert np.mean(fb_scores) > np.mean(base_scores)


def test_rocchio_moves_toward_relevant(small_collection, small_lsi):
    from repro.core import project_query

    q = project_query(small_lsi, small_collection.queries[0])
    rel = sorted(small_collection.relevant(0))[:3]
    q2 = rocchio(small_lsi, q, rel, alpha=0.0, beta=1.0)
    expected = mean_relevant_query(small_lsi, rel)
    assert np.allclose(q2, expected)
    with pytest.raises(ShapeError):
        rocchio(small_lsi, np.ones(3), rel)


def test_rocchio_negative_feedback_moves_away(small_lsi):
    from repro.core.similarity import cosine_similarities

    q = small_lsi.V[0].copy()
    nonrel = [5]
    q2 = rocchio(small_lsi, q, [], nonrelevant=nonrel, alpha=1.0, gamma=0.5)
    before = cosine_similarities(small_lsi, q)[5]
    after = cosine_similarities(small_lsi, q2)[5]
    assert after < before


# --------------------------------------------------------------------- #
# filtering
# --------------------------------------------------------------------- #
def test_profile_from_query_and_from_documents(small_collection, small_lsi):
    p1 = FilteringProfile.from_query(small_lsi, small_collection.queries[0])
    assert p1.vector.shape == (small_lsi.k,)
    rel = sorted(small_collection.relevant(0))[:3]
    p2 = FilteringProfile.from_relevant_documents(small_lsi, rel)
    assert p2.vector.shape == (small_lsi.k,)
    with pytest.raises(ShapeError):
        FilteringProfile.from_relevant_documents(small_lsi, [])
    with pytest.raises(ShapeError):
        FilteringProfile(small_lsi, np.ones(3))


def test_stream_filter_ranks_relevant_first(small_collection, small_lsi):
    rel = sorted(small_collection.relevant(0))
    profile = FilteringProfile.from_relevant_documents(small_lsi, rel[:3])
    # Stream = the collection's own documents; relevant ones must surface.
    ranked = stream_filter(profile, small_collection.documents)
    top10 = {i for i, _ in ranked[:10]}
    assert len(top10 & set(rel)) >= 5


def test_stream_filter_threshold(small_collection, small_lsi):
    profile = FilteringProfile.from_query(
        small_lsi, small_collection.queries[0]
    )
    recs = stream_filter(
        profile, small_collection.documents, threshold=0.9
    )
    assert all(c >= 0.9 for _, c in recs)


def test_relevant_doc_profile_beats_query_profile(small_collection, small_lsi):
    """Dumais & Foltz: profiles from known relevant documents are the
    most effective representation."""
    from repro.evaluation.metrics import average_precision

    def ap_for(profile, qi):
        ranked = stream_filter(profile, small_collection.documents)
        return average_precision(
            [i for i, _ in ranked], small_collection.relevant(qi)
        )

    gains = []
    for qi, query in enumerate(small_collection.queries):
        rel = sorted(small_collection.relevant(qi))
        pq = FilteringProfile.from_query(small_lsi, query)
        pd = FilteringProfile.from_relevant_documents(small_lsi, rel[:3])
        gains.append(ap_for(pd, qi) - ap_for(pq, qi))
    assert np.mean(gains) > 0
