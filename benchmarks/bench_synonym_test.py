"""§5.4 (Modeling Human Memory) — the TOEFL synonym test.

Regenerates: "LSI scored 64% correct, compared with 33% correct for
word-overlap methods, and 64% correct for the average student" — the
80-item 4-alternative test answered by term-vector similarity vs by
document co-occurrence counting.  Times the LSI test run.
"""

from conftest import emit
from repro.apps import run_synonym_test, word_overlap_baseline
from repro.core import fit_lsi
from repro.corpus import synonym_test
from repro.text import build_tdm


def test_toefl_synonym_test(benchmark):
    st = synonym_test(n_items=80, seed=21)
    model = fit_lsi(st.documents, k=40, scheme="log_entropy", seed=0)
    tdm = build_tdm(st.documents)

    lsi = benchmark(run_synonym_test, model, st)
    overlap = word_overlap_baseline(tdm, st)

    rows = [
        f"items: {lsi.n_items} (TOEFL uses 80), 4 alternatives each",
        f"LSI term-vector method : {lsi.n_correct}/{lsi.n_items} "
        f"({100 * lsi.accuracy:.0f}%)   [paper: 64%]",
        f"word-overlap baseline  : {overlap.n_correct}/{overlap.n_items} "
        f"({100 * overlap.accuracy:.0f}%)   [paper: 33%; chance: 25%]",
    ]
    emit("§5.4 — TOEFL synonym test", rows)

    # Shape claims: LSI far above chance and far above overlap; overlap
    # near chance (synonyms rarely co-occur, by construction and nature).
    assert lsi.accuracy > 0.55
    assert overlap.accuracy < 0.45
    assert lsi.accuracy - overlap.accuracy > 0.2
