"""Table 7 — flop-count models of the updating methods.

The paper compares methods by required floating-point operations.  Two
entries are printed unambiguously:

* folding-in ``p`` documents: ``2mkp``
* folding-in ``q`` terms: ``2nkq``

and the text pins the dominant SVD-updating term: "The expense in
SVD-updating can be attributed to the O(2k²m + 2k²n) flops associated
with the dense matrix multiplications involving U_k and V_k in Equation
(13)."  The iterative part of every SVD-based entry follows the paper's
general sparse-SVD cost ``I × cost(GᵀGx) + trp × cost(Gx)`` with
``cost(Gx) = 2·nnz(G)``.

The detailed per-phase coefficients in the printed Table 7 are damaged in
the available text; the reconstructions below keep the printed structure
(an ``I``-proportional Lanczos term over the small update matrix, a
``trp``-proportional extraction term, and the ``(2k² − k)(m+n)`` dense
rotation term) and are validated *empirically* against measured matvec
and flop counts in ``benchmarks/bench_table7_complexity.py`` — the
reproduction target is the crossover structure (who is cheaper when),
which these formulas determine, not the garbled constant factors.
"""

from __future__ import annotations

__all__ = [
    "fold_documents_flops",
    "fold_terms_flops",
    "svd_update_documents_flops",
    "svd_update_terms_flops",
    "svd_update_correction_flops",
    "recompute_flops",
    "default_iterations",
]


def default_iterations(k: int) -> int:
    """Rule-of-thumb Lanczos iteration count for k accepted triplets.

    Full-reorthogonalization Lanczos typically needs a small multiple of
    ``k`` iterations; the benches also measure the real count.
    """
    return max(2 * k, k + 16)


def fold_documents_flops(m: int, k: int, p: int) -> int:
    """Table 7, "Folding-in documents": ``2mkp``.

    One dense product ``Dᵀ U_k`` (2·m·k per column) dominates; the
    ``Σ_k⁻¹`` scaling is lower order and ignored, as in the paper.
    """
    return 2 * m * k * p


def fold_terms_flops(n: int, k: int, q: int) -> int:
    """Table 7, "Folding-in terms": ``2nkq``."""
    return 2 * n * k * q


def _dense_rotation_flops(m: int, n: int, k: int) -> int:
    """The ``(2k² − k)(m + n)`` term shared by all SVD-updating phases —
    rotating ``U_k`` and ``V_k`` by the small SVD's factors (Eq. 13)."""
    return (2 * k * k - k) * (m + n)


def svd_update_documents_flops(
    m: int, n: int, k: int, p: int, nnz_d: int,
    *, iterations: int | None = None, trp: int | None = None,
) -> int:
    """Table 7, "SVD-updating documents" (reconstructed; see module doc).

    Three components:

    * one-time projection ``U_kᵀ D`` — ``2·nnz(D)·k`` flops;
    * the SVD of the small core ``F = (Σ_k | U_kᵀD)``, ``k × (k+p)``:
      ``I`` Gram products at ``4·k·(k+p)`` each plus ``trp`` extractions
      at ``2·k·(k+p)``;
    * the dense rotations of ``U_k`` and ``V_k`` (Eq. 13) —
      ``(2k² − k)(m + n + p)``, the term the paper singles out as the
      expense of SVD-updating.
    """
    i = default_iterations(k) if iterations is None else iterations
    t = k if trp is None else trp
    core = k * (k + p)
    return (
        2 * nnz_d * k
        + i * 4 * core
        + t * 2 * core
        + _dense_rotation_flops(m, n + p, k)
    )


def svd_update_terms_flops(
    m: int, n: int, k: int, q: int, nnz_t: int,
    *, iterations: int | None = None, trp: int | None = None,
) -> int:
    """Table 7, "SVD-updating terms" (reconstructed): projection
    ``T V_k`` once, small-core SVD of ``H = [Σ_k ; T V_k]``, rotations."""
    i = default_iterations(k) if iterations is None else iterations
    t = k if trp is None else trp
    core = k * (k + q)
    return (
        2 * nnz_t * k
        + i * 4 * core
        + t * 2 * core
        + _dense_rotation_flops(m + q, n, k)
    )


def svd_update_correction_flops(
    m: int, n: int, k: int, j: int, nnz_z: int,
    *, iterations: int | None = None, trp: int | None = None,
) -> int:
    """Table 7, "SVD-updating correction step" (reconstructed).

    Forming ``Q = Σ_k + (U_kᵀY_j)(Z_jᵀV_k)`` costs ``2mj·[selection] +
    2·nnz(Z)·k [projection] + 2k²j [small product]``; then the k×k core
    SVD and the dense rotations.
    """
    i = default_iterations(k) if iterations is None else iterations
    t = k if trp is None else trp
    core = k * k
    return (
        2 * m * j
        + 2 * nnz_z * k
        + 2 * k * k * j
        + i * 4 * core
        + t * 2 * core
        + _dense_rotation_flops(m, n, k)
    )


def recompute_flops(
    nnz_total: int, k: int,
    *, iterations: int | None = None, trp: int | None = None,
) -> int:
    """Table 7, "Recomputing the SVD": the paper's general sparse cost
    over the *whole* reconstructed ``(m+q) × (n+p)`` matrix::

        I × 4·nnz(Ã)  +  trp × 2·nnz(Ã)
    """
    i = default_iterations(k) if iterations is None else iterations
    t = k if trp is None else trp
    return i * 4 * nnz_total + t * 2 * nnz_total
