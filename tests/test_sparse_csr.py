"""Unit tests for the CSR format and its kernels."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import CSRMatrix, from_dense


@pytest.fixture
def dense(rng):
    return rng.random((9, 6)) * (rng.random((9, 6)) < 0.5)


@pytest.fixture
def csr(dense):
    return from_dense(dense).to_csr()


def test_format_invariants_validated():
    with pytest.raises(SparseFormatError):
        CSRMatrix((2, 2), [0, 1], [0], [1.0])  # indptr too short
    with pytest.raises(SparseFormatError):
        CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 1.0])  # decreasing
    with pytest.raises(SparseFormatError):
        CSRMatrix((2, 2), [0, 1, 2], [0, 5], [1.0, 1.0])  # col oob
    with pytest.raises(SparseFormatError):
        CSRMatrix((2, 2), [1, 1, 2], [0, 1], [1.0, 1.0])  # indptr[0] != 0


def test_matvec_matches_dense(dense, csr, rng):
    x = rng.standard_normal(6)
    assert np.allclose(csr.matvec(x), dense @ x)
    assert np.allclose(csr @ x, dense @ x)


def test_rmatvec_matches_dense(dense, csr, rng):
    y = rng.standard_normal(9)
    assert np.allclose(csr.rmatvec(y), dense.T @ y)


def test_matmat_matches_dense(dense, csr, rng):
    X = rng.standard_normal((6, 21))
    assert np.allclose(csr.matmat(X), dense @ X)
    assert np.allclose(csr @ X, dense @ X)


def test_matmat_chunking_boundary(dense, csr, rng):
    from repro.sparse.ops import csr_matmat

    X = rng.standard_normal((6, 33))
    assert np.allclose(csr_matmat(csr, X, chunk=4), dense @ X)
    assert np.allclose(csr_matmat(csr, X, chunk=33), dense @ X)


def test_matvec_shape_validation(csr):
    with pytest.raises(ShapeError):
        csr.matvec(np.zeros(5))
    with pytest.raises(ShapeError):
        csr @ np.zeros((2, 2, 2))


def test_empty_rows_handled():
    d = np.zeros((4, 3))
    d[1, 2] = 7.0
    c = from_dense(d).to_csr()
    assert np.allclose(c.matvec(np.ones(3)), d @ np.ones(3))
    assert np.allclose(c.row_nnz(), [0, 1, 0, 0])


def test_scale_rows_and_cols(dense, csr):
    s_r = np.arange(1.0, 10.0)
    s_c = np.arange(1.0, 7.0)
    assert np.allclose(csr.scale_rows(s_r).to_dense(), dense * s_r[:, None])
    assert np.allclose(csr.scale_cols(s_c).to_dense(), dense * s_c[None, :])
    with pytest.raises(ShapeError):
        csr.scale_rows(np.ones(3))
    with pytest.raises(ShapeError):
        csr.scale_cols(np.ones(9))


def test_row_and_col_sums(dense, csr):
    assert np.allclose(csr.row_sums(), dense.sum(axis=1))
    assert np.allclose(csr.col_sums(), dense.sum(axis=0))


def test_row_slice(dense, csr):
    cols, vals = csr.row_slice(2)
    rebuilt = np.zeros(6)
    rebuilt[cols] = vals
    assert np.allclose(rebuilt, dense[2])
    with pytest.raises(ShapeError):
        csr.row_slice(100)


def test_select_rows_order_and_repeats(dense, csr):
    rows = np.array([3, 0, 3])
    sub = csr.select_rows(rows)
    assert np.allclose(sub.to_dense(), dense[rows])
    with pytest.raises(ShapeError):
        csr.select_rows([99])


def test_transpose_is_o1_and_correct(dense, csr):
    t = csr.T
    assert t.shape == (6, 9)
    assert np.allclose(t.to_dense(), dense.T)
    # shares the underlying buffer — O(1)
    assert np.shares_memory(t.data, csr.data)


def test_expanded_rows_cached(csr):
    a = csr.expanded_rows()
    b = csr.expanded_rows()
    assert a is b


def test_immutability(csr):
    with pytest.raises(AttributeError):
        csr.data = None


def test_map_data(csr, dense):
    doubled = csr.map_data(lambda d: d * 2)
    assert np.allclose(doubled.to_dense(), dense * 2)
