"""Admission control: bounded queue, deadlines, backpressure, drain.

Under overload a naive async server accepts everything and dies of
unbounded queue growth; the production-correct behaviour is to bound
the number of admitted-but-unfinished requests and reject the rest
*fast* (a 429 costs microseconds, a timed-out request costs the
client's whole patience).  :class:`AdmissionController` is that bound:
one counter of requests admitted and not yet released, checked before a
request may enter the batching queue, plus the drain latch shutdown
flips so new work is refused (503) while queued work finishes.

Everything here runs on the event-loop thread, so plain ints suffice —
no locks on the admission fast path.
"""

from __future__ import annotations

import time

from repro.errors import ServerOverloadError
from repro.obs.metrics import registry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded admission with per-request deadlines and a drain latch."""

    def __init__(self, queue_depth: int = 256):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth
        self._pending = 0
        self._draining = False

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Requests admitted and not yet released."""
        return self._pending

    @property
    def draining(self) -> bool:
        """Whether the drain latch has been flipped."""
        return self._draining

    def begin_drain(self) -> None:
        """Refuse all new work from now on (queued work still finishes)."""
        self._draining = True
        registry.set_gauge("server.draining", 1.0)

    # ------------------------------------------------------------------ #
    def admit(self) -> None:
        """Admit one request or raise :class:`ServerOverloadError`.

        The queue-full rejection is the backpressure path: it keeps the
        service's memory bounded at ``queue_depth`` outstanding requests
        no matter the offered load.
        """
        if self._draining:
            registry.inc("server.rejected_draining")
            raise ServerOverloadError(
                "server is draining and accepts no new requests",
                reason="draining",
            )
        if self._pending >= self.queue_depth:
            registry.inc("server.rejected_queue_full")
            raise ServerOverloadError(
                f"request queue is full ({self.queue_depth} outstanding)",
                reason="queue_full",
            )
        self._pending += 1
        registry.set_gauge("server.queue_depth", self._pending)

    def release(self) -> None:
        """Mark one admitted request finished (success or failure)."""
        self._pending -= 1
        registry.set_gauge("server.queue_depth", self._pending)

    @staticmethod
    def deadline_from(timeout_ms: float | None) -> float | None:
        """Absolute monotonic deadline for a relative timeout (or None)."""
        if timeout_ms is None:
            return None
        return time.monotonic() + max(0.0, float(timeout_ms)) / 1000.0
