"""NETLIB-like corpus: routine descriptions for fuzzy code search.

§5.4: "LSI has been incorporated as a fuzzy search option in NETLIB for
retrieving algorithms, code descriptions, and short articles from the
NA-Digest electronic newsletter."

The generator emits a catalogue of numerical "routines": a cryptic name
(the dgesvd/saxpy naming tradition), a one-line description using
domain jargon, and a longer digest-style entry.  Queries are the way
users actually ask — by *task*, in words that rarely match the routine
name and only partly match the description — so exact-name lookup fails
and lexical matching is weak, which is what made LSI the "fuzzy"
option.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.collection import TestCollection
from repro.util.rng import ensure_rng

__all__ = ["NetlibCatalogue", "netlib_catalogue"]

#: Task families: (name stem, jargon vocabulary, user-query vocabulary).
#: Jargon and user wording deliberately overlap only partially — the
#: synonymy gap that motivates fuzzy search.
_FAMILIES = [
    ("gesvd", ["singular", "value", "decomposition", "bidiagonal",
               "orthogonal", "factorization"],
     ["svd", "factorize", "matrix", "spectrum", "decompose"]),
    ("gels", ["least", "squares", "overdetermined", "residual",
              "minimum", "norm"],
     ["regression", "fit", "line", "best", "approximation"]),
    ("getrf", ["lu", "factorization", "pivoting", "gaussian",
               "elimination", "triangular"],
     ["solve", "linear", "system", "equations", "inverse"]),
    ("geev", ["eigenvalue", "eigenvector", "hessenberg", "schur",
              "spectrum", "balancing"],
     ["modes", "stability", "vibration", "characteristic", "roots"]),
    ("fftpk", ["fourier", "transform", "discrete", "radix",
               "frequency", "convolution"],
     ["spectrum", "signal", "periodic", "filter", "frequencies"]),
    ("odepk", ["ordinary", "differential", "runge", "kutta",
               "stiff", "integrator"],
     ["simulate", "dynamics", "trajectory", "time", "stepping"]),
    ("quadp", ["quadrature", "adaptive", "integrand", "gauss",
               "panel", "tolerance"],
     ["integrate", "area", "curve", "numeric", "integral"]),
    ("sparsk", ["sparse", "compressed", "row", "storage",
                "iterative", "preconditioner"],
     ["large", "matrix", "memory", "efficient", "solver"]),
]


@dataclass
class NetlibCatalogue:
    """The generated catalogue.

    Attributes
    ----------
    names:
        Routine names (e.g. ``dgesvd3``), one per entry.
    descriptions:
        The routine texts (name + jargon description).
    entry_family:
        Family index of each routine entry.
    digests:
        NA-Digest-style articles: user-phrased discussion that mentions
        routine names and jargon.  These are what lets LSI bridge user
        wording to catalogue jargon — in the real NETLIB, the newsletter
        articles play exactly this role.
    queries:
        Task-phrased user queries.
    query_family:
        Family index each query targets.
    """

    names: list[str]
    descriptions: list[str]
    entry_family: list[int]
    queries: list[str]
    query_family: list[int]
    digests: list[str] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.digests is None:
            self.digests = []

    def collection(self) -> TestCollection:
        """As a test collection: relevant = same-family routines."""
        rel = [
            {j for j, fam in enumerate(self.entry_family) if fam == qf}
            for qf in self.query_family
        ]
        return TestCollection(
            documents=list(self.descriptions),
            queries=list(self.queries),
            relevance=rel,
            doc_ids=list(self.names),
            name="netlib-like",
        )


def netlib_catalogue(
    *,
    variants_per_family: int = 5,
    queries_per_family: int = 2,
    description_length: int = 25,
    digests_per_family: int = 6,
    digest_length: int = 40,
    query_length: int = 3,
    seed=0,
) -> NetlibCatalogue:
    """Generate the catalogue (precisions: d/s prefixes, version digits).

    Digest articles mix user wording with the family's jargon and
    routine names — the co-occurrence bridge fuzzy search exploits.
    """
    rng = ensure_rng(seed)
    names, descriptions, entry_family = [], [], []
    for fam_idx, (stem, jargon, _user) in enumerate(_FAMILIES):
        for v in range(variants_per_family):
            prefix = "ds"[int(rng.integers(2))]
            name = f"{prefix}{stem}{v}"
            tokens = [name]
            for _ in range(description_length):
                tokens.append(jargon[int(rng.integers(len(jargon)))])
            names.append(name)
            descriptions.append(" ".join(tokens))
            entry_family.append(fam_idx)

    digests: list[str] = []
    for fam_idx, (stem, jargon, user) in enumerate(_FAMILIES):
        fam_names = [
            n for n, f in zip(names, entry_family) if f == fam_idx
        ]
        for _d in range(digests_per_family):
            tokens = [fam_names[int(rng.integers(len(fam_names)))]]
            for _ in range(digest_length):
                pool = user if rng.random() < 0.5 else jargon
                tokens.append(pool[int(rng.integers(len(pool)))])
            digests.append(" ".join(tokens))

    queries, query_family = [], []
    for fam_idx, (_stem, jargon, user) in enumerate(_FAMILIES):
        for _q in range(queries_per_family):
            tokens = []
            for _ in range(query_length):
                # Mostly user wording, occasionally a jargon word — the
                # partial overlap real users produce.
                pool = user if rng.random() < 0.75 else jargon
                tokens.append(pool[int(rng.integers(len(pool)))])
            queries.append(" ".join(tokens))
            query_family.append(fam_idx)

    return NetlibCatalogue(
        names, descriptions, entry_family, queries, query_family, digests
    )
