"""Blocked (cache-friendly, memory-bounded) bulk operations.

Scoring a query against hundreds of thousands of document vectors and
folding large document batches are streaming problems: process blocks of
columns, never materialize more than one block of temporaries.  The
block size defaults to a few thousand vectors — small enough to stay in
cache, large enough to amortize the NumPy call overhead (guide advice:
vectorize, but mind working-set size).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.parallel.pool import parallel_map

__all__ = ["blocked_cosine_scores", "blocked_fold_in"]

DEFAULT_BLOCK = 4096


def blocked_cosine_scores(
    model: LSIModel,
    qhat: np.ndarray,
    *,
    block: int = DEFAULT_BLOCK,
    workers: int | None = None,
) -> np.ndarray:
    """Cosine of ``qhat`` against every document, block by block.

    Numerically identical to
    :func:`repro.core.similarity.cosine_similarities` (scaled mode); the
    blocks may be scored by a thread pool.
    """
    qhat = np.asarray(qhat, dtype=np.float64).ravel()
    if qhat.size != model.k:
        raise ShapeError(f"query vector has {qhat.size} dims for k={model.k}")
    if block < 1:
        raise ShapeError("block must be >= 1")
    target = qhat * model.s
    tn = np.sqrt(np.dot(target, target))
    n = model.n_documents
    starts = list(range(0, n, block))

    def score_block(lo: int) -> np.ndarray:
        hi = min(lo + block, n)
        coords = model.V[lo:hi] * model.s
        norms = np.sqrt(np.sum(coords**2, axis=1))
        denom = norms * tn
        out = np.zeros(hi - lo)
        ok = denom > 0
        out[ok] = (coords[ok] @ target) / denom[ok]
        return out

    pieces = parallel_map(score_block, starts, workers=workers)
    return np.concatenate(pieces) if pieces else np.zeros(0)


def blocked_fold_in(
    model: LSIModel,
    counts: np.ndarray,
    doc_ids: list[str],
    *,
    block: int = DEFAULT_BLOCK,
) -> LSIModel:
    """Fold a large document block in, ``block`` columns at a time.

    Equivalent to :func:`repro.updating.folding.fold_in_documents` but the
    weighted temporaries never exceed ``m × block``.  This is the shape of
    the paper's TREC pipeline, where the fold-in stream was an order of
    magnitude larger than the decomposed sample.
    """
    from repro.serving.index import invalidate_model
    from repro.updating.folding import _weight_columns

    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim == 1:
        counts = counts[:, None]
    p = counts.shape[1]
    if len(doc_ids) != p:
        raise ShapeError(f"{len(doc_ids)} ids for {p} documents")
    vecs = np.empty((p, model.k))
    for lo in range(0, p, block):
        hi = min(lo + block, p)
        weighted = _weight_columns(model, counts[:, lo:hi])
        vecs[lo:hi] = (weighted.T @ model.U) / model.s
    # Same invalidation contract as fold_in_documents: the source model
    # is superseded, so its cached serving index must not keep answering.
    invalidate_model(model)
    return model.with_documents(vecs, doc_ids, provenance="fold-in")
