"""Tests for the §5.4 applications."""

import numpy as np
import pytest

from repro.apps import (
    CrossLanguageRetrieval,
    ReviewerAssignment,
    SpellingCorrector,
    assign_reviewers,
    build_thesaurus,
    mate_retrieval_accuracy,
    noisy_retrieval_experiment,
    run_synonym_test,
    word_overlap_baseline,
)
from repro.apps.people import find_experts, people_vectors
from repro.apps.thesaurus import suggest_index_terms
from repro.core import fit_lsi
from repro.corpus import (
    SyntheticSpec,
    crosslang_collection,
    synonym_test,
    topic_collection,
)
from repro.errors import ShapeError
from repro.text import build_tdm


# --------------------------------------------------------------------- #
# thesaurus
# --------------------------------------------------------------------- #
def test_thesaurus_groups_cluster_terms(med_model):
    th = build_thesaurus(med_model, top=4, terms=["rats"])
    neighbours = [w for w, _ in th["rats"]]
    assert "fast" in neighbours  # the Figure 4 fast/rats cluster


def test_thesaurus_min_similarity_filter(med_model):
    th = build_thesaurus(med_model, top=17, min_similarity=0.99,
                         terms=["oestrogen"])
    assert all(c >= 0.99 for _, c in th["oestrogen"])


def test_suggest_index_terms_includes_unused_terms(med_model):
    """Terms near the document that the text itself never uses can be
    suggested — the point of LSI indexing."""
    suggestions = suggest_index_terms(
        med_model, "oestrogen output of patients", top=6
    )
    words = [w for w, _ in suggestions]
    assert "depressed" in words  # co-cluster of the hormone topics


# --------------------------------------------------------------------- #
# cross-language retrieval
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def xl_setup():
    xl = crosslang_collection(seed=13)
    clr = CrossLanguageRetrieval.train(xl, k=24, seed=0)
    return xl, clr


def test_mate_retrieval_both_directions(xl_setup):
    xl, clr = xl_setup
    fr_ids = [f"fr{i}" for i in range(len(xl.french))]
    en_ids = [f"en{i}" for i in range(len(xl.english))]
    acc_ef = mate_retrieval_accuracy(
        clr, xl.english, fr_ids, target_language="fr"
    )
    acc_fe = mate_retrieval_accuracy(
        clr, xl.french, en_ids, target_language="en"
    )
    # Landauer & Littman: cross-language retrieval as effective as
    # monolingual; on the clean generator, mates dominate.
    assert acc_ef > 0.8 and acc_fe > 0.8


def test_cross_language_query_matches_other_language(xl_setup):
    xl, clr = xl_setup
    hits = clr.search(xl.queries_en[0], language="fr", top=3)
    assert all(h.startswith("fr") for h, _ in hits)
    topic_hits = [int(h[2:]) for h, _ in hits]
    assert any(xl.doc_topic[i] == xl.query_topic[0] for i in topic_hits)


def test_mate_retrieval_validation(xl_setup):
    _, clr = xl_setup
    with pytest.raises(ShapeError):
        mate_retrieval_accuracy(clr, ["a"], [], target_language="fr")


# --------------------------------------------------------------------- #
# TOEFL synonym test
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def toefl_setup():
    st = synonym_test(n_items=80, seed=21)
    model = fit_lsi(st.documents, k=40, scheme="log_entropy", seed=0)
    tdm = build_tdm(st.documents)
    return st, model, tdm


def test_lsi_beats_word_overlap_on_synonyms(toefl_setup):
    """§5.4: 'LSI scored 64% correct, compared with 33% correct for
    word-overlap methods' — our synthetic corpus preserves the gap."""
    st, model, tdm = toefl_setup
    lsi = run_synonym_test(model, st)
    overlap = word_overlap_baseline(tdm, st)
    assert lsi.accuracy > 0.55
    assert overlap.accuracy < 0.45
    assert lsi.accuracy > overlap.accuracy + 0.2


def test_synonym_result_format(toefl_setup):
    st, model, _ = toefl_setup
    res = run_synonym_test(model, st)
    assert res.n_items == 80
    assert len(res.choices) == 80
    assert "%" in str(res)


# --------------------------------------------------------------------- #
# people matching
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def people_setup():
    col = topic_collection(
        SyntheticSpec(n_topics=4, docs_per_topic=8, queries_per_topic=1),
        seed=6,
    )
    model = fit_lsi(col.documents, k=8, scheme="log_entropy", seed=0)
    # Reviewer i wrote docs of topic i%4 → their expertise is that topic.
    authored = [
        [t * 8 + 2 * i, t * 8 + 2 * i + 1]
        for t in range(4)
        for i in range(2)
    ]
    vecs = people_vectors(model, authored)
    return col, model, authored, vecs


def test_people_vectors_shape(people_setup):
    col, model, authored, vecs = people_setup
    assert vecs.shape == (8, model.k)
    with pytest.raises(ShapeError):
        people_vectors(model, [[]])
    with pytest.raises(ShapeError):
        people_vectors(model, [[9999]])


def test_find_experts_returns_topic_authors(people_setup):
    col, model, authored, vecs = people_setup
    # Query about topic 0 → the two topic-0 reviewers (indices 0, 1).
    experts = find_experts(model, vecs, col.queries[0], top=2)
    assert {e for e, _ in experts} == {0, 1}


def test_assignment_respects_constraints(people_setup):
    col, model, authored, vecs = people_setup
    asg = assign_reviewers(
        model, vecs, col.queries, reviews_per_paper=2,
        max_papers_per_reviewer=2,
    )
    assert isinstance(asg, ReviewerAssignment)
    assert all(len(r) == 2 for r in asg.assignments)
    assert all(len(set(r)) == 2 for r in asg.assignments)
    load = asg.reviewer_load(8)
    assert load.max() <= 2
    assert load.sum() == 2 * len(col.queries)


def test_assignment_prefers_matching_experts(people_setup):
    col, model, authored, vecs = people_setup
    asg = assign_reviewers(
        model, vecs, col.queries, reviews_per_paper=2,
        max_papers_per_reviewer=4,
    )
    # With slack capacity, paper about topic t gets topic-t reviewers.
    for paper, reviewers in enumerate(asg.assignments):
        expected = {2 * paper, 2 * paper + 1}
        assert set(reviewers) == expected


def test_assignment_infeasible_rejected(people_setup):
    col, model, authored, vecs = people_setup
    with pytest.raises(ShapeError):
        assign_reviewers(
            model, vecs, col.queries, reviews_per_paper=5,
            max_papers_per_reviewer=1,
        )
    with pytest.raises(ShapeError):
        assign_reviewers(
            model, vecs, col.queries, reviews_per_paper=9,
            max_papers_per_reviewer=9,
        )


# --------------------------------------------------------------------- #
# spelling correction
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def corrector():
    lexicon = [
        "culture", "discharge", "patients", "pressure", "abnormalities",
        "depressed", "oestrogen", "generation", "behavior", "disease",
        "blood", "study", "respect", "christmas", "hospital", "kidney",
    ]
    return SpellingCorrector(lexicon, k=12)


def test_spelling_corrects_common_errors(corrector):
    pairs = [
        ("pressre", "pressure"),
        ("cultre", "culture"),
        ("dizease", "disease"),
        ("bloood", "blood"),
        ("hospitl", "hospital"),
    ]
    assert corrector.accuracy(pairs) >= 0.8


def test_spelling_correct_word_is_fixed_point(corrector):
    assert corrector.correct("blood") == "blood"
    assert corrector.correct("culture") == "culture"


def test_spelling_suggest_ranked(corrector):
    sugg = corrector.suggest("pressre", top=3)
    assert len(sugg) == 3
    scores = [c for _, c in sugg]
    assert scores == sorted(scores, reverse=True)


def test_spelling_gibberish_returns_no_matchable_ngrams():
    sc = SpellingCorrector(["alpha", "beta"], k=4)
    # A word sharing no n-grams with the lexicon yields no projection.
    out = sc.suggest("zzzz", top=2)
    assert isinstance(out, list)


def test_spelling_validation():
    with pytest.raises(ShapeError):
        SpellingCorrector(["dup", "dup"])
    with pytest.raises(ShapeError):
        SpellingCorrector(["solo"])


# --------------------------------------------------------------------- #
# noisy retrieval
# --------------------------------------------------------------------- #
def test_noisy_experiment_lsi_robust():
    """§5.4: 8.8% word error 'was not disrupted' for LSI."""
    col = topic_collection(
        SyntheticSpec(n_topics=4, docs_per_topic=10, queries_per_topic=2,
                      query_length=3, doc_length=50),
        seed=17,
    )
    res = noisy_retrieval_experiment(col, k=8, word_error_rate=0.088, seed=3)
    assert res["word_error_rate"] == 0.088
    # LSI loses at most a small fraction of its clean performance.
    assert res["lsi_degradation_pct"] > -15
    assert res["clean"]["lsi"]["mean_metric"] > 0.5
