"""TOEFL-style synonym test material (§5.4, Modeling Human Memory).

Landauer & Dumais trained LSI on an encyclopedia and answered ETS TOEFL
synonym items — "80 multiple choice test items each with a stem word and
four alternatives" — at 64% vs 33% for word-overlap methods.  The effect
rests on one property: *synonyms occur in similar contexts but rarely
co-occur in one document*.  This generator produces a corpus with exactly
that property plus a bank of 4-alternative items, so the mechanism can be
measured without the (unshippable) encyclopedia.

Each latent concept has several synonym surface forms; each generated
passage commits to one form per concept, so two forms of the same concept
share context words (other concepts of their topic) while their direct
co-occurrence count stays at zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["SynonymItem", "SynonymTest", "synonym_test"]


@dataclass(frozen=True)
class SynonymItem:
    """One multiple-choice item: stem + 4 alternatives, one correct."""

    stem: str
    alternatives: tuple[str, str, str, str]
    answer: int  # index into alternatives

    @property
    def correct(self) -> str:
        """The right answer's surface form."""
        return self.alternatives[self.answer]


@dataclass
class SynonymTest:
    """The corpus and item bank of one generated synonym test."""

    documents: list[str]
    items: list[SynonymItem]
    name: str = "synonym-test"
    #: (topic, concept) of each item's stem, for diagnostics.
    provenance: list[tuple[int, int]] = field(default_factory=list)


def synonym_test(
    *,
    n_topics: int = 12,
    concepts_per_topic: int = 12,
    synonyms_per_concept: int = 3,
    docs_per_topic: int = 30,
    doc_length: int = 50,
    n_items: int = 80,
    seed=0,
) -> SynonymTest:
    """Generate corpus + items.

    The item count defaults to the TOEFL's 80.  Distractors are drawn from
    *different* concepts (mostly of different topics), mirroring the ETS
    design where distractors are plausible words rather than near-misses.
    """
    rng = ensure_rng(seed)
    forms = [
        [
            [f"wt{t}c{c}s{s}" for s in range(synonyms_per_concept)]
            for c in range(concepts_per_topic)
        ]
        for t in range(n_topics)
    ]

    documents: list[str] = []
    for t in range(n_topics):
        probs = np.arange(1, concepts_per_topic + 1, dtype=float) ** -0.8
        probs /= probs.sum()
        for _d in range(docs_per_topic):
            preferred = rng.integers(synonyms_per_concept, size=concepts_per_topic)
            tokens = []
            for _w in range(doc_length):
                c = int(rng.choice(concepts_per_topic, p=probs))
                tokens.append(forms[t][c][int(preferred[c])])
            documents.append(" ".join(tokens))

    items: list[SynonymItem] = []
    provenance: list[tuple[int, int]] = []
    for _i in range(n_items):
        t = int(rng.integers(n_topics))
        c = int(rng.integers(concepts_per_topic))
        s_stem, s_correct = rng.choice(synonyms_per_concept, size=2, replace=False)
        stem = forms[t][c][int(s_stem)]
        correct = forms[t][c][int(s_correct)]
        distractors: list[str] = []
        while len(distractors) < 3:
            dt = int(rng.integers(n_topics))
            dc = int(rng.integers(concepts_per_topic))
            if dt == t and dc == c:
                continue
            w = forms[dt][dc][int(rng.integers(synonyms_per_concept))]
            if w != stem and w != correct and w not in distractors:
                distractors.append(w)
        answer = int(rng.integers(4))
        alts = distractors[:answer] + [correct] + distractors[answer:]
        items.append(SynonymItem(stem, tuple(alts), answer))
        provenance.append((t, c))

    return SynonymTest(documents, items, provenance=provenance)
