"""Tests for LSIModel and the fitting pipeline."""

import numpy as np
import pytest

from repro.core import fit_lsi, fit_lsi_from_tdm
from repro.core.model import LSIModel
from repro.errors import ModelStateError, ShapeError
from repro.text import Vocabulary
from repro.weighting import WeightingScheme


def test_fit_shapes(med_tdm):
    model = fit_lsi_from_tdm(med_tdm, 3)
    assert model.U.shape == (18, 3)
    assert model.s.shape == (3,)
    assert model.V.shape == (14, 3)
    assert model.k == 3
    assert model.shape == (18, 14)
    assert model.n_terms == 18 and model.n_documents == 14


def test_singular_values_descending(med_tdm):
    model = fit_lsi_from_tdm(med_tdm, 5)
    assert np.all(np.diff(model.s) <= 1e-12)


def test_fit_from_texts_with_scheme(med_texts):
    model = fit_lsi(med_texts, 2, scheme="log_entropy")
    assert model.scheme == WeightingScheme("log", "entropy")
    assert model.global_weights.shape == (model.n_terms,)


def test_fit_k_validation(med_tdm):
    with pytest.raises(ShapeError):
        fit_lsi_from_tdm(med_tdm, 0)
    with pytest.raises(ShapeError):
        fit_lsi_from_tdm(med_tdm, 15)


def test_reconstruct_matches_svd(med_tdm):
    model = fit_lsi_from_tdm(med_tdm, 2)
    A = med_tdm.to_dense()
    Ak = model.reconstruct()
    # A_k is the best rank-2 approximation (Eckart-Young).
    s = np.linalg.svd(A, compute_uv=False)
    assert np.linalg.norm(A - Ak) == pytest.approx(
        np.sqrt(np.sum(s[2:] ** 2)), rel=1e-9
    )


def test_full_rank_reconstructs_exactly(med_tdm):
    """§5.2: with k=n factors A_k reconstructs A exactly."""
    model = fit_lsi_from_tdm(med_tdm, 14)
    assert np.allclose(model.reconstruct(), med_tdm.to_dense(), atol=1e-8)


def test_coordinates_scaling(med_model):
    assert np.allclose(med_model.term_coordinates(), med_model.U * med_model.s)
    assert np.allclose(med_model.doc_coordinates(), med_model.V * med_model.s)


def test_term_and_doc_vector_access(med_model):
    tv = med_model.term_vector("blood")
    assert tv.shape == (2,)
    dv = med_model.doc_vector("M9")
    assert dv.shape == (2,)
    assert med_model.doc_index("M1") == 0
    with pytest.raises(ModelStateError):
        med_model.doc_vector("M99")


def test_truncated(med_model_k8):
    t = med_model_k8.truncated(3)
    assert t.k == 3
    assert np.allclose(t.s, med_model_k8.s[:3])
    assert t.vocabulary is med_model_k8.vocabulary
    with pytest.raises(ShapeError):
        med_model_k8.truncated(9)


def test_model_validation_errors():
    vocab = Vocabulary(["a", "b"]).freeze()
    with pytest.raises(ShapeError):
        LSIModel(np.zeros((2, 2)), np.ones(2), np.zeros((3, 3)), vocab, ["d"] * 3)
    with pytest.raises(ShapeError):
        LSIModel(np.zeros((3, 2)), np.ones(2), np.zeros((3, 2)), vocab, ["d"] * 3)
    with pytest.raises(ShapeError):
        LSIModel(np.zeros((2, 2)), np.ones(2), np.zeros((3, 2)), vocab, ["d"] * 2)
    with pytest.raises(ShapeError):
        LSIModel(
            np.zeros((2, 2)), np.ones(2), np.zeros((3, 2)), vocab, ["d"] * 3,
            global_weights=np.ones(5),
        )


def test_with_documents_validation(med_model):
    with pytest.raises(ShapeError):
        med_model.with_documents(np.zeros((2, 5)), ["a", "b"], provenance="x")
    with pytest.raises(ShapeError):
        med_model.with_documents(np.zeros((2, 2)), ["a"], provenance="x")


def test_with_terms_rejects_duplicates(med_model):
    with pytest.raises(ShapeError):
        med_model.with_terms(np.zeros((1, 2)), ["blood"], provenance="x")


def test_repr(med_model):
    r = repr(med_model)
    assert "m=18" in r and "n=14" in r and "k=2" in r
