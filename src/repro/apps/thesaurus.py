"""Term-side retrieval: automatic thesauri and index-term suggestion.

"Similarly, the objects returned to the user are typically documents, but
there is no reason that similar terms could not be returned.  Returning
nearby terms is useful for some applications like online thesauri (that
are automatically constructed by LSI), or for suggesting index terms for
documents."  (§5.4)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import pseudo_document
from repro.core.similarity import nearest_terms
from repro.text.tdm import count_vector
from repro.text.tokenizer import tokenize

__all__ = ["build_thesaurus", "suggest_index_terms"]


def build_thesaurus(
    model: LSIModel,
    *,
    top: int = 5,
    min_similarity: float = 0.0,
    terms: Sequence[str] | None = None,
) -> dict[str, list[tuple[str, float]]]:
    """Nearest-neighbour lists for every (or the given) vocabulary term.

    Returns ``{term: [(neighbour, cosine), ...]}`` with neighbours above
    ``min_similarity``, at most ``top`` each.
    """
    vocab = terms if terms is not None else model.vocabulary.to_list()
    out: dict[str, list[tuple[str, float]]] = {}
    for t in vocab:
        neigh = nearest_terms(model, t, top=top)
        out[t] = [(w, c) for w, c in neigh if c >= min_similarity]
    return out


def suggest_index_terms(
    model: LSIModel, text: str, *, top: int = 10
) -> list[tuple[str, float]]:
    """Suggest vocabulary terms for a document — including terms the text
    never uses (the LSI advantage over extraction-based indexing).

    The document is projected to k-space (Eq. 7) and the nearest *term*
    vectors are returned.
    """
    counts = count_vector(tokenize(text), model.vocabulary)
    weighted = counts * model.global_weights
    dhat = pseudo_document(model, weighted)
    term_coords = model.term_coordinates()
    target = dhat * model.s
    norms = np.sqrt(np.sum(term_coords**2, axis=1))
    tn = np.sqrt(np.dot(target, target))
    denom = norms * tn
    cos = np.zeros(model.n_terms)
    ok = denom > 0
    cos[ok] = (term_coords[ok] @ target) / denom[ok]
    order = np.argsort(-cos, kind="stable")[:top]
    return [(model.vocabulary[int(i)], float(cos[i])) for i in order]
