"""Operation counting for the paper's cost model.

Section 4 of the paper expresses the cost of a sparse truncated SVD as::

    I × cost(GᵀG x) + trp × cost(G x)

where ``I`` is the Lanczos iteration count and ``trp`` the number of
accepted singular triplets.  :class:`OperatorCounter` wraps any matrix-like
object and counts exactly those two quantities (plus flops, at 2·nnz per
sparse matvec), letting the Table 7 complexity formulas be validated
against measured counts rather than trusted on paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FlopCounter", "OperatorCounter"]


@dataclass
class FlopCounter:
    """Accumulates floating-point-operation estimates by category."""

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, category: str, flops: int) -> None:
        """Accumulate ``flops`` under ``category``."""
        self.counts[category] = self.counts.get(category, 0) + int(flops)

    @property
    def total(self) -> int:
        """Sum over all categories."""
        return sum(self.counts.values())

    def report(self) -> str:
        """Fixed-width per-category breakdown, largest first."""
        rows = sorted(self.counts.items(), key=lambda kv: -kv[1])
        lines = [f"{name:>28s}  {flops:>14,d}" for name, flops in rows]
        lines.append(f"{'total':>28s}  {self.total:>14,d}")
        return "\n".join(lines)


class OperatorCounter:
    """Matrix wrapper that counts matvec / rmatvec invocations and flops.

    Works with the sparse formats (which expose ``nnz``) and with dense
    ndarrays (flops = 2·m·n per product).  The wrapped object is exposed
    through the same ``matvec``/``rmatvec``/``shape`` interface the Lanczos
    code consumes, so counting is transparent to the algorithm.
    """

    def __init__(self, a, flops: FlopCounter | None = None):
        self._a = a
        self.shape = tuple(a.shape)
        self.matvecs = 0
        self.rmatvecs = 0
        self.flops = flops if flops is not None else FlopCounter()
        if hasattr(a, "nnz"):
            self._cost = 2 * int(a.nnz)
        else:
            self._cost = 2 * self.shape[0] * self.shape[1]

    @property
    def gram_products(self) -> int:
        """Number of full ``GᵀG x`` applications (the paper's ``I``)."""
        return min(self.matvecs, self.rmatvecs)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Counted ``A @ x``."""
        self.matvecs += 1
        self.flops.add("matvec", self._cost)
        if hasattr(self._a, "matvec"):
            return self._a.matvec(x)
        return self._a @ x

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Counted ``Aᵀ @ y``."""
        self.rmatvecs += 1
        self.flops.add("rmatvec", self._cost)
        if hasattr(self._a, "rmatvec"):
            return self._a.rmatvec(y)
        return self._a.T @ y

    def reset(self) -> None:
        """Zero all counters."""
        self.matvecs = 0
        self.rmatvecs = 0
        self.flops = FlopCounter()
