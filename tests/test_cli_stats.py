"""CLI observability: the ``stats`` command, the cross-process state
file, and golden-output smoke tests for ``info`` / ``terms``."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main as cli_main


@pytest.fixture(autouse=True)
def _clean_obs():
    """Isolate the process-global registry/ring per test (the CLI runs
    in-process here)."""
    obs.registry.reset()
    obs.clear_spans()
    obs.enable_tracing(False)
    yield
    obs.registry.reset()
    obs.clear_spans()
    obs.enable_tracing(False)


@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "docs.txt"
    path.write_text(
        "study of depressed patients after discharge\n"
        "culture of organisms in vaginal discharge of patients\n"
        "fast rise of cerebral oxygen pressure in rats\n"
        "fast cell generation in the eye of rats\n"
        "oestrogen induced behaviour change in depressed rats\n"
        "blood pressure measurement in elderly patients\n"
    )
    return path


def _fresh_process():
    """Simulate a new CLI process: registry and span ring start empty
    (the state *file* is what carries data across)."""
    obs.registry.reset()
    obs.clear_spans()


def _run(argv, capsys):
    code = cli_main(argv)
    return code, capsys.readouterr().out


def test_stats_shows_index_and_query_metrics(tmp_path, corpus_file, capsys):
    """ISSUE acceptance: after an index + query run, ``repro stats``
    reports nonzero search latency histograms, cache counters, and
    Lanczos matvec/flop gauges — across separate 'processes'."""
    db = tmp_path / "db.npz"
    code, _ = _run(
        ["index", str(corpus_file), str(db), "-k", "3",
         "--scheme", "raw_none", "--svd-method", "lanczos"], capsys,
    )
    assert code == 0

    _fresh_process()
    code, _ = _run(["query", str(db), "rats", "fast", "-n", "2"], capsys)
    assert code == 0

    _fresh_process()
    code, out = _run(["stats"], capsys)
    assert code == 0
    assert "lsi.search" in out
    assert "serving.queries_served" in out
    assert "serving.query_cache_misses" in out
    assert "lanczos.matvecs" in out
    assert "lanczos.flops" in out
    assert "lsi.fit.svd" in out  # spans survived the process boundary


def test_stats_json_blob(tmp_path, corpus_file, capsys):
    db = tmp_path / "db.npz"
    _run(["index", str(corpus_file), str(db), "-k", "2",
          "--svd-method", "lanczos"], capsys)
    _fresh_process()
    code, out = _run(["stats", "--json"], capsys)
    assert code == 0
    blob = json.loads(out)
    assert blob["schema"] == obs.export.SCHEMA
    assert blob["metrics"]["gauges"]["lanczos.matvecs"] > 0
    hist = blob["metrics"]["histograms"]["lsi.fit"]
    assert hist["count"] == 1 and hist["sum"] > 0
    assert any(s["name"] == "lsi.fit.svd" for s in blob["spans"])


def test_counters_accumulate_across_runs(tmp_path, corpus_file, capsys):
    db = tmp_path / "db.npz"
    _run(["index", str(corpus_file), str(db), "-k", "2"], capsys)
    for _ in range(3):
        _fresh_process()
        _run(["query", str(db), "rats"], capsys)
    _fresh_process()
    _, out = _run(["stats", "--json"], capsys)
    blob = json.loads(out)
    assert blob["metrics"]["counters"]["serving.queries_served"] == 3
    assert blob["metrics"]["histograms"]["lsi.search"]["count"] == 3


def test_stats_reset_removes_state(tmp_path, corpus_file, capsys,
                                   monkeypatch):
    state = tmp_path / "custom_state.json"
    monkeypatch.setenv("REPRO_OBS_STATE", str(state))
    db = tmp_path / "db.npz"
    _run(["index", str(corpus_file), str(db), "-k", "2"], capsys)
    assert state.exists()
    _fresh_process()
    code, out = _run(["stats", "--reset"], capsys)
    assert code == 0 and "reset" in out
    assert not state.exists()
    _fresh_process()
    _, out = _run(["stats"], capsys)
    assert "(no metrics recorded)" in out


def test_obs_state_flag_overrides_env(tmp_path, corpus_file, capsys):
    state = tmp_path / "elsewhere.json"
    db = tmp_path / "db.npz"
    _run(["--obs-state", str(state), "index", str(corpus_file),
          str(db), "-k", "2"], capsys)
    assert state.exists()
    _fresh_process()
    _, out = _run(["--obs-state", str(state), "stats"], capsys)
    assert "lsi.fit" in out


def test_no_obs_skips_state_write(tmp_path, corpus_file, capsys,
                                  monkeypatch):
    state = tmp_path / "never.json"
    monkeypatch.setenv("REPRO_OBS_STATE", str(state))
    db = tmp_path / "db.npz"
    code, _ = _run(["--no-obs", "index", str(corpus_file), str(db),
                    "-k", "2"], capsys)
    assert code == 0
    assert not state.exists()


def test_cli_restores_tracing_state(tmp_path, corpus_file, capsys):
    assert not obs.tracing_enabled()
    db = tmp_path / "db.npz"
    _run(["index", str(corpus_file), str(db), "-k", "2"], capsys)
    assert not obs.tracing_enabled()  # main() restored the default


def test_failed_command_writes_no_state(tmp_path, capsys, monkeypatch):
    state = tmp_path / "fail.json"
    monkeypatch.setenv("REPRO_OBS_STATE", str(state))
    code = cli_main(["index", str(tmp_path / "missing"),
                     str(tmp_path / "x.npz")])
    capsys.readouterr()
    assert code == 1
    assert not state.exists()


# --------------------------------------------------------------------- #
# golden-output smoke tests for the read-only commands
# --------------------------------------------------------------------- #
def test_info_golden_output(tmp_path, corpus_file, capsys):
    db = tmp_path / "db.npz"
    _run(["index", str(corpus_file), str(db), "-k", "3",
          "--scheme", "raw_none"], capsys)
    code, out = _run(["info", str(db)], capsys)
    assert code == 0
    lines = out.splitlines()
    assert lines[0] == "documents : 6"
    assert lines[2] == "factors   : 3"
    assert "weighting : raw×none" in out
    assert "provenance: svd" in out
    assert "sigma" in out


def test_terms_golden_output(tmp_path, corpus_file, capsys):
    db = tmp_path / "db.npz"
    _run(["index", str(corpus_file), str(db), "-k", "3",
          "--scheme", "raw_none"], capsys)
    code, out = _run(["terms", str(db), "rats", "-n", "3"], capsys)
    assert code == 0
    rows = [line.split() for line in out.splitlines()]
    assert len(rows) == 3
    # Each row is "<cosine>  <term>"; the query term itself is skipped,
    # results come best-first within [-1, 1].
    terms = [r[1] for r in rows]
    assert "rats" not in terms
    cosines = [float(r[0]) for r in rows]
    assert cosines == sorted(cosines, reverse=True)
    assert all(-1.0001 <= c <= 1.0001 for c in cosines)
    # The neighbours come from the rat documents' vocabulary.
    rat_vocab = {"fast", "rise", "cerebral", "oxygen", "pressure", "cell",
                 "generation", "eye", "oestrogen", "induced", "behaviour",
                 "change", "depressed"}
    assert set(terms) <= rat_vocab
