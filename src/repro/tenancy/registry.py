"""Index registry: named tenants, lazy mmap attach, LRU detach.

The registry owns the ``tenant_id -> ServingState`` map every serving
path resolves through.  Three registration flavours:

* an **eager state** (``state=``) — already built, never evicted (there
  is no loader to come back through);
* a **data directory** (``data_dir=``) — attached lazily on first
  resolve via the store's crash-safe read-only mmap open
  (:func:`~repro.store.mmap_io.open_latest_model`), which takes no lock
  and reflects the last sealed checkpoint;
* a **custom loader** (``loader=``) — any zero-argument callable
  returning a :class:`~repro.server.state.ServingState` (the cluster
  front end uses this to spawn a tenant's worker fleet on demand).

With ``max_resident`` set, attaching a tenant past the cap detaches the
least-recently-used evictable one — but never under in-flight queries:
callers pin a tenant for the lifetime of each request
(:meth:`IndexRegistry.pin`), and a pinned tenant's detach is deferred
until its pin count drains to zero, mirroring the two-epoch retain
pattern the cluster workers use for epoch swaps.  A deferred-detach
tenant that gets resolved again before draining simply stays resident
(the bound is enforced eagerly at attach time, best-effort under
drain).

Per-tenant projected-query cache partitions fall out of construction:
each lazily attached tenant gets ``query_cache_size // n_tenants``
cache slots, so one hot tenant cannot evict the others' projections.
"""

from __future__ import annotations

import contextlib
import threading
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import ReproError, UnknownTenantError
from repro.obs.metrics import registry as metrics
from repro.server.state import ServingState

__all__ = ["DEFAULT_TENANT", "IndexRegistry", "TenantEntry"]

DEFAULT_TENANT = "default"


class TenantEntry:
    """Book-keeping for one registered tenant (internal to the registry)."""

    __slots__ = (
        "tenant_id",
        "data_dir",
        "loader",
        "state",
        "evictable",
        "pins",
        "last_used",
        "evict_pending",
        "attaches",
    )

    def __init__(
        self,
        tenant_id: str,
        *,
        data_dir: Path | None,
        loader: Callable[[], ServingState] | None,
        state: ServingState | None,
    ):
        self.tenant_id = tenant_id
        self.data_dir = data_dir
        self.loader = loader
        self.state = state
        # An eagerly supplied state has no loader to re-attach through,
        # so it must stay resident for the registry's lifetime.
        self.evictable = state is None
        self.pins = 0
        self.last_used = 0
        self.evict_pending = False
        self.attaches = 0

    @property
    def resident(self) -> bool:
        return self.state is not None


class IndexRegistry:
    """Owns N named tenants and resolves every request to one of them.

    Thread-safe: the asyncio serving path touches it from the event
    loop, ``/add`` from executor threads, and detach hooks from
    whichever thread dropped the last pin.
    """

    def __init__(
        self,
        *,
        max_resident: int | None = None,
        query_cache_size: int = 256,
    ):
        if max_resident is not None and max_resident < 1:
            raise ReproError("max_resident must be >= 1")
        self._max_resident = max_resident
        self._query_cache_size = query_cache_size
        self._entries: dict[str, TenantEntry] = {}
        self._lock = threading.RLock()
        self._clock = 0  # logical LRU clock; monotonic under the lock
        self._detach_hooks: list = []

    # ------------------------------------------------------------------ #
    @classmethod
    def single(cls, state: ServingState) -> "IndexRegistry":
        """A one-tenant registry wrapping an existing state.

        The back-compat construction: ``QueryService(state, ...)`` wraps
        its state this way, so single-tenant serving is the
        ``tenant=None`` special case of the multi-tenant path.
        """
        reg = cls()
        reg.register(DEFAULT_TENANT, state=state)
        return reg

    def register(
        self,
        tenant_id: str,
        *,
        data_dir: str | Path | None = None,
        loader: Callable[[], ServingState] | None = None,
        state: ServingState | None = None,
    ) -> None:
        """Register one tenant; exactly one attach source must be given.

        ``data_dir`` alongside a ``loader`` is allowed — the loader is
        the attach source and the directory is descriptive (shown in
        ``describe()``).
        """
        if not tenant_id or not isinstance(tenant_id, str):
            raise ReproError("tenant id must be a non-empty string")
        if state is not None and (data_dir is not None or loader is not None):
            raise ReproError(
                f"tenant {tenant_id!r}: an eager state excludes data_dir/"
                "loader"
            )
        if state is None and loader is None and data_dir is None:
            raise ReproError(
                f"tenant {tenant_id!r} needs one of data_dir, loader, or "
                "state"
            )
        with self._lock:
            if tenant_id in self._entries:
                raise ReproError(f"tenant {tenant_id!r} already registered")
            self._entries[tenant_id] = TenantEntry(
                tenant_id,
                data_dir=Path(data_dir) if data_dir is not None else None,
                loader=loader,
                state=state,
            )
            metrics.set_gauge(
                "tenants.registered", float(len(self._entries))
            )
            if state is not None:
                self._note_attach(self._entries[tenant_id])

    @property
    def tenant_ids(self) -> list[str]:
        """Registered tenant ids, registration order."""
        with self._lock:
            return list(self._entries)

    @property
    def max_resident(self) -> int | None:
        """The resident-set cap, or ``None`` for unbounded."""
        return self._max_resident

    def add_detach_hook(self, hook) -> None:
        """Register ``hook(tenant_id, state)`` to run at actual detach.

        Runs after the state is unlinked from the entry (under the
        registry lock) — the service layer uses it to retire the
        tenant's micro-batcher.  By the drain discipline the tenant has
        zero in-flight queries at this point.
        """
        self._detach_hooks.append(hook)

    # ------------------------------------------------------------------ #
    def _entry(self, tenant_id: str | None) -> TenantEntry:
        """Resolve an id (or ``None``) to its entry, or raise typed 404."""
        if tenant_id is None:
            if DEFAULT_TENANT in self._entries:
                return self._entries[DEFAULT_TENANT]
            if len(self._entries) == 1:
                return next(iter(self._entries.values()))
            raise UnknownTenantError(
                "request names no tenant and the server hosts "
                f"{len(self._entries)}; pass X-Tenant or a 'tenant' field",
                tenant=None,
            )
        entry = self._entries.get(tenant_id)
        if entry is None:
            raise UnknownTenantError(
                f"unknown tenant {tenant_id!r}", tenant=tenant_id
            )
        return entry

    def _default_loader(self, entry: TenantEntry) -> ServingState:
        """Crash-safe read-only attach from the tenant's data directory."""
        path = entry.data_dir
        assert path is not None
        share = max(
            1, self._query_cache_size // max(1, len(self._entries))
        )
        if path.is_file():
            # A saved ``.npz`` model file, not a durable store.
            from repro.core.persistence import load_model

            return ServingState.for_model(
                load_model(path), query_cache_size=share
            )
        from repro.store.mmap_io import open_latest_ann, open_latest_model

        model = open_latest_model(path)
        ann = open_latest_ann(path)
        return ServingState.for_model(
            model, ann=ann, query_cache_size=share
        )

    def _note_attach(self, entry: TenantEntry) -> None:
        self._clock += 1
        entry.last_used = self._clock
        entry.attaches += 1
        metrics.inc(f"tenant.{entry.tenant_id}.attaches_total")
        metrics.set_gauge(f"tenant.{entry.tenant_id}.resident", 1.0)
        metrics.set_gauge(
            "tenants.resident", float(self._resident_count())
        )

    def _resident_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.resident)

    def _attach_locked(self, entry: TenantEntry) -> None:
        loader = entry.loader or (lambda: self._default_loader(entry))
        entry.state = loader()
        entry.evict_pending = False
        self._note_attach(entry)
        self._enforce_cap(exclude=entry)

    def _enforce_cap(self, *, exclude: TenantEntry) -> None:
        """Detach (or mark for deferred detach) LRU tenants over the cap."""
        if self._max_resident is None:
            return
        while True:
            resident = [
                e
                for e in self._entries.values()
                if e.resident
                and e.evictable
                and not e.evict_pending
                and e is not exclude
            ]
            if self._resident_count() <= self._max_resident or not resident:
                return
            victim = min(resident, key=lambda e: e.last_used)
            if victim.pins > 0:
                # In-flight queries hold the snapshot; defer like the
                # workers' two-epoch retain — detach when pins drain.
                victim.evict_pending = True
                metrics.inc(f"tenant.{victim.tenant_id}.evict_deferred_total")
            else:
                self._detach_locked(victim)

    def _detach_locked(self, entry: TenantEntry) -> None:
        state = entry.state
        entry.state = None
        entry.evict_pending = False
        metrics.inc(f"tenant.{entry.tenant_id}.detaches_total")
        metrics.set_gauge(f"tenant.{entry.tenant_id}.resident", 0.0)
        metrics.set_gauge(
            "tenants.resident", float(self._resident_count())
        )
        for hook in self._detach_hooks:
            hook(entry.tenant_id, state)

    # ------------------------------------------------------------------ #
    def resolve(
        self, tenant_id: str | None = None
    ) -> tuple[str, ServingState]:
        """``(tenant_id, state)`` for a request, attaching if cold.

        ``None`` resolves to the ``default`` tenant if registered, else
        the sole registered tenant, else raises
        :class:`~repro.errors.UnknownTenantError` (ambiguous).  Unknown
        ids raise the same typed error.  Touches the LRU clock and, if
        the tenant was marked for deferred eviction, rescinds the mark —
        it is hot again.
        """
        with self._lock:
            entry = self._entry(tenant_id)
            if not entry.resident:
                self._attach_locked(entry)
            else:
                self._clock += 1
                entry.last_used = self._clock
                entry.evict_pending = False
            return entry.tenant_id, entry.state

    @contextlib.contextmanager
    def pin(
        self, tenant_id: str | None = None
    ) -> Iterator[tuple[str, ServingState]]:
        """Resolve and pin a tenant for the duration of one request.

        While pinned the tenant cannot be detached; an eviction decision
        taken meanwhile is deferred and executes when the last pin
        drops.  The serving paths hold the pin across the full await of
        the micro-batched future, so "detach only after in-flight
        queries drain" holds by construction.
        """
        with self._lock:
            tid, state = self.resolve(tenant_id)
            self._entries[tid].pins += 1
        try:
            yield tid, state
        finally:
            with self._lock:
                entry = self._entries[tid]
                entry.pins -= 1
                if entry.evict_pending and entry.pins == 0:
                    self._detach_locked(entry)

    def detach(self, tenant_id: str) -> bool:
        """Explicitly detach one tenant (deferred if pinned).

        Returns ``True`` if the detach happened now, ``False`` if it was
        deferred behind in-flight pins or the tenant was not resident.
        Eager (unevictable) tenants raise.
        """
        with self._lock:
            entry = self._entry(tenant_id)
            if not entry.evictable:
                raise ReproError(
                    f"tenant {tenant_id!r} was registered with an eager "
                    "state and cannot be detached"
                )
            if not entry.resident:
                return False
            if entry.pins > 0:
                entry.evict_pending = True
                return False
            self._detach_locked(entry)
            return True

    def resident_states(self) -> dict[str, ServingState]:
        """``tenant_id -> state`` for resident tenants only (no attach)."""
        with self._lock:
            return {
                tid: e.state
                for tid, e in self._entries.items()
                if e.resident
            }

    def describe(self) -> dict:
        """Per-tenant status map for ``/tenants`` and ``healthz``.

        Duck-typed over the hosted object: a :class:`ServingState`
        reports through its current snapshot, while the cluster front
        end registers :class:`~repro.cluster.service.ClusterService`
        instances, which expose ``epoch`` / ``handle`` directly.
        """
        with self._lock:
            out = {}
            for tid, entry in self._entries.items():
                info = {
                    "resident": entry.resident,
                    "evictable": entry.evictable,
                    "pins": entry.pins,
                    "attaches": entry.attaches,
                    "evict_pending": entry.evict_pending,
                }
                if entry.data_dir is not None:
                    info["data_dir"] = str(entry.data_dir)
                if entry.resident:
                    current = getattr(entry.state, "current", None)
                    if current is not None:
                        snap = current()
                        epoch = snap.epoch
                        info["n_documents"] = snap.n_documents
                        info["writable"] = entry.state.writable
                    else:
                        epoch = getattr(entry.state, "epoch", None)
                        handle = getattr(entry.state, "handle", None)
                        if handle is not None:
                            info["n_documents"] = handle.n_documents
                    if epoch is not None:
                        info["epoch"] = epoch
                        metrics.set_gauge(
                            f"tenant.{tid}.epoch", float(epoch)
                        )
                out[tid] = info
            return out
