"""Integration tests: real worker subprocesses under ClusterService.

One store is seeded per module; the cluster test drives the full
lifecycle — spawn, exact parity, SIGKILL → partial degradation,
supervisor restart → recovered parity, drain — in a single pass,
because each phase is the next one's precondition.  The CLI-level
equivalent (HTTP front end, ``repro cluster serve`` subprocess) lives
in ``benchmarks/cluster_smoke.py``.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.cluster.plan import ShardPlan
from repro.cluster.service import ClusterConfig, ClusterService
from repro.cluster.worker import run_worker
from repro.parallel.sharding import sharded_batch_search
from repro.server.state import manager_from_texts
from repro.store.durable import DurableIndexStore
from repro.store.mmap_io import open_latest_model

SHARDS = 2
TOP = 6


@pytest.fixture(scope="module")
def seeded_store(tmp_path_factory):
    rng = np.random.default_rng(31)
    vocab = [f"w{i}" for i in range(40)]
    texts = [" ".join(rng.choice(vocab, size=15)) for _ in range(41)]
    ids = [f"D{i}" for i in range(len(texts))]
    data_dir = tmp_path_factory.mktemp("cluster_store") / "store"
    store = DurableIndexStore.initialize(data_dir, manager_from_texts(texts, ids, k=10))
    store.close(flush=False)
    return data_dir, texts


def _pairs(result_rows):
    return [(int(i), float(s)) for i, s in result_rows]


def test_cluster_lifecycle_parity_kill_recover_drain(seeded_store):
    data_dir, texts = seeded_store
    model = open_latest_model(data_dir)
    queries = texts[:4]
    flat = sharded_batch_search(model, queries, top=TOP, shards=SHARDS)

    async def main():
        service = ClusterService(
            data_dir,
            ClusterConfig(
                workers=SHARDS,
                heartbeat_interval=0.2,
                restart_backoff=1.0,  # wide enough to observe the gap
                restart_backoff_cap=1.0,
            ),
        )
        await service.start()
        try:
            # Phase 1: all live → element-identical to the flat search.
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["workers_live"] == SHARDS
            result = await service.search_many(queries, top=TOP)
            assert result.partial is False
            assert result.results == flat

            # The per-request HTTP path agrees too.  A single query takes
            # the q=1 GEMV kernel path, so compare against a q=1 flat
            # search — row 0 of the 4-query GEMM may differ by an ulp.
            flat_single = sharded_batch_search(
                model, [queries[0]], top=TOP, shards=SHARDS
            )[0]
            single = await service.search(queries[0], top=TOP)
            assert single["partial"] is False
            assert _pairs(
                [(i, s) for i, s, _ in single["results"]]
            ) == flat_single
            doc_ids = [d for _, _, d in single["results"]]
            assert doc_ids == [model.doc_ids[i] for i, _ in flat_single]

            # Phase 2: SIGKILL one worker → partial with its exact range.
            victim = 1
            pid = service.supervisor.describe()[victim]["pid"]
            os.kill(pid, signal.SIGKILL)
            lo, hi = service.plan.shard(victim).as_pair()
            deadline = time.monotonic() + 15
            degraded = None
            while time.monotonic() < deadline:
                candidate = await service.search_many(queries, top=TOP)
                if candidate.partial:
                    degraded = candidate
                    break
                await asyncio.sleep(0.05)
            assert degraded is not None, "never observed a partial response"
            assert degraded.missing == [(lo, hi)]
            full = sharded_batch_search(
                model, queries, top=model.n_documents, shards=SHARDS
            )
            for qi, merged in enumerate(degraded.results):
                survivors = [p for p in full[qi] if not lo <= p[0] < hi]
                assert merged == survivors[:TOP]
            assert service.healthz()["status"] == "degraded"

            # Phase 3: the supervisor restarts it → full parity again.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if service.healthz()["workers_live"] == SHARDS:
                    break
                await asyncio.sleep(0.1)
            assert service.healthz()["workers_live"] == SHARDS
            restored = await service.search_many(queries, top=TOP)
            assert restored.partial is False
            assert restored.results == flat
            assert service.supervisor.describe()[victim]["restarts"] == 1
        finally:
            # Phase 4: drain stops every worker process.
            await service.drain()
        for row in service.supervisor.describe():
            assert row["state"] == "draining"
        assert service.healthz()["draining"] is True

    asyncio.run(main())


def test_cluster_add_refused(seeded_store):
    data_dir, _ = seeded_store
    from repro.errors import ReproError

    async def main():
        service = ClusterService(data_dir, ClusterConfig(workers=SHARDS))
        # add() is refused before any worker even exists.
        with pytest.raises(ReproError, match="read-only"):
            await service.add(["new doc"])

    asyncio.run(main())


# --------------------------------------------------------------------- #
# observability tier: federated stats, distributed trace, slow-query log
# --------------------------------------------------------------------- #
def test_cluster_observability_trace_metrics_slowlog(
    seeded_store, tmp_path, monkeypatch
):
    data_dir, texts = seeded_store
    from repro import obs
    from repro.obs.trace_context import TraceContext, trace_scope

    # Worker processes inherit the injected delay, so every scatter is
    # genuinely slow — the slow-query log must catch it with per-shard
    # evidence rather than needing a microscopic threshold.
    monkeypatch.setenv("REPRO_WORKER_INJECT_DELAY_MS", "40")
    slowlog_path = tmp_path / "slow.jsonl"
    prev = obs.enable_tracing(True)
    obs.clear_spans()

    async def main():
        service = ClusterService(
            data_dir,
            ClusterConfig(
                workers=SHARDS,
                slow_ms=10.0,
                slowlog_path=str(slowlog_path),
            ),
        )
        await service.start()
        try:
            with trace_scope(TraceContext(trace_id="cluster-trace-1")):
                response = await service.search(texts[0], top=TOP)
            assert response["partial"] is False

            # stats wire op: every live worker ships its registry.
            worker_snaps = await service.router.fetch_stats()
            assert sorted(worker_snaps) == list(range(SHARDS))
            for snap in worker_snaps.values():
                # The score span feeds the worker's latency histogram.
                assert snap["histograms"]["cluster.worker.score"]["count"] >= 1

            # Federated JSON keeps the flat shape, workers prefixed.
            metrics = await service.metrics()
            assert set(metrics) == {"counters", "gauges", "histograms"}
            for sid in range(SHARDS):
                assert (
                    f"shard.{sid}.cluster.worker.score"
                    in metrics["histograms"]
                )

            # Prometheus exposition: per-worker labels, one TYPE/family.
            text = await service.metrics_prom()
            assert 'worker="router"' in text
            for sid in range(SHARDS):
                assert f'worker="{sid}"' in text
            type_lines = [
                line for line in text.splitlines()
                if line.startswith("# TYPE ")
            ]
            assert len(type_lines) == len(set(type_lines))

            # One reassembled distributed trace: the router's scatter
            # span plus each worker's score span, all sharing the
            # ingress trace id, workers hanging under the scatter.
            trace = await service.trace("cluster-trace-1")
            assert trace["trace_id"] == "cluster-trace-1"
            assert trace["workers"] == [str(s) for s in range(SHARDS)]
            by_name = {}
            for record in trace["spans"]:
                by_name.setdefault(record["name"], []).append(record)
            (scatter,) = by_name["cluster.scatter"]
            assert scatter["worker"] == "router"
            assert scatter["trace_id"] == "cluster-trace-1"
            score_spans = by_name["cluster.worker.score"]
            assert {s["worker"] for s in score_spans} == {
                str(s) for s in range(SHARDS)
            }
            for record in score_spans:
                assert record["trace_id"] == "cluster-trace-1"
                assert record["parent_id"] == scatter["span_id"]
                assert record["duration"] >= 0.030  # injected delay

            # Slow-query log: per-shard timings and trace evidence.
            slow = service.slowlog.recent()
            assert slow, "40ms injected delay must cross the 10ms bar"
            entry = slow[-1]
            assert entry["trace_id"] == "cluster-trace-1"
            assert entry["duration_ms"] >= 30.0
            assert sorted(entry["shard_timings"]) == [
                str(s) for s in range(SHARDS)
            ]
            for ms in entry["shard_timings"].values():
                assert ms >= 30.0
            assert service.stats()["slow_queries"]
            assert service.healthz()["slowlog"]["records"] >= 1
        finally:
            await service.drain()

    try:
        asyncio.run(main())
        assert slowlog_path.exists()
        lines = slowlog_path.read_text().strip().splitlines()
        assert lines and '"cluster-trace-1"' in lines[-1]
    finally:
        obs.enable_tracing(prev)
        obs.clear_spans()


# --------------------------------------------------------------------- #
# worker entry point: plan-skew refusal (no sockets, no subprocesses)
# --------------------------------------------------------------------- #
def test_run_worker_refuses_plan_skew(seeded_store, capsys):
    data_dir, _ = seeded_store
    model = open_latest_model(data_dir)

    # Wrong epoch stamp.
    plan = ShardPlan.compute(model.n_documents, 2, epoch=99)
    assert run_worker(data_dir, plan.to_json(), 0) == 1
    assert "epoch" in capsys.readouterr().err

    # Wrong checkpoint stamp.
    plan = ShardPlan.compute(
        model.n_documents, 2, epoch=0, checkpoint="ckpt-99999999"
    )
    assert run_worker(data_dir, plan.to_json(), 0) == 1
    assert "checkpoint" in capsys.readouterr().err

    # Wrong document count.
    plan = ShardPlan.compute(model.n_documents + 5, 2, epoch=0)
    assert run_worker(data_dir, plan.to_json(), 0) == 1
    assert "documents" in capsys.readouterr().err

    # Non-canonical plan bytes.
    plan = ShardPlan.compute(model.n_documents, 2, epoch=0)
    assert run_worker(data_dir, plan.to_json() + " ", 0) == 1
    assert "canonical" in capsys.readouterr().err
