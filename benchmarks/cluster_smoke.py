"""End-to-end smoke test for ``python -m repro cluster serve``.

Boots the real cluster — HTTP front end, scatter-gather router, and
three shard worker *subprocesses* over one durable-store checkpoint —
and checks the acceptance criteria that only hold across process
boundaries:

* ``/search`` responses are element-identical to the in-process
  ``sharded_batch_search`` over the same checkpoint (same shard count,
  so the same kernel paths);
* SIGKILL-ing one worker degrades to ``partial=true`` with exactly
  that worker's ``[lo, hi)`` row range listed as missing — the other
  shards' rows stay exact;
* the supervisor restarts the dead worker and full parity returns;
* SIGTERM drains cleanly — the process prints ``drained cleanly`` and
  exits 0.

Run directly (CI does)::

    PYTHONPATH=src:benchmarks python benchmarks/cluster_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.parallel.sharding import sharded_batch_search
from repro.server import ServerClient
from repro.server.state import manager_from_texts
from repro.store.durable import DurableIndexStore
from repro.store.mmap_io import open_latest_model

K = 10
SHARDS = 3
TOP = 10
RESTART_BACKOFF = 3.0  # wide enough to observe the degraded window


def _corpus() -> list[str]:
    rng = np.random.default_rng(43)
    vocab = [f"w{i}" for i in range(50)]
    return [" ".join(rng.choice(vocab, size=15)) for _ in range(61)]


def _seed_store(data_dir: str, texts: list[str]) -> None:
    ids = [f"D{i}" for i in range(len(texts))]
    store = DurableIndexStore.initialize(
        data_dir, manager_from_texts(texts, ids, k=K)
    )
    store.close(flush=False)


def _start_cluster(data_dir: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro cluster serve``; return (proc, http port)."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--no-obs", "cluster", "serve",
            "--data-dir", data_dir, "--workers", str(SHARDS),
            "--port", "0", "--heartbeat-interval", "0.25",
            "--restart-backoff", str(RESTART_BACKOFF),
            "--restart-backoff-cap", str(RESTART_BACKOFF),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"cluster exited before its banner (rc={proc.poll()})"
            )
        line = line.strip()
        print(f"  | {line}")
        if line.startswith("cluster serving ") and "on http://" in line:
            return proc, int(line.rsplit(":", 1)[1])
    proc.kill()
    raise SystemExit("cluster banner never appeared")


def _search_pairs(client: ServerClient, query: str) -> tuple[dict, list]:
    data = client.search(query, top=TOP)
    return data, [(int(j), float(s)) for j, s, _ in data["results"]]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "store")
        texts = _corpus()
        _seed_store(data_dir, texts)
        model = open_latest_model(data_dir)
        queries = texts[:5]
        # Single-query HTTP requests take the q=1 kernel path, so the
        # reference is computed one query at a time as well.
        expected = {
            q: sharded_batch_search(model, [q], top=TOP, shards=SHARDS)[0]
            for q in queries
        }
        full = {
            q: sharded_batch_search(
                model, [q], top=model.n_documents, shards=SHARDS
            )[0]
            for q in queries
        }

        proc, port = _start_cluster(data_dir)
        try:
            client = ServerClient(port=port)
            health = client.healthz()
            assert health["status"] == "ok", health
            assert health["workers_live"] == SHARDS, health

            # Phase 1: parity with the flat in-process sharded search.
            for q in queries:
                data, got = _search_pairs(client, q)
                assert data["partial"] is False, data
                assert got == expected[q], (q, got, expected[q])
            print(f"parity: {len(queries)} responses element-identical "
                  f"to sharded_batch_search (shards={SHARDS})")

            # Phase 2: SIGKILL one worker → partial with its range.
            victim = 1
            row = health["workers"][victim]
            lo, hi = row["lo"], row["hi"]
            os.kill(row["pid"], signal.SIGKILL)
            degraded = None
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                data, got = _search_pairs(client, queries[0])
                if data["partial"]:
                    degraded = (data, got)
                    break
                time.sleep(0.05)
            assert degraded is not None, "never observed a partial response"
            data, got = degraded
            assert data["missing"] == [[lo, hi]], data["missing"]
            survivors = [
                p for p in full[queries[0]] if not lo <= p[0] < hi
            ][:TOP]
            assert got == survivors, (got, survivors)
            print(f"degradation: SIGKILL shard {victim} -> partial=true, "
                  f"missing=[[{lo},{hi})], survivors exact")

            # Phase 3: the supervisor restarts it → full parity again.
            deadline = time.monotonic() + 45
            while time.monotonic() < deadline:
                if client.healthz()["workers_live"] == SHARDS:
                    break
                time.sleep(0.1)
            health = client.healthz()
            assert health["workers_live"] == SHARDS, health
            for q in queries:
                data, got = _search_pairs(client, q)
                assert data["partial"] is False, data
                assert got == expected[q], (q, got, expected[q])
            restarts = health["workers"][victim]["restarts"]
            assert restarts >= 1, health["workers"]
            print(f"recovery: worker {victim} restarted "
                  f"(restarts={restarts}), full parity restored")

            # The status verb agrees with what we just saw.
            status = subprocess.run(
                [
                    sys.executable, "-m", "repro", "--no-obs", "cluster",
                    "status", "--port", str(port), "--json",
                ],
                capture_output=True, text=True,
                env=dict(os.environ, PYTHONPATH="src"),
                timeout=30,
            )
            assert status.returncode == 0, status.stderr
            assert json.loads(status.stdout)["workers_live"] == SHARDS

            # Phase 4: graceful drain on SIGTERM.
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=45)
            assert proc.returncode == 0, (proc.returncode, out)
            assert "drained cleanly" in out, out
            print("drain: exit 0, drained cleanly")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

    print("cluster smoke: OK")


if __name__ == "__main__":
    t0 = time.perf_counter()
    main()
    print(f"({time.perf_counter() - t0:.1f}s)")
