"""End-to-end smoke test for ``python -m repro cluster serve``.

Boots the real cluster — HTTP front end, scatter-gather router, and
three shard worker *subprocesses* over one durable-store checkpoint —
and checks the acceptance criteria that only hold across process
boundaries:

* ``/search`` responses are element-identical to the in-process
  ``sharded_batch_search`` over the same checkpoint (same shard count,
  so the same kernel paths);
* probe-bounded (``probes``) responses are element-identical to an
  in-process probe of the same checkpoint quantizer over the same
  shard slices, and probing every cell reproduces the exact scan;
* SIGKILL-ing one worker degrades to ``partial=true`` with exactly
  that worker's ``[lo, hi)`` row range listed as missing — the other
  shards' rows stay exact;
* the supervisor restarts the dead worker and full parity returns;
* a traced ``/search`` (explicit ``X-Request-Id``) yields **one**
  cluster-wide trace at ``/trace?id=``: the router's ingress and
  scatter spans plus every worker's scoring span, all sharing the
  ingress trace id — exported as a JSONL artifact;
* ``/metrics?format=prom`` renders valid Prometheus exposition (no
  duplicate or illegal family names) with per-worker labels, while
  plain ``/metrics`` keeps the flat JSON shape;
* a second tiny cluster with an injected worker delay pushes a query
  over ``--slow-ms``: it must land in the ``--slowlog`` JSONL with
  per-shard timings (uploaded as a CI artifact);
* with ``--replication 2`` (6 workers, 3 ranges), SIGKILL-ing one
  replica mid-stream costs **nothing**: every response stays
  ``partial=false`` and element-identical while healthz shows the
  range at 1/2 healthy replicas — failover, not degradation — until
  the supervisor restores 2/2;
* SIGKILL-ing a ``--writable`` primary's whole process group promotes
  a ``--standby`` cluster on the same store: it adopts the lock,
  replays the WAL tail, and serves every previously acked record —
  zero durable-acked documents lost — with the promotion timeline
  landing in a JSONL artifact;
* SIGTERM drains cleanly — the process prints ``drained cleanly`` and
  exits 0;
* a two-tenant front end (``--tenants tenants.json``) routes by
  ``X-Tenant``: interleaved queries stay element-identical to each
  store's own in-process reference, the second tenant's fleet spawns
  lazily on its first query, a flood past one tenant's admission share
  draws per-tenant 429s while the other tenant still completes, a
  SIGKILL'd worker degrades only its own tenant, and with
  ``--max-resident 1`` the LRU tenant detaches (drains) and re-attaches
  with exact parity.

Run directly (CI does)::

    PYTHONPATH=src:benchmarks python benchmarks/cluster_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.core.query import project_query
from repro.errors import ServerOverloadError, UnknownTenantError
from repro.obs import export_trace_jsonl, read_slowlog
from repro.parallel.sharding import (
    merge_topk,
    shard_bounds,
    sharded_batch_search,
)
from repro.server import ServerClient
from repro.server.state import manager_from_texts
from repro.serving.kernel import row_norms
from repro.store.durable import DurableIndexStore
from repro.store.mmap_io import open_latest_ann, open_latest_model

K = 10
SHARDS = 3
TOP = 10
RESTART_BACKOFF = 3.0  # wide enough to observe the degraded window


def _corpus() -> list[str]:
    rng = np.random.default_rng(43)
    vocab = [f"w{i}" for i in range(50)]
    return [" ".join(rng.choice(vocab, size=15)) for _ in range(61)]


def _seed_store(data_dir: str, texts: list[str]) -> None:
    ids = [f"D{i}" for i in range(len(texts))]
    store = DurableIndexStore.initialize(
        data_dir, manager_from_texts(texts, ids, k=K)
    )
    store.close(flush=False)


def _start_cluster(
    data_dir: str | None,
    *extra_args: str,
    env_extra: dict[str, str] | None = None,
    new_session: bool = False,
) -> tuple[subprocess.Popen, int]:
    """Launch ``repro cluster serve``; return (proc, http port).

    ``data_dir=None`` serves a multi-tenant front end — pass
    ``"--tenants", path`` through ``extra_args`` instead.
    ``new_session=True`` puts the front end and its spawned workers in
    their own process group, so ``os.killpg`` can SIGKILL the whole
    cluster at once (the primary-death scenario)."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    env.update(env_extra or {})
    store_args = (
        ["--data-dir", data_dir] if data_dir is not None else []
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--no-obs", "cluster", "serve",
            *store_args, "--workers", str(SHARDS),
            "--port", "0", "--heartbeat-interval", "0.25",
            "--restart-backoff", str(RESTART_BACKOFF),
            "--restart-backoff-cap", str(RESTART_BACKOFF),
            *extra_args,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, start_new_session=new_session,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"cluster exited before its banner (rc={proc.poll()})"
            )
        line = line.strip()
        print(f"  | {line}")
        if line.startswith("cluster serving ") and "on http://" in line:
            return proc, int(line.rsplit(":", 1)[1])
    proc.kill()
    raise SystemExit("cluster banner never appeared")


def _search_pairs(
    client: ServerClient, query: str, probes: int | None = None
) -> tuple[dict, list]:
    data = client.search(query, top=TOP, probes=probes)
    return data, [(int(j), float(s)) for j, s, _ in data["results"]]


_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" -?[0-9].*$"
)


def _validate_prometheus(text: str) -> int:
    """Assert the exposition parses: unique legal families, sample lines."""
    declared: set[str] = set()
    samples = 0
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            name, kind = line[len("# TYPE "):].rsplit(" ", 1)
            assert kind in {"counter", "gauge", "summary"}, line
            assert name not in declared, f"duplicate family: {name}"
            declared.add(name)
        else:
            assert _PROM_SAMPLE.match(line), f"unparseable: {line!r}"
            samples += 1
    assert declared, "empty exposition"
    return samples


def _observability_phase(client: ServerClient) -> None:
    """One traced query → one cluster-wide trace; valid Prometheus text."""
    rid = "smoke-trace-1"
    data = client.search("w1 w2 w3", top=TOP, request_id=rid)
    assert data["partial"] is False, data
    assert client.last_request_id == rid, client.last_request_id

    trace = client.trace(rid)
    assert trace["trace_id"] == rid, trace
    assert trace["workers"] == [str(s) for s in range(SHARDS)], trace
    spans = trace["spans"]
    assert all(
        s["trace_id"] == rid or s.get("attrs", {}).get("trace_ids")
        for s in spans
    ), spans
    by_name: dict[str, list[dict]] = {}
    for record in spans:
        by_name.setdefault(record["name"], []).append(record)
    # Ingress and scatter spans come from the router process...
    (ingress,) = by_name["http.request"]
    assert ingress["worker"] == "router", ingress
    assert ingress["attrs"]["request_id"] == rid, ingress
    (scatter,) = by_name["cluster.scatter"]
    assert scatter["worker"] == "router", scatter
    # ...and every shard worker contributes its scoring span, parented
    # under the router's scatter span across the process boundary.
    score_spans = by_name["cluster.worker.score"]
    assert {s["worker"] for s in score_spans} == {
        str(s) for s in range(SHARDS)
    }, score_spans
    for record in score_spans:
        assert record["parent_id"] == scatter["span_id"], record
    export_trace_jsonl("SMOKE_cluster_trace.jsonl", spans)
    print(
        f"trace: one cluster-wide trace ({len(spans)} spans: ingress + "
        f"scatter + {len(score_spans)} worker spans share trace_id={rid})"
    )

    # The id is echoed on error responses too.
    try:
        client._request("GET", "/nope", request_id="smoke-err-1")
        raise AssertionError("404 expected")
    except Exception as exc:  # noqa: BLE001 — mapped ReproError
        assert getattr(exc, "request_id", None) == "smoke-err-1", exc

    # Prometheus exposition federates every worker; JSON stays flat.
    prom = client.metrics_prom()
    samples = _validate_prometheus(prom)
    for label in ["router"] + [str(s) for s in range(SHARDS)]:
        assert f'worker="{label}"' in prom, label
    metrics = client.metrics()
    assert set(metrics) == {"counters", "gauges", "histograms"}, metrics
    for sid in range(SHARDS):
        assert f"shard.{sid}.cluster.worker.score" in metrics["histograms"]
    print(
        f"metrics: /metrics?format=prom valid ({samples} samples, "
        f"per-worker labels), flat JSON federates {SHARDS} workers"
    )


def _slowlog_phase(data_dir: str) -> None:
    """A delayed worker pushes queries over --slow-ms → JSONL evidence."""
    slowlog = os.path.abspath("SMOKE_cluster_slowlog.jsonl")
    if os.path.exists(slowlog):
        os.unlink(slowlog)
    proc, port = _start_cluster(
        data_dir,
        "--slow-ms", "25", "--slowlog", slowlog,
        env_extra={"REPRO_WORKER_INJECT_DELAY_MS": "60"},
    )
    try:
        client = ServerClient(port=port)
        data = client.search("w1 w2 w3", top=TOP, request_id="smoke-slow-1")
        assert data["partial"] is False, data
        entries = read_slowlog(slowlog)
        assert entries, "60ms injected delay must cross the 25ms threshold"
        entry = entries[-1]
        assert entry["trace_id"] == "smoke-slow-1", entry
        assert entry["duration_ms"] >= 25.0, entry
        timings = entry["shard_timings"]
        assert sorted(timings) == [str(s) for s in range(SHARDS)], entry
        assert all(ms >= 50.0 for ms in timings.values()), timings
        health = client.healthz()
        assert health["slowlog"]["records"] >= 1, health["slowlog"]
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=45)
        assert proc.returncode == 0, (proc.returncode, out)
        print(
            f"slowlog: {len(entries)} record(s) with per-shard timings "
            f"({', '.join(f's{k}={v:.0f}ms' for k, v in sorted(timings.items()))})"
            f" -> {os.path.basename(slowlog)}"
        )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


def _replication_phase(data_dir: str, queries: list[str], expected) -> None:
    """R=2: SIGKILL one replica mid-stream → zero partial responses."""
    proc, port = _start_cluster(
        data_dir, "--workers", str(2 * SHARDS), "--replication", "2"
    )
    try:
        client = ServerClient(port=port)
        health = client.healthz()
        assert health["replication"] == 2, health
        assert health["n_workers"] == 2 * SHARDS, health
        assert health["n_shards"] == SHARDS, health
        assert all(
            r["replicas_healthy"] == 2 for r in health["ranges"]
        ), health["ranges"]

        # Kill replica 0 of range 1 and stream queries straight through
        # the death + restart window: with a live sibling, not one
        # response may degrade — failover is the contract, partial is
        # the bug.
        victim = next(
            w for w in health["workers"]
            if w["shard"] == 1 and w["replica"] == 0
        )
        os.kill(victim["pid"], signal.SIGKILL)
        checked = partials = 0
        one_replica_seen = recovered = False
        deadline = time.monotonic() + 40
        while time.monotonic() < deadline:
            q = queries[checked % len(queries)]
            data, got = _search_pairs(client, q)
            checked += 1
            partials += int(data["partial"])
            assert got == expected[q], (q, got, expected[q])
            r1 = next(
                r for r in client.healthz()["ranges"] if r["shard"] == 1
            )
            if r1["replicas_healthy"] == 1:
                one_replica_seen = True
                # One dead replica of a covered range is NOT degraded.
                assert client.healthz()["status"] == "ok"
            if one_replica_seen and r1["replicas_healthy"] == 2:
                recovered = True
                break
            time.sleep(0.05)
        assert partials == 0, f"{partials}/{checked} responses degraded"
        assert one_replica_seen, "never observed the 1/2-replica window"
        assert recovered, "replica never restarted to 2/2"

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=45)
        assert proc.returncode == 0, (proc.returncode, out)
        print(
            f"replication: R=2 SIGKILL'd worker {victim['worker']} "
            f"(shard 1 replica 0) -> {checked} streamed responses, "
            f"0 partial, all element-identical; range healed 1/2 -> 2/2"
        )
    finally:
        _reap(proc)


def _promotion_phase(tmp: str, texts: list[str]) -> None:
    """SIGKILL the writable primary → the standby adopts, zero loss."""
    data_dir = os.path.join(tmp, "store-ha")
    _seed_store(data_dir, texts)
    promo = os.path.abspath("SMOKE_cluster_promotion.jsonl")
    if os.path.exists(promo):
        os.unlink(promo)

    # The primary: a writable cluster in its own process group.  Seal
    # on every 4th record with the age trigger OFF, so the final three
    # acked documents are WAL-only when it dies — the exact window a
    # naive failover loses.
    primary, pport = _start_cluster(
        data_dir, "--writable", "--seal-every", "4", "--seal-interval",
        "0", new_session=True,
    )
    standby = None
    try:
        # The standby: same store directory, read-only until promotion.
        standby, sport = _start_cluster(
            data_dir, "--standby", "--standby-poll", "0.2",
            "--promotion-log", promo,
        )
        sclient = ServerClient(port=sport)
        assert sclient.healthz()["standby"]["promoted"] is False
        epoch0 = sclient.healthz()["epoch"]

        pclient = ServerClient(port=pport)
        acked = []
        for i in range(7):
            ack = pclient.add([f"w1 w5 w9 w{10 + i} w{20 + i}"], [f"HA{i}"])
            assert ack["durable"] is True, ack
            acked.append(f"HA{i}")

        # The standby follows the primary's seal (records 1-4) while
        # records 5-7 stay WAL-only.
        deadline = time.monotonic() + 45
        while sclient.healthz()["epoch"] == epoch0:
            assert time.monotonic() < deadline, "standby never followed"
            time.sleep(0.1)
        assert sclient.healthz()["standby"]["promoted"] is False

        # Primary dies: the whole process group, no drain, no flush.
        os.killpg(primary.pid, signal.SIGKILL)
        primary.communicate(timeout=15)

        deadline = time.monotonic() + 90
        while True:
            h = sclient.healthz()
            if (
                h["standby"]["promoted"]
                and h["writer"].get("enabled")
                and h["n_documents"] == len(texts) + len(acked)
            ):
                break
            assert time.monotonic() < deadline, f"no promotion: {h}"
            time.sleep(0.2)

        # Zero acked records lost: every durable /add the dead primary
        # acknowledged — sealed or WAL-tail — is searchable, complete.
        data = sclient.search("w1 w5 w9", top=h["n_documents"])
        assert data["partial"] is False, data
        ids = {row[2] for row in data["results"]}
        assert set(acked) <= ids, sorted(set(acked) - ids)

        # And the adopted writer accepts new writes.
        ack = sclient.add(["w2 w4 w6 w8"], ["HA-post"])
        assert ack["durable"] is True, ack

        events = [
            json.loads(line)
            for line in open(promo, encoding="utf-8")
        ]
        names = [e["event"] for e in events]
        for expected_event in (
            "standby_start", "followed_epoch", "lock_free", "adopted",
            "promoted",
        ):
            assert expected_event in names, names
        assert names.index("lock_free") < names.index("adopted") < (
            names.index("promoted")
        ), names

        standby.send_signal(signal.SIGTERM)
        out, _ = standby.communicate(timeout=45)
        assert standby.returncode == 0, (standby.returncode, out)
        promote_ms = 1000.0 * (
            next(e["ts"] for e in events if e["event"] == "promoted")
            - next(e["ts"] for e in events if e["event"] == "lock_free")
        )
        print(
            f"promotion: primary SIGKILL'd with 3 WAL-only acked docs -> "
            f"standby adopted + promoted in {promote_ms:.0f}ms, all "
            f"{len(acked)} acked docs searchable, writes accepted "
            f"-> {os.path.basename(promo)}"
        )
    finally:
        for proc in (primary, standby):
            _reap(proc)


def _corpus_b() -> list[str]:
    rng = np.random.default_rng(91)
    vocab = [f"w{i}" for i in range(50)]
    return [" ".join(rng.choice(vocab, size=15)) for _ in range(47)]


def _multitenant_phase(tmp: str, texts: list[str]) -> None:
    """Two tenants, one front end: parity, lazy attach, isolation, LRU."""
    import threading

    dirs = {
        "alpha": os.path.join(tmp, "tenant-alpha"),
        "beta": os.path.join(tmp, "tenant-beta"),
    }
    corpora = {"alpha": texts, "beta": _corpus_b()}
    for tid, d in dirs.items():
        _seed_store(d, corpora[tid])
    tenants_path = os.path.join(tmp, "tenants.json")
    with open(tenants_path, "w", encoding="utf-8") as fh:
        json.dump(dirs, fh)

    # Per-tenant references over each tenant's own store — the same
    # in-process oracle the single-tenant phases proved the cluster
    # element-identical to, so "identical to two single-tenant
    # clusters" reduces to matching these.
    fleet_shards = 2
    models = {tid: open_latest_model(d) for tid, d in dirs.items()}
    tenant_queries = {tid: corpora[tid][:3] for tid in dirs}
    expected = {
        tid: {
            q: sharded_batch_search(
                models[tid], [q], top=TOP, shards=fleet_shards
            )[0]
            for q in tenant_queries[tid]
        }
        for tid in dirs
    }

    def pairs(client: ServerClient, q: str, tid: str) -> tuple[dict, list]:
        data = client.search(q, top=TOP, tenant=tid)
        assert data["tenant"] == tid, data
        return data, [(int(j), float(s)) for j, s, _ in data["results"]]

    # --- Cluster 1: lazy attach, interleaved parity, quotas, isolation.
    proc, port = _start_cluster(
        None, "--tenants", tenants_path, "--workers", str(fleet_shards),
        "--queue-depth", "16",
        env_extra={"REPRO_WORKER_INJECT_DELAY_MS": "80"},
    )
    try:
        client = ServerClient(port=port)
        info = client.tenants()
        assert set(info["tenants"]) == set(dirs), info
        assert not any(
            row["resident"] for row in info["tenants"].values()
        ), info

        # An unhosted tenant is a typed 404 carrying the request id...
        try:
            client.search("w1", top=1, tenant="nobody",
                          request_id="smoke-mt-404")
            raise AssertionError("unknown tenant must 404")
        except UnknownTenantError as exc:
            assert exc.tenant == "nobody", exc
            assert exc.request_id == "smoke-mt-404", exc
        # ...and so is naming no tenant at all on a 2-tenant server.
        try:
            client.search("w1", top=1)
            raise AssertionError("ambiguous request must 404")
        except UnknownTenantError:
            pass

        # The first query cold-attaches exactly the tenant it names:
        # alpha's fleet spawns, beta stays a registry entry on disk.
        a_q = tenant_queries["alpha"][0]
        data, got = pairs(client, a_q, "alpha")
        assert data["partial"] is False, data
        assert got == expected["alpha"][a_q], (got, expected["alpha"][a_q])
        resident = {
            tid: row["resident"]
            for tid, row in client.tenants()["tenants"].items()
        }
        assert resident == {"alpha": True, "beta": False}, resident
        print("tenancy: first query attached only its own tenant "
              f"(resident={resident})")

        # Interleaved queries: each response element-identical to its
        # own store's reference (beta's fleet spawns on its first one).
        for i in range(6):
            tid = ("alpha", "beta")[i % 2]
            q = tenant_queries[tid][(i // 2) % len(tenant_queries[tid])]
            data, got = pairs(client, q, tid)
            assert data["partial"] is False, data
            assert got == expected[tid][q], (tid, q, got)
        print("tenancy: 6 interleaved responses element-identical to "
              "each tenant's own in-process reference")

        # Federated observability: every fleet's workers land under
        # tenant-prefixed names / tenant-labeled Prometheus series.
        prom = client.metrics_prom()
        _validate_prometheus(prom)
        assert 'tenant="alpha"' in prom and 'tenant="beta"' in prom, prom
        metrics = client.metrics()
        for tid in dirs:
            assert any(
                key.startswith(f"tenant.{tid}.shard.")
                for key in metrics["histograms"]
            ), (tid, sorted(metrics["histograms"]))

        # Quota isolation: flood alpha far past its share; the rejects
        # must be per-tenant 429s and beta must still complete.
        share = client.tenants()["quotas"]["share"]
        rejected: list[Exception] = []
        completed: list[int] = []

        def hammer() -> None:
            with ServerClient(port=port, timeout=60) as c:
                try:
                    c.search(a_q, top=TOP, tenant="alpha")
                    completed.append(1)
                except ServerOverloadError as exc:
                    rejected.append(exc)

        threads = [
            threading.Thread(target=hammer) for _ in range(3 * share)
        ]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        b_q = tenant_queries["beta"][0]
        data, got = pairs(client, b_q, "beta")
        beta_ms = 1000.0 * (time.monotonic() - t0)
        assert data["partial"] is False, data
        assert got == expected["beta"][b_q], got
        for t in threads:
            t.join()
        assert rejected, f"no 429 from a {3 * share}-deep alpha flood"
        assert all(
            getattr(e, "reason", None) == "tenant_quota" for e in rejected
        ), [getattr(e, "reason", None) for e in rejected]
        assert beta_ms < 10_000.0, beta_ms
        print(
            f"tenancy: alpha flood (3x share={share}) -> "
            f"{len(rejected)} per-tenant 429(s) "
            f"(reason=tenant_quota, {len(completed)} served); beta "
            f"answered exactly in {beta_ms:.0f}ms meanwhile"
        )

        # Fault isolation: SIGKILL one of alpha's workers — alpha
        # degrades to partial, beta stays complete and exact.
        fleet = client.healthz()["fleets"]["alpha"]
        row = fleet["workers"][0]
        lo, hi = row["lo"], row["hi"]
        os.kill(row["pid"], signal.SIGKILL)
        degraded = None
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            data = client.search(a_q, top=TOP, tenant="alpha")
            if data["partial"]:
                degraded = data
                break
            time.sleep(0.05)
        assert degraded is not None, "alpha never degraded"
        assert degraded["missing"] == [[lo, hi]], degraded["missing"]
        data, got = pairs(client, b_q, "beta")
        assert data["partial"] is False, data
        assert got == expected["beta"][b_q], got
        print(
            f"tenancy: SIGKILL'd an alpha worker -> alpha partial "
            f"(missing=[[{lo},{hi})]), beta complete and exact"
        )

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, (proc.returncode, out)
        assert "drained cleanly" in out, out
    finally:
        _reap(proc)

    # --- Cluster 2: a resident-set cap of one — attach, LRU detach,
    # re-attach, all with exact parity.
    proc, port = _start_cluster(
        None, "--tenants", tenants_path, "--workers", str(fleet_shards),
        "--max-resident", "1",
    )
    try:
        client = ServerClient(port=port)
        a_q = tenant_queries["alpha"][0]
        b_q = tenant_queries["beta"][0]
        data, got = pairs(client, a_q, "alpha")
        assert data["partial"] is False, data
        assert got == expected["alpha"][a_q], got
        rows = client.tenants()["tenants"]
        assert rows["alpha"]["resident"] and not rows["beta"]["resident"]

        # Attaching beta pushes the resident set over the cap: alpha —
        # the LRU tenant — detaches once its in-flight queries drain,
        # and its fleet is reaped off the serving path.
        data, got = pairs(client, b_q, "beta")
        assert data["partial"] is False, data
        assert got == expected["beta"][b_q], got
        deadline = time.monotonic() + 30
        while True:
            rows = client.tenants()["tenants"]
            if rows["beta"]["resident"] and not rows["alpha"]["resident"]:
                break
            assert time.monotonic() < deadline, rows
            time.sleep(0.1)

        # Coming back re-attaches alpha (a fresh fleet) with parity.
        data, got = pairs(client, a_q, "alpha")
        assert data["partial"] is False, data
        assert got == expected["alpha"][a_q], got
        rows = client.tenants()["tenants"]
        assert rows["alpha"]["attaches"] >= 2, rows

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, (proc.returncode, out)
        print(
            "tenancy: max-resident=1 LRU-detached alpha behind beta's "
            f"attach, then re-attached it exactly "
            f"(alpha attaches={rows['alpha']['attaches']})"
        )
    finally:
        _reap(proc)


def _reap(proc: subprocess.Popen | None) -> None:
    """Failure-path cleanup: kill the front end, tolerate a held pipe.

    A SIGKILLed front end cannot SIGTERM its workers, and they inherit
    its stdout pipe — so ``communicate`` may never see EOF; the timeout
    keeps a failed phase from hanging the whole smoke."""
    if proc is None or proc.poll() is not None:
        return
    proc.kill()
    try:
        proc.communicate(timeout=10)
    except subprocess.TimeoutExpired:
        pass


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "store")
        texts = _corpus()
        _seed_store(data_dir, texts)
        model = open_latest_model(data_dir)
        queries = texts[:5]
        # Single-query HTTP requests take the q=1 kernel path, so the
        # reference is computed one query at a time as well.
        expected = {
            q: sharded_batch_search(model, [q], top=TOP, shards=SHARDS)[0]
            for q in queries
        }
        full = {
            q: sharded_batch_search(
                model, [q], top=model.n_documents, shards=SHARDS
            )[0]
            for q in queries
        }

        proc, port = _start_cluster(data_dir)
        try:
            client = ServerClient(port=port)
            health = client.healthz()
            assert health["status"] == "ok", health
            assert health["workers_live"] == SHARDS, health

            # Phase 1: parity with the flat in-process sharded search.
            for q in queries:
                data, got = _search_pairs(client, q)
                assert data["partial"] is False, data
                assert got == expected[q], (q, got, expected[q])
            print(f"parity: {len(queries)} responses element-identical "
                  f"to sharded_batch_search (shards={SHARDS})")

            # Phase 1b: ANN parity.  Every worker maps the same
            # checkpoint quantizer and cell selection is a pure
            # function of the scaled query, so a cluster probe-bounded
            # search must merge to exactly an in-process probe of the
            # same quantizer over the same shard slices (gathered BLAS
            # shapes must match shard-for-shard, like the exact phase's
            # ``shards=SHARDS`` reference) — and probing every cell
            # must equal the exact scan.
            assert health["ann"] is True, health
            ann = open_latest_ann(data_dir)
            assert ann is not None, "seeded checkpoint has no quantizer"
            shard_slices = []
            for lo, hi in shard_bounds(model.n_documents, SHARDS):
                coords = np.ascontiguousarray(model.V[lo:hi] * model.s)
                shard_slices.append((lo, coords, row_norms(coords)))
            probes = max(1, ann.n_clusters // 2)
            for q in queries:
                qhat = project_query(model, q)
                per_shard = [
                    ann.select(
                        coords, norms, qhat * model.s,
                        probes=probes, top=TOP, lo=lo,
                        n_total=model.n_documents,
                    )[0]
                    for lo, coords, norms in shard_slices
                ]
                ref = [
                    (int(j), float(s))
                    for j, s in merge_topk(per_shard, TOP)
                ]
                data, got = _search_pairs(client, q, probes=probes)
                assert data["partial"] is False, data
                assert got == ref, (q, got, ref)
                _, got_full = _search_pairs(
                    client, q, probes=ann.n_clusters
                )
                assert got_full == expected[q], (q, got_full, expected[q])
            print(f"ann parity: probes={probes} element-identical to the "
                  f"sharded in-process probe; probes={ann.n_clusters} "
                  f"(all cells) identical to the exact scan")

            # Phase 1c: all three workers live → one cluster-wide trace,
            # valid Prometheus exposition, request-id echo on errors.
            _observability_phase(client)

            # Phase 2: SIGKILL one worker → partial with its range.
            victim = 1
            row = health["workers"][victim]
            lo, hi = row["lo"], row["hi"]
            os.kill(row["pid"], signal.SIGKILL)
            degraded = None
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                data, got = _search_pairs(client, queries[0])
                if data["partial"]:
                    degraded = (data, got)
                    break
                time.sleep(0.05)
            assert degraded is not None, "never observed a partial response"
            data, got = degraded
            assert data["missing"] == [[lo, hi]], data["missing"]
            survivors = [
                p for p in full[queries[0]] if not lo <= p[0] < hi
            ][:TOP]
            assert got == survivors, (got, survivors)
            print(f"degradation: SIGKILL shard {victim} -> partial=true, "
                  f"missing=[[{lo},{hi})], survivors exact")

            # Phase 3: the supervisor restarts it → full parity again.
            # A single request may still see a transient partial right
            # after the restart (a deadline miss on a cold worker is
            # degradation, not an error), so retry until the response
            # is complete — completeness, not the first attempt, is the
            # contract.
            deadline = time.monotonic() + 45
            while time.monotonic() < deadline:
                if client.healthz()["workers_live"] == SHARDS:
                    break
                time.sleep(0.1)
            health = client.healthz()
            assert health["workers_live"] == SHARDS, health
            pending = list(queries)
            while pending and time.monotonic() < deadline:
                q = pending[0]
                data, got = _search_pairs(client, q)
                if data["partial"]:
                    time.sleep(0.1)
                    continue
                assert got == expected[q], (q, got, expected[q])
                pending.pop(0)
            assert not pending, f"still partial after restart: {pending}"
            restarts = health["workers"][victim]["restarts"]
            assert restarts >= 1, health["workers"]
            print(f"recovery: worker {victim} restarted "
                  f"(restarts={restarts}), full parity restored")

            # The status verb agrees with what we just saw.
            status = subprocess.run(
                [
                    sys.executable, "-m", "repro", "--no-obs", "cluster",
                    "status", "--port", str(port), "--json",
                ],
                capture_output=True, text=True,
                env=dict(os.environ, PYTHONPATH="src"),
                timeout=30,
            )
            assert status.returncode == 0, status.stderr
            assert json.loads(status.stdout)["workers_live"] == SHARDS

            # Phase 4: graceful drain on SIGTERM.
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=45)
            assert proc.returncode == 0, (proc.returncode, out)
            assert "drained cleanly" in out, out
            print("drain: exit 0, drained cleanly")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

        # Phase 5: a fresh cluster with a delayed worker → slow-query log.
        _slowlog_phase(data_dir)

        # Phase 6: R=2 — a SIGKILL'd replica costs nothing mid-stream.
        _replication_phase(data_dir, queries, expected)

        # Phase 7: primary SIGKILL → standby adoption, zero acked loss.
        _promotion_phase(tmp, texts)

        # Phase 8: two tenants behind one front end — routed parity,
        # lazy attach, quota + fault isolation, LRU detach.
        _multitenant_phase(tmp, texts)

    print("cluster smoke: OK")


if __name__ == "__main__":
    t0 = time.perf_counter()
    main()
    print(f"({time.perf_counter() - t0:.1f}s)")
