"""Corpus parsing rules: which tokens become indexing keywords.

The paper's example states "The parsing rule used for this sample database
required that keywords appear in more than one topic" — i.e. a minimum
document frequency of 2 — and notes that "alternative parsing strategies
can increase or decrease the number of indexing keywords".
:class:`ParsingRules` captures those knobs; :func:`parse_corpus` applies
them to raw texts and yields the filtered token lists plus the vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import VocabularyError
from repro.text.stopwords import DEFAULT_STOPWORDS
from repro.text.tokenizer import tokenize
from repro.text.vocabulary import Vocabulary

__all__ = ["ParsingRules", "ParsedCorpus", "parse_corpus"]


@dataclass(frozen=True)
class ParsingRules:
    """Keyword-selection policy.

    Attributes
    ----------
    min_doc_freq:
        A term must occur in at least this many distinct documents to be
        indexed.  The paper's Table 2 example uses 2.
    min_term_length:
        Drop tokens shorter than this many characters.
    remove_stopwords:
        Apply the stop list before counting.
    stopwords:
        The stop list to apply; defaults to the SMART-style core list.
    max_vocabulary:
        Optional cap — keep only the ``max_vocabulary`` most frequent
        (by collection frequency) qualifying terms.
    """

    min_doc_freq: int = 1
    min_term_length: int = 1
    remove_stopwords: bool = True
    stopwords: frozenset[str] = field(default=DEFAULT_STOPWORDS)
    max_vocabulary: int | None = None

    def __post_init__(self):
        if self.min_doc_freq < 1:
            raise ValueError("min_doc_freq must be >= 1")
        if self.min_term_length < 1:
            raise ValueError("min_term_length must be >= 1")
        if self.max_vocabulary is not None and self.max_vocabulary < 1:
            raise ValueError("max_vocabulary must be >= 1 when set")


@dataclass
class ParsedCorpus:
    """Result of applying parsing rules to a corpus.

    Attributes
    ----------
    tokens:
        Per-document lists of *indexed* tokens (occurrence order kept,
        non-keywords removed).
    vocabulary:
        Keywords in first-appearance order... see note: order is sorted
        alphabetically so the matrix rows match the paper's Table 3 layout.
    n_raw_tokens:
        Token count before filtering (for corpus statistics).
    """

    tokens: list[list[str]]
    vocabulary: Vocabulary
    n_raw_tokens: int = 0

    @property
    def n_documents(self) -> int:
        """Number of parsed documents."""
        return len(self.tokens)


def parse_corpus(
    texts: Sequence[str],
    rules: ParsingRules | None = None,
    *,
    vocabulary: Vocabulary | None = None,
) -> ParsedCorpus:
    """Tokenize ``texts`` and select indexing keywords per ``rules``.

    Parameters
    ----------
    texts:
        Raw document strings.
    rules:
        Keyword policy; defaults to ``ParsingRules()`` (no df threshold).
    vocabulary:
        When given, skip keyword selection entirely and index against this
        fixed vocabulary (the fold-in path: new documents must be expressed
        in the existing term space).

    Returns
    -------
    ParsedCorpus
        With an alphabetically-ordered vocabulary (matching the paper's
        Table 3 row order) unless a fixed ``vocabulary`` was supplied.
    """
    rules = rules or ParsingRules()
    raw: list[list[str]] = []
    n_raw = 0
    for text in texts:
        toks = tokenize(text, min_length=rules.min_term_length)
        n_raw += len(toks)
        if rules.remove_stopwords:
            toks = [t for t in toks if t not in rules.stopwords]
        raw.append(toks)

    if vocabulary is not None:
        kept = [[t for t in doc if t in vocabulary] for doc in raw]
        return ParsedCorpus(kept, vocabulary, n_raw_tokens=n_raw)

    # Document frequency of each candidate term.
    doc_freq: dict[str, int] = {}
    coll_freq: dict[str, int] = {}
    for doc in raw:
        for t in set(doc):
            doc_freq[t] = doc_freq.get(t, 0) + 1
        for t in doc:
            coll_freq[t] = coll_freq.get(t, 0) + 1

    keywords = {t for t, df in doc_freq.items() if df >= rules.min_doc_freq}
    if rules.max_vocabulary is not None and len(keywords) > rules.max_vocabulary:
        ranked = sorted(keywords, key=lambda t: (-coll_freq[t], t))
        keywords = set(ranked[: rules.max_vocabulary])
    if not keywords:
        raise VocabularyError(
            "parsing rules eliminated every term; relax min_doc_freq or "
            "the stop list"
        )

    vocab = Vocabulary(sorted(keywords))
    kept = [[t for t in doc if t in keywords] for doc in raw]
    return ParsedCorpus(kept, vocab, n_raw_tokens=n_raw)
