"""Tests for orthogonality diagnostics, cost model, and the planner."""

import numpy as np
import pytest

from repro.corpus.med import UPDATE_COLUMNS
from repro.updating import (
    drift_report,
    fold_documents_flops,
    fold_terms_flops,
    plan_update,
    recompute_flops,
    svd_update_correction_flops,
    svd_update_documents_flops,
    svd_update_terms_flops,
)
from repro.updating.orthogonality import fold_in_drift_curve


def test_drift_report_clean_model(med_model):
    rep = drift_report(med_model)
    assert rep.max_loss < 1e-10
    assert rep.provenance == "svd"


def test_drift_curve_monotone_documents(med_model):
    """§4.3 experiment: doc-side loss grows as batches are folded in."""
    batches = [UPDATE_COLUMNS[:, :1], UPDATE_COLUMNS[:, 1:]]
    records = fold_in_drift_curve(med_model, batches)
    assert len(records) == 3
    losses = [r["doc_loss"] for r in records]
    assert losses[0] < 1e-10
    assert losses[-1] >= losses[0]
    assert records[-1]["n_documents"] == 16


def test_drift_curve_with_metric(med_model):
    records = fold_in_drift_curve(
        med_model, [UPDATE_COLUMNS], metric=lambda m: float(m.n_documents)
    )
    assert records[0]["metric"] == 14.0
    assert records[1]["metric"] == 16.0


# --------------------------------------------------------------------- #
# Table 7 cost model
# --------------------------------------------------------------------- #
def test_fold_flops_are_the_printed_formulas():
    assert fold_documents_flops(m=100, k=10, p=3) == 2 * 100 * 10 * 3
    assert fold_terms_flops(n=50, k=10, q=2) == 2 * 50 * 10 * 2


def test_fold_scales_linearly_in_every_argument():
    base = fold_documents_flops(100, 10, 5)
    assert fold_documents_flops(200, 10, 5) == 2 * base
    assert fold_documents_flops(100, 20, 5) == 2 * base
    assert fold_documents_flops(100, 10, 10) == 2 * base


def test_svd_update_dominated_by_dense_rotations():
    """The paper: 'The expense in SVD-updating can be attributed to the
    O(2k²m + 2k²n) flops' — for small updates the (2k²−k)(m+n) term must
    dominate the estimate."""
    m, n, k, p = 10_000, 50_000, 200, 10
    total = svd_update_documents_flops(m, n, k, p, nnz_d=10 * p, iterations=2 * k)
    rotations = (2 * k * k - k) * (m + n + p)
    assert rotations / total > 0.5


def test_folding_much_cheaper_than_updating_for_small_p():
    """Table 7's qualitative claim: d « n ⇒ folding needs far fewer
    flops than SVD-updating."""
    m, n, k = 90_000, 70_000, 200
    ratios = []
    for p in (1, 10, 100):
        fold = fold_documents_flops(m, k, p)
        update = svd_update_documents_flops(m, n, k, p, nnz_d=50 * p)
        ratios.append(update / fold)
        assert update / fold > 3
    # The advantage shrinks as p grows (folding scales with p, the
    # update's dominant rotation term does not).
    assert ratios == sorted(ratios, reverse=True)


def test_update_cheaper_than_recompute_for_dense_collections():
    """The crossover: recomputing pays I·4·nnz over the whole matrix, so
    for dense collections with modest k, updating (whose dominant cost
    is the (2k²−k)(m+n) rotations) wins."""
    m, n, k, p = 90_000, 70_000, 50, 100
    nnz_a = 300 * n
    update = svd_update_documents_flops(m, n, k, p, nnz_d=300 * p)
    recompute = recompute_flops(nnz_a + 300 * p, k)
    assert update < recompute


def test_recompute_can_win_on_sparse_small_k_collections():
    """And the other side of the crossover: very sparse matrices with
    large k make the rotation term dominate — recomputing's flop count
    can drop below updating's (the paper's case for updating is memory
    and incrementality, not raw flops, in this regime)."""
    m, n, k, p = 90_000, 70_000, 200, 500
    nnz_a = 20 * n
    update = svd_update_documents_flops(m, n, k, p, nnz_d=20 * p)
    recompute = recompute_flops(nnz_a + 20 * p, k)
    assert recompute < update


def test_terms_and_correction_formulas_positive():
    assert svd_update_terms_flops(1000, 2000, 50, 10, 500) > 0
    assert svd_update_correction_flops(1000, 2000, 50, 10, 500) > 0


# --------------------------------------------------------------------- #
# planner
# --------------------------------------------------------------------- #
def test_planner_folds_small_updates():
    plan = plan_update(m=90_000, n=70_000, k=200, p=100)
    assert plan.method == "fold-in"
    assert plan.new_fraction == pytest.approx(100 / 70_000)
    assert plan.flops["fold-in"] < plan.flops["svd-update"]


def test_planner_updates_when_budget_exceeded():
    plan = plan_update(m=9_000, n=7_000, k=100, p=2_000)
    assert plan.method in ("svd-update", "recompute")
    assert plan.new_fraction > 0.1


def test_planner_recomputes_for_huge_updates():
    plan = plan_update(
        m=900, n=700, k=20, p=100_000, nnz_per_doc=5.0,
        distortion_budget=0.01,
    )
    assert plan.method == "recompute"


def test_planner_validation():
    with pytest.raises(ValueError):
        plan_update(m=0, n=10, k=2, p=1)


def test_planner_reason_is_informative():
    plan = plan_update(m=1000, n=1000, k=50, p=10)
    assert "p/n" in plan.reason
