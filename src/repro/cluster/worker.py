"""The shard worker: one process, one contiguous slice of the space.

A worker is a pure *checkpoint consumer*.  It opens the newest valid
checkpoint of a durable store with ``np.load(mmap_mode="r")``
(:mod:`repro.store.mmap_io` — O(header) open, no pickling of factors),
materializes only its shard's scoring state — ``V[lo:hi] Σ`` and its
row norms, the same arrays the in-process sharded search slices — and
serves two things over length-prefixed JSON frames on a local socket:
``score`` requests and heartbeats.  Nothing else: no updating, no WAL,
no lock on the store.  Restarting a worker is therefore always safe and
cheap, which is what the supervisor's crash-restart loop relies on.

Epoch window
------------
Under a writable cluster the primary writer broadcasts a ``bump`` op
after sealing each new checkpoint.  The worker remaps the named
checkpoint into a fresh :class:`_EpochState` and swaps it in with one
reference assignment — the superseded state is retained as *previous*
until the next bump, so ``score`` frames carrying the old epoch (sent
by front-end requests that snapshotted their handle before the swap)
still score against exactly the state they started on.  A request for
an epoch outside this two-deep window is answered with a skew marker
the router degrades to a partial response.

Exactness contract
------------------
:meth:`ShardWorker.score` runs the *identical* kernel and selection the
flat path runs on the same slice shapes — :func:`~repro.serving.kernel.
cosine_scores` over ``(hi-lo, k)`` rows, :func:`~repro.serving.topk.
ranked_order` per query — and JSON round-trips doubles losslessly, so a
router merging worker responses with ``merge_topk`` reproduces
``sharded_batch_search`` element-for-element: indices, scores, tie
order.

Run one with ``python -m repro cluster worker`` (the supervisor does).
"""

from __future__ import annotations

import os
import pathlib
import signal
import socketserver
import sys
import threading
import time

import numpy as np

from repro.cluster.plan import ShardPlan, ShardRange
from repro.cluster.wire import BUMP_OP, recv_frame, send_frame
from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.obs.metrics import registry
from repro.obs.trace_context import TraceContext, trace_scope
from repro.obs.tracing import span, spans_for_trace
from repro.serving.ann import CoarseQuantizer
from repro.serving.kernel import cosine_scores, row_norms
from repro.serving.topk import ranked_order
from repro.store.checkpoint import latest_valid_checkpoint
from repro.store.mmap_io import open_checkpoint_ann, open_checkpoint_model

__all__ = ["ShardWorker", "WorkerServer", "serve_shard", "run_worker"]


class _EpochState:
    """One epoch's immutable scoring state for one shard.

    Built once per (checkpoint, shard) and never mutated — the worker
    swaps whole instances, which is what lets in-flight queries keep a
    consistent view without any locking on the score path.
    """

    def __init__(
        self,
        model: LSIModel,
        shard: ShardRange,
        *,
        epoch: int = 0,
        ann: CoarseQuantizer | None = None,
    ):
        self.model = model
        self.shard = shard
        self.epoch = int(epoch)
        # Shared checkpoint quantizer (global posting lists); candidate
        # sets are clipped to this shard's [lo, hi) rows at query time.
        self.ann = ann
        lo, hi = shard.lo, shard.hi
        if not 0 <= lo <= hi <= model.n_documents:
            raise ShapeError(
                f"shard rows [{lo},{hi}) outside model with "
                f"n={model.n_documents}"
            )
        # Materialize only this shard's rows: the multiply touches (and
        # therefore faults in) just the mapped pages of V[lo:hi].
        self.coords = np.ascontiguousarray(model.V[lo:hi] * model.s)
        self.norms = row_norms(self.coords)


class ShardWorker:
    """Transport-free scoring core for one shard, epoch-windowed.

    Separated from the socket loop so tests (and the router's in-process
    parity harnesses) can drive :meth:`handle` directly.  The worker
    holds the *current* epoch's scoring state plus the immediately
    superseded one (see the module docstring); attribute access
    (``model``, ``shard``, ``coords``, …) reads the current state.
    """

    def __init__(
        self,
        model: LSIModel,
        shard: ShardRange,
        *,
        epoch: int = 0,
        ann: CoarseQuantizer | None = None,
        data_dir: pathlib.Path | None = None,
        replica: int = 0,
        tenant: str | None = None,
    ):
        self._state = _EpochState(model, shard, epoch=epoch, ann=ann)
        self._previous: _EpochState | None = None
        #: The tenant this worker's rows belong to.  ``None`` accepts
        #: any frame (single-tenant cluster); set, the worker refuses
        #: frames stamped for a different tenant — a misrouted scatter
        #: must fail loudly rather than silently score foreign rows.
        self.tenant = tenant
        #: Replica index within this shard range's replica set —
        #: identity only; every replica scores identical bytes.
        self.replica = int(replica)
        self._swap_lock = threading.Lock()  # serializes bumps, not scores
        #: Store directory bumps remap checkpoints from; ``None`` makes
        #: the worker bump-refusing (in-process/test construction).
        self.data_dir = pathlib.Path(data_dir) if data_dir else None
        self.started_unix = time.time()
        self.requests_served = 0
        self.bumps_applied = 0
        # Fault-injection hook for smoke tests: a fixed per-request delay
        # (milliseconds) that pushes requests over the slow-log threshold.
        self.inject_delay_s = (
            float(os.environ.get("REPRO_WORKER_INJECT_DELAY_MS", 0) or 0)
            / 1000.0
        )

    # Current-epoch views: the swap replaces ``_state`` wholesale, so a
    # reader that grabs it once works against one consistent epoch.
    @property
    def model(self) -> LSIModel:
        return self._state.model

    @property
    def shard(self) -> ShardRange:
        return self._state.shard

    @property
    def epoch(self) -> int:
        return self._state.epoch

    @property
    def ann(self) -> CoarseQuantizer | None:
        return self._state.ann

    @property
    def coords(self) -> np.ndarray:
        return self._state.coords

    @property
    def norms(self) -> np.ndarray:
        return self._state.norms

    def _state_for_epoch(self, epoch) -> _EpochState | None:
        """The held state matching ``epoch`` (None = current), if any."""
        state, previous = self._state, self._previous
        if epoch is None or int(epoch) == state.epoch:
            return state
        if previous is not None and int(epoch) == previous.epoch:
            return previous
        return None

    # ------------------------------------------------------------------ #
    def info(self) -> dict:
        """Identity block for hellos, status pages, and debugging."""
        state, previous = self._state, self._previous
        return {
            "shard": state.shard.shard_id,
            "replica": self.replica,
            "lo": state.shard.lo,
            "hi": state.shard.hi,
            "epoch": state.epoch,
            "previous_epoch": previous.epoch if previous else None,
            "n_documents": state.model.n_documents,
            "k": state.model.k,
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self.started_unix,
            "requests_served": self.requests_served,
            "bumps_applied": self.bumps_applied,
            "ann": state.ann is not None,
            "tenant": self.tenant,
        }

    # ------------------------------------------------------------------ #
    def bump(self, plan_json: str) -> dict:
        """Hot-remap to the plan's checkpoint; retain the old epoch.

        Idempotent for the current epoch.  Returns the ack dict (or an
        error dict the router surfaces); on success the superseded
        state stays answerable until the next bump.
        """
        if self.data_dir is None:
            return {"error": "worker has no data dir — cannot remap"}
        try:
            plan = ShardPlan.from_json(plan_json)
        except Exception as exc:  # noqa: BLE001 — malformed plan
            return {"error": f"malformed bump plan: {exc!r}"}
        with self._swap_lock:
            current = self._state
            if plan.epoch == current.epoch:
                return {
                    "ok": True,
                    "shard": current.shard.shard_id,
                    "epoch": current.epoch,
                    "noop": True,
                }
            shard_id = current.shard.shard_id
            if not 0 <= shard_id < plan.n_shards:
                return {
                    "error": (
                        f"bump plan has {plan.n_shards} shards; worker "
                        f"serves shard {shard_id}"
                    )
                }
            from repro.store.durable import STORE_LAYOUT
            from repro.store.checkpoint import list_checkpoints

            checkpoints = self.data_dir / STORE_LAYOUT["checkpoints"]
            info = next(
                (
                    c
                    for c in list_checkpoints(checkpoints)
                    if c.path.name == plan.checkpoint
                ),
                None,
            )
            if info is None:
                return {
                    "error": (
                        f"bump names checkpoint {plan.checkpoint!r} but it "
                        f"is not under {checkpoints}"
                    )
                }
            epoch = int(info.manifest.get("meta", {}).get("epoch", 0))
            if epoch != plan.epoch:
                return {
                    "error": (
                        f"checkpoint {plan.checkpoint} carries epoch "
                        f"{epoch} but the bump plan says {plan.epoch}"
                    )
                }
            try:
                model = open_checkpoint_model(info.path, mmap=True)
                if model.n_documents != plan.n_documents:
                    return {
                        "error": (
                            f"checkpoint has {model.n_documents} documents "
                            f"but the bump plan covers {plan.n_documents}"
                        )
                    }
                ann = open_checkpoint_ann(info.path, mmap=True)
                fresh = _EpochState(
                    model, plan.shard(shard_id), epoch=epoch, ann=ann
                )
            except Exception as exc:  # noqa: BLE001 — keep serving old epoch
                return {"error": f"remap of {plan.checkpoint} failed: {exc!r}"}
            # The swap: one reference assignment each.  In-flight scores
            # grabbed their state reference already; new frames see the
            # fresh epoch, old-epoch frames land on ``_previous``.
            self._previous = current
            self._state = fresh
            self.bumps_applied += 1
            registry.inc("cluster.worker.bumps_total")
            registry.set_gauge("cluster.worker.epoch", epoch)
            return {"ok": True, "shard": shard_id, "epoch": epoch}

    def score(
        self,
        Qs: np.ndarray,
        top: int | None,
        threshold: float | None,
        *,
        probes: int | None = None,
        exact: bool = False,
        state: _EpochState | None = None,
    ) -> list[list[list]]:
        """Per-query ranked ``[global_index, score]`` pairs for this shard.

        ``Qs`` is the already-scaled ``(q, k)`` comparison-space batch
        (the router applies ``Σ`` once); indices are shifted to global
        row numbers so the merge needs no further translation.  With
        ``probes`` (and a mapped quantizer), each query scores only the
        probed cells' rows that land in this shard — cell selection is
        a pure function of the scaled query and the shared checkpoint
        quantizer, so every shard probes the same cells and the merged
        result equals a single-node probe at the same count.  ``state``
        pins the epoch to score against (default: current).
        """
        state = state if state is not None else self._state
        lo = state.shard.lo
        if state.shard.n_rows == 0:
            return [[] for _ in range(Qs.shape[0])]
        if probes is not None and not exact:
            if state.ann is None:
                registry.inc("ann.exact_fallbacks_total")
            else:
                out = []
                for q in Qs:
                    pairs, _stats = state.ann.select(
                        state.coords,
                        state.norms,
                        q,
                        probes=probes,
                        top=top,
                        threshold=threshold,
                        lo=lo,
                        n_total=state.model.n_documents,
                    )
                    out.append([[j, score] for j, score in pairs])
                return out
        S = cosine_scores(state.coords, Qs, norms=state.norms)
        out = []
        for row in S:
            order = ranked_order(row, top=top, threshold=threshold)
            out.append([[int(lo + j), float(row[j])] for j in order])
        return out

    # ------------------------------------------------------------------ #
    def handle(self, message: dict) -> dict:
        """Dispatch one protocol message; always returns a response dict."""
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "shard": self.shard.shard_id, "epoch": self.epoch}
        if op == "info":
            return self.info()
        if op == BUMP_OP:
            plan_json = message.get("plan")
            if not isinstance(plan_json, str) or not plan_json:
                return {"error": "'plan' must be the canonical plan JSON"}
            try:
                return self.bump(plan_json)
            except Exception as exc:  # noqa: BLE001 — keep serving
                return {"error": f"bump failed: {exc!r}"}
        if op == "score":
            frame_tenant = message.get("tenant")
            if (
                self.tenant is not None
                and frame_tenant is not None
                and frame_tenant != self.tenant
            ):
                registry.inc("cluster.worker.tenant_mismatch_total")
                return {
                    "error": (
                        f"worker serves tenant {self.tenant!r}; frame is "
                        f"for {frame_tenant!r}"
                    ),
                    "tenant": self.tenant,
                }
            # Pin the epoch the frame asks for (absent = current) before
            # anything else: every read below must come from one state.
            state = self._state_for_epoch(message.get("epoch"))
            if state is None:
                registry.inc("cluster.worker.epoch_skew_total")
                return {
                    "error": (
                        f"epoch {message.get('epoch')} is no longer held "
                        f"(current {self._state.epoch})"
                    ),
                    "stale_epoch": True,
                    "shard": self._state.shard.shard_id,
                    "epoch": self._state.epoch,
                }
            try:
                Qs = np.atleast_2d(
                    np.asarray(message["queries"], dtype=np.float64)
                )
            except (KeyError, TypeError, ValueError) as exc:
                return {"error": f"malformed 'queries': {exc!r}"}
            if Qs.ndim != 2 or Qs.shape[1] != state.model.k:
                return {
                    "error": (
                        f"queries have shape {Qs.shape} for k={state.model.k}"
                    )
                }
            top = message.get("top")
            threshold = message.get("threshold")
            probes = message.get("probes")
            if probes is not None and (
                isinstance(probes, bool)
                or not isinstance(probes, int)
                or probes < 1
            ):
                return {"error": "'probes' must be a positive integer"}
            exact = message.get("exact", False)
            # The frame's trace context (if any) makes this worker's
            # scoring span a child of the router's scatter span, in the
            # router's trace, even though it lives in another process.
            ctx = TraceContext.from_wire(message.get("trace"))
            try:
                with trace_scope(ctx), span(
                    "cluster.worker.score",
                    shard=state.shard.shard_id,
                    lo=state.shard.lo,
                    hi=state.shard.hi,
                    epoch=state.epoch,
                    queries=int(Qs.shape[0]),
                    probes=probes,
                ):
                    if self.inject_delay_s > 0:
                        time.sleep(self.inject_delay_s)
                    results = self.score(
                        Qs,
                        None if top is None else int(top),
                        None if threshold is None else float(threshold),
                        probes=probes,
                        exact=bool(exact),
                        state=state,
                    )
            except Exception as exc:  # noqa: BLE001 — a query must not kill the worker
                return {"error": repr(exc)}
            self.requests_served += 1
            return {
                "shard": state.shard.shard_id,
                "epoch": state.epoch,
                "results": results,
                "ann": bool(
                    probes is not None and not exact and state.ann is not None
                ),
            }
        if op == "stats":
            # Metrics federation: ship this process's whole registry; the
            # router labels it per worker before merging the fleet view.
            return {
                "shard": self.shard.shard_id,
                "epoch": self.epoch,
                "snapshot": registry.snapshot(),
            }
        if op == "trace":
            trace_id = message.get("trace_id")
            if not isinstance(trace_id, str) or not trace_id:
                return {"error": "'trace_id' must be a non-empty string"}
            return {
                "shard": self.shard.shard_id,
                "spans": [s.to_dict() for s in spans_for_trace(trace_id)],
            }
        return {"error": f"unknown op {op!r}"}


# --------------------------------------------------------------------- #
# the socket loop
# --------------------------------------------------------------------- #
class _FrameHandler(socketserver.BaseRequestHandler):
    """One connection: read frames until EOF, answer each in turn."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        sock = self.request
        while True:
            try:
                message = recv_frame(sock)
            except (ConnectionError, OSError):
                return
            if message is None:
                return
            try:
                response = self.server.worker.handle(message)
            except Exception as exc:  # noqa: BLE001 — keep serving
                response = {"error": repr(exc)}
            if "id" in message:
                response["id"] = message["id"]
            try:
                send_frame(sock, response)
            except (ConnectionError, OSError):
                return


class WorkerServer(socketserver.ThreadingTCPServer):
    """Threaded frame server around one :class:`ShardWorker`.

    Threads are the right shape here: the GEMM releases the GIL, the
    shard arrays are read-only, and the router keeps one long-lived
    connection (plus occasional hedge one-shots), so thread count stays
    tiny.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], worker: ShardWorker):
        super().__init__(address, _FrameHandler)
        self.worker = worker


def serve_shard(
    worker: ShardWorker,
    host: str = "127.0.0.1",
    port: int = 0,
) -> WorkerServer:
    """Bind a :class:`WorkerServer`; the caller runs ``serve_forever``."""
    return WorkerServer((host, port), worker)


# --------------------------------------------------------------------- #
# the process entry point (`repro cluster worker`)
# --------------------------------------------------------------------- #
def run_worker(
    data_dir: pathlib.Path,
    plan_json: str,
    shard_id: int,
    *,
    replica: int = 0,
    host: str = "127.0.0.1",
    port: int = 0,
    tenant: str | None = None,
    out=None,
) -> int:
    """Open the checkpoint, verify the plan, serve until SIGTERM.

    The ready banner (``cluster worker <id> ready on <host>:<port> ...``)
    is the spawn contract with the supervisor: it is printed only after
    the model is mapped and the socket is bound, so a parsed banner
    means the worker can answer queries.
    """
    out = out if out is not None else sys.stdout
    plan = ShardPlan.from_json(plan_json)
    if plan.to_json() != plan_json:
        print(
            "error: shard plan is not in canonical form — router and "
            "worker disagree byte-for-byte",
            file=sys.stderr,
        )
        return 1

    from repro.store.checkpoint import list_checkpoints
    from repro.store.durable import STORE_LAYOUT

    checkpoints = pathlib.Path(data_dir) / STORE_LAYOUT["checkpoints"]
    if plan.checkpoint:
        # Open exactly the checkpoint the plan pins — under a writable
        # cluster the store may already hold a *newer* seal (a restart
        # racing the writer); the worker starts on the plan's epoch and
        # catches up through the normal bump broadcast.
        info = next(
            (
                c
                for c in list_checkpoints(checkpoints)
                if c.path.name == plan.checkpoint
            ),
            None,
        )
        if info is None:
            print(
                f"error: the plan covers checkpoint {plan.checkpoint} but "
                f"it is not under {checkpoints} — store changed under the "
                "cluster",
                file=sys.stderr,
            )
            return 1
    else:
        info, problems = latest_valid_checkpoint(checkpoints)
        if info is None:
            detail = f" ({'; '.join(problems)})" if problems else ""
            print(f"error: no valid checkpoint under {checkpoints}{detail}",
                  file=sys.stderr)
            return 1
    epoch = int(info.manifest.get("meta", {}).get("epoch", 0))
    if epoch != plan.epoch:
        print(
            f"error: checkpoint epoch {epoch} != plan epoch {plan.epoch}",
            file=sys.stderr,
        )
        return 1
    model = open_checkpoint_model(info.path, mmap=True)
    if model.n_documents != plan.n_documents:
        print(
            f"error: checkpoint has {model.n_documents} documents but the "
            f"plan covers {plan.n_documents}",
            file=sys.stderr,
        )
        return 1

    # The quantizer is optional: a pre-format-2 checkpoint has none and
    # the worker answers probe requests by exact scan (gauge raised).
    ann = open_checkpoint_ann(info.path, mmap=True)
    worker = ShardWorker(
        model, plan.shard(shard_id), epoch=epoch, ann=ann,
        data_dir=pathlib.Path(data_dir), replica=replica, tenant=tenant,
    )
    server = serve_shard(worker, host, port)
    bound_port = server.server_address[1]

    def _stop(*_args) -> None:
        # shutdown() must run off the serve_forever thread (it joins it).
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    # The supervisor's banner parse requires pid= to stay the last token.
    tenant_token = f"tenant={tenant} " if tenant is not None else ""
    print(
        f"cluster worker {shard_id} ready on {host}:{bound_port} "
        f"rows=[{worker.shard.lo},{worker.shard.hi}) epoch={epoch} "
        f"ann={'yes' if ann is not None else 'no'} replica={replica} "
        f"{tenant_token}pid={os.getpid()}",
        file=out, flush=True,
    )
    server.serve_forever()
    server.server_close()
    print(f"cluster worker {shard_id} drained", file=out, flush=True)
    return 0
