"""Lightweight wall-clock instrumentation for the benchmark harness.

:class:`Stopwatch` and :class:`PerfCounters` are the self-contained
stopwatch tools benchmarks instantiate locally.  The process-global
:data:`serving_counters` is now a **registry-backed compatibility
shim**: it keeps the historical ``incr`` / ``time`` / ``snapshot``
surface, but the data lives in :data:`repro.obs.metrics.registry`
under the ``serving.`` prefix — counters as registry counters, timers
as latency histograms — so the serving fast path, the Lanczos cost
gauges, and the tracing spans all report through one sink
(``python -m repro stats``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.metrics import registry as _registry

__all__ = [
    "Stopwatch",
    "PerfCounters",
    "serving_counters",
    "format_seconds",
    "timer_key",
]


def timer_key(name: str) -> str:
    """The namespaced snapshot key for a timer: ``<name>_seconds``.

    Timers and counters historically merged into one flat dict, so a
    counter and a timer sharing a name silently clobbered each other.
    Snapshots now suffix timer names with ``_seconds`` (idempotently,
    so conventional names like ``gemm_seconds`` keep their key).
    """
    return name if name.endswith("_seconds") else f"{name}_seconds"


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.lap("svd"):
    ...     pass
    >>> "svd" in sw.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    class _Lap:
        """Re-entrant, exception-safe lap context.

        Start times live on a stack rather than a single ``_t0``, so
        one lap object can be nested or reused concurrently with
        itself: each exit pairs with its own enter, and an exception
        inside the block still records the elapsed time.
        """

        def __init__(self, owner: "Stopwatch", name: str):
            self._owner = owner
            self._name = name
            self._starts: list[float] = []

        def __enter__(self) -> "Stopwatch._Lap":
            self._starts.append(time.perf_counter())
            return self

        def __exit__(self, *exc) -> None:
            elapsed = time.perf_counter() - self._starts.pop()
            self._owner.laps[self._name] = (
                self._owner.laps.get(self._name, 0.0) + elapsed
            )

    def lap(self, name: str) -> "Stopwatch._Lap":
        """Context manager that adds elapsed time to the named lap."""
        return Stopwatch._Lap(self, name)

    def total(self) -> float:
        """Sum of all laps, in seconds."""
        return sum(self.laps.values())

    def report(self) -> str:
        """Human-readable one-line-per-lap summary, slowest first."""
        rows = sorted(self.laps.items(), key=lambda kv: -kv[1])
        return "\n".join(f"{name:>24s}  {format_seconds(t)}" for name, t in rows)


@dataclass
class PerfCounters:
    """Named event counters plus accumulating timers for hot paths.

    Benchmarks snapshot and reset them to report cache-hit rates and
    where query time goes.  Overhead per event is one dict update
    (counters) or two ``perf_counter`` calls (timers) — negligible
    against a GEMM over thousands of documents.  For the process-global
    serving counters see :data:`serving_counters`, which shares this
    interface but stores into the metrics registry.
    """

    counts: dict[str, int] = field(default_factory=dict)
    timers: dict[str, float] = field(default_factory=dict)

    def incr(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the named counter (created at 0)."""
        self.counts[name] = self.counts.get(name, 0) + by

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named timer."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    class _Timer:
        """Re-entrant, exception-safe timing context (cf. ``_Lap``)."""

        def __init__(self, owner, name: str):
            self._owner = owner
            self._name = name
            self._starts: list[float] = []

        def __enter__(self) -> "PerfCounters._Timer":
            self._starts.append(time.perf_counter())
            return self

        def __exit__(self, *exc) -> None:
            self._owner.add_time(
                self._name, time.perf_counter() - self._starts.pop()
            )

    def time(self, name: str) -> "PerfCounters._Timer":
        """Context manager accumulating elapsed time into ``name``."""
        return PerfCounters._Timer(self, name)

    def snapshot(self) -> dict[str, float]:
        """One flat dict of counters and timers, namespaced apart.

        Counters keep their name; timers appear under
        :func:`timer_key` (``<name>_seconds``), so a counter and a
        timer sharing a base name no longer clobber each other.
        """
        out: dict[str, float] = dict(self.counts)
        for name, t in self.timers.items():
            out[timer_key(name)] = t
        return out

    def reset(self) -> None:
        """Zero every counter and timer."""
        self.counts.clear()
        self.timers.clear()

    def report(self) -> str:
        """Human-readable summary: counters first, then timers."""
        lines = [f"{name:>24s}  {val}" for name, val in sorted(self.counts.items())]
        lines += [
            f"{name:>24s}  {format_seconds(t)}"
            for name, t in sorted(self.timers.items())
        ]
        return "\n".join(lines)


class _RegistryCounters:
    """:class:`PerfCounters` facade over the global metrics registry.

    Every mutation lands in :data:`repro.obs.metrics.registry` with the
    :data:`PREFIX` — counters as registry counters, timers as latency
    histograms (whose ``sum`` is the historical accumulated-seconds
    view, with p50/p95/p99 now available for free).  ``counts`` /
    ``timers`` are read-only dict *copies* for the legacy call sites
    that peek at them.
    """

    PREFIX = "serving."

    # -- write side ---------------------------------------------------- #
    def incr(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the registry counter ``serving.<name>``."""
        _registry.inc(self.PREFIX + name, by)

    def add_time(self, name: str, seconds: float) -> None:
        """Observe ``seconds`` in the histogram ``serving.<name>_seconds``."""
        _registry.observe(self.PREFIX + timer_key(name), seconds)

    def time(self, name: str) -> "PerfCounters._Timer":
        """Context manager observing elapsed time into ``name``."""
        return PerfCounters._Timer(self, name)

    # -- read side ------------------------------------------------------ #
    @property
    def counts(self) -> dict[str, int]:
        """Copy of the serving counters, prefix stripped."""
        skip = len(self.PREFIX)
        return {
            k[skip:]: v for k, v in _registry.counters(self.PREFIX).items()
        }

    @property
    def timers(self) -> dict[str, float]:
        """Copy of the accumulated timer seconds, prefix stripped."""
        skip = len(self.PREFIX)
        return {
            k[skip:]: v
            for k, v in _registry.histogram_sums(self.PREFIX).items()
        }

    def snapshot(self) -> dict[str, float]:
        """Flat counters + timers, namespaced like ``PerfCounters``."""
        out: dict[str, float] = dict(self.counts)
        for name, t in self.timers.items():
            out[timer_key(name)] = t
        return out

    def reset(self) -> None:
        """Drop every ``serving.``-prefixed metric from the registry."""
        _registry.reset(self.PREFIX)

    def report(self) -> str:
        """Human-readable summary: counters first, then timers."""
        lines = [f"{name:>24s}  {val}" for name, val in sorted(self.counts.items())]
        lines += [
            f"{name:>24s}  {format_seconds(t)}"
            for name, t in sorted(self.timers.items())
        ]
        return "\n".join(lines)


#: Process-wide counters for the query-serving fast path, stored in the
#: metrics registry under ``serving.``.  The serving layer records
#: ``queries_served`` / ``batch_queries_served``, query-vector cache
#: ``query_cache_hits`` / ``query_cache_misses``, index ``index_builds``,
#: shard-pool ``shard_searches``, and the ``gemm_seconds`` /
#: ``topk_seconds`` latency histograms.
serving_counters = _RegistryCounters()


def format_seconds(t: float) -> str:
    """Render a duration with a unit that keeps 3 significant digits."""
    if t < 1e-6:
        return f"{t * 1e9:.1f} ns"
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.1f} ms"
    return f"{t:.3f} s"
