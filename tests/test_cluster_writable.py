"""The writable cluster: epoch bumps, the primary writer, typed 403s.

Unit layer first (a ShardWorker hot-remapping checkpoints in-process,
the store's fast-update recovery determinism), then the integrated
write path: a real writable ClusterService ingesting while serving,
with searches racing the seal/bump, and the read-only refusal mapped
through HTTP 403 back to a typed client-side exception.  The
CLI/SIGKILL variant of the ingest-while-serving story lives in
``benchmarks/cluster_ingest_smoke.py``.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.cluster.epochs import latest_handle
from repro.cluster.plan import ShardPlan
from repro.cluster.service import ClusterConfig, ClusterService
from repro.cluster.worker import ShardWorker
from repro.errors import ClusterReadOnlyError
from repro.server import ServerClient, start_http_server
from repro.server.state import manager_from_texts
from repro.store.durable import DurableIndexStore
from repro.store.mmap_io import open_checkpoint_model
from repro.store.recovery import recover_manager

SHARDS = 2


def _texts(n, seed=3, vocab_size=40, length=15):
    rng = np.random.default_rng(seed)
    vocab = [f"w{i}" for i in range(vocab_size)]
    return [" ".join(rng.choice(vocab, size=length)) for _ in range(n)]


@pytest.fixture()
def store_dir(tmp_path):
    texts = _texts(24)
    ids = [f"D{i}" for i in range(len(texts))]
    data_dir = tmp_path / "store"
    store = DurableIndexStore.initialize(
        data_dir, manager_from_texts(texts, ids, k=8)
    )
    store.close(flush=False)
    return data_dir


# --------------------------------------------------------------------- #
# worker hot-remap: bump semantics and the two-epoch window
# --------------------------------------------------------------------- #
def test_worker_bump_idempotence_window_and_skew(store_dir):
    # Grow the store past the seed checkpoint: two more sealed epochs.
    store = DurableIndexStore.open(store_dir)
    store.add_texts(_texts(2, seed=11), ["E1a", "E1b"])
    seal1 = store.seal(reason="test")
    store.add_texts(_texts(2, seed=12), ["E2a", "E2b"])
    seal2 = store.seal(reason="test")
    store.close(flush=False)

    model1 = open_checkpoint_model(seal1.path, mmap=True)
    plan1 = ShardPlan.compute(
        model1.n_documents, SHARDS, epoch=seal1.epoch, checkpoint=seal1.name
    )
    worker = ShardWorker(
        model1, plan1.shard(0), epoch=seal1.epoch, data_dir=store_dir
    )
    k = model1.k
    q = np.ones((1, k))

    # Scoring the current epoch (explicitly or by default) works.
    assert "error" not in worker.handle(
        {"op": "score", "queries": q.tolist(), "epoch": seal1.epoch}
    )

    plan2 = ShardPlan.compute(
        model1.n_documents + 2, SHARDS,
        epoch=seal2.epoch, checkpoint=seal2.name,
    )
    ack = worker.bump(plan2.to_json())
    assert ack == {"ok": True, "shard": 0, "epoch": seal2.epoch}
    assert worker.epoch == seal2.epoch
    assert worker.bumps_applied == 1

    # Idempotent: re-bumping the live epoch is a noop ack.
    again = worker.bump(plan2.to_json())
    assert again["ok"] and again.get("noop")
    assert worker.bumps_applied == 1

    # The two-epoch window: the superseded epoch still answers (that is
    # the zero-drop guarantee for in-flight queries) ...
    old = worker.handle(
        {"op": "score", "queries": q.tolist(), "epoch": seal1.epoch}
    )
    assert "error" not in old
    new = worker.handle(
        {"op": "score", "queries": q.tolist(), "epoch": seal2.epoch}
    )
    assert "error" not in new
    # ... but an epoch the worker never held (or has dropped) is skew.
    stale = worker.handle(
        {"op": "score", "queries": q.tolist(), "epoch": 999999}
    )
    assert stale.get("stale_epoch") is True
    assert stale["epoch"] == seal2.epoch

    # A bump naming a checkpoint that is not on disk refuses, keeps
    # serving the current epoch.
    ghost = ShardPlan.compute(
        model1.n_documents + 4, SHARDS,
        epoch=seal2.epoch + 7, checkpoint="ckpt-99999999",
    )
    refused = worker.bump(ghost.to_json())
    assert "error" in refused and "ckpt-99999999" in refused["error"]
    assert worker.epoch == seal2.epoch


def test_bump_refused_without_data_dir(store_dir):
    handle = latest_handle(store_dir, SHARDS)
    worker = ShardWorker(handle.model, handle.plan.shard(0))
    refused = worker.bump(handle.plan.to_json())
    assert "error" in refused


# --------------------------------------------------------------------- #
# fast-update ingest through the store: crash recovery determinism
# --------------------------------------------------------------------- #
def test_fast_update_store_recovery_bit_identical(tmp_path):
    texts = _texts(20, seed=5)
    manager = manager_from_texts(
        texts, [f"D{i}" for i in range(20)], k=6,
        ingest_method="fast-update", fast_update_rank=4,
    )
    store = DurableIndexStore.initialize(tmp_path / "s", manager)
    for i, text in enumerate(_texts(5, seed=6)):
        store.add_texts([text], doc_ids=[f"F{i}"])
    live = store.manager
    assert live.model.provenance == "fast-update"
    store.close(flush=False)  # crash-like: WAL holds the fast updates

    recovered, report = recover_manager(
        *DurableIndexStore.paths(tmp_path / "s")
    )
    assert report.replayed_records == 5
    assert recovered.ingest_method == "fast-update"
    assert recovered.fast_update_rank == 4
    assert np.array_equal(live.model.U, recovered.model.U)
    assert np.array_equal(live.model.s, recovered.model.s)
    assert np.array_equal(live.model.V, recovered.model.V)
    assert live.model.doc_ids == recovered.model.doc_ids


# --------------------------------------------------------------------- #
# the integrated write path: ingest while serving, zero drops
# --------------------------------------------------------------------- #
def test_readonly_service_add_raises_typed_error(store_dir):
    service = ClusterService(store_dir, ClusterConfig(workers=SHARDS))
    with pytest.raises(ClusterReadOnlyError):
        asyncio.run(service.add(["new doc"]))


def test_writable_cluster_ingests_bumps_and_serves(store_dir):
    async def main():
        service = ClusterService(
            store_dir,
            ClusterConfig(
                workers=SHARDS,
                writable=True,
                seal_every_records=3,
                seal_interval_s=0.5,
                heartbeat_interval=0.2,
            ),
        )
        await service.start()
        try:
            h0 = service.healthz()
            assert h0["writer"]["enabled"]
            assert h0["writer"]["ingest_method"] == "fast-update"
            assert h0["writer"]["lag_records"] == 0
            epoch0 = service.epoch

            # Ingest past the record threshold while racing searches.
            drops = 0
            for i in range(5):
                ack = await service.add(
                    _texts(1, seed=100 + i), [f"N{i}"]
                )
                assert ack["durable"]
                r = await service.search("w1 w2 w3", top=5)
                drops += int(r["partial"])
            assert drops == 0

            # The seal loop bumps; every worker lands on the new epoch.
            deadline = asyncio.get_event_loop().time() + 30
            while service.epoch == epoch0:
                assert (
                    asyncio.get_event_loop().time() < deadline
                ), "no epoch bump observed"
                await asyncio.sleep(0.05)
            h1 = service.healthz()
            assert h1["epoch"] > epoch0
            assert h1["n_documents"] == 29

            # New documents are searchable; the answer is not partial.
            r = await service.search("w1 w2 w3", top=29)
            assert r["partial"] is False
            assert {row[2] for row in r["results"]} >= {
                f"N{i}" for i in range(5)
            }

            # Lag drains to zero once the age trigger seals the tail.
            deadline = asyncio.get_event_loop().time() + 30
            while True:
                h = service.healthz()
                if h["writer"]["lag_records"] == 0 and all(
                    w["epoch"] == h["epoch"] for w in h["workers"]
                ):
                    break
                assert (
                    asyncio.get_event_loop().time() < deadline
                ), f"lag never drained: {h['writer']}"
                await asyncio.sleep(0.1)
        finally:
            await service.drain()

    asyncio.run(main())


# --------------------------------------------------------------------- #
# HTTP: the read-only refusal is a typed 403 end to end
# --------------------------------------------------------------------- #
class _ClusterThread:
    """A read-only cluster + HTTP front end on a private loop/thread."""

    def __init__(self, data_dir):
        self.data_dir = data_dir
        self.port = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            service = ClusterService(
                self.data_dir,
                ClusterConfig(workers=SHARDS, heartbeat_interval=0.2),
            )
            server = await start_http_server(service, "127.0.0.1", 0)
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            await self._stop.wait()
            server.close()
            await server.wait_closed()
            await service.drain()

        try:
            asyncio.run(main())
        except Exception as exc:  # pragma: no cover — surfaced in __enter__
            self._error = exc
            self._ready.set()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=60), "cluster failed to start"
        if self._error is not None:
            raise self._error
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "cluster failed to drain"


def test_http_readonly_add_is_typed_403_with_request_id(store_dir):
    with _ClusterThread(store_dir) as cluster:
        with ServerClient(port=cluster.port) as client:
            assert client.healthz()["writer"] == {"enabled": False}
            with pytest.raises(ClusterReadOnlyError) as excinfo:
                client.add(["a new document"], ["X0"])
            exc = excinfo.value
            # The server-assigned request id rides on the exception.
            assert exc.request_id
            assert exc.request_id == client.last_request_id
            assert exc.request_id in str(exc)
            # Reads still work on the same cluster, same client.
            assert client.search("w1 w2", top=3)["partial"] is False
