"""Server throughput: dynamic micro-batching vs the sequential path.

The micro-batcher's claim is that a long-lived service *creates* the
batches PR 1's GEMM kernel rewards: c concurrent single-query clients
become one (c, k) × (k, n) GEMM per batching window instead of c
separate GEMV + ranking passes.  This bench offers the same query load
two ways at concurrency {1, 8, 32}:

* **sequential** — the unbatched per-request path (``engine.search``
  per query), which is what c independent one-shot processes would pay;
* **batched** — the full async service: admission, micro-batching
  window, batched GEMM, per-request ranking.

Acceptance: at c=32 the batched service sustains ≥ 2× the sequential
QPS.  At c=1 batching cannot help (every batch has one request) — the
printed table shows the crossover, and the exported obs blob carries
the ``server.batch_size`` histogram that explains it.

A second test covers the durability layer's latency contract: with a
background thread writing checkpoints continuously (far more often than
any sane policy), p99 query latency must stay within 10% of the
checkpointer-free baseline — checkpoint capture holds the writer lock
for microseconds and queries never take it at all.
"""

import asyncio
import os
import tempfile
import threading
import time

import numpy as np

from conftest import emit
from obs_export import maybe_export_obs
from repro.core.model import LSIModel
from repro.obs.metrics import registry
from repro.retrieval.engine import LSIRetrieval
from repro.server import QueryService, ServerConfig, ServingState
from repro.text.vocabulary import Vocabulary

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_DOCS = 8_000 if SMOKE else 32_000
K = 64
M_TERMS = 300
TOP = 10
CONCURRENCY = (1, 8, 32)
REQUESTS_PER_LEVEL = 192 if SMOKE else 384
MIN_SPEEDUP_AT_32 = 2.0


def _serving_model(seed: int = 321, n_docs: int | None = None) -> LSIModel:
    """A synthetic serving-scale model built straight from random
    factors — the SVD fit is not what this bench measures."""
    n_docs = N_DOCS if n_docs is None else n_docs
    rng = np.random.default_rng(seed)
    vocab = Vocabulary(f"term{i}" for i in range(M_TERMS))
    vocab.freeze()
    return LSIModel(
        U=rng.standard_normal((M_TERMS, K)),
        s=np.sort(rng.random(K) + 0.5)[::-1],
        V=rng.standard_normal((n_docs, K)),
        vocabulary=vocab,
        doc_ids=[f"D{j}" for j in range(n_docs)],
    )


def _query_stream(n: int, seed: int = 5) -> list[list[str]]:
    """Distinct token-list queries over the model vocabulary (distinct,
    so neither path gets free query-cache hits)."""
    rng = np.random.default_rng(seed)
    return [
        [f"term{t}" for t in rng.choice(M_TERMS, size=4, replace=False)]
        for _ in range(n)
    ]


def _sequential_qps(engine: LSIRetrieval, queries: list[list[str]]) -> float:
    t0 = time.perf_counter()
    for q in queries:
        engine.search(q, top=TOP)
    return len(queries) / (time.perf_counter() - t0)


def _batched_qps(
    state: ServingState, queries: list[list[str]], concurrency: int
) -> float:
    """Drive the service with ``concurrency`` clients issuing the load
    in waves (each wave is c simultaneous single-query requests)."""

    async def main() -> float:
        service = QueryService(
            state,
            ServerConfig(
                max_batch=max(concurrency, 1),
                max_wait_ms=2.0,
                queue_depth=4 * max(concurrency, 1),
            ),
        )
        await service.start()
        # Warm-up wave (index/cache effects identical for both paths).
        await asyncio.gather(
            *(service.search(q, top=TOP) for q in queries[:concurrency])
        )
        t0 = time.perf_counter()
        for start in range(0, len(queries), concurrency):
            wave = queries[start:start + concurrency]
            await asyncio.gather(
                *(service.search(q, top=TOP) for q in wave)
            )
        elapsed = time.perf_counter() - t0
        await service.drain()
        return len(queries) / elapsed

    return asyncio.run(main())


def test_server_throughput_batching_wins_at_high_concurrency():
    model = _serving_model()
    state = ServingState.for_model(model)
    engine = LSIRetrieval(model)
    queries = _query_stream(REQUESTS_PER_LEVEL)

    # Warm both paths once (document index build, BLAS thread spin-up).
    engine.search(queries[0], top=TOP)
    registry.reset("server.")

    seq_qps = _sequential_qps(engine, queries)
    rows = [f"{'c':>4s}  {'sequential QPS':>16s}  {'batched QPS':>14s}  {'speedup':>8s}"]
    speedups = {}
    for concurrency in CONCURRENCY:
        qps = _batched_qps(state, queries, concurrency)
        speedups[concurrency] = qps / seq_qps
        rows.append(
            f"{concurrency:>4d}  {seq_qps:>16.0f}  {qps:>14.0f}  "
            f"{speedups[concurrency]:>7.2f}x"
        )
    hist = registry.histogram("server.batch_size")
    rows.append(
        f"batch size: mean {hist.mean:.1f}, max {hist.max:.0f} "
        f"over {hist.count} batches"
    )
    emit(
        f"server throughput (n={N_DOCS}, k={K}, top={TOP}, "
        f"{REQUESTS_PER_LEVEL} requests/level)",
        rows,
    )
    maybe_export_obs(
        "server_throughput",
        extra={
            "n_docs": N_DOCS,
            "k": K,
            "sequential_qps": seq_qps,
            "speedups": {str(c): s for c, s in speedups.items()},
        },
    )
    # Batches really formed at c=32...
    assert hist.max > 1
    # ...and bought the acceptance-floor throughput win.
    assert speedups[32] >= MIN_SPEEDUP_AT_32, (
        f"batched/sequential = {speedups[32]:.2f}x at c=32, "
        f"need >= {MIN_SPEEDUP_AT_32}x"
    )


def _durable_state_for(model: LSIModel, data_dir: str):
    """A DurableServingState around ``model`` without an SVD fit.

    The bench measures checkpoint interference, not fitting: fabricate
    the manager via the recovery restore path (the model doubles as its
    own consolidated base) over a one-nonzero-per-document matrix, so a
    checkpoint write moves the full serving-scale ``V`` plus the raw
    matrix — realistic disk traffic for the interference test.
    """
    from repro.sparse.csc import CSCMatrix
    from repro.store import DurableIndexStore, DurableServingState
    from repro.text.tdm import TermDocumentMatrix
    from repro.updating.manager import LSIIndexManager

    n, m = model.n_documents, model.n_terms
    tdm = TermDocumentMatrix(
        CSCMatrix(
            (m, n),
            np.arange(n + 1, dtype=np.int64),
            (np.arange(n, dtype=np.int64) % m),
            np.ones(n),
        ),
        model.vocabulary,
        list(model.doc_ids),
    )
    manager = LSIIndexManager.restore(
        tdm=tdm, k=model.k, model=model, base_model=model, scheme=None
    )
    store = DurableIndexStore.initialize(data_dir, manager, retain=1)
    return DurableServingState(store)


def _latencies_for(
    state: ServingState,
    queries: list[list[str]],
    concurrency: int,
    duration: float,
) -> np.ndarray:
    """Per-request wall latencies for ``duration`` seconds of continuous
    load under ``concurrency`` simultaneous clients."""

    async def main() -> list[float]:
        service = QueryService(
            state,
            ServerConfig(
                max_batch=concurrency,
                max_wait_ms=2.0,
                queue_depth=4 * concurrency,
            ),
        )
        await service.start()

        async def timed(q) -> float:
            t0 = time.perf_counter()
            await service.search(q, top=TOP)
            return time.perf_counter() - t0

        await asyncio.gather(*(service.search(q, top=TOP)
                               for q in queries[:concurrency]))  # warm-up
        out: list[float] = []
        t_end = time.perf_counter() + duration
        i = 0
        while time.perf_counter() < t_end:
            wave = [queries[(i + j) % len(queries)] for j in range(concurrency)]
            i += concurrency
            out.extend(await asyncio.gather(*(timed(q) for q in wave)))
        await service.drain()
        return out

    return np.asarray(asyncio.run(main()))


# The interference test runs a FIXED model size in both modes: it is a
# latency test, not a throughput test, and the acceptance bound needs a
# known checkpoint-cost-to-run-length ratio (see below).
INTERFERENCE_DOCS = 8_000
RUN_SECONDS = 8.0


def test_checkpointer_does_not_block_queries():
    model = _serving_model(seed=654, n_docs=INTERFERENCE_DOCS)
    queries = _query_stream(512, seed=9)
    concurrency = 8

    with tempfile.TemporaryDirectory() as tmp:
        state = _durable_state_for(model, os.path.join(tmp, "store"))
        store = state.store
        try:
            # Baseline: durable state, checkpointer idle.
            base = _latencies_for(state, queries, concurrency, RUN_SECONDS)

            # Interference: a full checkpoint written mid-run.  One
            # snapshot per ~8 s of serving is already far denser than
            # the every-64-records / every-300-seconds default policy;
            # on this box a checkpoint costs ~100 ms of mostly-GIL-free
            # work, so if queries *blocked* on it, the tail would jump
            # by the full checkpoint duration — that is what the p99
            # bound below would catch.  (A back-to-back hammer would
            # instead measure raw single-core CPU time-sharing, which no
            # lock design can beat.)
            stop = threading.Event()
            written = [0]
            ckpt_seconds = [0.0]

            def hammer() -> None:
                stop.wait(RUN_SECONDS * 0.4)
                if stop.is_set():
                    return
                t0 = time.perf_counter()
                store.checkpoint(reason="bench-hammer")
                ckpt_seconds[0] = time.perf_counter() - t0
                written[0] += 1

            thread = threading.Thread(target=hammer, daemon=True)
            thread.start()
            try:
                loaded = _latencies_for(
                    state, queries, concurrency, RUN_SECONDS
                )
            finally:
                stop.set()
                thread.join(timeout=60)
        finally:
            store.close(flush=False)

    p99_base, p99_loaded = (
        float(np.percentile(base, 99)), float(np.percentile(loaded, 99))
    )
    worst = float(loaded.max())
    # 10% acceptance bound, with an absolute 2 ms floor so timer noise
    # on a millisecond-scale p99 cannot fail the run by itself.
    bound = max(1.10 * p99_base, p99_base + 0.002)
    emit(
        f"checkpointer interference (n={INTERFERENCE_DOCS}, "
        f"c={concurrency}, {len(base)}+{len(loaded)} requests, "
        f"{written[0]} checkpoint(s) of {ckpt_seconds[0] * 1e3:.0f} ms "
        "during load)",
        [
            f"p99 idle checkpointer  : {p99_base * 1e3:>8.3f} ms",
            f"p99 active checkpointer: {p99_loaded * 1e3:>8.3f} ms",
            f"bound (10% or +2ms)    : {bound * 1e3:>8.3f} ms",
            f"worst single request   : {worst * 1e3:>8.3f} ms",
        ],
    )
    maybe_export_obs(
        "server_checkpoint_interference",
        extra={
            "p99_baseline_seconds": p99_base,
            "p99_loaded_seconds": p99_loaded,
            "checkpoint_seconds": ckpt_seconds[0],
            "checkpoints_during_load": written[0],
        },
    )
    assert written[0] == 1, "checkpoint never fired during the loaded run"
    assert p99_loaded <= bound, (
        f"p99 {p99_loaded * 1e3:.3f} ms with checkpointer vs "
        f"{p99_base * 1e3:.3f} ms without exceeds the 10% bound"
    )
    # No query waited out the checkpoint: blocking on the store lock
    # would stall some request for the full ~100 ms write.
    assert worst < max(0.5 * ckpt_seconds[0], p99_base + 0.002), (
        f"a request stalled {worst * 1e3:.1f} ms during a "
        f"{ckpt_seconds[0] * 1e3:.0f} ms checkpoint — query path blocked"
    )


if __name__ == "__main__":
    test_server_throughput_batching_wins_at_high_concurrency()
    test_checkpointer_does_not_block_queries()
