"""Cached document-side serving state, built once per model.

Every query against an :class:`~repro.core.model.LSIModel` needs the
scaled document coordinates ``V_k Σ_k``, their row norms, and the mask
of zero-norm rows.  The historical path recomputed all three per query —
an O(nk) multiply and O(nk) norm pass before the GEMV even starts.
:class:`DocumentIndex` materializes them once (C-contiguous, so the GEMM
streams rows) and the module-level cache hands the same index back for
repeated queries against the same model.

Invalidation contract
---------------------
The cache is keyed by model *identity*; models are treated as immutable
once built.  Any code that supersedes a model — folding in documents or
terms, SVD-updating, or the index manager consolidating — must call
:func:`invalidate_model` on the **source** model.  The updating layer
(:mod:`repro.updating.folding`, :mod:`repro.updating.svd_update`,
:mod:`repro.updating.manager`, :mod:`repro.parallel.chunked`) does this
for you.  Invalidation

* evicts the superseded model's cached index, and
* flips :meth:`DocumentIndex.is_stale` on every outstanding handle, so
  a serving loop that pinned an index cannot keep answering from
  pre-update state unnoticed: :meth:`DocumentIndex.scores` raises
  :class:`~repro.errors.ModelStateError` until the holder re-fetches
  via :func:`get_document_index`.

Re-fetching after invalidation is always safe — it just rebuilds the
cached arrays from the model actually being queried.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ModelStateError, ShapeError
from repro.obs.tracing import span
from repro.serving.kernel import cosine_scores, row_norms
from repro.serving.topk import ranked_pairs
from repro.util.timing import serving_counters

__all__ = [
    "DocumentIndex",
    "get_document_index",
    "invalidate_model",
    "cache_info",
    "clear_index_cache",
]

#: Models whose cached indexes are retained concurrently.  Each entry
#: holds the model's coordinate matrix (n × k float64), so the cap
#: bounds serving memory at roughly ``capacity`` extra models.
_CACHE_CAPACITY = 8

_lock = threading.Lock()
_cache: OrderedDict[tuple[int, str], "DocumentIndex"] = OrderedDict()
#: id(model) → invalidation epoch.  Entries are created lazily on the
#: first invalidation and removed by a finalizer when the model dies,
#: so a recycled id can never inherit a stale epoch.
_epochs: dict[int, int] = {}


def _current_epoch(model: LSIModel) -> int:
    return _epochs.get(id(model), 0)


class DocumentIndex:
    """Precomputed document-side scoring state for one model.

    Attributes
    ----------
    coords:
        ``(n, k)`` C-contiguous comparison-space coordinates
        (``V_k Σ_k`` in scaled mode, ``V_k`` in factors mode).
    norms:
        ``(n,)`` row norms of ``coords``.
    zero_mask:
        ``(n,)`` boolean mask of zero-norm rows (they score 0 always).
    """

    def __init__(self, model: LSIModel, *, mode: str = "scaled"):
        if mode not in ("scaled", "factors"):
            raise ValueError(f"unknown similarity mode {mode!r}")
        # A strong reference: while any handle or cache entry lives, the
        # model's id cannot be recycled, which keeps identity keys sound.
        self.model = model
        self.mode = mode
        coords = model.V * model.s if mode == "scaled" else model.V
        self.coords = np.ascontiguousarray(coords, dtype=np.float64)
        self.norms = row_norms(self.coords)
        self.zero_mask = self.norms == 0.0
        self._epoch = _current_epoch(model)
        serving_counters.incr("index_builds")

    # ------------------------------------------------------------------ #
    @property
    def n_documents(self) -> int:
        """Documents this index scores."""
        return self.coords.shape[0]

    @property
    def k(self) -> int:
        """Dimensionality of the comparison space."""
        return self.coords.shape[1]

    def is_stale(self) -> bool:
        """True once :func:`invalidate_model` ran on the source model."""
        return self._epoch != _current_epoch(self.model)

    def ensure_fresh(self) -> None:
        """Raise if this handle predates an invalidation of its model."""
        if self.is_stale():
            raise ModelStateError(
                "serving index is stale: its model was superseded by a "
                "fold-in/SVD-update; re-fetch with get_document_index()"
            )

    # ------------------------------------------------------------------ #
    def prepare_queries(self, Q: np.ndarray) -> np.ndarray:
        """Validate query vectors and map them into the comparison space."""
        Q2 = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        if Q2.shape[1] != self.model.k:
            raise ShapeError(
                f"queries have {Q2.shape[1]} dims for k={self.model.k}"
            )
        return Q2 * self.model.s if self.mode == "scaled" else Q2

    def scores(self, qhat: np.ndarray) -> np.ndarray:
        """Cosine of one k-space query vector with every document."""
        self.ensure_fresh()
        qhat = np.asarray(qhat, dtype=np.float64).ravel()
        serving_counters.incr("queries_served")
        Qs = self.prepare_queries(qhat)
        return cosine_scores(self.coords, Qs, norms=self.norms)[0]

    def batch_scores(self, qhats: np.ndarray) -> np.ndarray:
        """Cosine of ``(q, k)`` query vectors with every document."""
        self.ensure_fresh()
        Qs = self.prepare_queries(qhats)
        serving_counters.incr("batch_queries_served", by=Qs.shape[0])
        return cosine_scores(self.coords, Qs, norms=self.norms)

    def search_vector(
        self,
        qhat: np.ndarray,
        *,
        top: int | None = None,
        threshold: float | None = None,
    ) -> list[tuple[int, float]]:
        """Ranked, filtered ``(doc_index, score)`` pairs for one vector."""
        with span("lsi.search", top=top, docs=self.n_documents):
            return ranked_pairs(
                self.scores(qhat), top=top, threshold=threshold
            )

    def __repr__(self) -> str:
        return (
            f"DocumentIndex(n={self.n_documents}, k={self.k}, "
            f"mode={self.mode!r}, stale={self.is_stale()})"
        )


# --------------------------------------------------------------------- #
# the per-model cache and its invalidation hooks
# --------------------------------------------------------------------- #
def get_document_index(model: LSIModel, *, mode: str = "scaled") -> DocumentIndex:
    """The cached :class:`DocumentIndex` for ``model`` (built on miss).

    Cache hits are an O(1) dict lookup; the LRU holds at most
    ``_CACHE_CAPACITY`` models.  A hit is only served when the entry's
    model is the *same object* and has not been invalidated.
    """
    key = (id(model), mode)
    with _lock:
        entry = _cache.get(key)
        if (
            entry is not None
            and entry.model is model
            and not entry.is_stale()
        ):
            _cache.move_to_end(key)
            return entry
    index = DocumentIndex(model, mode=mode)
    with _lock:
        _cache[key] = index
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_CAPACITY:
            _cache.popitem(last=False)
    return index


def invalidate_model(model: LSIModel) -> None:
    """Mark every serving artifact derived from ``model`` stale.

    Called by the updating layer whenever ``model`` is superseded (its
    documents folded into or SVD-updated onto a successor model).  Evicts
    the cached index and bumps the model's epoch so outstanding
    :class:`DocumentIndex` handles report :meth:`~DocumentIndex.is_stale`.
    """
    mid = id(model)
    with _lock:
        fresh = mid not in _epochs
        _epochs[mid] = _epochs.get(mid, 0) + 1
        for mode in ("scaled", "factors"):
            _cache.pop((mid, mode), None)
    if fresh:
        # Drop the epoch when the model dies so a recycled id starts clean.
        weakref.finalize(model, _epochs.pop, mid, None)


def cache_info() -> dict[str, int]:
    """Observability: current cache size and capacity."""
    with _lock:
        return {"entries": len(_cache), "capacity": _CACHE_CAPACITY}


def clear_index_cache() -> None:
    """Drop every cached index (tests and memory-pressure escape hatch)."""
    with _lock:
        _cache.clear()
