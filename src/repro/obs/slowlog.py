"""The slow-query log: a bounded JSONL dump of over-threshold requests.

Percentile histograms say *that* the tail is slow; the slow-query log
says *why*, one offending request at a time.  When a request's
end-to-end latency crosses the configured threshold, the serving layer
records its assembled trace evidence — per-shard timings, hedges fired,
merge cost, partial ranges, the request's ``trace_id`` — as one JSON
line.  The log is bounded two ways: an in-memory deque keeps the newest
``max_records`` entries for ``/healthz``-style surfacing, and the
on-disk file is rewritten from that deque whenever appends double the
bound, so a pathological traffic pattern cannot grow it without limit.

``repro cluster status`` and ``repro stats`` render the tail via
:func:`read_slowlog` / :func:`format_slowlog`, which read the JSONL
from disk (skipping torn/garbage lines) so they work from any process.
"""

from __future__ import annotations

import json
import pathlib
import threading
from collections import deque

__all__ = [
    "SlowQueryLog",
    "read_slowlog",
    "format_slowlog",
]

#: Default latency threshold (milliseconds); <= 0 disables recording.
DEFAULT_THRESHOLD_MS = 500.0

#: Default bound on retained records (memory and on-disk).
DEFAULT_MAX_RECORDS = 256


class SlowQueryLog:
    """Thread-safe bounded JSONL log of slow requests.

    ``path=None`` keeps the log purely in-memory (the deque still
    bounds it); a path adds the durable JSONL that CI uploads.
    """

    def __init__(
        self,
        path=None,
        *,
        threshold_ms: float = DEFAULT_THRESHOLD_MS,
        max_records: int = DEFAULT_MAX_RECORDS,
    ):
        self.path = pathlib.Path(path) if path is not None else None
        self.threshold_ms = float(threshold_ms)
        self.max_records = max(1, int(max_records))
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=self.max_records)
        self._appends = 0
        if self.path is not None and self.path.exists():
            for entry in read_slowlog(self.path, limit=self.max_records):
                self._records.append(entry)

    @property
    def enabled(self) -> bool:
        """Whether over-threshold requests are being recorded."""
        return self.threshold_ms > 0

    def is_slow(self, duration_s: float) -> bool:
        """Whether a request of ``duration_s`` seconds crosses the bar."""
        return self.enabled and duration_s * 1000.0 >= self.threshold_ms

    def record(self, entry: dict) -> None:
        """Append one slow-request record (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._records.append(entry)
            self._appends += 1
            if self.path is None:
                return
            try:
                if self._appends >= self.max_records:
                    # Compact: rewrite the file from the bounded deque so
                    # the on-disk log never exceeds 2x max_records lines.
                    with open(self.path, "w", encoding="utf-8") as fh:
                        for record in self._records:
                            fh.write(json.dumps(record) + "\n")
                    self._appends = 0
                else:
                    with open(self.path, "a", encoding="utf-8") as fh:
                        fh.write(json.dumps(entry) + "\n")
            except OSError:
                # A full disk must degrade the log, never the query path.
                pass

    def recent(self, n: int | None = None) -> list[dict]:
        """The newest ``n`` records, oldest first (all when ``None``)."""
        with self._lock:
            records = list(self._records)
        return records if n is None else records[-n:]

    def describe(self) -> dict:
        """JSON-ready summary for ``/healthz`` and ``repro stats``."""
        with self._lock:
            records = list(self._records)
        durations = [
            float(r.get("duration_ms", 0.0))
            for r in records
            if isinstance(r, dict)
        ]
        return {
            "path": str(self.path) if self.path is not None else None,
            "threshold_ms": self.threshold_ms,
            "max_records": self.max_records,
            "records": len(records),
            "slowest_ms": max(durations) if durations else 0.0,
        }


def read_slowlog(path, limit: int | None = None) -> list[dict]:
    """Parse a slow-log JSONL file, newest last; torn lines skipped."""
    entries: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict):
                    entries.append(entry)
    except OSError:
        return []
    return entries if limit is None else entries[-limit:]


def format_slowlog(entries: list[dict], limit: int = 20) -> str:
    """Fixed-width rendering of the newest slow-log entries."""
    if not entries:
        return "(no slow queries recorded)"
    shown = entries[-limit:]
    lines = [f"slow queries (newest last, showing {len(shown)})"]
    for entry in shown:
        trace = entry.get("trace_id", "-")
        duration = float(entry.get("duration_ms", 0.0))
        flags = []
        if entry.get("partial"):
            flags.append("partial")
        hedged = entry.get("hedged") or []
        if hedged:
            flags.append(f"hedged={hedged}")
        missed = entry.get("deadline_missed") or []
        if missed:
            flags.append(f"deadline_missed={missed}")
        flag_text = f"  {' '.join(flags)}" if flags else ""
        lines.append(f"  {duration:>9.1f}ms  trace={trace}{flag_text}")
        timings = entry.get("shard_timings") or {}
        if timings:
            per_shard = " ".join(
                f"s{sid}={float(ms):.1f}ms"
                for sid, ms in sorted(timings.items(), key=lambda kv: str(kv[0]))
            )
            lines.append(f"             {per_shard}")
    return "\n".join(lines)
