"""Document sharding: split, search shards, merge top results exactly.

For collections past the single-model comfort zone the classic recipe is
one LSI model per shard plus an exact top-z merge — scores are cosines in
each shard's own space, so the merge is only exact when the shards share
one model; :func:`sharded_search` therefore shards the *scoring*, not the
decomposition, matching the paper's single-space TREC design.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.parallel.chunked import blocked_cosine_scores
from repro.parallel.pool import parallel_map

__all__ = ["shard_documents", "sharded_search", "merge_topk"]


def shard_documents(n: int, shards: int) -> list[np.ndarray]:
    """Split document indices ``0..n-1`` into near-equal contiguous shards."""
    if shards < 1:
        raise ShapeError("shards must be >= 1")
    if n < 0:
        raise ShapeError("n must be non-negative")
    bounds = np.linspace(0, n, shards + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(shards)]


def merge_topk(
    per_shard: Sequence[Sequence[tuple[int, float]]], k: int
) -> list[tuple[int, float]]:
    """Exact top-k merge of per-shard ``(doc_index, score)`` lists."""
    if k < 1:
        raise ShapeError("k must be >= 1")
    merged = heapq.nlargest(
        k,
        (pair for shard in per_shard for pair in shard),
        key=lambda pair: pair[1],
    )
    return merged


def sharded_search(
    model: LSIModel,
    qhat: np.ndarray,
    *,
    shards: int = 4,
    top: int = 10,
    workers: int | None = None,
) -> list[tuple[int, float]]:
    """Score shards (optionally in parallel), merge exact top results.

    Identical results to a flat search; the point is the execution shape —
    per-shard scoring parallelizes and bounds memory.
    """
    parts = shard_documents(model.n_documents, shards)

    def search_shard(idx: np.ndarray) -> list[tuple[int, float]]:
        if idx.size == 0:
            return []
        sub = LSIModel(
            U=model.U,
            s=model.s,
            V=model.V[idx],
            vocabulary=model.vocabulary,
            doc_ids=[model.doc_ids[int(i)] for i in idx],
            scheme=model.scheme,
            global_weights=model.global_weights,
            provenance=model.provenance,
        )
        scores = blocked_cosine_scores(sub, qhat)
        order = np.argsort(-scores, kind="stable")[:top]
        return [(int(idx[i]), float(scores[i])) for i in order]

    per_shard = parallel_map(search_shard, parts, workers=workers)
    return merge_topk(per_shard, top)
