"""Top-k selection without a full sort — identical output to one.

The historical ranking path was ``np.argsort(-s, kind="stable")[:top]``
followed by Python-level threshold filtering over all n ``(idx, score)``
pairs.  For top-z serving that is O(n log n) compare time plus O(n)
tuple churn per query.  :func:`topk_indices` replaces it with
``np.argpartition`` (O(n) selection) plus a stable sort of only the
candidate set — and is *element-identical* to the stable full sort,
including tie handling:

* stable descending argsort breaks score ties by ascending index;
* argpartition alone would pick an arbitrary subset of documents tied
  at the cut-off score, so we widen the candidate set to every index
  scoring ≥ the k-th partitioned value and stable-sort those.  Every
  excluded index scores strictly below the cut-off and therefore ranks
  after at least ``top`` candidates in the full sort.

:func:`ranked_order` adds the §3.1 ``threshold`` semantics as a
vectorized mask — no Python list of all n pairs is ever materialized.
"""

from __future__ import annotations

import numpy as np

from repro.util.timing import serving_counters

__all__ = ["topk_indices", "ranked_order", "ranked_pairs"]


def topk_indices(scores: np.ndarray, top: int | None) -> np.ndarray:
    """Indices of the ``top`` largest scores, in stable descending order.

    Element-identical to ``np.argsort(-scores, kind="stable")[:top]``.
    ``top=None`` (or ``top >= n``) returns the full stable ordering.
    Assumes finite scores (cosines are); non-finite values fall back to
    the full stable sort rather than guessing partition semantics.
    """
    s = np.asarray(scores)
    n = s.size
    if top is None or top >= n:
        return np.argsort(-s, kind="stable")
    if top <= 0:
        return np.empty(0, dtype=np.intp)
    with serving_counters.time("topk_seconds"):
        part = np.argpartition(-s, top - 1)
        cutoff = s[part[top - 1]]
        cand = np.flatnonzero(s >= cutoff)
        if cand.size < top:  # NaN in scores: >= comparisons dropped rows
            return np.argsort(-s, kind="stable")[:top]
        # cand is ascending, so a stable sort on -s[cand] breaks ties by
        # ascending original index — exactly the full stable sort's order.
        order = np.argsort(-s[cand], kind="stable")
        return cand[order[:top]]


def ranked_order(
    scores: np.ndarray,
    *,
    top: int | None = None,
    threshold: float | None = None,
) -> np.ndarray:
    """Ranked indices with the combined §3.1 filters applied in NumPy.

    Equivalent to stable-sorting all scores descending, dropping those
    below ``threshold``, then truncating to ``top`` — without the full
    sort or the all-n intermediate.
    """
    s = np.asarray(scores)
    if threshold is None:
        return topk_indices(s, top)
    keep = np.flatnonzero(s >= threshold)
    # keep is ascending, so ties again resolve by ascending index.
    return keep[topk_indices(s[keep], top)]


def ranked_pairs(
    scores: np.ndarray,
    *,
    top: int | None = None,
    threshold: float | None = None,
) -> list[tuple[int, float]]:
    """Filtered ranking as ``(doc_index, score)`` pairs.

    Only the surviving rows are converted to Python objects.
    """
    s = np.asarray(scores)
    order = ranked_order(s, top=top, threshold=threshold)
    return [(int(j), float(s[j])) for j in order]
