"""Single-vector Lanczos truncated SVD (the SVDPACKC workhorse).

The paper computed ``A_200`` of a 90,000 × 70,000 TREC matrix "by a
single-vector Lanczos algorithm [SVDPACKC]" and models its cost as::

    I × cost(GᵀG x) + trp × cost(G x)

This module implements that algorithm: symmetric Lanczos on the Gram
operator of the *smaller* dimension (``AᵀA`` when ``m ≥ n``, ``AAᵀ``
otherwise) with **full reorthogonalization** — the variant SVDPACKC calls
``las2`` uses selective reorthogonalization; full reorthogonalization costs
more per iteration but is simpler and loses no accuracy, the right
trade-off at laptop scale.  Ritz pairs of the accumulated tridiagonal are
computed with our own implicit-QL solver; converged Ritz values are
accepted by the classical residual bound ``|β_j · z_last|``.

The returned :class:`LanczosStats` exposes the measured ``I`` and triplet
extraction counts so benchmarks can check the cost model empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, ShapeError
from repro.linalg.tridiag import tridiag_eigh
from repro.util.rng import ensure_rng

__all__ = ["LanczosStats", "lanczos_svd"]


@dataclass
class LanczosStats:
    """Instrumentation from one Lanczos SVD run.

    Attributes
    ----------
    iterations:
        Number of Lanczos steps ``I`` (Gram-operator applications).
    gram_dim:
        Dimension the Gram operator acted on (``min(m, n)``).
    converged:
        Number of singular triplets that met the residual tolerance.
    restarts:
        Times an invariant subspace was hit and the iteration restarted
        with a fresh random direction.
    matvecs:
        Total ``A x`` / ``Aᵀ y`` product count, including the ``trp``
        products used to extract the singular vectors of the long side.
    """

    iterations: int = 0
    gram_dim: int = 0
    converged: int = 0
    restarts: int = 0
    matvecs: int = 0


def _matvec(a, x):
    return a.matvec(x) if hasattr(a, "matvec") else np.asarray(a) @ x


def _rmatvec(a, y):
    return a.rmatvec(y) if hasattr(a, "rmatvec") else np.asarray(a).T @ y


def lanczos_svd(
    a,
    k: int,
    *,
    tol: float = 1e-10,
    max_iter: int | None = None,
    reorth: str = "full",
    seed=0,
    check_every: int = 8,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, LanczosStats]:
    """Compute the ``k`` largest singular triplets of ``a``.

    Parameters
    ----------
    a:
        Sparse matrix (any :mod:`repro.sparse` format), dense ndarray, or
        any object exposing ``shape`` plus ``matvec``/``rmatvec``.
    k:
        Number of singular triplets to compute, ``1 ≤ k ≤ min(m, n)``.
    tol:
        Relative Ritz-residual acceptance threshold.
    max_iter:
        Cap on Lanczos steps; defaults to ``min(gram_dim, max(4k+32, 64))``.
        When the cap is the full Gram dimension the factorization is exact
        and convergence is guaranteed.
    reorth:
        ``"full"`` (default) re-orthogonalizes every new Lanczos vector
        against the whole basis twice; ``"none"`` runs classical three-term
        recurrence only (fast, loses orthogonality — exposed for the
        ablation benchmark).
    seed:
        Seed for the random start vector.
    check_every:
        Convergence is tested every this many steps.

    Returns
    -------
    (U, s, V, stats):
        ``U (m, k)``, ``s (k,)`` descending, ``V (n, k)``, and run stats.
    """
    if not hasattr(a, "shape"):
        a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    dim = min(m, n)
    if not 1 <= k <= dim:
        raise ShapeError(f"k={k} must be in [1, min(m, n)={dim}]")
    if reorth not in ("full", "none"):
        raise ValueError(f"unknown reorth policy {reorth!r}")
    if max_iter is None:
        max_iter = min(dim, max(4 * k + 32, 64))
    max_iter = min(max(max_iter, k), dim)

    stats = LanczosStats(gram_dim=dim)
    rng = ensure_rng(seed)
    small_is_cols = m >= n  # Gram operator is AᵀA acting on R^n

    def gram(x: np.ndarray) -> np.ndarray:
        stats.matvecs += 2
        if small_is_cols:
            return _rmatvec(a, _matvec(a, x))
        return _matvec(a, _rmatvec(a, x))

    # Lanczos basis Q (dim × j), tridiagonal (alphas, betas).
    Q = np.zeros((max_iter, dim))
    alphas = np.zeros(max_iter)
    betas = np.zeros(max_iter)  # betas[j] links step j to j+1

    q = rng.standard_normal(dim)
    q /= np.sqrt(np.dot(q, q))
    Q[0] = q
    j = 0
    theta = np.empty(0)
    Z = np.empty((0, 0))
    nconv = 0

    while j < max_iter:
        w = gram(Q[j])
        alphas[j] = float(np.dot(Q[j], w))
        w -= alphas[j] * Q[j]
        if j > 0:
            w -= betas[j - 1] * Q[j - 1]
        if reorth == "full":
            # Two Gram-Schmidt passes against the whole basis.
            basis = Q[: j + 1]
            w -= basis.T @ (basis @ w)
            w -= basis.T @ (basis @ w)
        beta = np.sqrt(np.dot(w, w))
        j += 1
        stats.iterations = j
        if j < max_iter:
            if beta <= 1e-14 * max(1.0, abs(alphas[: j]).max()):
                # Invariant subspace: the Krylov space is exhausted.  Restart
                # with a fresh direction orthogonal to everything found.
                stats.restarts += 1
                w = rng.standard_normal(dim)
                basis = Q[:j]
                w -= basis.T @ (basis @ w)
                w -= basis.T @ (basis @ w)
                norm = np.sqrt(np.dot(w, w))
                if norm <= 1e-12:
                    break  # full space spanned; tridiagonal is exact
                betas[j - 1] = 0.0
                Q[j] = w / norm
            else:
                betas[j - 1] = beta
                Q[j] = w / beta

        if j >= k and (j % check_every == 0 or j == max_iter):
            theta, Z = tridiag_eigh(alphas[:j], betas[: j - 1])
            # Descending Ritz values.
            theta = theta[::-1]
            Z = Z[:, ::-1]
            beta_last = betas[j - 1] if j < max_iter else 0.0
            resid = np.abs(beta_last * Z[-1, :k])
            scale = max(theta[0], 1e-300)
            nconv = int(np.sum(resid <= tol * scale))
            if nconv >= k or j == dim:
                break

    if theta.size == 0:
        theta, Z = tridiag_eigh(alphas[:j], betas[: j - 1])
        theta = theta[::-1]
        Z = Z[:, ::-1]

    if nconv < k and j < dim:
        raise ConvergenceError(
            f"Lanczos converged {nconv}/{k} triplets in {j} iterations "
            f"(max_iter={max_iter}); raise max_iter",
            iterations=j,
            achieved=nconv,
        )

    stats.converged = min(k, theta.size)
    theta_k = np.clip(theta[:k], 0.0, None)
    s = np.sqrt(theta_k)
    small_vecs = Q[:j].T @ Z[:, :k]  # (dim, k) singular vectors of small side
    # Normalize (full reorthogonalization keeps these near-orthonormal).
    small_vecs /= np.maximum(np.sqrt(np.sum(small_vecs**2, axis=0)), 1e-300)

    # Extract the long-side vectors: u_i = A v_i / σ_i (the paper's
    # "additional multiplication by G ... to extract the left singular
    # vector"), trp products in total.
    long_dim = m if small_is_cols else n
    long_vecs = np.zeros((long_dim, k))
    for i in range(k):
        if s[i] > 1e-12 * max(s[0], 1.0):
            stats.matvecs += 1
            if small_is_cols:
                long_vecs[:, i] = _matvec(a, small_vecs[:, i]) / s[i]
            else:
                long_vecs[:, i] = _rmatvec(a, small_vecs[:, i]) / s[i]
        else:
            s[i] = 0.0
            # Null singular value: any direction orthogonal to previous
            # long-side vectors is valid.
            v = ensure_rng(seed).standard_normal(long_dim)
            prev = long_vecs[:, :i]
            v -= prev @ (prev.T @ v)
            norm = np.sqrt(np.dot(v, v))
            long_vecs[:, i] = v / norm if norm > 0 else v

    if small_is_cols:
        return long_vecs, s, small_vecs, stats
    return small_vecs, s, long_vecs, stats
