"""Term-document matrix construction (Eq. 4).

``A = [a_ij]`` where ``a_ij`` is the raw frequency of term ``i`` in
document ``j``.  Built in CSC form — documents are columns, and every
downstream consumer (SVD, fold-in, document scoring) works column-wise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sparse.build import MatrixBuilder
from repro.sparse.csc import CSCMatrix
from repro.text.parser import ParsedCorpus, ParsingRules, parse_corpus
from repro.text.vocabulary import Vocabulary

__all__ = ["TermDocumentMatrix", "build_tdm", "count_vector"]


@dataclass
class TermDocumentMatrix:
    """A raw-frequency term-document matrix with its labellings.

    Attributes
    ----------
    matrix:
        ``(m, n)`` CSC matrix of term frequencies.
    vocabulary:
        Term labels for the ``m`` rows.
    doc_ids:
        Labels for the ``n`` columns.
    """

    matrix: CSCMatrix
    vocabulary: Vocabulary
    doc_ids: list[str]

    @property
    def shape(self) -> tuple[int, int]:
        """``(terms, documents)``."""
        return self.matrix.shape

    @property
    def n_terms(self) -> int:
        """Number of indexed terms (matrix rows)."""
        return self.matrix.shape[0]

    @property
    def n_documents(self) -> int:
        """Number of documents (matrix columns)."""
        return self.matrix.shape[1]

    def term_frequency(self, term: str, doc: int) -> float:
        """Frequency of ``term`` in document column ``doc``."""
        i = self.vocabulary.id_of(term)
        rows, vals = self.matrix.col_slice(doc)
        hit = np.flatnonzero(rows == i)
        return float(vals[hit[0]]) if hit.size else 0.0

    def document_frequency(self) -> np.ndarray:
        """Number of documents each term occurs in (length m)."""
        m, _ = self.matrix.shape
        return np.bincount(self.matrix.indices, minlength=m).astype(np.float64)

    def to_dense(self) -> np.ndarray:
        """Materialize the raw-count matrix densely."""
        return self.matrix.to_dense()


def build_tdm(
    texts: Sequence[str],
    rules: ParsingRules | None = None,
    *,
    doc_ids: Sequence[str] | None = None,
    vocabulary: Vocabulary | None = None,
) -> TermDocumentMatrix:
    """Parse ``texts`` and assemble the raw-frequency matrix.

    ``vocabulary`` fixes the term space (fold-in path); otherwise keywords
    are selected by ``rules`` and ordered alphabetically.
    """
    parsed = parse_corpus(texts, rules, vocabulary=vocabulary)
    return tdm_from_parsed(parsed, doc_ids=doc_ids)


def tdm_from_parsed(
    parsed: ParsedCorpus, *, doc_ids: Sequence[str] | None = None
) -> TermDocumentMatrix:
    """Assemble the matrix from an already-parsed corpus."""
    vocab = parsed.vocabulary
    n = parsed.n_documents
    if doc_ids is None:
        doc_ids = [f"D{j + 1}" for j in range(n)]
    else:
        doc_ids = list(doc_ids)
        if len(doc_ids) != n:
            raise ShapeError(
                f"doc_ids has {len(doc_ids)} labels for {n} documents"
            )
    builder = MatrixBuilder((len(vocab), n))
    for j, doc in enumerate(parsed.tokens):
        for t in doc:
            builder.add(vocab.id_of(t), j, 1.0)
    return TermDocumentMatrix(builder.to_csc(), vocab, doc_ids)


def count_vector(tokens: Sequence[str], vocabulary: Vocabulary) -> np.ndarray:
    """Dense term-frequency vector of one document/query (length m).

    Tokens absent from the vocabulary are silently dropped — exactly how
    the paper handles query words that are not indexed terms ("they are
    omitted from the query").
    """
    v = np.zeros(len(vocabulary), dtype=np.float64)
    for t in tokens:
        idx = vocabulary.get(t)
        if idx is not None:
            v[idx] += 1.0
    return v
