"""Recomputing the SVD from scratch (§3.4) — the accuracy yardstick.

"Ideally, the most robust way to produce the best rank-k approximation to
a term-document matrix which has been updated ... is to simply compute the
SVD of a reconstructed term-document matrix Ã."  Recomputing lets the new
content reshape the latent structure (Fig. 8's {M13, M14, M15} cluster),
at the cost the paper quantifies in Table 7 and the memory the TREC
anecdote laments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.build import fit_lsi_from_tdm
from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.sparse.build import from_dense
from repro.sparse.ops import hstack_csc
from repro.text.tdm import TermDocumentMatrix

__all__ = ["recompute_with_documents", "recompute_model"]


def recompute_with_documents(
    tdm: TermDocumentMatrix,
    new_counts: np.ndarray,
    new_doc_ids: Sequence[str],
    k: int,
    *,
    scheme=None,
    method: str = "auto",
    seed=0,
) -> LSIModel:
    """Rebuild Ã = (A | D) from raw counts and decompose it from scratch.

    Unlike SVD-updating, the *raw* matrix is extended before weighting, so
    global term weights are recomputed over the full collection — exactly
    what "creating an LSI-generated database ... from scratch" means.
    """
    new_counts = np.asarray(new_counts, dtype=np.float64)
    if new_counts.ndim == 1:
        new_counts = new_counts[:, None]
    if new_counts.shape[0] != tdm.n_terms:
        raise ShapeError(
            f"new documents have {new_counts.shape[0]} rows for "
            f"m={tdm.n_terms}"
        )
    if new_counts.shape[1] != len(new_doc_ids):
        raise ShapeError("new_doc_ids length mismatch")
    combined = hstack_csc([tdm.matrix, from_dense(new_counts).to_csc()])
    big = TermDocumentMatrix(
        combined, tdm.vocabulary, list(tdm.doc_ids) + list(new_doc_ids)
    )
    model = fit_lsi_from_tdm(big, k, scheme=scheme, method=method, seed=seed)
    model.provenance = "recompute"
    return model


def recompute_model(
    tdm: TermDocumentMatrix, k: int, *, scheme=None, method: str = "auto", seed=0
) -> LSIModel:
    """Decompose a matrix from scratch, tagged as a recompute baseline."""
    model = fit_lsi_from_tdm(tdm, k, scheme=scheme, method=method, seed=seed)
    model.provenance = "recompute"
    return model
