"""Householder QR factorization.

Used by the updating algebra (orthonormal completions when appending
document/term blocks) and by tests as an independent orthogonalization
reference.  The implementation is the standard column-by-column Householder
reduction with the reflector applied as a rank-1 update — O(mn²) flops,
numerically backward stable, no pivoting (our uses never need it: inputs
are either random or already well-conditioned residual blocks).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.util.rng import ensure_rng

__all__ = ["householder_qr", "orthonormal_columns"]


def householder_qr(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Thin QR factorization ``A = Q R`` via Householder reflections.

    Parameters
    ----------
    a:
        Dense ``(m, n)`` array with ``m >= n``.

    Returns
    -------
    (Q, R):
        ``Q`` is ``(m, n)`` with orthonormal columns; ``R`` is ``(n, n)``
        upper triangular with non-negative diagonal.
    """
    A = np.array(a, dtype=np.float64, copy=True)
    if A.ndim != 2:
        raise ShapeError(f"householder_qr expects a matrix, got ndim={A.ndim}")
    m, n = A.shape
    if m < n:
        raise ShapeError(f"householder_qr requires m >= n, got shape {A.shape}")
    # reflectors[j] = (v, beta) with H_j = I - beta v vᵀ acting on rows j:.
    reflectors: list[tuple[np.ndarray, float] | None] = [None] * n
    for j in range(n):
        x = A[j:, j]
        # Column scaling guards against under/overflow for subnormal or
        # huge inputs: the reflector is invariant to scaling of x.
        scale = np.max(np.abs(x))
        if scale == 0.0 or not np.isfinite(scale):
            if not np.isfinite(scale):
                raise ShapeError("householder_qr input contains non-finite values")
            continue
        xs = x / scale
        normxs = np.sqrt(np.dot(xs, xs))
        if normxs == 0.0:
            continue
        alpha_s = -normxs if xs[0] >= 0 else normxs
        v = xs.copy()
        v[0] -= alpha_s
        vnorm2 = np.dot(v, v)
        if vnorm2 == 0.0:
            continue
        beta = 2.0 / vnorm2
        w = beta * (v @ A[j:, j:])
        A[j:, j:] -= np.outer(v, w)
        A[j, j] = alpha_s * scale
        A[j + 1 :, j] = 0.0
        reflectors[j] = (v, beta)
    R = np.triu(A[:n, :n]).copy()
    # Form Q by applying reflectors to the first n identity columns, in
    # reverse order.
    Q = np.zeros((m, n))
    Q[np.arange(n), np.arange(n)] = 1.0
    for j in range(n - 1, -1, -1):
        if reflectors[j] is None:
            continue
        v, beta = reflectors[j]
        w = beta * (v @ Q[j:, :])
        Q[j:, :] -= np.outer(v, w)
    # Fix signs so R has a non-negative diagonal (unique thin QR for
    # full-rank input).
    signs = np.where(np.diag(R) < 0, -1.0, 1.0)
    Q *= signs
    R *= signs[:, None]
    return Q, R


def orthonormal_columns(m: int, k: int, *, seed=None) -> np.ndarray:
    """Random ``(m, k)`` matrix with orthonormal columns (QR of Gaussian).

    Used for orthonormal completions and as reproducible test fixtures.
    """
    if k > m:
        raise ShapeError(f"cannot build {k} orthonormal columns in dimension {m}")
    rng = ensure_rng(seed)
    g = rng.standard_normal((m, k))
    q, _ = householder_qr(g)
    return q
