"""Multi-process cluster serving: shard workers behind a scatter router.

The single-process server (:mod:`repro.server`) scores every query in
one address space.  This package scales the same exact-search semantics
across *processes*: a deterministic :class:`~repro.cluster.plan.
ShardPlan` splits one checkpointed LSI space into contiguous row
ranges; each :mod:`~repro.cluster.worker` process memory-maps the
checkpoint (zero-copy — the page cache is shared between workers) and
scores only its rows; the :mod:`~repro.cluster.router` scatters query
batches, hedges stragglers, and merges per-shard top-k lists with the
same ``merge_topk`` the in-process sharded search uses — so with all
workers live, answers are element-identical to ``sharded_batch_search``.
The :mod:`~repro.cluster.supervisor` keeps workers alive (heartbeats,
eviction, backoff restarts), and while one is down the router serves
``partial=True`` responses naming the unscored row ranges instead of
failing.  :class:`~repro.cluster.service.ClusterService` packages the
whole thing behind the existing HTTP front end (``repro cluster
serve``).
"""

from repro.cluster.plan import PLAN_FORMAT, ShardPlan, ShardRange
from repro.cluster.router import (
    ClusterResult,
    ClusterRouter,
    RouterConfig,
    WorkerChannel,
)
from repro.cluster.service import ClusterConfig, ClusterService
from repro.cluster.supervisor import ClusterSupervisor, SupervisorConfig
from repro.cluster.worker import ShardWorker, WorkerServer, run_worker

__all__ = [
    "PLAN_FORMAT",
    "ShardPlan",
    "ShardRange",
    "ClusterResult",
    "ClusterRouter",
    "RouterConfig",
    "WorkerChannel",
    "ClusterConfig",
    "ClusterService",
    "ClusterSupervisor",
    "SupervisorConfig",
    "ShardWorker",
    "WorkerServer",
    "run_worker",
]
