"""Tests for Householder QR."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import householder_qr, orthonormal_columns


@pytest.mark.parametrize("shape", [(1, 1), (5, 3), (10, 10), (40, 7)])
def test_qr_reconstruction_and_orthogonality(shape, rng):
    A = rng.standard_normal(shape)
    Q, R = householder_qr(A)
    m, n = shape
    assert Q.shape == (m, n) and R.shape == (n, n)
    assert np.allclose(Q @ R, A, atol=1e-10)
    assert np.allclose(Q.T @ Q, np.eye(n), atol=1e-10)
    assert np.allclose(R, np.triu(R), atol=1e-12)
    assert np.all(np.diag(R) >= -1e-12)


def test_qr_rank_deficient(rng):
    A = np.zeros((6, 3))
    A[:, 0] = rng.standard_normal(6)
    A[:, 2] = 2 * A[:, 0]
    Q, R = householder_qr(A)
    assert np.allclose(Q @ R, A, atol=1e-10)


def test_qr_zero_matrix():
    Q, R = householder_qr(np.zeros((4, 2)))
    assert np.allclose(Q @ R, np.zeros((4, 2)))
    assert np.allclose(R, 0)


def test_qr_rejects_wide_matrix(rng):
    with pytest.raises(ShapeError):
        householder_qr(rng.standard_normal((2, 5)))


def test_qr_rejects_vector():
    with pytest.raises(ShapeError):
        householder_qr(np.zeros(5))


def test_qr_does_not_mutate_input(rng):
    A = rng.standard_normal((5, 3))
    A_copy = A.copy()
    householder_qr(A)
    assert np.array_equal(A, A_copy)


def test_qr_matches_numpy_r_up_to_signs(rng):
    A = rng.standard_normal((8, 4))
    _, R = householder_qr(A)
    R_np = np.linalg.qr(A)[1]
    assert np.allclose(np.abs(R), np.abs(R_np), atol=1e-10)


def test_orthonormal_columns(rng):
    Q = orthonormal_columns(9, 4, seed=3)
    assert Q.shape == (9, 4)
    assert np.allclose(Q.T @ Q, np.eye(4), atol=1e-10)
    # deterministic under the same seed
    assert np.array_equal(Q, orthonormal_columns(9, 4, seed=3))


def test_orthonormal_columns_rejects_k_gt_m():
    with pytest.raises(ShapeError):
        orthonormal_columns(3, 5)
