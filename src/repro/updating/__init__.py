"""Updating an existing LSI database (paper §2.3 and §4).

Three ways to incorporate new terms/documents, in increasing cost and
fidelity:

* **Folding-in** (:mod:`repro.updating.folding`) — Eq. 7/8: project new
  items onto the *existing* latent structure.  Cheap (``2mkp`` flops for
  p documents), but pre-existing representations are untouched and the
  appended vectors corrupt the orthogonality of the singular-vector
  matrices (§4.3).
* **SVD-updating** (:mod:`repro.updating.svd_update`) — Eq. 10-12: exact
  SVDs of ``(A_k | D)``, ``[A_k ; T]`` and ``A_k + Y_j Z_jᵀ`` computed
  through small dense SVDs.  More expensive — the paper attributes the
  cost to the ``O(2k²m + 2k²n)`` dense multiplications — but maintains a
  true rank-k factorization.
* **Recomputing** (:mod:`repro.updating.recompute`) — not an updating
  method: decompose the reconstructed matrix from scratch; the accuracy
  yardstick the others are compared against.

:mod:`repro.updating.cost_model` implements the Table 7 flop formulas and
:mod:`repro.updating.planner` picks the cheapest adequate method.
"""

from repro.updating.folding import fold_in_documents, fold_in_terms, fold_in_texts
from repro.updating.fast_update import fast_update_documents
from repro.updating.svd_update import (
    update_documents,
    update_terms,
    update_weights,
)
from repro.updating.recompute import recompute_with_documents, recompute_model
from repro.updating.orthogonality import OrthogonalityReport, drift_report
from repro.updating.cost_model import (
    fold_documents_flops,
    fold_terms_flops,
    recompute_flops,
    svd_update_correction_flops,
    svd_update_documents_flops,
    svd_update_terms_flops,
)
from repro.updating.planner import UpdatePlan, plan_update
from repro.updating.manager import IndexEvent, LSIIndexManager

__all__ = [
    "fold_in_documents",
    "fold_in_terms",
    "fold_in_texts",
    "fast_update_documents",
    "update_documents",
    "update_terms",
    "update_weights",
    "recompute_with_documents",
    "recompute_model",
    "OrthogonalityReport",
    "drift_report",
    "fold_documents_flops",
    "fold_terms_flops",
    "recompute_flops",
    "svd_update_documents_flops",
    "svd_update_terms_flops",
    "svd_update_correction_flops",
    "UpdatePlan",
    "plan_update",
    "IndexEvent",
    "LSIIndexManager",
]
