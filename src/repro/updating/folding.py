"""Folding-in new documents and terms (Eq. 7 and 8).

"Folding-in documents is essentially the process described in Section 2.2
for query representation": a new document column ``d`` becomes::

    d̂ = dᵀ U_k Σ_k⁻¹                                            (Eq. 7)

appended to the rows of ``V_k``; a new term row ``t`` becomes::

    t̂ = t V_k Σ_k⁻¹                                             (Eq. 8)

appended to the rows of ``U_k``.  "The coordinates of the original topics
stay fixed, and hence the new data has no effect on the clustering of
existing terms or documents" — our implementation appends and never
mutates, so that property holds bit-exactly (asserted in tests).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.obs.metrics import registry
from repro.obs.tracing import span
from repro.serving.index import invalidate_model
from repro.text.tdm import count_vector
from repro.text.tokenizer import tokenize
from repro.weighting.local import NEEDS_COL_MAX, local_weight

__all__ = ["fold_in_documents", "fold_in_terms", "fold_in_texts"]


def _weight_columns(model: LSIModel, counts: np.ndarray) -> np.ndarray:
    """Apply the model's weighting to raw count columns ``(m, p)``.

    New items must be weighted like the training cells: the local
    transform uses each new document's own counts, the global weights are
    the model's stored ``G(i)`` (they are *not* recomputed — that drift is
    what the Eq. 12 correction step later repairs).
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim == 1:
        counts = counts[:, None]
    if counts.shape[0] != model.n_terms:
        raise ShapeError(
            f"document block has {counts.shape[0]} rows for m={model.n_terms}"
        )
    if model.scheme.local in NEEDS_COL_MAX:
        cmax = np.maximum(counts.max(axis=0, keepdims=True), 1.0)
        local = local_weight(
            model.scheme.local, counts, np.broadcast_to(cmax, counts.shape)
        )
    else:
        local = local_weight(model.scheme.local, counts)
    return local * model.global_weights[:, None]


def fold_in_documents(
    model: LSIModel,
    counts: np.ndarray,
    doc_ids: Sequence[str],
) -> LSIModel:
    """Fold ``p`` new documents (raw count columns) into the model.

    Returns a new model with ``p`` extra document vectors; existing
    coordinates are shared (not copied), so the no-effect property of
    §3.3 is structural.
    """
    with span("lsi.fold.documents") as sp:
        weighted = _weight_columns(model, counts)
        p = weighted.shape[1]
        sp.set_attr("p", p)
        if len(doc_ids) != p:
            raise ShapeError(f"{len(doc_ids)} ids for {p} documents")
        # d̂ = dᵀ U_k Σ_k⁻¹ for every column at once.
        V_new = (weighted.T @ model.U) / model.s
        # The source model is superseded: drop its cached serving index so
        # handles pinned before the fold-in cannot keep serving without the
        # new documents (see repro.serving.index's invalidation contract).
        invalidate_model(model)
        registry.inc("updating.folded_documents", p)
        return model.with_documents(V_new, list(doc_ids), provenance="fold-in")


def fold_in_texts(
    model: LSIModel,
    texts: Sequence[str],
    doc_ids: Sequence[str] | None = None,
) -> LSIModel:
    """Fold raw texts in: tokenize against the model vocabulary first.

    Out-of-vocabulary words are dropped (the existing latent structure has
    no rows for them — adding *terms* requires Eq. 8 or an SVD update).
    """
    if doc_ids is None:
        start = model.n_documents + 1
        doc_ids = [f"D{start + i}" for i in range(len(texts))]
    counts = np.stack(
        [count_vector(tokenize(t), model.vocabulary) for t in texts], axis=1
    )
    return fold_in_documents(model, counts, doc_ids)


def fold_in_terms(
    model: LSIModel,
    counts: np.ndarray,
    terms: Sequence[str],
    global_weights: np.ndarray | None = None,
) -> LSIModel:
    """Fold ``q`` new terms (raw count rows over the n documents) in.

    Each row ``t`` is weighted with the local transform (global weight
    defaults to 1 for a brand-new term) and projected by Eq. 8.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim == 1:
        counts = counts[None, :]
    q, n = counts.shape
    if n != model.n_documents:
        raise ShapeError(
            f"term block has {n} columns for n={model.n_documents}"
        )
    if len(terms) != q:
        raise ShapeError(f"{len(terms)} names for {q} terms")
    with span("lsi.fold.terms", q=q):
        if model.scheme.local in NEEDS_COL_MAX:
            # Per-document max is a property of the whole column; a lone new
            # term row cannot recompute it, so fall back to its own counts.
            cmax = np.maximum(counts.max(axis=1, keepdims=True), 1.0)
            local = local_weight(
                model.scheme.local, counts, np.broadcast_to(cmax, counts.shape)
            )
        else:
            local = local_weight(model.scheme.local, counts)
        if global_weights is not None:
            gw = np.asarray(global_weights, dtype=np.float64).ravel()
            if gw.size != q:
                raise ShapeError("global_weights must have one entry per term")
            local = local * gw[:, None]
        else:
            gw = np.ones(q)
        # t̂ = t V_k Σ_k⁻¹ for every row at once.
        U_new = (local @ model.V) / model.s
        # Term fold-in supersedes the source model too (its vocabulary and
        # term space grow); invalidate its cached serving state.
        invalidate_model(model)
        registry.inc("updating.folded_terms", q)
        return model.with_terms(U_new, list(terms), gw, provenance="fold-in")
