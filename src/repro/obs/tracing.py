"""Wall-clock tracing spans with attributes, nesting, and a ring buffer.

``span("lsi.search", top=10)`` is a context manager that, when tracing
is **enabled**, records a :class:`Span` — name, attributes, start time,
duration, parent linkage — into a bounded in-memory ring buffer and
feeds the duration into the metrics registry as a latency histogram
under the span's name.  Nesting is tracked through a
:class:`contextvars.ContextVar`, so every thread *and* every asyncio
task gets its own span stack — concurrent request handlers on one event
loop cannot mis-parent each other's spans.

Span ids are strings of the form ``"<proc>-<seq>"`` where ``<proc>`` is
a random per-process tag: ids stay unique across the cluster's worker
processes, so a reassembled distributed trace never collides.  A span
opened with no local parent adopts the ambient
:class:`repro.obs.trace_context.TraceContext` — its ``trace_id`` and
(for the root) its remote ``parent_span_id`` — which is how worker-side
spans link under the router's scatter span.

Tracing is **disabled by default** and the disabled path is engineered
to be near-free: constructing the context manager allocates one small
object, and enter/exit reduce to a single global flag check each —
``benchmarks/bench_query_fastpath.py`` asserts the per-query cost stays
under 2% of serving time.  Hot paths can therefore stay instrumented
permanently; only processes that opt in (the CLI, benchmarks exporting
observability blobs, tests) pay for capture.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.obs.metrics import registry
from repro.obs.trace_context import current_trace

__all__ = [
    "Span",
    "span",
    "enable_tracing",
    "tracing_enabled",
    "traced",
    "recent_spans",
    "clear_spans",
    "spans_for_trace",
    "export_spans_jsonl",
]

#: Finished spans retained in memory (newest win).
RING_CAPACITY = 512

#: Random per-process tag making span ids unique across the cluster.
_PROC = os.urandom(3).hex()

_enabled = False
_ring: deque["Span"] = deque(maxlen=RING_CAPACITY)
_ring_lock = threading.Lock()
_ids = itertools.count(1)
#: Innermost open span for the current thread/task (per-context stack).
_current_span: ContextVar["Span | None"] = ContextVar(
    "repro_current_span", default=None
)


@dataclass
class Span:
    """One finished (or in-flight) traced operation."""

    name: str
    span_id: str
    parent_id: str | None
    depth: int
    start: float  # wall-clock epoch seconds (time.time)
    duration: float = 0.0  # seconds (perf_counter delta)
    trace_id: str | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready record (attrs coerced to strings when needed)."""
        attrs = {}
        for key, value in self.attrs.items():
            attrs[key] = (
                value
                if isinstance(
                    value, (int, float, str, bool, type(None), list)
                )
                else repr(value)
            )
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attrs": attrs,
        }


class span:
    """Context manager producing one :class:`Span` when tracing is on.

    ``with span("lsi.fit.svd", method="lanczos"): ...`` — attributes are
    arbitrary keyword arguments stored on the span.  On exit the
    duration also lands in the registry histogram named after the span,
    so latency percentiles accumulate without storing samples.  An
    exception inside the block is recorded in the span's attrs
    (``error``) and re-raised; the duration still counts.
    """

    __slots__ = ("_name", "_attrs", "_t0", "_span", "_token")

    def __init__(self, name: str, **attrs):
        self._name = name
        self._attrs = attrs
        self._span = None
        self._token = None

    def __enter__(self) -> "span":
        if not _enabled:
            return self
        parent = _current_span.get()
        if parent is not None:
            parent_id = parent.span_id
            trace_id = parent.trace_id
            depth = parent.depth + 1
            if trace_id is None:
                ctx = current_trace()
                if ctx is not None:
                    trace_id = ctx.trace_id
        else:
            ctx = current_trace()
            parent_id = ctx.parent_span_id if ctx is not None else None
            trace_id = ctx.trace_id if ctx is not None else None
            depth = 0
        record = Span(
            name=self._name,
            span_id=f"{_PROC}-{next(_ids)}",
            parent_id=parent_id,
            depth=depth,
            start=time.time(),
            trace_id=trace_id,
            attrs=dict(self._attrs),
        )
        self._token = _current_span.set(record)
        self._span = record
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._span
        if record is None:
            return False
        record.duration = time.perf_counter() - self._t0
        self._span = None
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc is not None:
            record.attrs["error"] = repr(exc)
        registry.observe(record.name, record.duration)
        with _ring_lock:
            _ring.append(record)
        return False

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute discovered mid-block (no-op when disabled)."""
        if self._span is not None:
            self._span.attrs[key] = value

    @property
    def span_id(self) -> str | None:
        """The live span's id, or ``None`` when tracing is disabled."""
        return self._span.span_id if self._span is not None else None

    @property
    def trace_id(self) -> str | None:
        """The live span's trace id (``None`` when disabled/untraced)."""
        return self._span.trace_id if self._span is not None else None


def enable_tracing(on: bool = True) -> bool:
    """Turn span capture on or off; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


def tracing_enabled() -> bool:
    """Whether spans are currently being captured."""
    return _enabled


@contextmanager
def traced(on: bool = True):
    """Scoped tracing toggle (tests, benchmarks): restores prior state."""
    previous = enable_tracing(on)
    try:
        yield
    finally:
        enable_tracing(previous)


def recent_spans(n: int | None = None) -> list[Span]:
    """The newest ``n`` finished spans, oldest first (all when ``None``).

    The ring buffer is snapshotted under its lock, so a concurrent
    writer finishing spans cannot mutate the deque mid-iteration.
    """
    with _ring_lock:
        spans = list(_ring)
    return spans if n is None else spans[-n:]


def clear_spans() -> None:
    """Empty the ring buffer (tests, or after an export)."""
    with _ring_lock:
        _ring.clear()


def spans_for_trace(trace_id: str) -> list[Span]:
    """Finished local spans belonging to ``trace_id``, oldest first.

    A span joins a trace either directly (its ``trace_id``) or by
    listing the id in a ``trace_ids`` attribute — the micro-batcher's
    batch span serves several traces at once and joins each that way.
    """
    out = []
    for record in recent_spans():
        if record.trace_id == trace_id:
            out.append(record)
            continue
        extra = record.attrs.get("trace_ids")
        if isinstance(extra, (list, tuple, set)) and trace_id in extra:
            out.append(record)
    return out


def export_spans_jsonl(path, spans: list[Span] | None = None) -> int:
    """Write spans as JSON lines; returns the number written.

    When ``spans`` is omitted the ring buffer is snapshotted under its
    lock first, so concurrent span completion cannot corrupt the export.
    """
    spans = recent_spans() if spans is None else spans
    with open(path, "w", encoding="utf-8") as fh:
        for record in spans:
            fh.write(json.dumps(record.to_dict()) + "\n")
    return len(spans)
