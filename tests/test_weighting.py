"""Tests for local/global weights, scheme composition, and corrections."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import from_dense
from repro.weighting import (
    WeightingScheme,
    apply_weighting,
    available_schemes,
    global_weight,
    local_weight,
    weight_correction_blocks,
)


@pytest.fixture
def counts(rng):
    return rng.poisson(1.2, (12, 8)).astype(np.float64)


@pytest.fixture
def csc(counts):
    return from_dense(counts).to_csc()


# --------------------------------------------------------------------- #
# local weights
# --------------------------------------------------------------------- #
def test_local_raw_identity():
    f = np.array([0.0, 1, 3])
    assert np.array_equal(local_weight("raw", f), f)
    assert np.array_equal(local_weight("tf", f), f)


def test_local_binary():
    assert np.array_equal(local_weight("binary", np.array([0.0, 2, 5])), [0, 1, 1])


def test_local_log():
    f = np.array([0.0, 1.0, 3.0])
    assert np.allclose(local_weight("log", f), np.log2(f + 1))


def test_local_sqrt():
    assert np.allclose(local_weight("sqrt", np.array([4.0, 9.0])), [2, 3])


def test_local_augmented_requires_col_max():
    with pytest.raises(ValueError):
        local_weight("augmented", np.ones(3))
    out = local_weight("augmented", np.array([2.0, 0.0]), np.array([4.0, 4.0]))
    assert np.allclose(out, [0.75, 0.0])


def test_local_unknown_name():
    with pytest.raises(ValueError):
        local_weight("quadratic", np.ones(2))


def test_all_locals_map_zero_to_zero(csc):
    for name in ("raw", "binary", "log", "sqrt"):
        out = local_weight(name, np.zeros(4))
        assert np.all(out == 0)


# --------------------------------------------------------------------- #
# global weights
# --------------------------------------------------------------------- #
def test_global_none(csc):
    assert np.allclose(global_weight("none", csc), 1.0)


def test_global_idf_definition(counts, csc):
    g = global_weight("idf", csc)
    n = counts.shape[1]
    df = (counts > 0).sum(axis=1)
    expect = np.where(df > 0, np.log2(n / np.where(df > 0, df, 1)) + 1, 1.0)
    assert np.allclose(g, expect)


def test_global_entropy_range_and_extremes():
    # term 0: single document → weight 1; term 1: uniform → weight ~0.
    d = np.zeros((2, 4))
    d[0, 0] = 5
    d[1, :] = 3
    g = global_weight("entropy", from_dense(d).to_csc())
    assert g[0] == pytest.approx(1.0)
    assert g[1] == pytest.approx(0.0, abs=1e-12)


def test_global_entropy_matches_dense_reference(counts, csc):
    g = global_weight("entropy", csc)
    gf = counts.sum(axis=1)
    p = counts / np.where(gf > 0, gf, 1)[:, None]
    ent = 1 + np.where(p > 0, p * np.log2(np.where(p > 0, p, 1)), 0).sum(axis=1) / np.log2(counts.shape[1])
    assert np.allclose(g, ent)


def test_global_gfidf(counts, csc):
    g = global_weight("gfidf", csc)
    gf = counts.sum(axis=1)
    df = (counts > 0).sum(axis=1)
    expect = np.where(df > 0, gf / np.where(df > 0, df, 1), 1.0)
    assert np.allclose(g, expect)


def test_global_normal_normalizes_rows(counts, csc):
    g = global_weight("normal", csc)
    scaled = counts * g[:, None]
    norms = np.sqrt((scaled**2).sum(axis=1))
    used = counts.sum(axis=1) > 0
    assert np.allclose(norms[used], 1.0)


def test_global_unknown_name(csc):
    with pytest.raises(ValueError):
        global_weight("tfidf2", csc)


def test_entropy_single_document_collection():
    d = np.array([[2.0], [1.0]])
    g = global_weight("entropy", from_dense(d).to_csc())
    assert np.allclose(g, 1.0)  # n=1: no entropy information


# --------------------------------------------------------------------- #
# schemes
# --------------------------------------------------------------------- #
def test_scheme_validation():
    with pytest.raises(ValueError):
        WeightingScheme("nope", "none")
    with pytest.raises(ValueError):
        WeightingScheme("raw", "nope")


def test_scheme_from_name():
    s = WeightingScheme.from_name("log_entropy")
    assert (s.local, s.global_) == ("log", "entropy")
    s2 = WeightingScheme.from_name("log×entropy")
    assert s2 == s
    s3 = WeightingScheme.from_name("binary")
    assert (s3.local, s3.global_) == ("binary", "none")


def test_apply_weighting_log_entropy(counts, csc):
    wm = apply_weighting(csc, WeightingScheme("log", "entropy"))
    gf = counts.sum(axis=1)
    p = counts / np.where(gf > 0, gf, 1)[:, None]
    ent = 1 + np.where(p > 0, p * np.log2(np.where(p > 0, p, 1)), 0).sum(axis=1) / np.log2(counts.shape[1])
    assert np.allclose(wm.matrix.to_dense(), np.log2(counts + 1) * ent[:, None])


def test_apply_weighting_augmented(counts, csc):
    wm = apply_weighting(csc, WeightingScheme("augmented", "none"))
    colmax = counts.max(axis=0)
    expect = np.where(
        counts > 0, 0.5 + 0.5 * counts / np.where(colmax > 0, colmax, 1), 0.0
    )
    assert np.allclose(wm.matrix.to_dense(), expect)


def test_weight_query_consistency(counts, csc):
    """Query cells must be weighted exactly like matrix cells."""
    wm = apply_weighting(csc, WeightingScheme("log", "entropy"))
    q = np.zeros(counts.shape[0])
    q[0] = 3.0
    wq = wm.weight_query(q)
    assert wq[0] == pytest.approx(np.log2(4.0) * wm.global_weights[0])
    assert np.all(wq[1:] == 0)


def test_available_schemes_cover_grid():
    schemes = available_schemes()
    names = {s.name for s in schemes}
    assert "log×entropy" in names and "raw×none" in names
    assert len(schemes) == 5 * 5  # 5 locals (minus tf alias) × 5 globals


# --------------------------------------------------------------------- #
# weight-correction blocks (Eq. 12)
# --------------------------------------------------------------------- #
def test_correction_blocks_reconstruct_difference(counts, csc):
    old = apply_weighting(csc, WeightingScheme("raw", "none")).matrix
    new = apply_weighting(csc, WeightingScheme("raw", "idf")).matrix
    diff_rows = np.flatnonzero(
        np.abs(old.to_dense() - new.to_dense()).sum(axis=1) > 0
    )
    Y, Z = weight_correction_blocks(old, new, diff_rows)
    assert Y.shape == (counts.shape[0], diff_rows.size)
    assert Z.shape == (counts.shape[1], diff_rows.size)
    assert np.allclose(old.to_dense() + Y @ Z.T, new.to_dense())


def test_correction_blocks_empty():
    a = from_dense(np.eye(3)).to_csc()
    Y, Z = weight_correction_blocks(a, a, [])
    assert Y.shape == (3, 0) and Z.shape == (3, 0)


def test_correction_blocks_validation(csc):
    with pytest.raises(ShapeError):
        weight_correction_blocks(csc, from_dense(np.eye(3)).to_csc(), [0])
    with pytest.raises(ShapeError):
        weight_correction_blocks(csc, csc, [0, 0])
    with pytest.raises(ShapeError):
        weight_correction_blocks(csc, csc, [999])
