"""§4.3 — orthogonality loss of folding-in, and its retrieval correlate.

Regenerates: the ‖V̂ᵀV̂ − I‖₂ growth curve as document batches are folded
in, side by side with a retrieval-quality metric — the experiment the
paper poses as future research ("monitoring the loss of orthogonality
... and correlating it to the number of relevant documents returned").
Times one drift-curve pass.
"""

import numpy as np

from conftest import emit
from repro.core import fit_lsi
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation.metrics import three_point_average_precision
from repro.retrieval import LSIRetrieval
from repro.text.tdm import count_vector
from repro.text.tokenizer import tokenize
from repro.updating.orthogonality import fold_in_drift_curve


def test_orthogonality_drift_vs_retrieval(benchmark, synonymy_collection):
    col = synonymy_collection
    head = col.documents[: col.n_documents // 2]
    tail = col.documents[col.n_documents // 2 :]
    model = fit_lsi(head, k=12, scheme="log_entropy", seed=0)

    batch_size = 20
    batches = []
    for lo in range(0, len(tail), batch_size):
        chunk = tail[lo : lo + batch_size]
        counts = np.stack(
            [count_vector(tokenize(t), model.vocabulary) for t in chunk],
            axis=1,
        )
        batches.append(counts)

    def metric(m):
        eng = LSIRetrieval(m)
        scores = []
        for qi, q in enumerate(col.queries):
            ranked = [j for j, _ in eng.search(q) if j < m.n_documents]
            rel = {d for d in col.relevant(qi) if d < m.n_documents}
            if rel:
                scores.append(three_point_average_precision(ranked, rel))
        return float(np.mean(scores))

    records = benchmark(fold_in_drift_curve, model, batches, metric=metric)

    rows = [f"{'docs':>6s}{'‖V̂ᵀV̂−I‖₂':>14s}{'3-pt avg prec':>16s}"]
    for r in records:
        rows.append(
            f"{r['n_documents']:>6d}{r['doc_loss']:>14.4f}{r['metric']:>16.3f}"
        )
    emit("§4.3 — fold-in orthogonality drift vs retrieval quality", rows)

    losses = [r["doc_loss"] for r in records]
    assert losses[0] < 1e-10          # clean SVD starts orthonormal
    assert losses[-1] > losses[0]     # drift accumulates
    assert max(losses) == losses[-1] or max(losses) > 0.01
