"""Property-based tests for LSI-level invariants (hypothesis).

These check the algebraic identities the paper's machinery rests on over
randomized inputs: weighting factorization (Eq. 5), the query/fold-in
duality (Eq. 6 ≡ Eq. 7), update exactness, and metric boundedness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.model import LSIModel
from repro.core.query import pseudo_document
from repro.evaluation.metrics import (
    average_precision,
    eleven_point_average_precision,
    three_point_average_precision,
)
from repro.linalg import jacobi_svd
from repro.sparse import from_dense
from repro.text import Vocabulary
from repro.updating.folding import fold_in_documents
from repro.updating.svd_update import update_documents
from repro.weighting import WeightingScheme, apply_weighting


@st.composite
def count_matrix(draw, max_m=10, max_n=8):
    m = draw(st.integers(2, max_m))
    n = draw(st.integers(2, max_n))
    counts = draw(
        arrays(
            np.float64, (m, n),
            elements=st.integers(0, 5).map(float),
        )
    )
    return counts


@given(count_matrix(), st.sampled_from(["raw", "log", "binary", "sqrt"]),
       st.sampled_from(["none", "idf", "entropy", "normal", "gfidf"]))
@settings(max_examples=60, deadline=None)
def test_weighting_factorizes_rowwise(counts, loc, glob):
    """Eq. 5: the weighted matrix is L(i,j) scaled per row by G(i) —
    i.e. two documents with equal counts for a term get weights in the
    same global proportion."""
    csc = from_dense(counts).to_csc()
    wm = apply_weighting(csc, WeightingScheme(loc, glob))
    W = wm.matrix.to_dense()
    g = wm.global_weights
    # reconstruct the implied local part and check it's independent of i
    # scaling: W[i, j] / g[i] must depend only on counts[i, j].
    seen = {}
    for i in range(counts.shape[0]):
        if g[i] == 0:
            continue
        for j in range(counts.shape[1]):
            key = counts[i, j]
            val = W[i, j] / g[i]
            if key in seen:
                assert abs(seen[key] - val) < 1e-9
            else:
                seen[key] = val


@given(count_matrix(), st.integers(1, 4), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_fold_in_equals_query_projection(counts, k, seed):
    """Eq. 7 ≡ Eq. 6 for every weighting-free model and document."""
    m, n = counts.shape
    k = min(k, m, n)
    U, s, V = jacobi_svd(counts)
    if s[k - 1] <= 1e-10:  # degenerate spectra: projection undefined
        return
    model = LSIModel(
        U[:, :k], s[:k], V[:, :k],
        Vocabulary([f"t{i}" for i in range(m)]).freeze(),
        [f"d{j}" for j in range(n)],
    )
    rng = np.random.default_rng(seed)
    doc = rng.integers(0, 4, m).astype(float)
    folded = fold_in_documents(model, doc[:, None], ["new"])
    assert np.allclose(folded.V[-1], pseudo_document(model, doc), atol=1e-9)
    # old coordinates bit-identical
    assert np.array_equal(folded.V[:-1], model.V)


@given(count_matrix(max_m=9, max_n=7), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_exact_update_matches_direct_svd(counts, seed):
    """Eq. 10 with residual: singular values equal the direct SVD of
    (A_k | D) for arbitrary D."""
    m, n = counts.shape
    k = min(3, m, n)
    U, s, V = jacobi_svd(counts)
    if s[k - 1] <= 1e-8:
        return
    model = LSIModel(
        U[:, :k], s[:k], V[:, :k],
        Vocabulary([f"t{i}" for i in range(m)]).freeze(),
        [f"d{j}" for j in range(n)],
    )
    rng = np.random.default_rng(seed)
    D = rng.integers(0, 3, (m, 2)).astype(float)
    updated = update_documents(model, D, ["x", "y"], exact=True)
    B = np.hstack([model.reconstruct(), D])
    s_ref = np.linalg.svd(B, compute_uv=False)[:k]
    assert np.allclose(updated.s, s_ref, atol=1e-8)
    # And the paper's projection variant is dominated by it.
    approx = update_documents(model, D, ["x", "y"])
    assert np.all(approx.s <= updated.s + 1e-9)


@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=20, unique=True),
    st.sets(st.integers(0, 30), min_size=1, max_size=10),
)
@settings(max_examples=80, deadline=None)
def test_metrics_bounded_and_consistent(ranking, relevant):
    """All metrics live in [0, 1]; perfect prefix ranking maximizes them."""
    for metric in (
        three_point_average_precision,
        eleven_point_average_precision,
        average_precision,
    ):
        val = metric(ranking, relevant)
        assert 0.0 <= val <= 1.0
    # A ranking that lists all relevant docs first scores 1 in AP.
    ideal = sorted(relevant) + [d for d in ranking if d not in relevant]
    assert average_precision(ideal, relevant) == 1.0
