"""Cross-process trace identity: trace ids, ambient scope, JSONL export.

A *trace* is one end-to-end request.  The HTTP front end mints (or
honors) a ``trace_id`` at ingress; :func:`trace_scope` then makes a
:class:`TraceContext` ambient for everything running on behalf of that
request — the admission gate, the micro-batcher, the cluster router —
so that :mod:`repro.obs.tracing` spans opened anywhere underneath tag
themselves with the trace id and link their roots to the remote parent
span.  The context also rides cluster wire frames (``to_wire`` /
``from_wire``) so shard-worker spans in other processes join the same
trace.

The ambient slot is a :class:`contextvars.ContextVar`: each asyncio
task and each thread sees its own value, so concurrent requests on one
event loop cannot leak contexts into each other.  Note that
``loop.run_in_executor`` does **not** propagate context vars — executor
work must re-enter the scope explicitly with the request's captured
``TraceContext``.
"""

from __future__ import annotations

import json
import os
import re
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

__all__ = [
    "TraceContext",
    "new_trace_id",
    "coerce_trace_id",
    "current_trace",
    "trace_scope",
    "export_trace_jsonl",
]

#: Caller-supplied request ids (``X-Request-Id``) are honored only when
#: they look like an id: short and free of header/JSON metacharacters.
#: ``\Z`` (not ``$``) so a trailing newline — a header-injection vector
#: — fails validation instead of slipping past the anchored match.
_REQUEST_ID_RE = re.compile(r"[A-Za-z0-9._:-]{1,64}\Z")


def new_trace_id() -> str:
    """A fresh 128-bit hex trace id (no process-global counter state)."""
    return os.urandom(16).hex()


def coerce_trace_id(candidate) -> str:
    """Honor a well-formed caller-supplied id, else mint a fresh one."""
    if isinstance(candidate, str) and _REQUEST_ID_RE.fullmatch(candidate):
        return candidate
    return new_trace_id()


@dataclass(frozen=True)
class TraceContext:
    """Identity of the trace a piece of work belongs to.

    ``parent_span_id`` names the span (possibly in another process)
    under which root spans opened inside this scope should hang.
    """

    trace_id: str
    parent_span_id: str | None = None

    def to_wire(self) -> dict:
        """JSON-ready form carried in cluster wire frames."""
        payload = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        return payload

    @classmethod
    def from_wire(cls, payload) -> "TraceContext | None":
        """Parse the wire form; ``None`` on missing/malformed input."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = payload.get("parent_span_id")
        if parent is not None and not isinstance(parent, str):
            parent = None
        return cls(trace_id=trace_id, parent_span_id=parent)


_current: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> TraceContext | None:
    """The ambient :class:`TraceContext`, if any."""
    return _current.get()


@contextmanager
def trace_scope(ctx: TraceContext | None):
    """Make ``ctx`` ambient for the dynamic extent of the block.

    ``trace_scope(None)`` explicitly clears the ambient trace (used by
    background work that must not inherit a request's identity).
    """
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def export_trace_jsonl(path, span_dicts: list[dict]) -> int:
    """Write an assembled trace (span dicts) as JSON lines.

    Unlike :func:`repro.obs.tracing.export_spans_jsonl` this operates on
    plain dicts, because a reassembled cluster trace mixes local spans
    with spans fetched over the wire from worker processes.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for record in span_dicts:
            fh.write(json.dumps(record) + "\n")
    return len(span_dicts)
