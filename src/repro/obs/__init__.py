"""Unified observability: metrics registry, tracing spans, exporters.

The paper's central systems claims are cost claims — the §4 Lanczos
flop model, the §2.3 folding-in vs. SVD-updating tradeoff, the §4.3
orthogonality diagnostics — and the ROADMAP's production north star
adds serving latency to the list.  This package is the one substrate
they are all measured on:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with named
  counters, gauges, and fixed-bucket latency histograms (count / sum /
  p50 / p95 / p99 without storing samples), thread-safe for the
  shard-parallel serving path;
* :mod:`repro.obs.tracing` — ``span("lsi.search", top=10)`` context
  managers producing nested wall-clock spans with attributes, an
  in-memory ring buffer, and a JSON-lines exporter; disabled by
  default with near-zero overhead on the hot paths;
* :mod:`repro.obs.bridge` — publishes :class:`OperatorCounter` /
  :class:`LanczosStats` matvec & flop counts and §4.3 drift values
  into the registry as gauges;
* :mod:`repro.obs.export` — JSON snapshot blobs for benchmarks
  (``BENCH_obs_*.json``), the cross-process CLI state file behind
  ``python -m repro stats``, and the text rendering it prints.

PR 7 made the substrate cluster-wide:

* :mod:`repro.obs.trace_context` — ambient :class:`TraceContext`
  (trace id + remote parent span) minted at HTTP ingress and carried in
  cluster wire frames, so worker-process spans join the router's trace;
* :mod:`repro.obs.aggregate` — order-independent merge and per-worker
  labeling of shipped worker registry snapshots (metrics federation);
* :mod:`repro.obs.prom` — Prometheus text exposition for
  ``/metrics?format=prom``;
* :mod:`repro.obs.slowlog` — a bounded JSONL log of over-threshold
  requests with their assembled per-shard trace evidence.

The legacy :data:`repro.util.timing.serving_counters` remains as a
registry-backed compatibility shim: its counters and timers live in the
registry under the ``serving.`` prefix.
"""

from repro.obs.aggregate import (
    label_snapshots,
    merge_registry_snapshots,
    prefix_snapshot,
)
from repro.obs.bridge import record_drift, record_lanczos_stats, record_operator
from repro.obs.export import (
    dump_state,
    format_snapshot,
    format_spans,
    load_state,
    merge_snapshots,
    snapshot_blob,
    write_json,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    registry,
)
from repro.obs.prom import render_prometheus, render_snapshot
from repro.obs.slowlog import SlowQueryLog, format_slowlog, read_slowlog
from repro.obs.trace_context import (
    TraceContext,
    coerce_trace_id,
    current_trace,
    export_trace_jsonl,
    new_trace_id,
    trace_scope,
)
from repro.obs.tracing import (
    Span,
    clear_spans,
    enable_tracing,
    export_spans_jsonl,
    recent_spans,
    span,
    spans_for_trace,
    traced,
    tracing_enabled,
)

__all__ = [
    "MetricsRegistry",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "registry",
    "get_registry",
    "span",
    "Span",
    "enable_tracing",
    "tracing_enabled",
    "traced",
    "recent_spans",
    "clear_spans",
    "spans_for_trace",
    "export_spans_jsonl",
    "TraceContext",
    "new_trace_id",
    "coerce_trace_id",
    "current_trace",
    "trace_scope",
    "export_trace_jsonl",
    "merge_registry_snapshots",
    "prefix_snapshot",
    "label_snapshots",
    "render_prometheus",
    "render_snapshot",
    "SlowQueryLog",
    "read_slowlog",
    "format_slowlog",
    "record_operator",
    "record_lanczos_stats",
    "record_drift",
    "snapshot_blob",
    "merge_snapshots",
    "write_json",
    "dump_state",
    "load_state",
    "format_snapshot",
    "format_spans",
]
