"""Deterministic shard plans: who scores which rows of the shared space.

A cluster serves one LSI model — the paper's single-space TREC design —
split into contiguous document-row ranges, one per worker process.  The
router and every worker must agree on that split *exactly*: the merge
(:func:`repro.parallel.sharding.merge_topk`) is only element-identical
to a flat search when shard lists arrive in document order with no row
claimed twice or dropped.  So the plan is not negotiated, it is
computed — :meth:`ShardPlan.compute` derives the ranges from the same
:func:`~repro.parallel.sharding.shard_bounds` partition the in-process
sharded search uses — and then pinned: the supervisor hands each worker
the plan's canonical JSON on its command line, and the worker refuses
to serve unless (a) re-serializing the parsed plan reproduces those
bytes, (b) recomputing the partition from ``(n_documents, n_shards)``
reproduces the ranges, and (c) the checkpoint it opened matches the
plan's ``epoch``/``checkpoint`` stamp.  Any version or state skew
between router and worker fails at spawn, not as silently wrong merges.

Replication layers *on top of* this plan, never inside it: a
:class:`~repro.cluster.placement.ReplicaPlan` assigns each range R
worker slots, but the data layout — and therefore the merge contract —
stays exactly this shard plan, which is also what workers receive over
the bump wire (their contract is rows, not placement).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ClusterError, ShapeError
from repro.parallel.sharding import shard_bounds

__all__ = ["PLAN_FORMAT", "ShardRange", "ShardPlan"]

#: Bumped on any change to the plan's JSON shape or partition math.
PLAN_FORMAT = "repro-cluster-plan/1"


@dataclass(frozen=True)
class ShardRange:
    """One worker's slice of the document rows: ``[lo, hi)``."""

    shard_id: int
    lo: int
    hi: int

    @property
    def n_rows(self) -> int:
        """Documents this shard scores (may be 0 for tiny corpora)."""
        return max(0, self.hi - self.lo)

    def as_pair(self) -> list[int]:
        """``[lo, hi]`` — the JSON/readback form of the range."""
        return [self.lo, self.hi]


@dataclass(frozen=True)
class ShardPlan:
    """The full cluster layout, serializable to canonical JSON.

    ``epoch`` and ``checkpoint`` stamp which durable-store snapshot the
    plan covers; workers opening a *different* checkpoint (a compaction
    or writer restart racing the spawn) refuse to start rather than
    serve rows from a space the router is not merging in.
    """

    n_documents: int
    n_shards: int
    epoch: int
    checkpoint: str
    shards: tuple[ShardRange, ...]

    # ------------------------------------------------------------------ #
    @classmethod
    def compute(
        cls,
        n_documents: int,
        n_shards: int,
        *,
        epoch: int = 0,
        checkpoint: str = "",
    ) -> "ShardPlan":
        """The canonical plan for ``n_documents`` rows over ``n_shards``."""
        ranges = tuple(
            ShardRange(i, lo, hi)
            for i, (lo, hi) in enumerate(shard_bounds(n_documents, n_shards))
        )
        return cls(
            n_documents=int(n_documents),
            n_shards=int(n_shards),
            epoch=int(epoch),
            checkpoint=str(checkpoint),
            shards=ranges,
        )

    # ------------------------------------------------------------------ #
    def shard(self, shard_id: int) -> ShardRange:
        """The range assigned to ``shard_id``."""
        if not 0 <= shard_id < len(self.shards):
            raise ShapeError(
                f"shard {shard_id} out of range for {len(self.shards)} shards"
            )
        return self.shards[shard_id]

    def ranges(self) -> list[tuple[int, int]]:
        """All ``(lo, hi)`` pairs in shard (= document) order."""
        return [(s.lo, s.hi) for s in self.shards]

    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Canonical byte-stable serialization (sorted keys, no spaces).

        Two processes computing the same plan produce the *same bytes*,
        which is what lets a worker verify agreement by comparison
        instead of trust.
        """
        return json.dumps(
            {
                "format": PLAN_FORMAT,
                "n_documents": self.n_documents,
                "n_shards": self.n_shards,
                "epoch": self.epoch,
                "checkpoint": self.checkpoint,
                "shards": [s.as_pair() for s in self.shards],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ShardPlan":
        """Parse and *verify* a plan: the ranges must be recomputable.

        A plan whose shard table differs from the canonical partition of
        its own ``(n_documents, n_shards)`` — hand-edited, truncated, or
        produced by a process with different partition math — raises
        :class:`~repro.errors.ClusterError`.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ClusterError(f"shard plan is not valid JSON: {exc}")
        if not isinstance(data, dict) or data.get("format") != PLAN_FORMAT:
            raise ClusterError(
                f"shard plan format {data.get('format')!r} is not "
                f"{PLAN_FORMAT!r}" if isinstance(data, dict)
                else "shard plan must be a JSON object"
            )
        try:
            plan = cls.compute(
                int(data["n_documents"]),
                int(data["n_shards"]),
                epoch=int(data["epoch"]),
                checkpoint=str(data["checkpoint"]),
            )
            claimed = [list(map(int, pair)) for pair in data["shards"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(f"shard plan is missing fields: {exc!r}")
        if claimed != [s.as_pair() for s in plan.shards]:
            raise ClusterError(
                "shard plan ranges do not match the canonical partition "
                f"of n={plan.n_documents} over {plan.n_shards} shards — "
                "router/worker partition math disagrees"
            )
        return plan
