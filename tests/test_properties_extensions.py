"""Property-based tests for the extension modules (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evaluation.significance import randomization_test, sign_test
from repro.retrieval.ann import kmeans
from repro.updating.cost_model import (
    fold_documents_flops,
    recompute_flops,
    svd_update_documents_flops,
)


@given(
    st.integers(2, 40).flatmap(
        lambda n: st.tuples(
            arrays(
                np.float64, (n, 3),
                elements=st.floats(-50, 50, allow_nan=False, width=64),
            ),
            st.integers(1, min(n, 6)),
            st.integers(0, 2**31 - 1),
        )
    )
)
@settings(max_examples=40, deadline=None)
def test_kmeans_invariants(args):
    """Every point is assigned to its nearest centroid, and the returned
    centroids/assignment are a complete partition."""
    X, c, seed = args
    centroids, assignment = kmeans(X, c, seed=seed)
    assert centroids.shape == (c, 3)
    assert assignment.shape == (X.shape[0],)
    assert assignment.min() >= 0 and assignment.max() < c
    # Nearest-centroid property of the final assignment.
    d2 = (
        np.sum(X**2, axis=1)[:, None]
        - 2 * X @ centroids.T
        + np.sum(centroids**2, axis=1)[None, :]
    )
    own = d2[np.arange(X.shape[0]), assignment]
    assert np.all(own <= d2.min(axis=1) + 1e-7)


@given(
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=30),
    st.floats(-0.5, 0.5, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_significance_p_values_valid(base, shift):
    a = np.asarray(base)
    b = np.clip(a + shift, 0, 2)
    for result in (sign_test(a, b), randomization_test(a, b, rounds=300)):
        assert 0.0 <= result.p_value <= 1.0
    # Symmetric comparisons are never significant under the sign test.
    assert sign_test(a, a).p_value == 1.0


@given(
    st.integers(1, 10**5),  # m
    st.integers(1, 10**5),  # n
    st.integers(1, 400),    # k
    st.integers(1, 10**4),  # p
    st.integers(0, 10**6),  # nnz_d
)
@settings(max_examples=60, deadline=None)
def test_cost_model_sanity(m, n, k, p, nnz_d):
    """Flop estimates are positive and monotone in every size argument."""
    fold = fold_documents_flops(m, k, p)
    update = svd_update_documents_flops(m, n, k, p, nnz_d)
    recompute = recompute_flops(nnz_d + 10 * n, k)
    assert fold > 0 and update > 0 and recompute > 0
    assert fold_documents_flops(m + 1, k, p) >= fold
    assert fold_documents_flops(m, k + 1, p) >= fold
    assert fold_documents_flops(m, k, p + 1) >= fold
    assert svd_update_documents_flops(m + 1, n, k, p, nnz_d) >= update
    assert svd_update_documents_flops(m, n + 1, k, p, nnz_d) >= update
    assert svd_update_documents_flops(m, n, k, p, nnz_d + 1) >= update
