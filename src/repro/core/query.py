"""Query representation (Eq. 6).

A query is "a set of words" represented as a vector in k-space::

    q̂ = qᵀ U_k Σ_k⁻¹

where ``q`` is the (weighted) term-frequency vector of the query words.
"The query vector is located at the weighted sum of its constituent term
vectors", with ``Σ_k⁻¹`` differentially weighting the dimensions.  The
same projection folds in a new document (Eq. 7) — a query *is* a pseudo-
document, which is why :func:`pseudo_document` is shared by both paths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.text.tdm import count_vector
from repro.text.tokenizer import tokenize

__all__ = ["project_query", "project_counts", "pseudo_document", "query_counts"]


def query_counts(model: LSIModel, query: str | Sequence[str]) -> np.ndarray:
    """Raw term-count vector of a query in the model's term space.

    Accepts raw text (tokenized with the standard tokenizer) or an already
    tokenized sequence.  Words that are not indexed terms are dropped,
    exactly as the paper drops *of*, *children*, *with* from the worked
    query.
    """
    tokens = tokenize(query) if isinstance(query, str) else list(query)
    return count_vector(tokens, model.vocabulary)


def pseudo_document(model: LSIModel, weighted_counts: np.ndarray) -> np.ndarray:
    """Project a weighted m-vector into k-space: ``d̂ = dᵀ U_k Σ_k⁻¹``.

    This is simultaneously Eq. 6 (queries) and Eq. 7 (folding in a
    document).  Singular values of zero would make the projection blow
    up; they cannot occur in a properly truncated model, so we validate.
    """
    d = np.asarray(weighted_counts, dtype=np.float64).ravel()
    if d.size != model.n_terms:
        raise ShapeError(
            f"vector length {d.size} != m={model.n_terms}"
        )
    if np.any(model.s <= 0):
        raise ShapeError(
            "model has zero singular values; truncate before projecting"
        )
    return (d @ model.U) / model.s


def project_counts(model: LSIModel, counts: np.ndarray) -> np.ndarray:
    """Weight a raw term-count vector and project it into k-space.

    The counts receive the model's term weights (local transform +
    stored global weights), then the Eq. 6 projection.  Split out from
    :func:`project_query` so callers that already hold counts — the
    serving layer's query-vector cache keys on them — can skip the
    tokenization pass.
    """
    from repro.weighting.schemes import WeightedMatrix  # noqa: F401 (doc ref)
    from repro.weighting.local import NEEDS_COL_MAX, local_weight

    if model.scheme.local in NEEDS_COL_MAX:
        cmax = max(counts.max(), 1.0)
        local = local_weight(
            model.scheme.local, counts, np.full_like(counts, cmax)
        )
    else:
        local = local_weight(model.scheme.local, counts)
    weighted = local * model.global_weights
    return pseudo_document(model, weighted)


def project_query(model: LSIModel, query: str | Sequence[str]) -> np.ndarray:
    """Full Eq. 6 pipeline: tokenize, weight, project."""
    return project_counts(model, query_counts(model, query))
