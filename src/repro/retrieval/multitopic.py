"""Multi-topic queries: multiple points of interest (§5.4, ref [18]).

"Queries can even be represented as multiple points of interest" — the
relevance-density method of Kane-Esrig et al.  Instead of collapsing a
multi-faceted information need into one centroid vector (which can land
in empty space between the facets), the query is a *set* of k-space
points, and a document's score combines its proximity to each point.

Three combination rules are provided:

* ``"max"`` — a document is relevant if it is close to *any* facet
  (disjunctive needs: "cars OR pottery");
* ``"mean"`` — the average proximity (soft conjunction);
* ``"density"`` — a kernel-density relevance estimate: each interest
  point contributes ``wᵢ · exp(cosᵢ/τ)``, normalized — the smooth
  weighting of the original method, with facet weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.errors import ShapeError

__all__ = ["MultiTopicQuery", "multi_topic_scores", "multi_topic_search"]


@dataclass
class MultiTopicQuery:
    """A query made of several k-space interest points.

    Attributes
    ----------
    points:
        ``(t, k)`` array, one row per interest point.
    weights:
        Per-point importance, normalized to sum to 1.
    labels:
        Optional facet names for reporting.
    """

    points: np.ndarray
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]
    labels: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.points = np.atleast_2d(np.asarray(self.points, dtype=np.float64))
        t = self.points.shape[0]
        if t == 0:
            raise ShapeError("a multi-topic query needs at least one point")
        if self.weights is None:
            self.weights = np.full(t, 1.0 / t)
        else:
            self.weights = np.asarray(self.weights, dtype=np.float64).ravel()
            if self.weights.size != t:
                raise ShapeError(
                    f"{self.weights.size} weights for {t} interest points"
                )
            if np.any(self.weights < 0) or self.weights.sum() <= 0:
                raise ShapeError("weights must be non-negative, not all zero")
            self.weights = self.weights / self.weights.sum()
        if self.labels and len(self.labels) != t:
            raise ShapeError("labels must match the number of points")

    @classmethod
    def from_texts(
        cls,
        model: LSIModel,
        facets: Sequence[str],
        *,
        weights: Sequence[float] | None = None,
    ) -> "MultiTopicQuery":
        """Build one interest point per facet text via Eq. 6."""
        if not facets:
            raise ShapeError("need at least one facet text")
        points = np.stack([project_query(model, f) for f in facets])
        return cls(
            points,
            None if weights is None else np.asarray(weights, float),
            labels=list(facets),
        )

    @property
    def n_points(self) -> int:
        """Number of interest points."""
        return self.points.shape[0]


def _facet_cosines(model: LSIModel, query: MultiTopicQuery) -> np.ndarray:
    """(t, n) cosine of each interest point with each document."""
    docs = model.V * model.s  # (n, k)
    pts = query.points * model.s  # (t, k)
    dn = np.sqrt(np.sum(docs**2, axis=1))
    pn = np.sqrt(np.sum(pts**2, axis=1))
    denom = pn[:, None] * dn[None, :]
    raw = pts @ docs.T
    out = np.zeros_like(raw)
    ok = denom > 0
    out[ok] = raw[ok] / denom[ok]
    return out


def multi_topic_scores(
    model: LSIModel,
    query: MultiTopicQuery,
    *,
    rule: str = "density",
    temperature: float = 0.1,
) -> np.ndarray:
    """Score every document against a multi-point query (length n)."""
    if query.points.shape[1] != model.k:
        raise ShapeError(
            f"interest points have {query.points.shape[1]} dims for "
            f"k={model.k}"
        )
    cos = _facet_cosines(model, query)
    if rule == "max":
        return cos.max(axis=0)
    if rule == "mean":
        return query.weights @ cos
    if rule == "density":
        if temperature <= 0:
            raise ShapeError("temperature must be positive")
        # Normalized kernel density over the interest points; scores stay
        # within the cosine range so thresholds remain interpretable.
        kernel = np.exp((cos - 1.0) / temperature)  # in (0, 1]
        density = query.weights @ (kernel * cos)
        norm = query.weights @ kernel
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(norm > 0, density / norm, 0.0)
    raise ValueError(f"unknown combination rule {rule!r}")


def multi_topic_search(
    model: LSIModel,
    query: MultiTopicQuery,
    *,
    rule: str = "density",
    top: int | None = None,
    threshold: float | None = None,
    temperature: float = 0.1,
) -> list[tuple[str, float]]:
    """Ranked ``(doc_id, score)`` results for a multi-point query."""
    scores = multi_topic_scores(
        model, query, rule=rule, temperature=temperature
    )
    order = np.argsort(-scores, kind="stable")
    out = [(model.doc_ids[int(j)], float(scores[j])) for j in order]
    if threshold is not None:
        out = [(d, c) for d, c in out if c >= threshold]
    if top is not None:
        out = out[:top]
    return out
