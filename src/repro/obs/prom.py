"""Prometheus text exposition for registry snapshots.

``GET /metrics?format=prom`` on the server and cluster front ends
renders the fleet's metrics in the Prometheus text format (version
0.0.4) so a stock Prometheus scraper can ingest them — the JSON shape
at plain ``/metrics`` stays untouched.

The registry's dotted metric names (``cluster.worker.3.rpc_seconds``)
are not legal Prometheus names, and its histograms are fixed-bucket
quantile sketches rather than cumulative bucket series, so rendering
maps:

* counters → ``repro_<name>_total`` (``# TYPE counter``);
* gauges → ``repro_<name>`` (``# TYPE gauge``);
* histograms → a **summary** family ``repro_<name>`` with
  ``{quantile="0.5|0.95|0.99"}`` sample lines plus ``_sum``/``_count``,
  which carries the latency percentiles without inventing cumulative
  buckets the sketch cannot exactly provide.

:func:`render_prometheus` takes ``(labels, snapshot)`` pairs so the
cluster can emit one family per metric with a ``worker="<sid>"`` label
per shard process; families are emitted once (single ``# TYPE`` line
each, names sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``) with every
label set's samples beneath — the exposition stays parseable with no
duplicate or illegal names no matter how many workers report.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping

__all__ = [
    "sanitize_metric_name",
    "render_prometheus",
    "render_snapshot",
]

#: Prefix namespacing every exported family.
NAME_PREFIX = "repro_"

_ILLEGAL_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_ILLEGAL_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")

#: Summary quantiles rendered from each histogram sketch.
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def sanitize_metric_name(name: str) -> str:
    """A legal, namespaced Prometheus metric name for a registry name."""
    cleaned = _ILLEGAL_CHARS.sub("_", str(name))
    cleaned = re.sub(r"_+", "_", cleaned).strip("_")
    if not cleaned:
        cleaned = "metric"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return NAME_PREFIX + cleaned


def _escape_label_value(value) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _label_text(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        name = _ILLEGAL_LABEL_CHARS.sub("_", str(key)) or "label"
        if name[0].isdigit():
            name = "_" + name
        parts.append(f'{name}="{_escape_label_value(labels[key])}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Family:
    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        self.samples: list[str] = []


def render_prometheus(
    series: Iterable[tuple[Mapping[str, object], dict]]
) -> str:
    """Render ``(labels, registry.snapshot())`` pairs as exposition text.

    Later series never redeclare a family: when two registry names
    sanitize to the same Prometheus name with conflicting kinds, the
    first kind encountered wins and the conflicting samples are dropped
    (a parse error would cost the whole scrape; a dropped family costs
    one metric).
    """
    families: dict[str, _Family] = {}

    def family(name: str, kind: str) -> "_Family | None":
        existing = families.get(name)
        if existing is None:
            existing = families[name] = _Family(name, kind)
        elif existing.kind != kind:
            return None
        return existing

    for labels, snap in series:
        if not isinstance(snap, dict):
            continue
        base = _label_text(labels or {})
        counters = snap.get("counters") or {}
        for raw in sorted(counters):
            fam = family(sanitize_metric_name(raw) + "_total", "counter")
            if fam is not None:
                fam.samples.append(
                    f"{fam.name}{base} {_format_value(counters[raw])}"
                )
        gauges = snap.get("gauges") or {}
        for raw in sorted(gauges):
            fam = family(sanitize_metric_name(raw), "gauge")
            if fam is not None:
                fam.samples.append(
                    f"{fam.name}{base} {_format_value(gauges[raw])}"
                )
        histograms = snap.get("histograms") or {}
        for raw in sorted(histograms):
            data = histograms[raw]
            if not isinstance(data, dict):
                continue
            fam = family(sanitize_metric_name(raw), "summary")
            if fam is None:
                continue
            for q, key in _QUANTILES:
                labeled = dict(labels or {})
                labeled["quantile"] = q
                fam.samples.append(
                    f"{fam.name}{_label_text(labeled)}"
                    f" {_format_value(float(data.get(key, 0.0)))}"
                )
            fam.samples.append(
                f"{fam.name}_sum{base}"
                f" {_format_value(float(data.get('sum', 0.0)))}"
            )
            fam.samples.append(
                f"{fam.name}_count{base}"
                f" {_format_value(int(data.get('count', 0)))}"
            )

    lines: list[str] = []
    for name in sorted(families):
        fam = families[name]
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        lines.extend(fam.samples)
    return "\n".join(lines) + "\n" if lines else "\n"


def render_snapshot(
    snapshot: dict, labels: Mapping[str, object] | None = None
) -> str:
    """Exposition text for a single snapshot (one label set)."""
    return render_prometheus([(labels or {}, snapshot)])
