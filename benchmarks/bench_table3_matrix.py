"""Table 2/3 — parse the 14 medical topics into the 18×14 matrix.

Regenerates: the keyword set (words in more than one topic) and the
term-document matrix of raw frequencies.  Times the full parse+assemble
pipeline.
"""

import numpy as np

from conftest import emit
from repro.corpus.med import MED_TERMS, MED_TOPICS, TABLE3, med_tdm_parsed
from repro.text import ParsingRules, build_tdm


def test_table3_parse_and_assemble(benchmark):
    texts = list(MED_TOPICS.values())

    tdm = benchmark(
        build_tdm, texts, ParsingRules(min_doc_freq=2),
        doc_ids=list(MED_TOPICS),
    )

    assert tdm.shape == (18, 14)
    assert tdm.vocabulary.to_list() == MED_TERMS

    dense = tdm.to_dense()
    header = "term            " + " ".join(f"{d:>3s}" for d in MED_TOPICS)
    rows = [header]
    for i, term in enumerate(MED_TERMS):
        cells = " ".join(f"{int(v):>3d}" for v in dense[i])
        rows.append(f"{term:<16s}{cells}")
    diff = int(np.sum(dense != TABLE3))
    rows.append(
        f"cells differing from printed Table 3: {diff} "
        "(documented transcription divergence)"
    )
    emit("Table 3 — 18×14 term-document matrix (parsed from Table 2)", rows)
    assert diff <= 3
