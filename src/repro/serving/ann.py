"""Probe-bounded approximate scan — the serving answer to §5.6.

The paper's third open computational issue is "efficiently comparing
queries to documents (i.e., finding near neighbors in high-dimension
spaces)".  :mod:`repro.retrieval.ann` answers it offline; this module is
the *serving* form of the same IVF-style design, shaped so the durable
store can persist it and every query path can map it zero-copy:

1. **Train** (checkpoint time): k-means++-seeded Lloyd over the
   unit-normalized ``V_k Σ_k`` rows — sampled above a size cap so the
   quantizer stays cheap to refresh on every checkpoint (the
   Vecharynski & Saad fast-update requirement) — then one full
   assignment pass to build per-cell posting lists in CSR form.
2. **Probe** (query time): rank cells by centroid cosine against the
   Σ-scaled query, gather the ``probes`` nearest cells' documents plus
   the *fresh tail* (rows folded in after training, which the posting
   lists cannot know about), and exact-rerank the candidate set with
   the shared :func:`~repro.serving.kernel.cosine_scores` kernel.

Candidate sets are materialized in ascending document order, so the
stable rerank breaks score ties by ascending index — *element-identical*
(indices, scores, tie order) to the exhaustive
:func:`~repro.core.similarity.cosine_similarities` ranking whenever
``probes >= n_clusters``.  ``probes`` is therefore a pure recall/speed
dial with an exact top end, measured in ``benchmarks/bench_ann_serving``.

The three arrays (``ann_centroids``, ``ann_indptr``, ``ann_docs``)
persist as ordinary checkpoint ``.npy`` files (format v2) and reopen via
``np.load(mmap_mode="r")`` — see :func:`repro.store.mmap_io.open_checkpoint_ann`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.obs.metrics import registry
from repro.serving.kernel import cosine_scores
from repro.serving.topk import ranked_order
from repro.util.rng import ensure_rng

__all__ = [
    "ANN_ARRAY_NAMES",
    "CoarseQuantizer",
    "default_n_clusters",
    "kmeans",
]

#: Checkpoint array names the quantizer (de)serializes to (format v2).
ANN_ARRAY_NAMES = ("ann_centroids", "ann_indptr", "ann_docs")

#: Rows per block in assignment passes — bounds the (chunk, c) distance
#: matrix so training over millions of documents stays in cache-friendly
#: memory instead of materializing an (n, c) float64 temporary.
_ASSIGN_CHUNK = 16384

_CELL_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
_FRACTION_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0)
_RERANK_BUCKETS = (
    10.0, 100.0, 1000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


def default_n_clusters(n: int) -> int:
    """``≈ sqrt(n)`` — the standard IVF probe-vs-scan balance point."""
    return max(1, int(np.sqrt(n)))


def _assign(
    X: np.ndarray, centroids: np.ndarray, *, chunk: int = _ASSIGN_CHUNK
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment plus per-point squared distance.

    Block-row evaluation of the same expanded-form expression the
    original single-shot implementation used; each row's arithmetic is
    unchanged, only the GEMM is tiled.
    """
    n = X.shape[0]
    cen_sq = np.sum(centroids**2, axis=1)[None, :]
    assignment = np.empty(n, dtype=np.int64)
    best = np.empty(n, dtype=np.float64)
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        sq = (
            np.sum(X[lo:hi] ** 2, axis=1)[:, None]
            - 2.0 * X[lo:hi] @ centroids.T
            + cen_sq
        )
        assignment[lo:hi] = np.argmin(sq, axis=1)
        best[lo:hi] = np.min(sq, axis=1)
    return assignment, best


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    *,
    max_iter: int = 50,
    tol: float = 1e-6,
    seed=0,
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd k-means with k-means++ seeding.

    Returns ``(centroids (c, d), assignment (n,))``.  Empty clusters are
    re-seeded from the point farthest from its centroid.  Assignment
    passes are chunked so memory stays O(chunk · c) at any collection
    size.
    """
    X = np.asarray(points, dtype=np.float64)
    if X.ndim != 2:
        raise ShapeError("points must be 2-D")
    n, d = X.shape
    if not 1 <= n_clusters <= n:
        raise ShapeError(f"n_clusters={n_clusters} outside [1, {n}]")
    rng = ensure_rng(seed)

    # k-means++ initialization.
    centroids = np.empty((n_clusters, d))
    centroids[0] = X[int(rng.integers(n))]
    closest_sq = np.sum((X - centroids[0]) ** 2, axis=1)
    for c in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            centroids[c:] = X[rng.integers(n, size=n_clusters - c)]
            break
        probs = closest_sq / total
        centroids[c] = X[int(rng.choice(n, p=probs))]
        closest_sq = np.minimum(
            closest_sq, np.sum((X - centroids[c]) ** 2, axis=1)
        )

    assignment = np.zeros(n, dtype=np.int64)
    for _it in range(max_iter):
        assignment, best = _assign(X, centroids)
        moved = 0.0
        for c in range(n_clusters):
            members = X[assignment == c]
            if members.shape[0] == 0:
                # Re-seed from the globally worst-served point.
                worst = int(np.argmax(best))
                new_centroid = X[worst]
            else:
                new_centroid = members.mean(axis=0)
            moved = max(
                moved, float(np.sum((centroids[c] - new_centroid) ** 2))
            )
            centroids[c] = new_centroid
        if moved <= tol:
            break
    assignment, _ = _assign(X, centroids)
    return centroids, assignment


def _unit_rows(X: np.ndarray) -> np.ndarray:
    """Rows projected onto the unit sphere; zero rows stay zero."""
    norms = np.sqrt(np.sum(X**2, axis=1, keepdims=True))
    return np.where(norms > 0, X / np.where(norms > 0, norms, 1), 0)


class CoarseQuantizer:
    """Checkpoint-persistable coarse quantizer with probe-bounded rerank.

    Model-free on purpose: it holds centroids plus CSR posting lists of
    document *indices*, and scores against whatever coordinate rows the
    caller hands it — the full ``V_k Σ_k`` matrix on a single node, or a
    shard's ``[lo, hi)`` slice in a cluster worker.  All arrays may be
    read-only memory maps.
    """

    __slots__ = ("centroids", "cell_indptr", "cell_docs", "seed", "_cen_norms")

    def __init__(
        self,
        centroids: np.ndarray,
        cell_indptr: np.ndarray,
        cell_docs: np.ndarray,
        *,
        seed=0,
    ) -> None:
        self.centroids = np.asarray(centroids, dtype=np.float64)
        self.cell_indptr = np.asarray(cell_indptr, dtype=np.int64)
        self.cell_docs = np.asarray(cell_docs, dtype=np.int64)
        if self.centroids.ndim != 2 or self.centroids.shape[0] < 1:
            raise ShapeError("centroids must be a non-empty 2-D array")
        c = self.centroids.shape[0]
        if self.cell_indptr.shape != (c + 1,):
            raise ShapeError(
                f"cell_indptr has shape {self.cell_indptr.shape} for "
                f"{c} cells (want ({c + 1},))"
            )
        if (
            self.cell_indptr[0] != 0
            or self.cell_indptr[-1] != self.cell_docs.shape[0]
            or np.any(np.diff(self.cell_indptr) < 0)
        ):
            raise ShapeError("cell_indptr is not a valid CSR pointer array")
        self.seed = seed
        self._cen_norms = np.sqrt(np.sum(self.centroids**2, axis=1))

    # ------------------------------------------------------------------ #
    # construction / serialization
    # ------------------------------------------------------------------ #
    @classmethod
    def train(
        cls,
        coords: np.ndarray,
        n_clusters: int | None = None,
        *,
        seed=0,
        max_iter: int = 50,
        sample: int | None = None,
    ) -> "CoarseQuantizer":
        """Train over Σ-scaled document coordinates (rows of ``V_k Σ_k``).

        Cosine search ⇒ clustering happens on the unit sphere.  Above
        ``sample`` points (default ``max(10_000, 64·c)``) Lloyd runs on
        a seeded uniform sample and only the final assignment pass sees
        every row — keeping checkpoint-time retraining roughly constant
        in collection size.  Deterministic given ``(coords, seed)``.
        """
        X = np.asarray(coords, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ShapeError("coords must be a non-empty 2-D array")
        n = X.shape[0]
        if n_clusters is None:
            n_clusters = default_n_clusters(n)
        n_clusters = max(1, min(int(n_clusters), n))
        unit = _unit_rows(X)
        if sample is None:
            sample = max(10_000, 64 * n_clusters)
        if n > sample:
            rng = ensure_rng(seed)
            pick = np.sort(rng.choice(n, size=sample, replace=False))
            centroids, _ = kmeans(
                unit[pick], n_clusters, max_iter=max_iter, seed=seed
            )
            assignment, _ = _assign(unit, centroids)
        else:
            centroids, assignment = kmeans(
                unit, n_clusters, max_iter=max_iter, seed=seed
            )
        counts = np.bincount(assignment, minlength=n_clusters)
        indptr = np.zeros(n_clusters + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Stable sort groups by cell, ascending document index within
        # each cell — the property the ascending-candidate rerank needs.
        order = np.argsort(assignment, kind="stable").astype(np.int64)
        return cls(centroids, indptr, order, seed=seed)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The checkpoint arrays (names in :data:`ANN_ARRAY_NAMES`)."""
        return {
            "ann_centroids": self.centroids,
            "ann_indptr": self.cell_indptr,
            "ann_docs": self.cell_docs,
        }

    @classmethod
    def from_arrays(
        cls, arrays: dict[str, np.ndarray], *, seed=0
    ) -> "CoarseQuantizer":
        """Inverse of :meth:`to_arrays`; arrays may be memory-mapped."""
        return cls(
            arrays["ann_centroids"],
            arrays["ann_indptr"],
            arrays["ann_docs"],
            seed=seed,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_clusters(self) -> int:
        """Number of coarse cells."""
        return self.centroids.shape[0]

    @property
    def n_documents(self) -> int:
        """Documents the posting lists cover (rows seen at train time)."""
        return self.cell_docs.shape[0]

    def cell(self, c: int) -> np.ndarray:
        """Ascending document indices of cell ``c``."""
        return self.cell_docs[self.cell_indptr[c]:self.cell_indptr[c + 1]]

    def members(self) -> list[np.ndarray]:
        """All posting lists (compatibility view for the offline index)."""
        return [self.cell(c) for c in range(self.n_clusters)]

    def assignment(self) -> np.ndarray:
        """Per-document cell ids, inverted from the posting lists."""
        out = np.empty(self.n_documents, dtype=np.int64)
        for c in range(self.n_clusters):
            out[self.cell(c)] = c
        return out

    # ------------------------------------------------------------------ #
    # query path
    # ------------------------------------------------------------------ #
    def probe_cells(self, q_scaled: np.ndarray, probes: int) -> np.ndarray:
        """Ids of the ``probes`` nearest cells by centroid cosine.

        ``q_scaled`` is the Σ-scaled query (the same vector the exact
        kernel scores with), so cell selection is a pure function of the
        serving inputs — bit-identical on every node that holds the same
        quantizer.  ``probes`` clamps to ``[1, n_clusters]``.  A
        zero-norm query has no direction to probe along, so it probes
        *every* cell — degrading to the exact scan's all-zero ranking
        rather than an arbitrary subset.
        """
        q = np.asarray(q_scaled, dtype=np.float64).ravel()
        if q.size != self.centroids.shape[1]:
            raise ShapeError(
                f"query has {q.size} dims for centroid width "
                f"{self.centroids.shape[1]}"
            )
        probes = max(1, min(int(probes), self.n_clusters))
        qn = np.sqrt(np.dot(q, q))
        if qn == 0.0:
            return np.arange(self.n_clusters, dtype=np.int64)
        raw = self.centroids @ q
        cos = np.full(self.n_clusters, -np.inf)
        ok = self._cen_norms > 0
        cos[ok] = raw[ok] / (self._cen_norms[ok] * qn)
        return np.argsort(-cos, kind="stable")[:probes].astype(np.int64)

    def candidates(
        self,
        cells: np.ndarray,
        *,
        n_total: int | None = None,
        lo: int = 0,
        hi: int | None = None,
    ) -> np.ndarray:
        """Ascending candidate document indices for the probed ``cells``.

        Rows ``>= n_documents`` (folded in after training — the *fresh
        tail*) are always candidates, so new documents are searched
        exactly until the next checkpoint retrain.  ``lo``/``hi``
        restrict the set to a shard's ``[lo, hi)`` row range.
        """
        parts = [self.cell(int(c)) for c in cells]
        cand = (
            np.sort(np.concatenate(parts))
            if parts
            else np.empty(0, dtype=np.int64)
        )
        covered = self.n_documents
        if n_total is not None and n_total > covered:
            cand = np.concatenate(
                [cand, np.arange(covered, n_total, dtype=np.int64)]
            )
        if lo > 0 or hi is not None:
            stop = cand.size if hi is None else np.searchsorted(cand, hi, "left")
            start = np.searchsorted(cand, lo, "left")
            cand = cand[start:stop]
        return cand

    def select(
        self,
        coords: np.ndarray,
        norms: np.ndarray,
        q_scaled: np.ndarray,
        *,
        probes: int,
        top: int | None = None,
        threshold: float | None = None,
        lo: int = 0,
        n_total: int | None = None,
    ) -> tuple[list[tuple[int, float]], dict]:
        """Ranked ``(doc_index, score)`` pairs over the probed candidates.

        ``coords``/``norms`` are rows ``[lo, lo + len)`` of the full
        coordinate matrix — the whole thing with ``lo=0`` on a single
        node, or a shard slice in a worker (which passes the global
        ``n_total``).  Returned indices are global.  When the candidate
        set is the entire range the gather is skipped, so the full-probe
        case runs the *same* kernel call as the exact path.
        """
        q = np.asarray(q_scaled, dtype=np.float64).ravel()
        hi = lo + coords.shape[0]
        if n_total is None:
            n_total = max(hi, self.n_documents)
        cells = self.probe_cells(q, probes)
        cand = self.candidates(cells, n_total=n_total, lo=lo, hi=hi)
        stats = {
            "cells_probed": int(cells.size),
            "candidates": int(cand.size),
        }
        self._record(stats, hi - lo)
        if cand.size == 0:
            return [], stats
        if cand.size == hi - lo:
            # Ascending and distinct within [lo, hi) ⇒ the full range:
            # score in place, bit-identical to the exhaustive scan.
            rows, sub_norms = coords, norms
        else:
            local = cand - lo
            rows = coords[local]
            sub_norms = norms[local]
        scores = cosine_scores(rows, q, norms=sub_norms)[0]
        order = ranked_order(scores, top=top, threshold=threshold)
        registry.observe(
            "ann.rerank_size", float(order.size), boundaries=_RERANK_BUCKETS
        )
        return [(int(cand[i]), float(scores[i])) for i in order], stats

    def _record(self, stats: dict, n_rows: int) -> None:
        registry.inc("ann.requests_total")
        registry.observe(
            "ann.cells_probed",
            float(stats["cells_probed"]),
            boundaries=_CELL_BUCKETS,
        )
        if n_rows > 0:
            registry.observe(
                "ann.candidate_fraction",
                stats["candidates"] / n_rows,
                boundaries=_FRACTION_BUCKETS,
            )
