"""Tests for manager term additions and the report formatters."""

import numpy as np
import pytest

from repro.corpus import SyntheticSpec, TestCollection, topic_collection
from repro.errors import EvaluationError, ShapeError
from repro.evaluation.harness import RetrievalRun, run_engine
from repro.evaluation.report import comparison_table, recall_precision_table
from repro.retrieval import KeywordRetrieval
from repro.text import ParsingRules, build_tdm
from repro.updating import LSIIndexManager


# --------------------------------------------------------------------- #
# manager term additions
# --------------------------------------------------------------------- #
@pytest.fixture
def mgr():
    col = topic_collection(
        SyntheticSpec(n_topics=3, docs_per_topic=10, doc_length=25,
                      concepts_per_topic=8, queries_per_topic=1),
        seed=52,
    )
    tdm = build_tdm(col.documents, ParsingRules())
    return LSIIndexManager(tdm, k=6)


def test_add_terms_extends_everything(mgr):
    n = mgr.tdm.n_documents
    m0 = mgr.model.n_terms
    rows = np.zeros((2, n))
    rows[0, :5] = 1.0
    rows[1, 5:10] = 2.0
    event = mgr.add_terms(rows, ["neologism", "jargon"])
    assert event.action == "svd-update"
    assert mgr.model.n_terms == m0 + 2
    assert "neologism" in mgr.model.vocabulary
    assert mgr.tdm.n_terms == m0 + 2
    assert mgr.drift() < 1e-8


def test_add_terms_consolidates_pending_first(mgr):
    texts = ["t0c0s0 t0c1s0 t0c2s0"]
    mgr.add_texts(texts)
    assert mgr.pending == 1
    rows = np.ones((1, mgr.tdm.n_documents + 1))  # after consolidation n+1
    event = mgr.add_terms(rows, ["everywhere"])
    assert mgr.pending == 0
    assert "everywhere" in mgr.model.vocabulary


def test_add_terms_validation(mgr):
    with pytest.raises(ShapeError):
        mgr.add_terms(np.ones((1, 3)), ["x"])


def test_added_terms_are_queryable(mgr):
    from repro.core import project_query
    from repro.core.similarity import cosine_similarities

    n = mgr.tdm.n_documents
    rows = np.zeros((1, n))
    rows[0, :3] = 3.0  # tied to topic-0 documents (indices 0..9)
    mgr.add_terms(rows, ["brandnew"])
    qhat = project_query(mgr.model, "brandnew")
    cos = cosine_similarities(mgr.model, qhat)
    # The new term lands in topic 0's latent direction: its best match
    # is a topic-0 document and topic 0 dominates other topics on average.
    assert int(np.argmax(cos)) < 10
    assert cos[:10].mean() > cos[10:].mean() + 0.2


# --------------------------------------------------------------------- #
# report formatting
# --------------------------------------------------------------------- #
@pytest.fixture
def tiny():
    return TestCollection(
        documents=["apple pie", "banana bread", "apple cake"],
        queries=["apple", "banana"],
        relevance=[{0, 2}, {1}],
        name="tiny",
    )


def test_recall_precision_table(tiny):
    kw = KeywordRetrieval.from_texts(tiny.documents)
    run = run_engine(kw, tiny)
    table = recall_precision_table([run, run], tiny)
    lines = table.splitlines()
    assert lines[0].split() == ["recall", "keyword-vector", "keyword-vector"]
    assert len(lines) == 1 + 11 + 1  # header + levels + avg
    assert lines[-1].lstrip().startswith("avg")
    # perfect engine on this corpus: all entries 1.0
    assert "1.0000" in lines[1]


def test_recall_precision_table_validation(tiny):
    with pytest.raises(EvaluationError):
        recall_precision_table([], tiny)
    bad = RetrievalRun("x", "tiny", [[0, 1, 2]])
    with pytest.raises(EvaluationError):
        recall_precision_table([bad], tiny)


def test_comparison_table():
    table = comparison_table(
        {"lsi": 0.65, "keyword": 0.50}, baseline="keyword"
    )
    assert "+30.0%" in table
    assert "(baseline)" in table
    lines = table.splitlines()
    assert lines[1].startswith("lsi")  # sorted descending
    with pytest.raises(EvaluationError):
        comparison_table({"a": 1.0}, baseline="missing")
