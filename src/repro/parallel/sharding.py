"""Document sharding: split, search shards, merge top results exactly.

For collections past the single-model comfort zone the classic recipe is
one LSI model per shard plus an exact top-z merge — scores are cosines in
each shard's own space, so the merge is only exact when the shards share
one model; :func:`sharded_search` therefore shards the *scoring*, not the
decomposition, matching the paper's single-space TREC design.

Shards are contiguous row ranges of the cached
:class:`~repro.serving.index.DocumentIndex`, so per-shard scoring works
on zero-copy views of the precomputed ``V_k Σ_k`` and its norms; the
per-shard top-k uses the same argpartition selection as the flat path
and the merge preserves its tie order (lower document index first), so
sharded results are element-identical to a flat search.
:func:`sharded_batch_search` runs a whole query batch through the same
machinery: one GEMM per (shard × batch), shards optionally scored by a
thread pool, per-shard top-k heaps merged exactly per query.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.obs.tracing import span
from repro.parallel.pool import parallel_map
from repro.serving.index import DocumentIndex, get_document_index
from repro.serving.kernel import cosine_scores
from repro.serving.topk import topk_indices
from repro.util.timing import serving_counters

__all__ = [
    "shard_documents",
    "shard_bounds",
    "sharded_search",
    "sharded_batch_search",
    "merge_topk",
]


def shard_documents(n: int, shards: int) -> list[np.ndarray]:
    """Split document indices ``0..n-1`` into near-equal contiguous shards."""
    if shards < 1:
        raise ShapeError("shards must be >= 1")
    if n < 0:
        raise ShapeError("n must be non-negative")
    bounds = np.linspace(0, n, shards + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(shards)]


def shard_bounds(n: int, shards: int) -> list[tuple[int, int]]:
    """The same partition as :func:`shard_documents`, as (lo, hi) ranges.

    This is *the* canonical partition: the in-process sharded search,
    the multi-process cluster plan (:mod:`repro.cluster.plan`), and the
    parity harnesses all derive their row ranges from this one function,
    so a shard layout can never drift between layers.
    """
    if shards < 1:
        raise ShapeError("shards must be >= 1")
    if n < 0:
        raise ShapeError("n must be non-negative")
    bounds = np.linspace(0, n, shards + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(shards)]


#: Backwards-compatible private alias (pre-cluster callers).
_shard_bounds = shard_bounds


def merge_topk(
    per_shard: Sequence[Sequence[tuple[int, float]]], k: int
) -> list[tuple[int, float]]:
    """Exact top-k merge of per-shard ``(doc_index, score)`` lists.

    ``heapq.nlargest`` is stable, so with shards supplied in document
    order and each shard list in stable descending order, score ties
    resolve by ascending document index — the flat search's tie order.
    """
    if k < 1:
        raise ShapeError("k must be >= 1")
    merged = heapq.nlargest(
        k,
        (pair for shard in per_shard for pair in shard),
        key=lambda pair: pair[1],
    )
    return merged


def _shard_topk(
    index: DocumentIndex,
    Qs: np.ndarray,
    lo: int,
    hi: int,
    top: int,
) -> list[list[tuple[int, float]]]:
    """Per-query top-``top`` pairs within rows ``lo:hi`` of the index.

    Scores the shard with the shared GEMM kernel on zero-copy views of
    the cached coordinates and norms; indices are shifted to global.
    """
    if hi <= lo:
        return [[] for _ in range(Qs.shape[0])]
    S = cosine_scores(
        index.coords[lo:hi], Qs, norms=index.norms[lo:hi]
    )
    out = []
    for row in S:
        order = topk_indices(row, top)
        out.append([(int(lo + j), float(row[j])) for j in order])
    return out


def sharded_search(
    model: LSIModel,
    qhat: np.ndarray,
    *,
    shards: int = 4,
    top: int = 10,
    workers: int | None = None,
) -> list[tuple[int, float]]:
    """Score shards (optionally in parallel), merge exact top results.

    Identical results to a flat search; the point is the execution shape —
    per-shard scoring parallelizes and bounds memory.
    """
    with span("lsi.search.sharded", shards=shards, top=top):
        index = get_document_index(model, mode="scaled")
        Qs = index.prepare_queries(np.asarray(qhat, dtype=np.float64).ravel())
        parts = _shard_bounds(index.n_documents, shards)

        def search_shard(bounds: tuple[int, int]) -> list[tuple[int, float]]:
            lo, hi = bounds
            serving_counters.incr("shard_searches")
            with span("lsi.search.shard", lo=lo, hi=hi):
                return _shard_topk(index, Qs, lo, hi, top)[0]

        per_shard = parallel_map(search_shard, parts, workers=workers)
        with span("lsi.search.merge", shards=shards):
            return merge_topk(per_shard, top)


def sharded_batch_search(
    model: LSIModel,
    queries: Sequence[str] | np.ndarray,
    *,
    top: int = 10,
    shards: int = 4,
    workers: int | None = None,
) -> list[list[tuple[int, float]]]:
    """Top-``top`` lists for every query, scored shard-parallel.

    ``queries`` may be raw texts (projected with Eq. 6 first) or an
    already-projected ``(q, k)`` array.  Each shard scores the whole
    query batch with one GEMM over its slice of the document index —
    optionally across a thread pool (NumPy releases the GIL inside the
    GEMM) — then the per-shard top-k heaps are merged exactly per query.
    Results are element-identical to
    :func:`repro.parallel.batch.batch_search`.
    """
    if top < 1:
        raise ShapeError("top must be >= 1")
    with span("lsi.batch_search", shards=shards, top=top):
        if isinstance(queries, np.ndarray):
            Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        else:
            from repro.parallel.batch import batch_project_queries

            with span("lsi.project.batch", queries=len(queries)):
                Q = batch_project_queries(model, queries)
        index = get_document_index(model, mode="scaled")
        Qs = index.prepare_queries(Q)
        parts = _shard_bounds(index.n_documents, shards)

        def search_shard(
            bounds: tuple[int, int],
        ) -> list[list[tuple[int, float]]]:
            lo, hi = bounds
            serving_counters.incr("shard_searches")
            with span("lsi.search.shard", lo=lo, hi=hi):
                return _shard_topk(index, Qs, lo, hi, top)

        per_shard = parallel_map(search_shard, parts, workers=workers)
        with span("lsi.search.merge", shards=shards):
            return [
                merge_topk([shard[qi] for shard in per_shard], top)
                for qi in range(Qs.shape[0])
            ]
