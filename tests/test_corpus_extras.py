"""Additional corpus behaviours: bursty noise, update-topic parsing."""

import numpy as np
import pytest

from repro.corpus import SyntheticSpec, topic_collection
from repro.corpus.med import MED_TERMS, med_tdm_parsed
from repro.corpus.noise import _corrupt_word
from repro.util.rng import ensure_rng


def test_noise_burst_validation():
    with pytest.raises(ValueError):
        SyntheticSpec(noise_burst=0)


def test_noise_burst_creates_high_frequency_words():
    bursty = topic_collection(
        SyntheticSpec(n_topics=2, docs_per_topic=10, doc_length=60,
                      background_vocab=5, background_rate=0.3,
                      noise_burst=10),
        seed=1,
    )
    flat = topic_collection(
        SyntheticSpec(n_topics=2, docs_per_topic=10, doc_length=60,
                      background_vocab=5, background_rate=0.3,
                      noise_burst=1),
        seed=1,
    )

    def max_bg_count(col):
        best = 0
        for doc in col.documents:
            toks = doc.split()
            for w in set(toks):
                if w.startswith("bg"):
                    best = max(best, toks.count(w))
        return best

    assert max_bg_count(bursty) > max_bg_count(flat)


def test_doc_length_still_respected_with_bursts():
    col = topic_collection(
        SyntheticSpec(n_topics=2, docs_per_topic=5, doc_length=40,
                      background_vocab=5, background_rate=0.5,
                      noise_burst=12),
        seed=2,
    )
    assert all(len(d.split()) == 40 for d in col.documents)


def test_med_parsed_with_updates_extends_vocabulary():
    """Re-parsing over all 16 topics recomputes the keyword set (the
    recompute-from-scratch semantics of §3.4)."""
    base = med_tdm_parsed()
    ext = med_tdm_parsed(include_updates=True)
    assert ext.n_documents == 16
    assert ext.doc_ids[-2:] == ["M15", "M16"]
    # All original keywords survive (they still occur in >1 topic).
    for t in base.vocabulary.to_list():
        assert t in ext.vocabulary
    assert set(MED_TERMS) <= set(ext.vocabulary.to_list())


def test_corrupt_word_always_changes_input():
    rng = ensure_rng(0)
    for word in ("a", "ab", "retrieval", "x" * 30):
        for _ in range(20):
            assert _corrupt_word(word, rng) != word
