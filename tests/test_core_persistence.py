"""Tests for model save/load."""

import numpy as np
import pytest

from repro.core import load_model, save_model
from repro.errors import ModelStateError


def test_round_trip_bit_exact(med_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(med_model, path)
    loaded = load_model(path)
    assert np.array_equal(loaded.U, med_model.U)
    assert np.array_equal(loaded.s, med_model.s)
    assert np.array_equal(loaded.V, med_model.V)
    assert np.array_equal(loaded.global_weights, med_model.global_weights)
    assert loaded.vocabulary.to_list() == med_model.vocabulary.to_list()
    assert loaded.doc_ids == med_model.doc_ids
    assert loaded.scheme == med_model.scheme
    assert loaded.provenance == med_model.provenance


def test_loaded_model_is_usable(med_model, tmp_path):
    from repro.core import project_query, rank_documents

    path = tmp_path / "model.npz"
    save_model(med_model, path)
    loaded = load_model(path)
    q = "age blood abnormalities"
    assert rank_documents(loaded, project_query(loaded, q)) == rank_documents(
        med_model, project_query(med_model, q)
    )


def test_loaded_vocabulary_is_frozen(med_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(med_model, path)
    assert load_model(path).vocabulary.frozen


def test_reject_wrong_version(med_model, tmp_path):
    import json

    path = tmp_path / "model.npz"
    save_model(med_model, path)
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    meta = json.loads(bytes(arrays["meta"]).decode())
    meta["version"] = 999
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)
    with pytest.raises(ModelStateError):
        load_model(path)


def test_reject_corrupt_metadata(med_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(med_model, path)
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    arrays["meta"] = np.frombuffer(b"not json", dtype=np.uint8)
    np.savez(path, **arrays)
    with pytest.raises(ModelStateError):
        load_model(path)


def test_save_returns_actual_path_with_forced_suffix(med_model, tmp_path):
    # numpy appends .npz silently; save_model must report where the
    # bytes actually landed so `repro index model && repro query model`
    # round-trips.
    written = save_model(med_model, tmp_path / "model")
    assert written == tmp_path / "model.npz"
    assert written.is_file()
    assert load_model(written).n_documents == med_model.n_documents
    # An explicit .npz path is used verbatim.
    assert save_model(med_model, tmp_path / "m2.npz") == tmp_path / "m2.npz"


def test_save_is_atomic_no_temp_leftovers(med_model, tmp_path):
    path = save_model(med_model, tmp_path / "model.npz")
    assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]
    # Overwrite in place: a concurrent reader sees old-complete or
    # new-complete, never a partial file; afterwards still no debris.
    save_model(med_model, path)
    assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]


def test_save_failure_cleans_temp_file(med_model, tmp_path, monkeypatch):
    import repro.core.persistence as persistence

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(persistence.np, "savez", boom)
    with pytest.raises(OSError):
        save_model(med_model, tmp_path / "model.npz")
    assert list(tmp_path.iterdir()) == []  # no temp litter, no partial file


def test_load_truncated_file_raises_model_state_error(med_model, tmp_path):
    path = save_model(med_model, tmp_path / "model.npz")
    blob = path.read_bytes()
    for cut in (len(blob) // 2, 10):
        path.write_bytes(blob[:cut])
        with pytest.raises(ModelStateError, match="cannot load model database"):
            load_model(path)


def test_load_garbage_bytes_raises_model_state_error(tmp_path):
    path = tmp_path / "model.npz"
    path.write_bytes(b"\x00\x01garbage not a zip archive\xff" * 10)
    with pytest.raises(ModelStateError):
        load_model(path)


def test_load_missing_file_still_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_model(tmp_path / "absent.npz")
