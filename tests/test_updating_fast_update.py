"""Fast (Vecharynski-Saad) SVD-updating: exactness, parity, and drift.

Two regimes matter.  With sketch rank ``l >= rank(residual)`` the fast
update *is* the exact Eq. 10 update (the sketch spans the whole
residual), so parity is checked to rounding.  With ``l`` below the
batch width the update is an approximation; the hypothesis properties
pin down what the writer's ingest path actually relies on: factors stay
orthonormal (no §4.3 drift accumulation), the retrieved top-k agrees
with the exact update within tolerance on topic-structured corpora, and
the update is a bit-identical function of its inputs (WAL replay).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.med import UPDATE_COLUMNS, med_matrix
from repro.core import fit_lsi_from_tdm
from repro.errors import ShapeError
from repro.linalg import orthogonality_loss
from repro.sparse import from_dense
from repro.text import TermDocumentMatrix, Vocabulary
from repro.updating import fast_update_documents, update_documents

TOP = 5


@pytest.fixture(scope="module")
def med_model_k5():
    return fit_lsi_from_tdm(med_matrix(), 5)


def _retrieve(model, query_vec, top=TOP):
    """Ranked (doc position, score) pairs for one raw term-count query.

    Directions with numerically-zero singular values (rank-deficient
    corpora) are dropped from the Eq. 6 projection — both models under
    comparison share them, and 1/s there is meaningless noise.
    """
    live = model.s > 1e-10 * model.s[0]
    with np.errstate(divide="ignore", invalid="ignore"):
        qhat = np.where(live, (query_vec @ model.U) / model.s, 0.0)
    coords = model.V * np.where(live, model.s, 0.0)
    norms = np.linalg.norm(coords, axis=1) * np.linalg.norm(qhat)
    scores = coords @ qhat / np.where(norms == 0, 1.0, norms)
    order = np.argsort(-scores, kind="stable")[:top]
    return [(int(i), float(scores[i])) for i in order]


# --------------------------------------------------------------------- #
# the l >= p regime: coincides with the exact update
# --------------------------------------------------------------------- #
def test_full_rank_sketch_matches_exact_update(med_model_k5):
    exact = update_documents(
        med_model_k5, UPDATE_COLUMNS, ["M15", "M16"], exact=True
    )
    fast = fast_update_documents(
        med_model_k5, UPDATE_COLUMNS, ["M15", "M16"], rank=8
    )
    assert np.allclose(fast.s, exact.s, atol=1e-8)
    # Same subspaces: singular values of U_fastᵀ U_exact are all ~1.
    cos = np.linalg.svd(fast.U.T @ exact.U, compute_uv=False)
    assert np.allclose(cos, 1.0, atol=1e-8)
    assert fast.doc_ids[-2:] == ["M15", "M16"]
    assert fast.provenance == "fast-update"


def test_fast_update_is_deterministic(med_model_k5):
    a = fast_update_documents(
        med_model_k5, UPDATE_COLUMNS, ["M15", "M16"], rank=3, seed=7
    )
    b = fast_update_documents(
        med_model_k5, UPDATE_COLUMNS, ["M15", "M16"], rank=3, seed=7
    )
    assert np.array_equal(a.U, b.U)
    assert np.array_equal(a.s, b.s)
    assert np.array_equal(a.V, b.V)


def test_fast_update_rejects_bad_rank(med_model_k5):
    with pytest.raises(ShapeError):
        fast_update_documents(
            med_model_k5, UPDATE_COLUMNS, ["M15", "M16"], rank=0
        )


def test_fast_update_id_count_mismatch(med_model_k5):
    with pytest.raises(ShapeError):
        fast_update_documents(med_model_k5, UPDATE_COLUMNS, ["M15"])


# --------------------------------------------------------------------- #
# hypothesis: parity and bounded drift across batch sizes and k
# --------------------------------------------------------------------- #
@st.composite
def topic_scenario(draw):
    """A topic-structured corpus plus an update batch from the same
    topics — the regime sustained ingest lives in, where the residual
    is (numerically) low-rank and a small sketch must capture it."""
    seed = draw(st.integers(0, 2**16 - 1))
    t = draw(st.integers(2, 3))  # latent topics
    m = draw(st.integers(16, 24))  # terms
    n = draw(st.integers(10, 14))  # base documents
    p = draw(st.integers(1, 6))  # update batch width
    k = draw(st.integers(t + 1, 6))  # retained rank
    rng = np.random.default_rng(seed)
    topics = rng.integers(1, 6, size=(m, t)).astype(float)
    mix = rng.dirichlet(np.ones(t), size=n + p).T  # (t, n+p)
    counts = np.round(topics @ mix * 3.0)
    counts[0, :] += 1.0  # no empty documents
    base, batch = counts[:, :n], counts[:, n:]
    return base, batch, k, seed


def _model_of(base, k):
    m = base.shape[0]
    tdm = TermDocumentMatrix(
        from_dense(base).to_csc(),
        Vocabulary([f"w{i}" for i in range(m)]).freeze(),
        [f"D{j}" for j in range(base.shape[1])],
    )
    return fit_lsi_from_tdm(tdm, k, scheme="raw_none")


@given(topic_scenario())
@settings(max_examples=40, deadline=None)
def test_fast_update_orthonormal_and_full_sketch_parity(scenario):
    """Across batch sizes and k: factors orthonormal to rounding, and
    with the sketch covering the batch the update equals Eq. 10."""
    base, batch, k, seed = scenario
    model = _model_of(base, k)
    ids = [f"N{j}" for j in range(batch.shape[1])]
    fast = fast_update_documents(
        model, batch, ids, rank=batch.shape[1] + 2, seed=seed
    )
    assert orthogonality_loss(fast.U) < 1e-8
    assert orthogonality_loss(fast.V) < 1e-8
    exact = update_documents(model, batch, ids, exact=True)
    assert np.allclose(fast.s, exact.s, atol=1e-6 * max(1.0, exact.s[0]))
    cos = np.linalg.svd(fast.U.T @ exact.U, compute_uv=False)
    assert np.min(cos) > 1.0 - 1e-6


@given(topic_scenario(), st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_small_sketch_retrieval_parity_and_bounded_drift(scenario, top):
    """The writer's actual regime: sketch rank *below* the batch width.

    The subspace may rotate slightly, but retrieval must agree: the
    top-k sets overlap and the per-document cosine scores match the
    exact update within a loose tolerance; drift (departure from
    orthonormality) stays at rounding level no matter the batch/k.
    """
    base, batch, k, seed = scenario
    model = _model_of(base, k)
    ids = [f"N{j}" for j in range(batch.shape[1])]
    rank = max(1, batch.shape[1] - 1)
    fast = fast_update_documents(model, batch, ids, rank=rank, seed=seed)
    exact = update_documents(model, batch, ids, exact=True)
    assert orthogonality_loss(fast.U) < 1e-8
    assert orthogonality_loss(fast.V) < 1e-8
    # Interlacing: the projected spectrum never exceeds the exact one.
    assert np.all(fast.s <= exact.s * (1 + 1e-8) + 1e-10)
    query = np.asarray(base[:, 0], dtype=float)
    got = dict(_retrieve(fast, query, top=fast.n_documents))
    want = dict(_retrieve(exact, query, top=exact.n_documents))
    # Bounded drift, retrieval-side: every document's cosine against
    # the fast factors stays within tolerance of the exact update's.
    diffs = [abs(got[j] - want[j]) for j in want]
    assert max(diffs) < 0.15
    # Top-k parity within tolerance: each of the exact update's top-k
    # documents scores within tolerance of the fast top-k cutoff (rank
    # flips between near-ties are fine; real exclusions are not).
    fast_sorted = sorted(got.values(), reverse=True)
    cutoff = fast_sorted[min(top, len(fast_sorted)) - 1]
    for j, _ in _retrieve(exact, query, top=top):
        assert got[j] >= cutoff - 0.15
