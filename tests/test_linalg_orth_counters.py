"""Tests for orthogonality diagnostics and operation counters."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import (
    FlopCounter,
    OperatorCounter,
    orthogonality_loss,
    orthonormal_columns,
    reorthogonalize,
    spectral_norm,
)
from repro.sparse import from_dense


def test_spectral_norm_matches_numpy(rng):
    for shape in [(5, 5), (12, 7), (3, 20)]:
        A = rng.standard_normal(shape)
        assert spectral_norm(A) == pytest.approx(np.linalg.norm(A, 2), rel=1e-8)


def test_spectral_norm_zero_and_empty():
    assert spectral_norm(np.zeros((4, 4))) == 0.0
    assert spectral_norm(np.zeros((0, 3))) == 0.0


def test_spectral_norm_rejects_vector():
    with pytest.raises(ShapeError):
        spectral_norm(np.zeros(3))


def test_orthogonality_loss_zero_for_orthonormal(rng):
    Q = orthonormal_columns(20, 6, seed=1)
    assert orthogonality_loss(Q) < 1e-12


def test_orthogonality_loss_detects_drift(rng):
    Q = orthonormal_columns(20, 6, seed=1)
    Q2 = np.hstack([Q, (Q[:, :1] + Q[:, 1:2]) / np.sqrt(2)])
    assert orthogonality_loss(Q2) > 0.5


def test_orthogonality_loss_scaling():
    Q = 2.0 * orthonormal_columns(10, 3, seed=0)
    assert orthogonality_loss(Q) == pytest.approx(3.0, rel=1e-8)  # ‖4I−I‖₂


def test_reorthogonalize_repairs_basis(rng):
    Q = orthonormal_columns(15, 5, seed=2)
    noisy = Q + 0.01 * rng.standard_normal(Q.shape)
    fixed = reorthogonalize(noisy)
    assert orthogonality_loss(fixed) < 1e-12
    # Close to the original basis
    assert np.abs(np.abs(np.diag(fixed.T @ Q)) - 1).max() < 0.01


def test_reorthogonalize_handles_dependent_columns(rng):
    Q = np.zeros((8, 3))
    Q[:, 0] = rng.standard_normal(8)
    Q[:, 1] = 2 * Q[:, 0]
    Q[:, 2] = rng.standard_normal(8)
    fixed = reorthogonalize(Q)
    assert orthogonality_loss(fixed) < 1e-10


def test_flop_counter():
    fc = FlopCounter()
    fc.add("matvec", 100)
    fc.add("matvec", 50)
    fc.add("qr", 10)
    assert fc.total == 160
    assert "matvec" in fc.report() and "total" in fc.report()


def test_operator_counter_sparse(rng):
    d = rng.random((6, 4)) * (rng.random((6, 4)) < 0.5)
    a = from_dense(d).to_csr()
    oc = OperatorCounter(a)
    x = rng.standard_normal(4)
    y = oc.matvec(x)
    assert np.allclose(y, d @ x)
    z = oc.rmatvec(np.ones(6))
    assert np.allclose(z, d.T @ np.ones(6))
    assert oc.matvecs == 1 and oc.rmatvecs == 1
    assert oc.flops.total == 2 * (2 * a.nnz)
    oc.reset()
    assert oc.matvecs == 0 and oc.flops.total == 0


def test_operator_counter_dense(rng):
    d = rng.standard_normal((5, 3))
    oc = OperatorCounter(d)
    oc.matvec(np.ones(3))
    assert oc.flops.total == 2 * 5 * 3
