"""Precision/recall metrics.

Definitions follow the paper (§5.1): "Recall is the proportion of all
relevant documents in the collection that are retrieved by the system;
and precision is the proportion of relevant documents in the set returned
to the user."  Interpolated precision at a recall level uses the standard
TREC convention — the maximum precision at any rank achieving at least
that recall — which is what makes the 3-point and 11-point averages
well-defined even between achievable recall values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EvaluationError

__all__ = [
    "precision_at",
    "recall_at",
    "precision_recall_curve",
    "interpolated_precision_at",
    "three_point_average_precision",
    "eleven_point_average_precision",
    "average_precision",
]

#: The paper's summary metric levels (footnote 2 of §5.2).
THREE_POINT_LEVELS = (0.25, 0.50, 0.75)
ELEVEN_POINT_LEVELS = tuple(np.round(np.arange(0.0, 1.01, 0.1), 1))


def _validate(ranking: Sequence[int], relevant: set[int]) -> list[int]:
    ranking = list(ranking)
    if len(set(ranking)) != len(ranking):
        raise EvaluationError("ranking contains duplicate documents")
    return ranking


def precision_at(ranking: Sequence[int], relevant: set[int], cutoff: int) -> float:
    """Fraction of the top ``cutoff`` ranked documents that are relevant."""
    if cutoff <= 0:
        raise EvaluationError("cutoff must be positive")
    ranking = _validate(ranking, relevant)
    head = ranking[:cutoff]
    if not head:
        return 0.0
    return sum(1 for d in head if d in relevant) / len(head)


def recall_at(ranking: Sequence[int], relevant: set[int], cutoff: int) -> float:
    """Fraction of all relevant documents found in the top ``cutoff``."""
    if cutoff <= 0:
        raise EvaluationError("cutoff must be positive")
    if not relevant:
        return 0.0
    ranking = _validate(ranking, relevant)
    return sum(1 for d in ranking[:cutoff] if d in relevant) / len(relevant)


def precision_recall_curve(
    ranking: Sequence[int], relevant: set[int]
) -> list[tuple[float, float]]:
    """``(recall, precision)`` after each rank position."""
    ranking = _validate(ranking, relevant)
    if not relevant:
        return []
    curve = []
    hits = 0
    for rank, doc in enumerate(ranking, start=1):
        if doc in relevant:
            hits += 1
        curve.append((hits / len(relevant), hits / rank))
    return curve


def interpolated_precision_at(
    ranking: Sequence[int], relevant: set[int], level: float
) -> float:
    """Max precision over all ranks whose recall ≥ ``level``."""
    if not 0.0 <= level <= 1.0:
        raise EvaluationError(f"recall level {level} outside [0, 1]")
    curve = precision_recall_curve(ranking, relevant)
    candidates = [p for r, p in curve if r >= level - 1e-12]
    return max(candidates, default=0.0)


def three_point_average_precision(
    ranking: Sequence[int], relevant: set[int]
) -> float:
    """The paper's summary metric: mean interpolated precision at recall
    0.25, 0.50, 0.75."""
    return float(
        np.mean(
            [
                interpolated_precision_at(ranking, relevant, lvl)
                for lvl in THREE_POINT_LEVELS
            ]
        )
    )


def eleven_point_average_precision(
    ranking: Sequence[int], relevant: set[int]
) -> float:
    """Mean interpolated precision at recall 0.0, 0.1, ..., 1.0."""
    return float(
        np.mean(
            [
                interpolated_precision_at(ranking, relevant, lvl)
                for lvl in ELEVEN_POINT_LEVELS
            ]
        )
    )


def average_precision(ranking: Sequence[int], relevant: set[int]) -> float:
    """Non-interpolated AP: mean precision at each relevant document's
    rank (0 contribution for relevant documents never retrieved)."""
    ranking = _validate(ranking, relevant)
    if not relevant:
        return 0.0
    total = 0.0
    hits = 0
    for rank, doc in enumerate(ranking, start=1):
        if doc in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)
