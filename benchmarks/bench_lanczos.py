"""§2/§5.6 — the sparse truncated-SVD substrate itself.

Regenerates the computational story behind the TREC anecdote (A₂₀₀ of a
90,000×70,000 matrix on a 1995 workstation): Lanczos vs dense SVD
scaling on sparse term-document-like matrices, the reorthogonalization
ablation (the DESIGN.md design-choice callout), and backend agreement.
"""

import numpy as np
import pytest

from conftest import emit
from repro.linalg import lanczos_svd, truncated_svd
from repro.sparse import from_dense
from repro.util.rng import ensure_rng


def _sparse_tdm_like(m, n, nnz_per_col, seed=0):
    """Synthetic term-document-like matrix: sparse non-negative counts."""
    rng = ensure_rng(seed)
    dense = np.zeros((m, n))
    for j in range(n):
        rows = rng.choice(m, size=nnz_per_col, replace=False)
        dense[rows, j] = rng.poisson(2.0, size=nnz_per_col) + 1.0
    return dense, from_dense(dense).to_csc()


@pytest.mark.parametrize(
    "method", ["lanczos", "block-lanczos", "gkl", "dense"]
)
def test_backend_timing(benchmark, method):
    dense, sparse = _sparse_tdm_like(400, 300, 12, seed=1)
    k = 10

    # GKL has no adaptive convergence test; this spectrum's tail is a
    # tight cluster (σ ≈ 20-21), so give it a generous fixed step count.
    kwargs = {"max_iter": 150} if method == "gkl" else {}
    res = benchmark(truncated_svd, sparse, k, method=method, **kwargs)

    s_ref = np.linalg.svd(dense, compute_uv=False)[:k]
    assert np.allclose(res.s, s_ref, atol=1e-6)


def test_reorthogonalization_ablation(benchmark):
    """Full vs no reorthogonalization: 'none' is cheaper per step but
    produces ghost duplicates in the tail of the spectrum — why 'full'
    is the default."""
    dense, sparse = _sparse_tdm_like(500, 400, 10, seed=2)
    k = 8
    s_ref = np.linalg.svd(dense, compute_uv=False)

    U, s_full, V, stats_full = benchmark(
        lanczos_svd, sparse, k, seed=0
    )
    _, s_none, _, stats_none = lanczos_svd(
        sparse, k, reorth="none", max_iter=120, seed=0
    )

    err_full = np.abs(s_full - s_ref[:k]).max()
    err_none = np.abs(s_none - s_ref[:k]).max()
    rows = [
        f"reorth=full: iterations={stats_full.iterations} "
        f"max |σ−ref| = {err_full:.2e}",
        f"reorth=none: iterations={stats_none.iterations} "
        f"max |σ−ref| = {err_none:.2e}",
        "top singular value agrees in both; the tail only under full "
        "reorthogonalization",
    ]
    emit("Lanczos reorthogonalization ablation", rows)

    assert err_full < 1e-7
    assert s_none[0] == pytest.approx(s_ref[0], rel=1e-6)
    assert err_full <= err_none + 1e-12


def test_lanczos_scaling_with_k(benchmark):
    """Iterations grow roughly linearly in k (the cost model's I term)."""
    dense, sparse = _sparse_tdm_like(600, 500, 10, seed=3)

    def run(k):
        return lanczos_svd(sparse, k, seed=0)[3]

    stats_small = run(4)
    stats_big = benchmark(run, 16)

    rows = [
        f"k=4 : I={stats_small.iterations} matvecs={stats_small.matvecs}",
        f"k=16: I={stats_big.iterations} matvecs={stats_big.matvecs}",
    ]
    emit("Lanczos iteration scaling with k", rows)
    assert stats_big.iterations > stats_small.iterations
