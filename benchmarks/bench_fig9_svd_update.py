"""Figure 9 — SVD-updating with the B = (A_k | D) construction.

Regenerates: the updated space whose clustering matches Figure 8
(recomputing) rather than Figure 7 (folding-in), plus the §4.3
orthogonality contrast.  Times the document SVD-update.
"""

import numpy as np

from conftest import emit
from repro.corpus.med import UPDATE_COLUMNS
from repro.updating import (
    drift_report,
    fold_in_documents,
    recompute_with_documents,
    update_documents,
)


def _cos(model, a, b):
    c = model.doc_coordinates()
    va, vb = c[model.doc_index(a)], c[model.doc_index(b)]
    return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb)))


def test_fig9_svd_update(benchmark, med_tdm, med_model):
    updated = benchmark(
        update_documents, med_model, UPDATE_COLUMNS, ["M15", "M16"],
        exact=True,
    )
    folded = fold_in_documents(med_model, UPDATE_COLUMNS, ["M15", "M16"])
    recomputed = recompute_with_documents(
        med_tdm, UPDATE_COLUMNS, ["M15", "M16"], 2
    )

    rows = ["cos(M13, M15) by method:"]
    for name, m in (
        ("fold-in (Fig. 7)", folded),
        ("svd-update (Fig. 9)", updated),
        ("recompute (Fig. 8)", recomputed),
    ):
        rep = drift_report(m)
        rows.append(
            f"  {name:<20s} cluster={_cos(m, 'M13', 'M15'):.3f} "
            f"‖V̂ᵀV̂−I‖₂={rep.doc_loss:.2e}"
        )
    emit("Figure 9 — SVD-updating vs folding-in vs recomputing", rows)

    # "similar clustering of terms and book titles in Figures 9 and 8 ...
    # and the difference ... with Figure 7 (folding-in)"
    assert _cos(updated, "M13", "M15") > 0.9
    assert _cos(folded, "M13", "M15") < _cos(updated, "M13", "M15")
    # §4.3: updating maintains orthogonality; folding-in corrupts it.
    assert drift_report(updated).doc_loss < 1e-10
    assert drift_report(folded).doc_loss > 0.01
