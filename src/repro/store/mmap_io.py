"""Zero-copy model loading for read-only serving replicas.

A checkpoint stores each array as its own ``.npy`` file precisely so a
replica that only *serves* (no updating) can open the model with
``np.load(mmap_mode="r")``: the kernel maps the file pages, nothing is
read until a query touches a row, and open time is O(header-parse) per
array instead of O(bytes) — the difference between milliseconds and
seconds on a production-scale ``U``/``V`` (benchmarked in
``benchmarks/bench_store_open.py``).

The mapped arrays are read-only; :class:`~repro.core.model.LSIModel`
never mutates its arrays, so the model behaves identically to a fully
loaded one — queries fault in exactly the pages they score against.
Integrity checking is **opt-in** here (``verify=True`` re-reads every
byte, defeating the zero-copy point), matching the division of labor:
writers checksum, ``repro store verify`` audits, replicas map.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.model import LSIModel
from repro.errors import StoreCorruptError, StoreError
from repro.obs.metrics import registry
from repro.serving.ann import ANN_ARRAY_NAMES, CoarseQuantizer
from repro.store.checkpoint import (
    latest_valid_checkpoint,
    load_manifest,
    read_arrays,
)
from repro.text.vocabulary import Vocabulary
from repro.weighting.schemes import WeightingScheme

__all__ = [
    "open_checkpoint_model",
    "open_latest_model",
    "open_checkpoint_ann",
    "open_latest_ann",
]


def open_checkpoint_model(
    checkpoint_dir: pathlib.Path,
    *,
    mmap: bool = True,
    verify: bool = False,
) -> LSIModel:
    """The serving model of one checkpoint, memory-mapped by default.

    Reconstructs the *queryable* model (base factors + folded document
    rows): ``U``/``Σ``/global weights come from the consolidated base,
    ``V`` is the serving model's document matrix.  All arrays stay
    memory-mapped until something touches them.
    """
    checkpoint_dir = pathlib.Path(checkpoint_dir)
    manifest = load_manifest(checkpoint_dir)
    meta = manifest.get("meta", {})
    arrays = read_arrays(checkpoint_dir, mmap=mmap, verify=verify)
    scheme = meta["model_scheme"]
    return LSIModel(
        U=arrays["base_U"],
        s=arrays["base_s"],
        V=arrays["model_V"],
        vocabulary=Vocabulary(meta["vocabulary"]).freeze(),
        doc_ids=list(meta["doc_ids"]),
        scheme=WeightingScheme(scheme["local"], scheme["global"]),
        global_weights=arrays["base_gw"],
        provenance=meta["provenance"],
    )


def open_checkpoint_ann(
    checkpoint_dir: pathlib.Path,
    *,
    mmap: bool = True,
) -> CoarseQuantizer | None:
    """The checkpoint's coarse quantizer, memory-mapped — or ``None``.

    Format-1 checkpoints (and format-2 ones written with ANN training
    disabled) carry no quantizer; callers fall back to the exact scan,
    and the ``store.ann_missing`` gauge records the degradation so a
    fleet serving without its probe index is visible.  Only the three
    ANN array files are touched — the model arrays stay unopened.
    """
    checkpoint_dir = pathlib.Path(checkpoint_dir)
    manifest = load_manifest(checkpoint_dir)
    entries = manifest["arrays"]
    if not all(name in entries for name in ANN_ARRAY_NAMES):
        registry.set_gauge("store.ann_missing", 1)
        return None
    arrays = {}
    for name in ANN_ARRAY_NAMES:
        file = checkpoint_dir / entries[name]["file"]
        try:
            arrays[name] = np.load(file, mmap_mode="r" if mmap else None)
        except Exception as exc:
            raise StoreCorruptError(
                f"cannot load ANN array {name!r} from {checkpoint_dir}: {exc}"
            ) from exc
    seed = manifest.get("meta", {}).get("ann", {}).get("seed", 0)
    registry.set_gauge("store.ann_missing", 0)
    return CoarseQuantizer.from_arrays(arrays, seed=seed)


def open_latest_model(
    data_dir: pathlib.Path,
    *,
    mmap: bool = True,
) -> LSIModel:
    """Map the newest valid checkpoint under a store data directory.

    The read-only replica entry point: point it at the same
    ``--data-dir`` a writer maintains and serve.  Note this reflects the
    last *checkpoint*, not the WAL tail — replicas trade bounded
    staleness for never touching the writer's log.
    """
    from repro.store.durable import STORE_LAYOUT

    checkpoints = pathlib.Path(data_dir) / STORE_LAYOUT["checkpoints"]
    info, problems = latest_valid_checkpoint(checkpoints)
    if info is None:
        detail = f" ({'; '.join(problems)})" if problems else ""
        raise StoreError(f"no valid checkpoint under {checkpoints}{detail}")
    return open_checkpoint_model(info.path, mmap=mmap)


def open_latest_ann(
    data_dir: pathlib.Path,
    *,
    mmap: bool = True,
) -> CoarseQuantizer | None:
    """Map the newest valid checkpoint's quantizer (``None`` when absent
    — including when no checkpoint exists at all)."""
    from repro.store.durable import STORE_LAYOUT

    checkpoints = pathlib.Path(data_dir) / STORE_LAYOUT["checkpoints"]
    info, _problems = latest_valid_checkpoint(checkpoints)
    if info is None:
        registry.set_gauge("store.ann_missing", 1)
        return None
    return open_checkpoint_ann(info.path, mmap=mmap)
