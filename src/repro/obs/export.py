"""Snapshot export: JSON blobs, the CLI state file, and text rendering.

Three consumers share this module:

* **benchmarks** call :func:`snapshot_blob` (via
  ``benchmarks/obs_export.py``) to dump a ``BENCH_obs_*.json``-style
  metrics blob next to their printed report — the perf-trajectory
  record CI uploads as an artifact;
* **the CLI** persists a merged snapshot across invocations in a state
  file (``.repro_obs.json`` by default, overridable with
  ``REPRO_OBS_STATE``), so ``repro index`` + ``repro query`` followed
  by ``repro stats`` shows the whole run even though each command is
  its own process;
* **humans** get :func:`format_snapshot` / :func:`format_spans`, the
  fixed-width rendering ``python -m repro stats`` prints.

Merging is well-defined per metric kind: counters add, gauges take the
newer value, histograms sum bucket counts (same boundaries) so the
percentiles of the union are recoverable.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.obs.metrics import Histogram, registry
from repro.obs.tracing import recent_spans

__all__ = [
    "SCHEMA",
    "default_state_path",
    "snapshot_blob",
    "merge_snapshots",
    "write_json",
    "dump_state",
    "load_state",
    "format_snapshot",
    "format_spans",
]

SCHEMA = "repro-obs/1"

#: Environment variable overriding the CLI observability state file.
STATE_ENV = "REPRO_OBS_STATE"

#: Spans retained in the persisted state file.
STATE_SPAN_LIMIT = 200


def default_state_path() -> pathlib.Path:
    """The CLI state file: ``$REPRO_OBS_STATE`` or ``./.repro_obs.json``."""
    return pathlib.Path(os.environ.get(STATE_ENV, ".repro_obs.json"))


def snapshot_blob(name: str | None = None, extra: dict | None = None) -> dict:
    """A self-describing JSON blob of the registry plus recent spans."""
    blob = {
        "schema": SCHEMA,
        "metrics": registry.snapshot(),
        "spans": [s.to_dict() for s in recent_spans()],
    }
    if name is not None:
        blob["name"] = name
    if extra:
        blob["extra"] = extra
    return blob


def merge_snapshots(base: dict, update: dict) -> dict:
    """Merge two ``registry.snapshot()`` dicts (see module doc for rules)."""
    counters = dict(base.get("counters", {}))
    for key, value in update.get("counters", {}).items():
        counters[key] = counters.get(key, 0) + value
    gauges = dict(base.get("gauges", {}))
    gauges.update(update.get("gauges", {}))
    histograms = {
        name: dict(h) for name, h in base.get("histograms", {}).items()
    }
    for name, data in update.get("histograms", {}).items():
        if name in histograms and (
            histograms[name].get("boundaries") == data.get("boundaries")
        ):
            merged = Histogram.from_dict(histograms[name])
            merged.merge(Histogram.from_dict(data))
            histograms[name] = merged.to_dict()
        else:
            histograms[name] = dict(data)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def write_json(path, blob: dict) -> pathlib.Path:
    """Write a blob as pretty JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(blob, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_state(path=None) -> dict | None:
    """The persisted CLI state blob, or None when absent/unreadable."""
    path = pathlib.Path(path) if path is not None else default_state_path()
    try:
        blob = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return blob if isinstance(blob, dict) else None

def dump_state(path=None) -> pathlib.Path:
    """Merge the live registry + spans into the persisted state file."""
    path = pathlib.Path(path) if path is not None else default_state_path()
    existing = load_state(path) or {"schema": SCHEMA, "metrics": {}, "spans": []}
    merged = {
        "schema": SCHEMA,
        "metrics": merge_snapshots(
            existing.get("metrics", {}), registry.snapshot()
        ),
        "spans": (
            list(existing.get("spans", []))
            + [s.to_dict() for s in recent_spans()]
        )[-STATE_SPAN_LIMIT:],
    }
    return write_json(path, merged)


# --------------------------------------------------------------------- #
# text rendering (the `repro stats` output)
# --------------------------------------------------------------------- #
def _fmt_seconds(t: float) -> str:
    if t < 1e-6:
        return f"{t * 1e9:.1f}ns"
    if t < 1e-3:
        return f"{t * 1e6:.1f}us"
    if t < 1.0:
        return f"{t * 1e3:.1f}ms"
    return f"{t:.3f}s"


def format_snapshot(snapshot: dict) -> str:
    """Fixed-width report of one metrics snapshot (counters → gauges →
    histograms), empty sections omitted."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<40s} {counters[name]:>12d}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<40s} {gauges[name]:>16.6g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append(
            "histograms"
            f"{'':<32s} {'count':>8s} {'total':>10s}"
            f" {'p50':>9s} {'p95':>9s} {'p99':>9s}"
        )
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<40s} {h['count']:>8d} {_fmt_seconds(h['sum']):>10s}"
                f" {_fmt_seconds(h['p50']):>9s} {_fmt_seconds(h['p95']):>9s}"
                f" {_fmt_seconds(h['p99']):>9s}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def format_spans(spans: list[dict], limit: int = 40) -> str:
    """Newest ``limit`` span records, indented by nesting depth."""
    if not spans:
        return "(no spans captured)"
    lines = [f"recent spans (newest last, showing {min(limit, len(spans))})"]
    for record in spans[-limit:]:
        indent = "  " * (int(record.get("depth", 0)) + 1)
        attrs = record.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(
            f"{indent}{record['name']}"
            f"  [{_fmt_seconds(float(record['duration']))}]"
            + (f"  {attr_text}" if attr_text else "")
        )
    return "\n".join(lines)
