"""The scatter-gather router: fan out, hedge stragglers, merge exactly.

One :class:`ClusterRouter` holds a persistent, id-multiplexed frame
connection to each live shard worker.  A query batch is scaled once
(``Q Σ``, mirroring :meth:`DocumentIndex.prepare_queries`), scattered to
every shard, and the per-shard stable top-k lists are merged per query
with :func:`repro.parallel.sharding.merge_topk` — the same function the
in-process sharded search uses, over byte-identical inputs, so with all
workers live the cluster's answer is element-identical to
``sharded_batch_search``: indices, scores, tie order.

Failure is degradation, not an error.  A worker that misses the
per-worker deadline leaves its rows out of this response (the heartbeat
loop, not a slow query, decides eviction); a worker whose connection
dies is detached and reported to the supervisor.  Either way the caller
gets HTTP-200-shaped data with ``partial=True`` and the missing ``[lo,
hi)`` ranges named, because a search over 3/4 of the collection is far
more useful than a 500.  Tail latency is hedged: once a worker's
latency histogram has enough samples, a second one-shot request is sent
to the same worker after the configured quantile of its own history,
and the first answer wins.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.cluster.plan import ShardPlan
from repro.cluster.wire import BUMP_OP, read_frame, write_frame
from repro.errors import ClusterError, DeadlineExceededError, EpochSkewError
from repro.obs.metrics import registry
from repro.obs.trace_context import TraceContext, current_trace
from repro.obs.tracing import span
from repro.parallel.sharding import merge_topk

__all__ = ["RouterConfig", "WorkerChannel", "ClusterResult", "ClusterRouter"]


@dataclass(frozen=True)
class RouterConfig:
    """Tunables for the scatter-gather path."""

    #: Per-worker deadline for one scatter RPC, milliseconds.
    worker_timeout_ms: float = 2000.0
    #: Quantile of the worker's own latency history after which a
    #: straggling request is hedged with a duplicate.
    hedge_quantile: float = 0.95
    #: Observations a worker's histogram needs before hedging arms —
    #: below this the quantile estimate is noise.
    hedge_min_samples: int = 20
    #: Never hedge earlier than this (milliseconds), however fast the
    #: history says the worker usually is.
    hedge_floor_ms: float = 1.0
    #: Master switch for hedging.
    hedge: bool = True
    #: Deadline for establishing a worker connection, seconds.
    connect_timeout: float = 5.0


class WorkerChannel:
    """One persistent frame connection with id-multiplexed requests.

    Concurrent :meth:`call`\\ s tag their frames with monotonically
    increasing ids; a single reader task resolves each response to its
    waiting future, so one TCP connection carries a whole batch fan-out
    plus interleaved heartbeats.  When the peer hangs up, every pending
    call fails with :class:`ConnectionError` at once.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: float = 5.0
    ) -> "WorkerChannel":
        """Open a channel to a worker (ConnectionError on refusal)."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        except (asyncio.TimeoutError, OSError) as exc:
            raise ConnectionError(
                f"cannot connect to worker at {host}:{port}: {exc!r}"
            )
        return cls(reader, writer)

    @property
    def closed(self) -> bool:
        """True once the connection is gone (calls will fail fast)."""
        return self._closed

    async def _read_loop(self) -> None:
        error: BaseException
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    error = ConnectionError("worker closed the connection")
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError, ClusterError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionError("channel closed")
        self._closed = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionError(f"worker connection lost: {error!r}")
                )
        self._pending.clear()

    async def call(self, message: dict) -> dict:
        """Send one request frame and await its matching response."""
        if self._closed:
            raise ConnectionError("channel is closed")
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        try:
            await write_frame(self._writer, {**message, "id": request_id})
            return await future
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionError(f"worker connection lost: {exc!r}")
        finally:
            self._pending.pop(request_id, None)

    async def close(self) -> None:
        """Tear down the connection and fail any in-flight calls."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


@dataclass
class ClusterResult:
    """One scatter-gather answer, possibly degraded.

    ``results[qi]`` is the merged ``(doc_index, score)`` list for query
    ``qi`` over every shard that answered.  ``partial`` is True when any
    shard did not, and ``missing`` lists those shards' ``(lo, hi)`` row
    ranges so the caller knows exactly which documents went unscored.
    ``shard_timings`` (shard id → RPC milliseconds), ``hedged``, and
    ``deadline_missed`` are the slow-query evidence the slow log dumps.
    """

    results: list[list[tuple[int, float]]]
    partial: bool = False
    missing: list[tuple[int, int]] = field(default_factory=list)
    epoch: int = 0
    shard_timings: dict[int, float] = field(default_factory=dict)
    hedged: list[int] = field(default_factory=list)
    deadline_missed: list[int] = field(default_factory=list)


class ClusterRouter:
    """Scatter queries over the plan's shards, gather and merge exactly."""

    def __init__(
        self,
        plan: ShardPlan,
        config: RouterConfig | None = None,
        *,
        on_worker_dead: Callable[[int], None] | None = None,
    ):
        self.plan = plan
        self.config = config or RouterConfig()
        self.on_worker_dead = on_worker_dead
        self._channels: dict[int, WorkerChannel] = {}
        self._endpoints: dict[int, tuple[str, int]] = {}
        registry.set_gauge("cluster.workers_live", 0)

    def update_plan(self, plan: ShardPlan) -> None:
        """Atomically publish a new epoch's plan for *future* scatters.

        One reference assignment: a :meth:`search_batch` already running
        snapshotted the old plan at entry and finishes against it (the
        workers retain that epoch's state through the bump window), so
        nothing in flight is disturbed.
        """
        self.plan = plan
        registry.set_gauge("cluster.plan_epoch", plan.epoch)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def live_shards(self) -> list[int]:
        """Shard ids with an open channel, ascending."""
        return sorted(
            sid for sid, ch in self._channels.items() if not ch.closed
        )

    async def attach(self, shard_id: int, host: str, port: int) -> None:
        """Connect (or reconnect) the channel for ``shard_id``."""
        self.plan.shard(shard_id)  # validates the id
        old = self._channels.pop(shard_id, None)
        if old is not None:
            await old.close()
        self._endpoints[shard_id] = (host, port)
        self._channels[shard_id] = await WorkerChannel.connect(
            host, port, timeout=self.config.connect_timeout
        )
        registry.set_gauge("cluster.workers_live", len(self.live_shards()))

    async def detach(self, shard_id: int) -> None:
        """Drop the channel for ``shard_id`` (worker dead or evicted)."""
        channel = self._channels.pop(shard_id, None)
        if channel is not None:
            await channel.close()
        registry.set_gauge("cluster.workers_live", len(self.live_shards()))

    async def close(self) -> None:
        """Drop every channel."""
        for sid in list(self._channels):
            await self.detach(sid)

    async def ping(self, shard_id: int, *, timeout: float = 1.0) -> bool:
        """One heartbeat: True iff the worker answers in time."""
        channel = self._channels.get(shard_id)
        if channel is None or channel.closed:
            return False
        try:
            response = await asyncio.wait_for(
                channel.call({"op": "ping"}), timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            return False
        return response.get("ok") is True

    # ------------------------------------------------------------------ #
    # one worker RPC, with hedging
    # ------------------------------------------------------------------ #
    def _hedge_delay(self, shard_id: int) -> float | None:
        """Seconds after which to hedge ``shard_id``, or None (not yet)."""
        if not self.config.hedge:
            return None
        hist = registry.histogram(f"cluster.worker.{shard_id}.rpc_seconds")
        if hist is None or hist.count < self.config.hedge_min_samples:
            return None
        return max(
            hist.quantile(self.config.hedge_quantile),
            self.config.hedge_floor_ms / 1000.0,
        )

    async def _one_shot(self, shard_id: int, message: dict) -> dict:
        """A hedge request on a fresh connection (closed after one use)."""
        host, port = self._endpoints[shard_id]
        channel = await WorkerChannel.connect(
            host, port, timeout=self.config.connect_timeout
        )
        try:
            return await channel.call(message)
        finally:
            await channel.close()

    async def _call_worker(
        self, shard_id: int, message: dict, timeout: float
    ) -> tuple[dict, float, bool]:
        """One scatter RPC: primary call, optional hedge, hard deadline.

        Returns ``(response, latency_seconds, hedged)`` so the gather
        side can assemble per-shard slow-query evidence.
        """
        channel = self._channels.get(shard_id)
        if channel is None or channel.closed:
            raise ConnectionError(f"no live channel for shard {shard_id}")
        start = time.perf_counter()
        hedge_at = self._hedge_delay(shard_id)
        hedged = False
        tasks = [asyncio.ensure_future(channel.call(message))]
        errors: list[BaseException] = []
        try:
            while tasks:
                elapsed = time.perf_counter() - start
                remaining = timeout - elapsed
                if remaining <= 0:
                    break
                slice_ = remaining
                if hedge_at is not None and not hedged:
                    slice_ = min(slice_, max(0.0, hedge_at - elapsed))
                done, _pending = await asyncio.wait(
                    tasks, timeout=slice_,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    if (
                        hedge_at is not None
                        and not hedged
                        and time.perf_counter() - start >= hedge_at
                    ):
                        hedged = True
                        registry.inc("cluster.hedges_total")
                        tasks.append(
                            asyncio.ensure_future(
                                self._one_shot(shard_id, message)
                            )
                        )
                    continue
                for task in done:
                    tasks.remove(task)
                    exc = task.exception()
                    if exc is not None:
                        errors.append(exc)
                        continue
                    response = task.result()
                    latency = time.perf_counter() - start
                    registry.observe(
                        f"cluster.worker.{shard_id}.rpc_seconds", latency
                    )
                    registry.observe("cluster.rpc_seconds", latency)
                    if "error" in response:
                        if response.get("stale_epoch"):
                            raise EpochSkewError(
                                f"shard {shard_id} no longer holds the "
                                f"requested epoch: {response['error']}"
                            )
                        raise ClusterError(
                            f"shard {shard_id} rejected the request: "
                            f"{response['error']}"
                        )
                    return response, latency, hedged
            if errors:
                for exc in errors:
                    if isinstance(exc, (ConnectionError, OSError)):
                        raise exc
                raise errors[0]
            raise DeadlineExceededError(
                f"shard {shard_id} missed its {timeout * 1000:.0f} ms "
                "deadline"
            )
        finally:
            for task in tasks:
                task.cancel()

    # ------------------------------------------------------------------ #
    # the scatter-gather search
    # ------------------------------------------------------------------ #
    async def search_batch(
        self,
        Qs: np.ndarray | Sequence[Sequence[float]],
        *,
        top: int | None = 10,
        threshold: float | None = None,
        timeout_ms: float | None = None,
        probes: int | None = None,
        exact: bool = False,
        plan: ShardPlan | None = None,
    ) -> ClusterResult:
        """Scatter a scaled ``(q, k)`` batch, merge exact per-query top-k.

        ``Qs`` must already be comparison-space scaled (``q̂ Σ``) — the
        service layer does this once, exactly as
        ``DocumentIndex.prepare_queries`` would.  ``probes`` asks every
        worker for the probe-bounded scan (each clips the same global
        candidate cells to its own rows); workers without a quantizer
        answer exactly, which only ever *adds* candidates to the merge.

        ``plan`` pins the epoch to scatter against (the service passes
        its request-entry handle's plan); default is the router's
        current plan, snapshotted once here — a concurrent
        :meth:`update_plan` never splits one request across epochs.
        """
        plan = plan if plan is not None else self.plan
        Q = np.atleast_2d(np.asarray(Qs, dtype=np.float64))
        n_queries = Q.shape[0]
        timeout = (
            timeout_ms if timeout_ms is not None
            else self.config.worker_timeout_ms
        ) / 1000.0
        registry.inc("cluster.requests_total")
        message: dict = {
            "op": "score",
            "queries": Q.tolist(),
            "epoch": plan.epoch,
        }
        if top is not None:
            message["top"] = int(top)
        if threshold is not None:
            message["threshold"] = float(threshold)
        if probes is not None and not exact:
            message["probes"] = int(probes)
        if exact:
            message["exact"] = True

        missing_sids: set[int] = set()
        responses: dict[int, dict] = {}
        shard_timings: dict[int, float] = {}
        hedged_sids: list[int] = []
        missed_sids: list[int] = []
        with span(
            "cluster.scatter",
            shards=plan.n_shards,
            queries=n_queries,
        ) as scatter:
            # Carry the request's trace identity in every score frame,
            # parented under this scatter span, so worker-process spans
            # reassemble into one cluster-wide trace.
            ctx = current_trace()
            if ctx is not None:
                message["trace"] = TraceContext(
                    ctx.trace_id,
                    scatter.span_id or ctx.parent_span_id,
                ).to_wire()
            calls: dict[int, asyncio.Future] = {}
            for shard in plan.shards:
                sid = shard.shard_id
                channel = self._channels.get(sid)
                if channel is None or channel.closed:
                    missing_sids.add(sid)
                    continue
                calls[sid] = asyncio.ensure_future(
                    self._call_worker(sid, message, timeout)
                )
            if calls:
                await asyncio.wait(calls.values())
            dead: list[int] = []
            for sid, task in calls.items():
                exc = task.exception()
                if exc is None:
                    response, latency, was_hedged = task.result()
                    responses[sid] = response
                    shard_timings[sid] = latency * 1000.0
                    if was_hedged:
                        hedged_sids.append(sid)
                elif isinstance(exc, DeadlineExceededError):
                    # Slow is not dead: leave eviction to the heartbeat.
                    registry.inc("cluster.deadline_misses_total")
                    missing_sids.add(sid)
                    missed_sids.append(sid)
                elif isinstance(exc, EpochSkewError):
                    # The worker ran ahead (or restarted onto a newer
                    # checkpoint) — its rows are missing from *this
                    # epoch's* answer, but the worker is healthy.
                    registry.inc("cluster.epoch_skew_total")
                    missing_sids.add(sid)
                elif isinstance(exc, (ConnectionError, OSError)):
                    missing_sids.add(sid)
                    dead.append(sid)
                else:
                    raise exc
            for sid in dead:
                await self.detach(sid)
                if self.on_worker_dead is not None:
                    self.on_worker_dead(sid)
            # Flag degraded shards on the scatter span itself, so the
            # assembled trace names hedges and deadline misses inline.
            if hedged_sids:
                scatter.set_attr("hedged", sorted(hedged_sids))
            if missed_sids:
                scatter.set_attr("deadline_missed", sorted(missed_sids))
            if missing_sids:
                scatter.set_attr("missing_shards", sorted(missing_sids))

        for sid, response in responses.items():
            if response.get("shard") != sid:
                raise ClusterError(
                    f"shard {sid} answered as shard {response.get('shard')}"
                )
            if int(response.get("epoch", -1)) != plan.epoch:
                raise ClusterError(
                    f"shard {sid} serves epoch {response.get('epoch')} but "
                    f"the plan covers epoch {plan.epoch}"
                )

        k = int(top) if top is not None else max(1, plan.n_documents)
        answered = sorted(responses)  # ascending sid == document order
        results: list[list[tuple[int, float]]] = []
        with span("cluster.merge", shards=len(answered), queries=n_queries):
            for qi in range(n_queries):
                per_shard = [
                    [
                        (int(i), float(s))
                        for i, s in responses[sid]["results"][qi]
                    ]
                    for sid in answered
                ]
                results.append(merge_topk(per_shard, k))

        partial = bool(missing_sids)
        if partial:
            registry.inc("cluster.partial_responses")
        missing = [
            plan.shard(sid).as_pair() for sid in sorted(missing_sids)
        ]
        return ClusterResult(
            results=results,
            partial=partial,
            missing=[(lo, hi) for lo, hi in missing],
            epoch=plan.epoch,
            shard_timings=shard_timings,
            hedged=sorted(hedged_sids),
            deadline_missed=sorted(missed_sids),
        )

    # ------------------------------------------------------------------ #
    # observability scatter ops (stats / trace)
    # ------------------------------------------------------------------ #
    async def _scatter_op(
        self, message: dict, *, timeout: float
    ) -> dict[int, dict]:
        """Broadcast one op to every live worker; best-effort gather.

        A worker that fails or times out is simply absent from the
        result — observability must never take the serving path down.
        """
        sids = self.live_shards()

        async def _one(sid: int) -> dict | None:
            channel = self._channels.get(sid)
            if channel is None or channel.closed:
                return None
            try:
                return await asyncio.wait_for(
                    channel.call(dict(message)), timeout
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                return None

        answers = await asyncio.gather(*(_one(sid) for sid in sids))
        return {
            sid: response
            for sid, response in zip(sids, answers)
            if isinstance(response, dict) and "error" not in response
        }

    async def broadcast_bump(
        self, plan: ShardPlan, *, timeout: float = 30.0
    ) -> dict[int, int]:
        """Tell every live worker to remap onto ``plan``'s checkpoint.

        Returns ``{shard_id: acked_epoch}`` for workers that remapped
        (or already held the epoch).  A worker that fails, rejects, or
        times out is simply absent — the primary writer re-bumps
        laggards on its next poll, and a restart spawns onto the new
        plan anyway.  The timeout is generous: a remap is O(header)
        mmap opens plus one shard's coordinate materialization.
        """
        responses = await self._scatter_op(
            {"op": BUMP_OP, "plan": plan.to_json()}, timeout=timeout
        )
        acked = {
            sid: int(response["epoch"])
            for sid, response in responses.items()
            if response.get("ok") and response.get("epoch") == plan.epoch
        }
        registry.inc("cluster.bump_broadcasts_total")
        if len(acked) < len(self.live_shards()):
            registry.inc("cluster.bump_laggards_total")
        return acked

    async def fetch_stats(self, *, timeout: float = 2.0) -> dict[int, dict]:
        """Every live worker's registry snapshot, keyed by shard id."""
        responses = await self._scatter_op({"op": "stats"}, timeout=timeout)
        return {
            sid: response["snapshot"]
            for sid, response in responses.items()
            if isinstance(response.get("snapshot"), dict)
        }

    async def fetch_trace(
        self, trace_id: str, *, timeout: float = 2.0
    ) -> dict[int, list[dict]]:
        """Every live worker's spans for ``trace_id``, keyed by shard id."""
        responses = await self._scatter_op(
            {"op": "trace", "trace_id": trace_id}, timeout=timeout
        )
        return {
            sid: [s for s in response.get("spans", []) if isinstance(s, dict)]
            for sid, response in responses.items()
            if isinstance(response.get("spans"), list)
        }
