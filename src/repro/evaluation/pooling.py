"""Pooled relevance judgments (the paper's footnote 1).

"For large collections a pooling method is used.  Relevance judgements
are made on the pooled set of the top-ranked documents returned by
several different retrieval systems for the same set of queries."

:func:`pooled_judgments` simulates the TREC protocol against a collection
with known ground truth: the pooled judgment set for each query is the
intersection of the true relevance with the union of the engines' top-z
returns — documents outside every pool are (possibly wrongly) treated as
non-relevant, which is exactly the bias the footnote warns new systems
about.  The TREC-like bench uses this to show the pooling effect.
"""

from __future__ import annotations

from typing import Sequence

from repro.corpus.collection import TestCollection
from repro.errors import EvaluationError
from repro.evaluation.harness import RetrievalRun

__all__ = ["pooled_judgments"]


def pooled_judgments(
    runs: Sequence[RetrievalRun],
    collection: TestCollection,
    *,
    depth: int = 50,
) -> TestCollection:
    """Build a pooled-judgment variant of ``collection``.

    Parameters
    ----------
    runs:
        Runs from the systems contributing to the pool.
    depth:
        Pool depth — top-``depth`` documents of each run enter the pool.
    """
    if depth < 1:
        raise EvaluationError("pool depth must be >= 1")
    if not runs:
        raise EvaluationError("pooling needs at least one run")
    for run in runs:
        if run.n_queries != collection.n_queries:
            raise EvaluationError(
                f"run {run.engine_name} has {run.n_queries} queries for a "
                f"{collection.n_queries}-query collection"
            )
    pooled: list[set[int]] = []
    for q in range(collection.n_queries):
        pool: set[int] = set()
        for run in runs:
            pool.update(run.rankings[q][:depth])
        pooled.append(collection.relevant(q) & pool)
    return TestCollection(
        documents=list(collection.documents),
        queries=list(collection.queries),
        relevance=pooled,
        doc_ids=list(collection.doc_ids),
        query_ids=list(collection.query_ids),
        name=f"{collection.name}-pooled{depth}",
    )
