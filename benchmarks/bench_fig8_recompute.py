"""Figure 8 — recomputing the SVD of the reconstructed 18×16 matrix.

Regenerates: the re-derived latent structure in which the new topics
reshape the space — the {M13, M14, M15} rats cluster forms, and
"blood pressure and behavioral pressure" separate.  Times the recompute.
"""

import numpy as np

from conftest import emit
from repro.corpus.med import UPDATE_COLUMNS
from repro.updating import recompute_with_documents


def _cos(model, a, b):
    c = model.doc_coordinates()
    va, vb = c[model.doc_index(a)], c[model.doc_index(b)]
    return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb)))


def test_fig8_recompute(benchmark, med_tdm, med_model):
    model = benchmark(
        recompute_with_documents, med_tdm, UPDATE_COLUMNS,
        ["M15", "M16"], 2,
    )

    rows = [
        f"original σ: ({med_model.s[0]:.4f}, {med_model.s[1]:.4f})",
        f"recomputed σ: ({model.s[0]:.4f}, {model.s[1]:.4f})",
        f"cos(M13, M15) = {_cos(model, 'M13', 'M15'):.3f}",
        f"cos(M14, M15) = {_cos(model, 'M14', 'M15'):.3f}",
        f"cos(M15, M3)  = {_cos(model, 'M15', 'M3'):.3f}",
    ]
    emit("Figure 8 — recomputed SVD of the 18×16 matrix", rows)

    # "the topics (old and new) related to the use of rats form a
    # well-defined cluster"
    assert _cos(model, "M13", "M15") > 0.95
    assert _cos(model, "M14", "M15") > 0.95
    # and the new topics redefined the structure (σ changed).
    assert not np.allclose(model.s, med_model.s, atol=1e-3)
