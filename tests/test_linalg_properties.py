"""Property-based tests for the linear-algebra substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg import householder_qr, jacobi_svd, tridiag_eigh, truncated_svd


def _finite_matrix(min_m=1, max_m=10, min_n=1, max_n=10):
    return st.integers(min_m, max_m).flatmap(
        lambda m: st.integers(min_n, max_n).flatmap(
            lambda n: arrays(
                np.float64,
                (m, n),
                elements=st.floats(-100, 100, allow_nan=False, width=64),
            )
        )
    )


@given(_finite_matrix())
@settings(max_examples=50, deadline=None)
def test_jacobi_reconstruction_property(A):
    U, s, V = jacobi_svd(A)
    assert np.allclose((U * s) @ V.T, A, atol=1e-7)
    r = min(A.shape)
    assert np.allclose(U.T @ U, np.eye(r), atol=1e-7)
    assert np.allclose(V.T @ V, np.eye(r), atol=1e-7)
    assert np.all(s >= -1e-12)
    assert np.all(np.diff(s) <= 1e-9)


@given(_finite_matrix())
@settings(max_examples=50, deadline=None)
def test_jacobi_norm_identities(A):
    """Theorem 2.1: ‖A‖_F² = Σσᵢ² and ‖A‖₂ = σ₁."""
    _, s, _ = jacobi_svd(A)
    np.testing.assert_allclose(np.sum(s**2), np.sum(A**2), atol=1e-5)
    if s.size:
        np.testing.assert_allclose(s[0], np.linalg.norm(A, 2), atol=1e-7)


@given(_finite_matrix(min_m=2, max_m=12, min_n=1, max_n=6))
@settings(max_examples=50, deadline=None)
def test_qr_property(A):
    if A.shape[0] < A.shape[1]:
        A = A.T
    Q, R = householder_qr(A)
    assert np.allclose(Q @ R, A, atol=1e-7)
    assert np.allclose(Q.T @ Q, np.eye(A.shape[1]), atol=1e-8)


@given(
    st.integers(1, 12).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, n, elements=st.floats(-50, 50, allow_nan=False, width=64)),
            arrays(
                np.float64,
                max(n - 1, 0),
                elements=st.floats(-50, 50, allow_nan=False, width=64),
            ),
        )
    )
)
@settings(max_examples=50, deadline=None)
def test_tridiag_property(pair):
    d, e = pair
    n = d.size
    T = np.diag(d) + (np.diag(e, 1) + np.diag(e, -1) if n > 1 else 0.0)
    w, Z = tridiag_eigh(d, e)
    assert np.allclose(T @ Z, Z * w, atol=1e-6)
    assert np.allclose(sorted(w), np.linalg.eigvalsh(T), atol=1e-6)


@given(_finite_matrix(min_m=2, max_m=10, min_n=2, max_n=10), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_eckart_young_property(A, k):
    """Truncation is never better than the optimum (Theorem 2.2)."""
    k = min(k, min(A.shape))
    res = truncated_svd(A, k, method="dense")
    resid = np.linalg.norm(A - res.reconstruct())
    s_all = np.linalg.svd(A, compute_uv=False)
    optimum = np.sqrt(np.sum(s_all[k:] ** 2))
    assert resid <= optimum + 1e-6
    assert resid >= optimum - 1e-6
