"""The one cosine-scoring kernel every query path routes through.

Single-query scoring (``repro.core.similarity.cosine_similarities``),
batched scoring (``repro.parallel.batch.batch_cosine_scores``) and the
sharded serving path all used to carry their own copy of the same
norm/mask/divide arithmetic.  This module is the single implementation:
a dense GEMM (GEMV for the q=1 case) against the document coordinate
rows, followed by one vectorized normalization with zero-norm masking.

The kernel is deliberately pure NumPy with no model imports, so every
layer — including :mod:`repro.core` — can depend on it without cycles.
"""

from __future__ import annotations

import numpy as np

from repro.util.timing import serving_counters

__all__ = ["row_norms", "cosine_scores"]


def row_norms(M: np.ndarray) -> np.ndarray:
    """Euclidean norm of every row of ``M`` — the cached denominator.

    Uses ``sum(M*M, axis=1)`` rather than an einsum reduction so the
    values are bit-identical to the historical per-query computation
    (pairwise summation), keeping cached-norm rankings byte-identical.
    """
    return np.sqrt(np.sum(M * M, axis=1))


def cosine_scores(
    M: np.ndarray,
    Q: np.ndarray,
    *,
    norms: np.ndarray | None = None,
) -> np.ndarray:
    """Cosine of every row of ``Q`` with every row of ``M``: ``(q, n)``.

    Parameters
    ----------
    M:
        ``(n, k)`` document coordinates (already in the comparison space,
        i.e. scaled by ``Σ_k`` for the default mode).
    Q:
        ``(q, k)`` query coordinates, or a single ``(k,)`` vector.
    norms:
        Precomputed ``row_norms(M)``; recomputed when omitted.  Passing
        the cached norms is what makes the serving fast path fast.

    Rows of ``M`` (or of ``Q``) with zero norm score 0 against
    everything, matching the historical per-query implementation.  The
    q=1 case is computed with a GEMV on the same coordinates, so the
    single-query path is literally the one-row case of the batch path.
    """
    Q2 = np.atleast_2d(np.asarray(Q, dtype=np.float64))
    if Q2.shape[0] == 1:
        # BLAS ddot, exactly as the historical single-query path, so the
        # q=1 scores are bit-identical to the seed implementation.
        qn = np.array([np.sqrt(np.dot(Q2[0], Q2[0]))])
    else:
        qn = row_norms(Q2)
    if norms is None:
        norms = row_norms(M)
    with serving_counters.time("gemm_seconds"):
        if Q2.shape[0] == 1:
            raw = (M @ Q2[0])[None, :]
        else:
            raw = Q2 @ M.T
    denom = qn[:, None] * norms[None, :]
    if (qn > 0).all() and (norms > 0).all():
        # Common case (no zero-norm rows): plain broadcast division.
        # Each element is the same IEEE divide the masked path performs,
        # so the scores are bit-identical — but without the three (q, n)
        # temporaries boolean fancy-indexing allocates, which dominate
        # the batched call once the GEMM itself is fast.
        return raw / denom
    out = np.zeros_like(raw)
    ok = denom > 0
    out[ok] = raw[ok] / denom[ok]
    return out
