"""Unified truncated-SVD front-end.

:func:`truncated_svd` is the single entry point the LSI layers call.  It
selects among four from-scratch backends:

``"dense"``
    One-sided Jacobi on the densified matrix — exact, used for small
    problems and as the inner solve of the SVD-updating phases.
``"lanczos"``
    Gram-side symmetric Lanczos (:mod:`repro.linalg.lanczos`) — the
    SVDPACKC-style sparse path the paper describes.
``"gkl"``
    Golub-Kahan-Lanczos bidiagonalization followed by a dense SVD of the
    small bidiagonal — the non-squaring alternative.
``"block-lanczos"``
    Block Lanczos (the SVDPACKC ``bls2`` analogue) — resolves clustered
    spectra a block at a time; see :mod:`repro.linalg.block_lanczos`.
``"auto"``
    Dense below :data:`DENSE_CUTOFF` on the small side (or when ``k`` is a
    large fraction of it), Lanczos otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.linalg.bidiag import bidiagonal_dense, golub_kahan_bidiag
from repro.linalg.counters import OperatorCounter
from repro.linalg.jacobi_svd import jacobi_svd
from repro.linalg.block_lanczos import block_lanczos_svd
from repro.linalg.lanczos import LanczosStats, lanczos_svd
from repro.obs.bridge import record_lanczos_stats, record_operator

__all__ = ["SVDResult", "truncated_svd", "DENSE_CUTOFF"]

#: Small-side size below which the dense Jacobi backend is used by "auto".
DENSE_CUTOFF = 220


@dataclass
class SVDResult:
    """A truncated singular value decomposition ``A ≈ U diag(s) Vᵀ``.

    Attributes
    ----------
    U:
        ``(m, k)`` left singular vectors (term vectors in LSI).
    s:
        ``(k,)`` singular values, descending.
    V:
        ``(n, k)`` right singular vectors (document vectors in LSI).
    stats:
        Lanczos instrumentation when an iterative backend produced this
        result, else ``None``.
    """

    U: np.ndarray
    s: np.ndarray
    V: np.ndarray
    stats: Optional[LanczosStats] = None
    method: str = "dense"

    @property
    def k(self) -> int:
        """Number of retained factors."""
        return int(self.s.size)

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the matrix this decomposition approximates."""
        return (self.U.shape[0], self.V.shape[0])

    @property
    def Vt(self) -> np.ndarray:
        """``Vᵀ`` as an ``(k, n)`` array (convenience view)."""
        return self.V.T

    def truncate(self, k: int) -> "SVDResult":
        """Drop trailing factors, returning a rank-``k`` decomposition."""
        if not 1 <= k <= self.k:
            raise ShapeError(f"cannot truncate rank-{self.k} SVD to k={k}")
        return SVDResult(
            self.U[:, :k].copy(), self.s[:k].copy(), self.V[:, :k].copy(),
            stats=self.stats, method=self.method,
        )

    def reconstruct(self) -> np.ndarray:
        """Materialize the dense rank-``k`` approximation ``A_k``."""
        return (self.U * self.s) @ self.V.T

    def frobenius(self) -> float:
        """``‖A_k‖_F = sqrt(Σ σᵢ²)`` (Theorem 2.1, norm property)."""
        return float(np.sqrt(np.dot(self.s, self.s)))


def _densify(a) -> np.ndarray:
    if isinstance(a, np.ndarray):
        return a
    if hasattr(a, "to_dense"):
        return a.to_dense()
    return np.asarray(a, dtype=np.float64)


def truncated_svd(
    a,
    k: int,
    *,
    method: str = "auto",
    tol: float = 1e-10,
    max_iter: int | None = None,
    seed=0,
) -> SVDResult:
    """Compute the ``k`` largest singular triplets of ``a``.

    See module docstring for backend semantics.  ``a`` may be dense or any
    :mod:`repro.sparse` format.
    """
    m, n = a.shape
    dim = min(m, n)
    if not 1 <= k <= dim:
        raise ShapeError(f"k={k} must be in [1, min(m, n)={dim}]")

    if method == "auto":
        method = "dense" if (dim <= DENSE_CUTOFF or k > 0.5 * dim) else "lanczos"

    if method == "dense":
        U, s, V = jacobi_svd(_densify(a))
        return SVDResult(U[:, :k].copy(), s[:k].copy(), V[:, :k].copy(), method="dense")

    if method == "lanczos":
        # Count every A·x / Aᵀ·y the solver issues, then publish the
        # measured matvec/flop totals as registry gauges so the §4 cost
        # model (Table 7) is queryable from `python -m repro stats`.
        op = OperatorCounter(a)
        U, s, V, stats = lanczos_svd(
            op, k, tol=tol, max_iter=max_iter, seed=seed
        )
        record_lanczos_stats(stats)
        record_operator(op)
        return SVDResult(U, s, V, stats=stats, method="lanczos")

    if method == "block-lanczos":
        U, s, V, stats = block_lanczos_svd(a, k, seed=seed, tol=tol)
        record_lanczos_stats(stats)
        return SVDResult(U, s, V, stats=stats, method="block-lanczos")

    if method == "gkl":
        steps = dim if max_iter is None else min(max_iter, dim)
        if max_iter is None:
            steps = min(dim, max(2 * k + 16, 32))
        Ub, Vb, alphas, betas = golub_kahan_bidiag(a, steps, seed=seed)
        B = bidiagonal_dense(alphas, betas)
        P, s, Q = jacobi_svd(B)
        kk = min(k, s.size)
        return SVDResult(
            Ub @ P[:, :kk], s[:kk].copy(), Vb @ Q[:, :kk], method="gkl"
        )

    raise ValueError(f"unknown SVD method {method!r}")
