"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class.  The hierarchy
mirrors the subsystem layout: shape/format problems raised by the sparse
substrate, convergence problems raised by the iterative linear algebra,
and corpus/model misuse raised by the LSI layers.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "SparseFormatError",
    "ConvergenceError",
    "VocabularyError",
    "ModelStateError",
    "EvaluationError",
    "ServerOverloadError",
    "DeadlineExceededError",
    "StoreError",
    "StoreCorruptError",
    "StoreLockedError",
    "ClusterError",
    "ClusterConfigError",
    "ClusterReadOnlyError",
    "EpochSkewError",
    "UnknownTenantError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Attributes
    ----------
    request_id:
        The server-assigned request id (the ``X-Request-Id`` response
        header) when the error crossed the HTTP client boundary, else
        ``None``.  Lets callers correlate a rejection or timeout with
        the server's trace and slow-query log.
    """

    request_id: str | None = None


class ShapeError(ReproError, ValueError):
    """Operand dimensions are incompatible for the requested operation."""


class SparseFormatError(ReproError, ValueError):
    """A sparse matrix's internal arrays violate the format invariants."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative method (e.g. Lanczos) failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    achieved:
        Number of singular triplets (or eigenpairs) that *did* converge.
    """

    def __init__(self, message: str, *, iterations: int = 0, achieved: int = 0):
        super().__init__(message)
        self.iterations = iterations
        self.achieved = achieved


class VocabularyError(ReproError, KeyError):
    """A term is missing from, or duplicated in, a vocabulary."""


class ModelStateError(ReproError, RuntimeError):
    """An LSI model was used before fitting or after invalidation."""


class EvaluationError(ReproError, ValueError):
    """Inconsistent relevance judgments or malformed retrieval runs."""


class ServerOverloadError(ReproError, RuntimeError):
    """The query service refused a request to keep its queue bounded.

    Attributes
    ----------
    reason:
        Why admission failed: ``"queue_full"`` (the bounded request
        queue is at capacity — HTTP 429) or ``"draining"`` (the server
        is shutting down and no longer accepts work — HTTP 503).
    """

    def __init__(self, message: str, *, reason: str = "queue_full"):
        super().__init__(message)
        self.reason = reason


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's deadline expired before the service could answer it."""


class StoreError(ReproError, RuntimeError):
    """The durable index store cannot satisfy a request.

    Raised for structural problems that are not data corruption: no
    checkpoint to recover from, a data directory that is not a store,
    an attempt to reuse a closed store.
    """


class StoreCorruptError(StoreError):
    """On-disk store state failed an integrity check.

    A checkpoint array whose CRC32 does not match its manifest entry, a
    write-ahead-log record whose checksum fails mid-log, or a recovered
    index whose document count disagrees with the manifest all raise
    this — the store refuses to serve silently wrong data.
    """


class ClusterError(ReproError, RuntimeError):
    """A multi-process cluster operation failed structurally.

    Raised for protocol violations (malformed or oversized wire frames,
    a shard plan that does not match the checkpoint it claims to cover),
    and for scatter-gather calls against a shard with no live worker.
    Worker *death* during a query is deliberately not an exception on
    the serving path — the router degrades to a ``partial=true``
    response instead (see :mod:`repro.cluster.router`).
    """


class ClusterConfigError(ClusterError, ValueError):
    """A cluster was asked for an impossible topology.

    Raised before any process is spawned or store touched: a replication
    factor below 1, or one that exceeds the worker budget (every range
    needs R *distinct* workers), or mutually exclusive serving modes
    (``--writable`` with ``--standby``).  Deliberately a ``ValueError``
    subclass and part of the :class:`ReproError` hierarchy so the CLI
    prints it as a one-line ``error:`` instead of a stack trace.
    """


class ClusterReadOnlyError(ClusterError):
    """A write was sent to a cluster with no primary writer.

    ``repro cluster serve`` without ``--writable`` pins one sealed
    checkpoint and refuses ``/add`` — writes must go through a writable
    cluster (``--writable``) or the store's single-process writer
    (``repro serve --data-dir``).  Maps to HTTP 403 so clients can
    distinguish "this tier does not take writes" from a malformed
    request (400) or an overloaded one (429); carries ``request_id``
    (see :class:`ReproError`) when raised client-side.
    """


class EpochSkewError(ClusterError):
    """A shard worker no longer holds the epoch a request asked for.

    During an epoch bump every worker keeps the superseded epoch's
    scoring state alive until the *next* bump, so in-flight queries
    finish against the snapshot they started on.  A worker that fell
    more than one epoch behind the request (or restarted straight onto
    a newer checkpoint) answers with a skew marker; the router degrades
    that shard to a ``partial=True`` miss instead of failing the query.
    """


class UnknownTenantError(ReproError, LookupError):
    """A request named a tenant the index registry does not host.

    Multi-tenant serving resolves every request through the
    :class:`~repro.tenancy.registry.IndexRegistry`; a tenant id that was
    never registered (or an ambiguous request that names no tenant on a
    multi-tenant server) is a routing failure, not an overload or a
    malformed body.  Maps to HTTP 404 with ``unknown_tenant: true`` in
    the payload so clients can distinguish it from an unknown route;
    carries ``request_id`` (see :class:`ReproError`) when raised
    client-side, plus the offending id on ``tenant``.
    """

    def __init__(self, message: str, *, tenant: str | None = None):
        super().__init__(message)
        self.tenant = tenant


class StoreLockedError(StoreError):
    """Another process holds the store's single-writer lock.

    Every read-write open of a data directory (``serve --data-dir``,
    ``store compact``) takes an exclusive lock; a second writer would
    truncate the live WAL tail or swap files under the owner, so it is
    refused instead.  Read-only surfaces (``store inspect``, ``store
    verify``, ``stats --data-dir``) never take the lock.
    """
