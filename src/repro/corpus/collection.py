"""Test-collection container.

The paper evaluates retrieval the way the IR community does (§5.1): "These
collections consist of a set of documents, a set of user queries, and
relevance judgements."  :class:`TestCollection` is that triple, with
helpers for splitting (filtering experiments train a profile on one part
and stream the rest) and for corruption experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import EvaluationError

__all__ = ["TestCollection"]


@dataclass
class TestCollection:
    """Documents + queries + exhaustive relevance judgments.

    (The IR community's term of art — not a pytest test class; the
    ``__test__`` marker below keeps collectors away.)

    Attributes
    ----------
    documents:
        Raw document texts; index in this list is the document id used in
        the judgments.
    queries:
        Raw query texts.
    relevance:
        ``relevance[q]`` is the set of document indices relevant to query
        ``q``.  Judgments are exhaustive (every unlisted pair is judged
        non-relevant) as the paper's footnote 1 assumes for small
        collections.
    doc_ids, query_ids:
        Optional human-readable labels.
    name:
        Collection label used in benchmark output.
    """

    documents: list[str]
    queries: list[str]
    relevance: list[set[int]]
    doc_ids: list[str] = field(default_factory=list)
    query_ids: list[str] = field(default_factory=list)
    name: str = "collection"

    #: Tell pytest this is data, not a test case.
    __test__ = False

    def __post_init__(self):
        if len(self.relevance) != len(self.queries):
            raise EvaluationError(
                f"{len(self.relevance)} judgment sets for "
                f"{len(self.queries)} queries"
            )
        n = len(self.documents)
        for q, rel in enumerate(self.relevance):
            bad = [d for d in rel if not 0 <= d < n]
            if bad:
                raise EvaluationError(
                    f"query {q} judges nonexistent documents {bad}"
                )
        if not self.doc_ids:
            self.doc_ids = [f"D{j + 1}" for j in range(n)]
        if not self.query_ids:
            self.query_ids = [f"Q{j + 1}" for j in range(len(self.queries))]
        if len(self.doc_ids) != n or len(self.query_ids) != len(self.queries):
            raise EvaluationError("label lists do not match corpus sizes")

    # ------------------------------------------------------------------ #
    @property
    def n_documents(self) -> int:
        """Number of documents in the collection."""
        return len(self.documents)

    @property
    def n_queries(self) -> int:
        """Number of queries with judgments."""
        return len(self.queries)

    def relevant(self, query_idx: int) -> set[int]:
        """Relevant document indices for query ``query_idx``."""
        return self.relevance[query_idx]

    def split_documents(
        self, first: int
    ) -> tuple["TestCollection", list[str], list[set[int]]]:
        """Split into (collection over the first ``first`` docs, rest docs,
        per-query relevance of the rest re-indexed from 0).

        Used by the TREC-style sample-then-fold pipeline and the filtering
        experiments: fit the LSI space on the head, stream/fold the tail.
        """
        if not 0 < first <= self.n_documents:
            raise EvaluationError(
                f"split point {first} outside 1..{self.n_documents}"
            )
        head_rel = [
            {d for d in rel if d < first} for rel in self.relevance
        ]
        head = TestCollection(
            documents=self.documents[:first],
            queries=list(self.queries),
            relevance=head_rel,
            doc_ids=self.doc_ids[:first],
            query_ids=list(self.query_ids),
            name=f"{self.name}[:{first}]",
        )
        tail_docs = self.documents[first:]
        tail_rel = [
            {d - first for d in rel if d >= first} for rel in self.relevance
        ]
        return head, tail_docs, tail_rel

    def subset_queries(self, indices: Iterable[int]) -> "TestCollection":
        """Collection restricted to the given queries (documents shared)."""
        idx = list(indices)
        return TestCollection(
            documents=list(self.documents),
            queries=[self.queries[i] for i in idx],
            relevance=[set(self.relevance[i]) for i in idx],
            doc_ids=list(self.doc_ids),
            query_ids=[self.query_ids[i] for i in idx],
            name=self.name,
        )

    def with_documents(
        self, documents: Sequence[str], *, name: str | None = None
    ) -> "TestCollection":
        """Same queries/judgments over replacement document texts.

        The OCR experiment corrupts document surfaces while relevance — a
        property of the underlying content — is unchanged.
        """
        documents = list(documents)
        if len(documents) != self.n_documents:
            raise EvaluationError(
                "replacement document list has different length"
            )
        return TestCollection(
            documents=documents,
            queries=list(self.queries),
            relevance=[set(r) for r in self.relevance],
            doc_ids=list(self.doc_ids),
            query_ids=list(self.query_ids),
            name=name or f"{self.name}-replaced",
        )
