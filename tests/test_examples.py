"""Regression tests: every example script runs cleanly end to end.

Examples are user-facing documentation; a broken one is a broken
deliverable.  Each runs in-process (runpy) with stdout captured, so
failures surface the real traceback.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3  # the deliverable floor
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch, tmp_path):
    # quickstart writes to /tmp; keep examples honest but redirect cwd.
    monkeypatch.chdir(tmp_path)
    path = EXAMPLES_DIR / script
    saved_argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
