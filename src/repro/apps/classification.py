"""LSI features for statistical classification (§5.7, Related Work).

"Hull and Yang and Chute have used LSI/SVD as the first step in
conjunction with statistical classification ...  Using the LSI-derived
dimensions effectively reduces the number of predictor variables for
classification.  Wu et al. also used LSI/SVD to reduce the training set
dimension for a neural network protein classification system."

This module implements that recipe with the simplest credible classifier
— nearest class centroid, with an optional Fisher-style per-dimension
discriminant weighting — operating either on raw term vectors (the
high-dimensional baseline) or on LSI document vectors (the reduced
predictors).  The companion bench shows the LSI features matching or
beating the raw features with an order of magnitude fewer dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.errors import ShapeError

__all__ = ["CentroidClassifier", "lsi_features", "classification_accuracy"]


def lsi_features(model: LSIModel, texts: Sequence[str]) -> np.ndarray:
    """Project texts into the LSI space: ``(len(texts), k)`` features.

    Documents already in the model could use their V rows directly; this
    helper projects arbitrary (including unseen) texts via Eq. 6 so
    train/test treatment is identical.
    """
    return np.stack([project_query(model, t) * model.s for t in texts])


@dataclass
class CentroidClassifier:
    """Nearest-centroid classifier with cosine similarity.

    Attributes
    ----------
    centroids:
        ``(c, d)`` class centroids.
    classes:
        Class labels, parallel to the centroid rows.
    discriminant:
        Optional per-dimension weights (between-class variance over
        within-class variance) applied before the cosine — the
        poor-man's discriminant analysis of the Hull/Yang-Chute recipe.
    """

    centroids: np.ndarray
    classes: list
    discriminant: np.ndarray | None = None

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        labels: Sequence,
        *,
        discriminant: bool = False,
    ) -> "CentroidClassifier":
        """Fit centroids (and optional discriminant weights) to labelled
        feature rows."""
        X = np.asarray(features, dtype=np.float64)
        if X.ndim != 2:
            raise ShapeError("features must be 2-D")
        labels = list(labels)
        if len(labels) != X.shape[0]:
            raise ShapeError(
                f"{len(labels)} labels for {X.shape[0]} feature rows"
            )
        classes = sorted(set(labels))
        if len(classes) < 2:
            raise ShapeError("need at least two classes")
        centroids = np.stack([
            X[[l == c for l in labels]].mean(axis=0) for c in classes
        ])
        weights = None
        if discriminant:
            overall = X.mean(axis=0)
            between = np.zeros(X.shape[1])
            within = np.zeros(X.shape[1])
            for ci, c in enumerate(classes):
                rows = X[[l == c for l in labels]]
                between += rows.shape[0] * (centroids[ci] - overall) ** 2
                within += ((rows - centroids[ci]) ** 2).sum(axis=0)
            weights = np.sqrt(between / np.maximum(within, 1e-12))
            norm = weights.max()
            if norm > 0:
                weights = weights / norm
        return cls(centroids, classes, weights)

    def predict(self, features: np.ndarray):
        """Label each feature row with its nearest-centroid class."""
        X = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if X.shape[1] != self.centroids.shape[1]:
            raise ShapeError(
                f"features have {X.shape[1]} dims, centroids "
                f"{self.centroids.shape[1]}"
            )
        C = self.centroids
        if self.discriminant is not None:
            X = X * self.discriminant
            C = C * self.discriminant
        xn = np.sqrt(np.sum(X**2, axis=1, keepdims=True))
        cn = np.sqrt(np.sum(C**2, axis=1, keepdims=True))
        denom = xn @ cn.T
        cos = np.zeros((X.shape[0], C.shape[0]))
        ok = denom > 0
        raw = X @ C.T
        cos[ok] = raw[ok] / denom[ok]
        return [self.classes[int(i)] for i in np.argmax(cos, axis=1)]


def classification_accuracy(
    classifier: CentroidClassifier,
    features: np.ndarray,
    labels: Sequence,
) -> float:
    """Fraction of correct predictions."""
    labels = list(labels)
    if not labels:
        return 0.0
    preds = classifier.predict(features)
    return sum(p == t for p, t in zip(preds, labels)) / len(labels)
