"""Model fitting: texts → matrix → weighting → truncated SVD → model."""

from __future__ import annotations

from typing import Sequence

from repro.core.model import LSIModel
from repro.errors import ShapeError
from repro.linalg.svd import truncated_svd
from repro.obs.tracing import span
from repro.text.parser import ParsingRules
from repro.text.tdm import TermDocumentMatrix, build_tdm
from repro.weighting.schemes import WeightingScheme, apply_weighting

__all__ = ["fit_lsi", "fit_lsi_from_tdm"]


def fit_lsi(
    texts: Sequence[str],
    k: int,
    *,
    scheme: WeightingScheme | str | None = None,
    rules: ParsingRules | None = None,
    doc_ids: Sequence[str] | None = None,
    method: str = "auto",
    seed=0,
) -> LSIModel:
    """Fit an LSI model directly from raw document texts.

    Parameters
    ----------
    texts:
        The document collection.
    k:
        Number of factors to retain.  The paper's guidance (§5.2): large
        collections peak around 70-100 (they use 200-300 for TREC); for
        the 14-document example, 2 suffices to illustrate the structure.
    scheme:
        Weighting scheme (``WeightingScheme`` or a name like
        ``"log×entropy"``); default raw × none.
    rules:
        Keyword-selection rules; default indexes every non-stopword.
    method:
        SVD backend (see :func:`repro.linalg.svd.truncated_svd`).
    """
    with span("lsi.fit", docs=len(texts), k=k):
        with span("lsi.fit.parse", docs=len(texts)):
            tdm = build_tdm(texts, rules, doc_ids=doc_ids)
        return fit_lsi_from_tdm(tdm, k, scheme=scheme, method=method, seed=seed)


def fit_lsi_from_tdm(
    tdm: TermDocumentMatrix,
    k: int,
    *,
    scheme: WeightingScheme | str | None = None,
    method: str = "auto",
    seed=0,
) -> LSIModel:
    """Fit an LSI model from a pre-built term-document matrix."""
    if isinstance(scheme, str):
        scheme = WeightingScheme.from_name(scheme)
    scheme = scheme or WeightingScheme()
    m, n = tdm.shape
    if not 1 <= k <= min(m, n):
        raise ShapeError(
            f"k={k} must be in [1, min(m, n)={min(m, n)}] for shape {tdm.shape}"
        )
    with span("lsi.fit.weight", scheme=scheme.name):
        weighted = apply_weighting(tdm.matrix, scheme)
    with span("lsi.fit.svd", method=method, k=k, m=m, n=n):
        svd = truncated_svd(weighted.matrix, k, method=method, seed=seed)
    with span("lsi.fit.finalize", k=k):
        vocab = tdm.vocabulary
        if not vocab.frozen:
            vocab.freeze()
        return LSIModel(
            U=svd.U,
            s=svd.s,
            V=svd.V,
            vocabulary=vocab,
            doc_ids=list(tdm.doc_ids),
            scheme=scheme,
            global_weights=weighted.global_weights,
            provenance="svd",
        )
