"""repro — a reproduction of Berry, Dumais & Letsche (SC '95),
"Computational Methods for Intelligent Information Access".

The package implements Latent Semantic Indexing end to end, from scratch:

* a sparse-matrix substrate (:mod:`repro.sparse`) and the numerical linear
  algebra LSI runs on (:mod:`repro.linalg`) — Lanczos truncated SVD,
  Golub-Kahan bidiagonalization, one-sided Jacobi, Householder QR;
* text processing (:mod:`repro.text`) and term weighting
  (:mod:`repro.weighting`), including the paper's log×entropy scheme;
* the LSI core (:mod:`repro.core`): model fitting, Eq. 6 queries, cosine
  retrieval;
* updating (:mod:`repro.updating`): folding-in, the three SVD-updating
  phases of §4, orthogonality diagnostics, and the Table 7 cost model;
* retrieval engines and evaluation (:mod:`repro.retrieval`,
  :mod:`repro.evaluation`), corpora and generators (:mod:`repro.corpus`),
  the §5.4 applications (:mod:`repro.apps`), and parallel helpers
  (:mod:`repro.parallel`);
* the query-serving fast path (:mod:`repro.serving`): the cached
  per-model document index, the unified GEMM scoring kernel, and
  argpartition top-k selection behind every search entry point.

Quick start::

    from repro import fit_lsi, project_query, rank_documents

    model = fit_lsi(documents, k=100, scheme="log_entropy")
    qhat = project_query(model, "age of children with blood abnormalities")
    for doc_id, cosine in rank_documents(model, qhat)[:10]:
        print(doc_id, cosine)
"""

from repro.core import (
    LSIModel,
    fit_lsi,
    fit_lsi_from_tdm,
    load_model,
    nearest_terms,
    project_query,
    rank_documents,
    retrieve,
    save_model,
)
from repro.errors import (
    ConvergenceError,
    DeadlineExceededError,
    EvaluationError,
    ModelStateError,
    ReproError,
    ServerOverloadError,
    ShapeError,
    SparseFormatError,
    VocabularyError,
)
from repro.retrieval import KeywordRetrieval, LSIRetrieval
from repro.serving import DocumentIndex, get_document_index
from repro.text import ParsingRules
from repro.updating import (
    fold_in_documents,
    fold_in_terms,
    fold_in_texts,
    update_documents,
    update_terms,
    update_weights,
)
from repro.weighting import WeightingScheme

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "LSIModel",
    "fit_lsi",
    "fit_lsi_from_tdm",
    "project_query",
    "rank_documents",
    "retrieve",
    "nearest_terms",
    "save_model",
    "load_model",
    "LSIRetrieval",
    "KeywordRetrieval",
    "DocumentIndex",
    "get_document_index",
    "ParsingRules",
    "WeightingScheme",
    "fold_in_documents",
    "fold_in_terms",
    "fold_in_texts",
    "update_documents",
    "update_terms",
    "update_weights",
    "ReproError",
    "ShapeError",
    "SparseFormatError",
    "ConvergenceError",
    "VocabularyError",
    "ModelStateError",
    "EvaluationError",
    "ServerOverloadError",
    "DeadlineExceededError",
]
