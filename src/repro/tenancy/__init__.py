"""Multi-tenant serving: index registry, quotas, and tenant routing.

One process (or one cluster front end) hosts N named tenants, each an
independent corpus with its own checkpoints/WAL/ANN state.  The pieces:

``registry``
    :class:`IndexRegistry` — owns the ``tenant_id -> ServingState``
    map, lazily attaches cold tenants from their data directories
    (crash-safe read-only mmap open), and detaches least-recently-used
    tenants past a resident cap — but only once in-flight queries
    drain, mirroring the cluster's two-epoch retain pattern.

``quotas``
    :class:`TenantQuotas` — carves the global admission budget into
    per-tenant shares so one hot tenant cannot starve the rest; over
    budget maps to a per-tenant HTTP 429 (``reason="tenant_quota"``).

``cluster``
    :class:`TenantClusterService` — one scatter-gather front end over
    per-tenant worker fleets, resolved through the same registry
    discipline (lazy spawn on first query, LRU drain-then-detach).

Every serving path resolves ``(tenant_id, epoch)`` through the
registry; the single-tenant surfaces are the ``tenant=None`` special
case of the same code.
"""

from __future__ import annotations

from repro.tenancy.quotas import TenantQuotas
from repro.tenancy.registry import DEFAULT_TENANT, IndexRegistry, TenantEntry

__all__ = [
    "DEFAULT_TENANT",
    "IndexRegistry",
    "TenantEntry",
    "TenantQuotas",
    "TenantClusterService",
]


def __getattr__(name: str):
    # Imported lazily: tenancy.cluster pulls in the whole cluster stack,
    # and the server service imports this package — an eager import here
    # would close that loop during interpreter start-up.
    if name == "TenantClusterService":
        from repro.tenancy.cluster import TenantClusterService

        return TenantClusterService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
