"""From-scratch sparse matrix substrate.

The paper's entire pipeline runs on large sparse term-document matrices
("containing only .001-.002% non-zero entries" for TREC).  This subpackage
implements the three classic storage schemes — coordinate (COO), compressed
sparse row (CSR) and compressed sparse column (CSC) — with pure-NumPy
vectorized kernels: no Python-level loops over nonzeros on any hot path.

Format roles
------------
* :class:`COOMatrix` — assembly format; cheap to build, converts to the
  compressed formats.
* :class:`CSRMatrix` — row-major compute format; fast ``A @ x`` and row
  scaling (local weighting applies per cell, global weighting per row/term).
* :class:`CSCMatrix` — column-major compute format; fast ``Aᵀ @ x`` and
  column (document) extraction for fold-in.

All formats store ``float64`` data and ``int64`` indices, are immutable
after construction, and validate their invariants eagerly (see
:class:`repro.errors.SparseFormatError`).
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.build import MatrixBuilder, from_dense, from_triples
from repro.sparse.ops import (
    csc_matvec,
    csr_matmat,
    csr_matvec,
    csr_rmatvec,
    frobenius_norm,
    hstack_csc,
    vstack_csr,
)
from repro.sparse.io import load_coordinate_text, save_coordinate_text
from repro.sparse.diagnostics import MatrixProfile, matrix_profile

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "MatrixBuilder",
    "from_dense",
    "from_triples",
    "csr_matvec",
    "csr_rmatvec",
    "csc_matvec",
    "csr_matmat",
    "frobenius_norm",
    "hstack_csc",
    "vstack_csr",
    "load_coordinate_text",
    "save_coordinate_text",
    "MatrixProfile",
    "matrix_profile",
]
