"""Worker lifecycle: spawn, watch, evict on silence, restart with backoff.

The supervisor owns the worker *processes*; the router owns the worker
*connections*.  Each shard gets a ``python -m repro cluster worker``
subprocess whose ready banner (printed only after the checkpoint is
mapped and the socket bound) is parsed for its ephemeral port, then the
router is attached.  From there two independent signals cover the two
ways a worker can fail:

* **exit** — a per-worker watcher task awaits the process and, unless
  the cluster is draining, detaches the router and schedules a restart
  with bounded exponential backoff (``base · 2^(restarts-1)``, capped);
* **silence** — a heartbeat loop pings every live worker through the
  router; a worker that misses ``miss_limit`` consecutive heartbeats is
  considered wedged (alive but not answering — the failure mode exit
  codes cannot see) and is killed, which hands it to the watcher path.

Between a worker's death and its restart the router simply serves
``partial=True`` responses missing that shard's rows; nothing here
blocks the query path.
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import signal
import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.plan import ShardPlan
from repro.cluster.router import ClusterRouter
from repro.errors import ClusterError
from repro.obs.metrics import registry

__all__ = ["SupervisorConfig", "ClusterSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables for worker lifecycle management."""

    #: Seconds between heartbeat rounds (also the per-ping deadline).
    heartbeat_interval: float = 1.0
    #: Consecutive missed heartbeats before a worker is killed.
    miss_limit: int = 3
    #: First restart delay, seconds; doubles per consecutive restart.
    backoff_base: float = 0.5
    #: Restart delay ceiling, seconds.
    backoff_cap: float = 10.0
    #: Deadline for a spawned worker to print its ready banner, seconds.
    spawn_timeout: float = 60.0
    #: Seconds a SIGTERMed worker gets to exit before SIGKILL on drain.
    drain_timeout: float = 10.0


@dataclass
class _WorkerRecord:
    """Mutable per-shard process state."""

    shard_id: int
    proc: asyncio.subprocess.Process | None = None
    port: int = 0
    pid: int = 0
    state: str = "starting"
    missed_heartbeats: int = 0
    restarts: int = 0
    #: Checkpoint epoch this worker last reported serving (banner at
    #: spawn, then bump acks) — the per-worker lag signal healthz shows.
    epoch: int = 0
    tasks: list[asyncio.Task] = field(default_factory=list)


class ClusterSupervisor:
    """Keeps one worker process per shard of ``plan`` alive and attached."""

    def __init__(
        self,
        data_dir: pathlib.Path,
        plan: ShardPlan,
        router: ClusterRouter,
        config: SupervisorConfig | None = None,
        *,
        host: str = "127.0.0.1",
        announce: Callable[[str], None] | None = None,
    ):
        self.data_dir = pathlib.Path(data_dir)
        self.plan = plan
        self.router = router
        self.config = config or SupervisorConfig()
        self.host = host
        self._announce = announce or (lambda line: None)
        self._records: dict[int, _WorkerRecord] = {
            s.shard_id: _WorkerRecord(s.shard_id) for s in plan.shards
        }
        self._restarting: set[int] = set()
        self._draining = False
        self._heartbeat_task: asyncio.Task | None = None

    def update_plan(self, plan: ShardPlan) -> None:
        """Point future spawns at a newer epoch's plan.

        Called by the primary writer *before* broadcasting the bump, so
        a worker that dies mid-bump restarts directly onto the new
        checkpoint instead of the superseded one.  Running workers are
        untouched — they catch up through the bump op.
        """
        if plan.n_shards != self.plan.n_shards:
            raise ClusterError(
                f"plan update changes shard count "
                f"{self.plan.n_shards} -> {plan.n_shards}; worker "
                "processes are fixed per shard"
            )
        self.plan = plan

    def note_epoch(self, shard_id: int, epoch: int) -> None:
        """Record a worker's acked epoch (bump ack or spawn banner)."""
        record = self._records.get(shard_id)
        if record is None:
            return
        record.epoch = int(epoch)
        registry.set_gauge(f"cluster.worker.{shard_id}.epoch", record.epoch)

    # ------------------------------------------------------------------ #
    # spawn
    # ------------------------------------------------------------------ #
    def _worker_command(self, shard_id: int) -> list[str]:
        return [
            sys.executable, "-m", "repro", "--no-obs", "cluster", "worker",
            "--data-dir", str(self.data_dir),
            "--shard", str(shard_id),
            "--plan", self.plan.to_json(),
            "--host", self.host,
            "--port", "0",
        ]

    def _worker_env(self) -> dict[str, str]:
        import repro

        src_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
        return env

    async def _spawn(self, shard_id: int) -> None:
        """Start one worker, parse its banner, attach the router."""
        record = self._records[shard_id]
        record.state = "starting"
        record.missed_heartbeats = 0
        proc = await asyncio.create_subprocess_exec(
            *self._worker_command(shard_id),
            stdout=asyncio.subprocess.PIPE,
            stderr=None,  # inherit: worker errors land in our stderr
            env=self._worker_env(),
        )
        record.proc = proc
        try:
            banner = await asyncio.wait_for(
                self._await_banner(proc), self.config.spawn_timeout
            )
        except asyncio.TimeoutError:
            proc.kill()
            raise ClusterError(
                f"worker {shard_id} produced no ready banner within "
                f"{self.config.spawn_timeout:.0f} s"
            )
        if banner is None:
            code = await proc.wait()
            raise ClusterError(
                f"worker {shard_id} exited with code {code} before "
                "becoming ready"
            )
        record.port = banner["port"]
        record.pid = banner["pid"]
        self.note_epoch(shard_id, banner.get("epoch", 0))
        await self.router.attach(shard_id, self.host, record.port)
        record.state = "up"
        self._announce(
            f"worker {shard_id} up on {self.host}:{record.port} "
            f"pid={record.pid}"
        )
        record.tasks = [
            asyncio.ensure_future(self._watch(shard_id, proc)),
            asyncio.ensure_future(self._pump_stdout(shard_id, proc)),
        ]

    @staticmethod
    async def _await_banner(
        proc: asyncio.subprocess.Process,
    ) -> dict | None:
        """First ``ready`` line of the worker's stdout, parsed; None on EOF."""
        assert proc.stdout is not None
        while True:
            raw = await proc.stdout.readline()
            if not raw:
                return None
            line = raw.decode("utf-8", "replace").strip()
            if " ready on " not in line:
                continue
            try:
                addr = line.split(" ready on ", 1)[1].split()[0]
                port = int(addr.rsplit(":", 1)[1])
                pid = int(line.rsplit("pid=", 1)[1])
            except (IndexError, ValueError):
                raise ClusterError(f"unparseable worker banner: {line!r}")
            try:
                epoch = int(line.rsplit("epoch=", 1)[1].split()[0])
            except (IndexError, ValueError):
                epoch = 0
            return {"port": port, "pid": pid, "epoch": epoch}

    async def _pump_stdout(
        self, shard_id: int, proc: asyncio.subprocess.Process
    ) -> None:
        """Drain post-banner stdout so the worker can never block on it."""
        assert proc.stdout is not None
        try:
            while True:
                raw = await proc.stdout.readline()
                if not raw:
                    return
                line = raw.decode("utf-8", "replace").strip()
                if line:
                    self._announce(f"worker {shard_id}: {line}")
        except asyncio.CancelledError:
            return

    # ------------------------------------------------------------------ #
    # failure handling
    # ------------------------------------------------------------------ #
    async def _watch(
        self, shard_id: int, proc: asyncio.subprocess.Process
    ) -> None:
        """Await one process; on unexpected death, detach and restart."""
        code = await proc.wait()
        record = self._records[shard_id]
        if self._draining or record.proc is not proc:
            return
        record.state = "dead"
        registry.inc("cluster.worker_exits_total")
        self._announce(
            f"worker {shard_id} (pid {record.pid}) exited with code {code}"
        )
        await self.router.detach(shard_id)
        self._schedule_restart(shard_id)

    def notify_worker_dead(self, shard_id: int) -> None:
        """Router callback: a connection died mid-query.

        The watcher usually fires first (the process exited), but a
        connection can die while the process lives — this path covers
        it by forcing the heartbeat verdict early.
        """
        if self._draining:
            return
        record = self._records.get(shard_id)
        if record is None or record.state != "up":
            return
        record.missed_heartbeats = self.config.miss_limit

    def _schedule_restart(self, shard_id: int) -> None:
        if self._draining or shard_id in self._restarting:
            return
        self._restarting.add(shard_id)
        asyncio.ensure_future(self._restart(shard_id))

    async def _restart(self, shard_id: int) -> None:
        record = self._records[shard_id]
        try:
            record.restarts += 1
            delay = min(
                self.config.backoff_cap,
                self.config.backoff_base * 2 ** (record.restarts - 1),
            )
            record.state = "restarting"
            registry.inc("cluster.restarts_total")
            self._announce(
                f"restarting worker {shard_id} in {delay:.1f} s "
                f"(restart #{record.restarts})"
            )
            await asyncio.sleep(delay)
            if self._draining:
                return
            await self._spawn(shard_id)
        except ClusterError as exc:
            # Spawn failed outright; try again along the backoff curve.
            self._announce(f"worker {shard_id} restart failed: {exc}")
            record.state = "dead"
            self._restarting.discard(shard_id)
            self._schedule_restart(shard_id)
            return
        finally:
            self._restarting.discard(shard_id)

    async def _heartbeat_loop(self) -> None:
        interval = self.config.heartbeat_interval
        while not self._draining:
            await asyncio.sleep(interval)
            for shard_id, record in self._records.items():
                if record.state != "up" or self._draining:
                    continue
                ok = await self.router.ping(shard_id, timeout=interval)
                if ok:
                    record.missed_heartbeats = 0
                    continue
                record.missed_heartbeats += 1
                if record.missed_heartbeats < self.config.miss_limit:
                    continue
                registry.inc("cluster.evictions_total")
                self._announce(
                    f"worker {shard_id} missed "
                    f"{record.missed_heartbeats} heartbeats; evicting"
                )
                if record.proc is not None:
                    try:
                        record.proc.kill()
                    except ProcessLookupError:
                        pass
                # The watcher task sees the exit and restarts it.

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn every shard's worker; raises if any fails its first spawn."""
        for shard in self.plan.shards:
            await self._spawn(shard.shard_id)
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())

    async def drain(self) -> None:
        """SIGTERM every worker, wait, SIGKILL stragglers, detach all."""
        self._draining = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
        procs = []
        for record in self._records.values():
            record.state = "draining"
            if record.proc is not None and record.proc.returncode is None:
                try:
                    record.proc.send_signal(signal.SIGTERM)
                except ProcessLookupError:
                    continue
                procs.append(record.proc)
        if procs:
            waits = [asyncio.ensure_future(p.wait()) for p in procs]
            _done, pending = await asyncio.wait(
                waits, timeout=self.config.drain_timeout
            )
            if pending:
                for proc in procs:
                    if proc.returncode is None:
                        proc.kill()
                await asyncio.wait(pending)
        for record in self._records.values():
            for task in record.tasks:
                task.cancel()
        await self.router.close()

    # ------------------------------------------------------------------ #
    def describe(self) -> list[dict]:
        """Per-shard status rows for healthz / ``cluster status``."""
        rows = []
        for shard in self.plan.shards:
            record = self._records[shard.shard_id]
            # A worker at the miss limit is not serving even if its
            # process record still says "up" — the router's dead-
            # connection report lands here synchronously, so a partial
            # response is reflected as degraded health immediately,
            # without waiting for the exit watcher to run.
            state = record.state
            if (
                state == "up"
                and record.missed_heartbeats >= self.config.miss_limit
            ):
                state = "unresponsive"
            rows.append(
                {
                    "shard": shard.shard_id,
                    "lo": shard.lo,
                    "hi": shard.hi,
                    "state": state,
                    "pid": record.pid,
                    "port": record.port,
                    "epoch": record.epoch,
                    "restarts": record.restarts,
                    "missed_heartbeats": record.missed_heartbeats,
                }
            )
        return rows

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun."""
        return self._draining
