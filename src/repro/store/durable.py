"""The durable index store: WAL-ahead mutations over versioned checkpoints.

:class:`DurableIndexStore` owns one data directory *exclusively* — an
``flock`` on ``LOCK`` (:mod:`repro.store.lock`) refuses a second
writer, whose WAL open would truncate the live log's tail::

    <data-dir>/
      LOCK                         single-writer flock (advisory)
      checkpoints/ckpt-00000001/   versioned, checksummed snapshots
      wal.log                      fold-ins since the newest snapshot

and routes every index mutation through the write-ahead discipline:
validate → append + fsync to the WAL → apply to the
:class:`~repro.updating.manager.LSIIndexManager`.  An LSN handed back
is the durability acknowledgment — after any crash,
:func:`~repro.store.recovery.recover_manager` reproduces the exact
index that had absorbed every acknowledged mutation (bit-identical
``U, s, V``; see the determinism tests).  If the in-memory apply fails
*after* the WAL append, the record is rolled back (physically
truncated) before the error propagates — the log never holds a
mutation the live index refused, so recovery cannot diverge from what
was served.

Read-only surfaces — ``repro stats --data-dir`` and ``repro store
inspect`` — go through :func:`read_store_status` /
:func:`publish_store_gauges` instead of opening the store: they scan
checkpoint manifests and the WAL file without a write handle or the
lock, so they are safe to run against a directory a live server owns.

:class:`DurableServingState` plugs the store into the serving layer
(:mod:`repro.server`): it overrides the epoch-swap write path so every
``/add`` is WAL-logged before the new epoch is published, and its swap
hook nudges the background :class:`~repro.store.checkpointer.
Checkpointer`.  The query path is untouched — readers still score
pinned epoch snapshots lock-free, which is what keeps checkpointing off
the latency profile.

Maintenance: :meth:`DurableIndexStore.compact` folds the WAL into a
fresh checkpoint and truncates it (search results bit-identical, replay
cost reset to zero), :meth:`verify` audits every checksum on disk, and
:meth:`close` performs the graceful-drain flush ``repro serve`` runs on
SIGTERM.
"""

from __future__ import annotations

import pathlib
import shutil
import threading
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ShapeError, StoreError, StoreLockedError
from repro.obs.metrics import registry
from repro.obs.tracing import span
from repro.serving.ann import ANN_ARRAY_NAMES, CoarseQuantizer
from repro.server.state import ServingState
from repro.store.checkpoint import (
    checkpoint_bytes,
    list_checkpoints,
    verify_checkpoint,
    write_checkpoint,
)
from repro.store.checkpointer import Checkpointer, CheckpointPolicy
from repro.store.lock import LOCK_NAME, StoreLock
from repro.store.recovery import RecoveryReport, capture_manager, recover_manager
from repro.store.wal import WriteAheadLog, scan_wal, verify_wal
from repro.text.tdm import count_vector
from repro.text.tokenizer import tokenize
from repro.updating.manager import IndexEvent, LSIIndexManager

__all__ = [
    "STORE_LAYOUT",
    "SealInfo",
    "DurableIndexStore",
    "DurableServingState",
    "read_store_status",
    "publish_store_gauges",
]

#: Fixed names inside a store data directory.
STORE_LAYOUT = {
    "checkpoints": "checkpoints",
    "wal": "wal.log",
    "lock": LOCK_NAME,
}


def _checkpoint_summary(info) -> dict:
    """One checkpoint's row in ``inspect``/``read_store_status`` output."""
    return {
        "id": info.checkpoint_id,
        "path": str(info.path),
        "created_unix": info.manifest["created_unix"],
        "bytes": checkpoint_bytes(info),
        "n_documents": info.meta.get("n_documents"),
        "wal_lsn": info.meta.get("wal_lsn"),
        "reason": info.meta.get("reason"),
        "format": info.manifest.get("format"),
        "ann": all(
            name in info.manifest["arrays"] for name in ANN_ARRAY_NAMES
        ),
        "ann_clusters": info.meta.get("ann", {}).get("n_clusters"),
    }


@dataclass(frozen=True)
class SealInfo:
    """What one sealed checkpoint covers — the epoch-bump handshake.

    The cluster's primary writer turns this directly into the next
    :class:`~repro.cluster.plan.ShardPlan`: ``epoch`` is the WAL LSN
    the checkpoint captured (the store's logical version number),
    ``name``/``path`` pin the exact checkpoint workers must remap, and
    ``n_documents`` re-derives the shard ranges as the collection grows.
    """

    path: pathlib.Path
    name: str
    epoch: int
    wal_lsn: int
    n_documents: int


class DurableIndexStore:
    """Crash-recoverable home of one incrementally maintained index."""

    def __init__(
        self,
        data_dir: pathlib.Path,
        manager: LSIIndexManager,
        wal: WriteAheadLog,
        *,
        retain: int = 3,
        last_checkpoint_lsn: int = 0,
        last_recovery: RecoveryReport | None = None,
        dir_lock: StoreLock | None = None,
        ann_clusters: int | None = None,
    ):
        self.data_dir = pathlib.Path(data_dir)
        self.manager = manager
        self.retain = max(1, int(retain))
        #: ANN training knob: ``None`` = auto (``≈ sqrt(n)`` cells,
        #: the default), ``0`` = disabled, ``>0`` = explicit cell count.
        self.ann_clusters = ann_clusters
        self.last_recovery = last_recovery
        self._wal = wal
        self._dir_lock = dir_lock  # single-writer flock on the data dir
        self._lock = threading.RLock()  # serializes mutations + capture
        self._checkpoint_lock = threading.Lock()  # one snapshot at a time
        self._last_checkpoint_lsn = last_checkpoint_lsn
        self._last_checkpoint_time = time.time()
        self._last_checkpoint_bytes = 0
        self._checkpointer: Checkpointer | None = None
        self._closed = False
        #: Description of the newest checkpoint written *by this
        #: process* (None until the first :meth:`checkpoint`/:meth:`seal`).
        self.last_seal: SealInfo | None = None
        for info in list_checkpoints(self.checkpoints_dir):
            self._last_checkpoint_time = float(info.manifest["created_unix"])
            self._last_checkpoint_bytes = checkpoint_bytes(info)
        registry.set_gauge(
            "store.last_recovery_replayed",
            last_recovery.replayed_records if last_recovery else 0,
        )
        self.publish_gauges()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def paths(data_dir: pathlib.Path) -> tuple[pathlib.Path, pathlib.Path]:
        """(checkpoints directory, WAL path) under ``data_dir``."""
        data_dir = pathlib.Path(data_dir)
        return (
            data_dir / STORE_LAYOUT["checkpoints"],
            data_dir / STORE_LAYOUT["wal"],
        )

    @classmethod
    def exists(cls, data_dir: pathlib.Path) -> bool:
        """Whether ``data_dir`` holds recoverable store state."""
        checkpoints_dir, wal_path = cls.paths(data_dir)
        return bool(list_checkpoints(checkpoints_dir)) or wal_path.exists()

    @classmethod
    def initialize(
        cls,
        data_dir: pathlib.Path,
        manager: LSIIndexManager,
        *,
        retain: int = 3,
        sync: bool = True,
        ann_clusters: int | None = None,
    ) -> "DurableIndexStore":
        """Seed a fresh store around an already-fitted manager.

        Writes checkpoint 1 immediately, so the store is recoverable
        from the moment this returns.
        """
        if cls.exists(data_dir):
            raise StoreError(
                f"{data_dir} already contains a durable index store; "
                "open it instead of initializing over it"
            )
        dir_lock = StoreLock.acquire(data_dir)
        try:
            checkpoints_dir, wal_path = cls.paths(data_dir)
            checkpoints_dir.mkdir(parents=True, exist_ok=True)
            wal = WriteAheadLog(wal_path, sync=sync)
            store = cls(data_dir, manager, wal, retain=retain,
                        dir_lock=dir_lock, ann_clusters=ann_clusters)
            store.checkpoint(reason="initialize")
        except BaseException:
            dir_lock.release()
            raise
        return store

    @classmethod
    def open(
        cls,
        data_dir: pathlib.Path,
        *,
        retain: int = 3,
        sync: bool = True,
        ann_clusters: int | None = None,
    ) -> "DurableIndexStore":
        """Recover a store: newest valid checkpoint + WAL replay.

        The manager's configuration (``k``, scheme, budgets, seed) comes
        from the checkpoint manifest — a warm restart needs nothing but
        the data directory.  Raises :class:`~repro.errors.
        StoreLockedError` when another process owns the directory; use
        :func:`read_store_status` for lock-free read-only access.
        """
        dir_lock = StoreLock.acquire(data_dir)
        try:
            checkpoints_dir, wal_path = cls.paths(data_dir)
            manager, report = recover_manager(checkpoints_dir, wal_path)
            wal = WriteAheadLog(
                wal_path, sync=sync, base_lsn=report.wal_lsn_start
            )
        except BaseException:
            dir_lock.release()
            raise
        return cls(
            data_dir,
            manager,
            wal,
            retain=retain,
            last_checkpoint_lsn=report.wal_lsn_start,
            last_recovery=report,
            dir_lock=dir_lock,
            ann_clusters=ann_clusters,
        )

    # ------------------------------------------------------------------ #
    # bookkeeping the checkpoint policy reads
    # ------------------------------------------------------------------ #
    @property
    def checkpoints_dir(self) -> pathlib.Path:
        """Where this store keeps its versioned checkpoints."""
        return self.paths(self.data_dir)[0]

    @property
    def wal(self) -> WriteAheadLog:
        """The live write-ahead log handle."""
        return self._wal

    @property
    def dirty_records(self) -> int:
        """WAL records not yet covered by a checkpoint."""
        return self._wal.last_lsn - self._last_checkpoint_lsn

    @property
    def seconds_since_checkpoint(self) -> float:
        """Wall-clock age of the newest checkpoint."""
        return max(0.0, time.time() - self._last_checkpoint_time)

    def publish_gauges(self) -> None:
        """Refresh the ``store.*`` gauges ``repro stats`` reports."""
        registry.set_gauge("store.wal_records", self._wal.n_records)
        registry.set_gauge("store.wal_bytes", self._wal.size_bytes)
        registry.set_gauge("store.dirty_records", self.dirty_records)
        registry.set_gauge(
            "store.checkpoint_age_seconds", self.seconds_since_checkpoint
        )
        registry.set_gauge(
            "store.checkpoint_bytes", self._last_checkpoint_bytes
        )

    # ------------------------------------------------------------------ #
    # the write-ahead mutation path
    # ------------------------------------------------------------------ #
    def _apply(self, op: str, payload: dict, apply) -> IndexEvent | None:
        """Append + fsync the record, then run ``apply`` on the manager.

        If ``apply`` raises past the upfront shape checks, the record is
        rolled back (physically truncated from the WAL) before the error
        propagates: its LSN was never acknowledged, and a record the
        live index never absorbed must not survive for recovery to
        replay — that either fails the next open or diverges recovered
        state from what was actually served.
        """
        if self._closed:
            raise StoreError(f"store {self.data_dir} is closed")
        t0 = time.perf_counter()
        mark = self._wal.mark()
        self._wal.append(op, payload)
        registry.observe("store.wal_append_seconds", time.perf_counter() - t0)
        registry.inc("store.wal_appends_total")
        try:
            event = apply()
        except BaseException:
            try:
                self._wal.rollback(mark)
                registry.inc("store.wal_rollbacks_total")
            except Exception:
                # The apply failure is the actionable error; a rollback
                # failure additionally halts the WAL (no further appends).
                registry.inc("store.wal_rollback_failures_total")
            raise
        if self._checkpointer is not None:
            self._checkpointer.notify(
                # Only a true consolidation rewrites the factor matrices;
                # fast-update is a per-batch ingest kernel like fold-in.
                consolidated=event is not None
                and event.action in ("svd-update", "recompute")
            )
        self.publish_gauges()
        return event

    def add_texts(
        self, texts: Sequence[str], doc_ids: Sequence[str] | None = None
    ) -> IndexEvent:
        """WAL-logged :meth:`LSIIndexManager.add_texts`.

        Texts are normalized to raw count columns against the current
        vocabulary *before* logging, so replay is independent of any
        future tokenizer change — the log stores exactly what the
        manager applied.
        """
        if not texts:
            raise ShapeError("add_texts needs at least one document")
        with self._lock:
            manager = self.manager
            if doc_ids is None:
                start = manager.n_documents + manager.pending + 1
                doc_ids = [f"D{start + i}" for i in range(len(texts))]
            elif len(doc_ids) != len(texts):
                raise ShapeError("doc_ids length mismatch")
            counts = np.stack(
                [
                    count_vector(tokenize(t), manager.model.vocabulary)
                    for t in texts
                ],
                axis=1,
            )
            return self.add_counts(counts, doc_ids)

    def add_counts(
        self, counts: np.ndarray, doc_ids: Sequence[str]
    ) -> IndexEvent:
        """WAL-logged :meth:`LSIIndexManager.add_counts`."""
        counts = np.atleast_2d(np.asarray(counts, dtype=np.float64))
        with self._lock:
            manager = self.manager
            if counts.shape[0] != manager.model.n_terms:
                raise ShapeError(
                    f"count block has {counts.shape[0]} rows for "
                    f"m={manager.model.n_terms}"
                )
            if counts.shape[1] != len(doc_ids):
                raise ShapeError("doc_ids length mismatch")
            return self._apply(
                "add_counts",
                {"counts": counts, "doc_ids": list(doc_ids)},
                lambda: manager.add_counts(counts, list(doc_ids)),
            )

    def add_terms(
        self,
        counts: np.ndarray,
        terms: Sequence[str],
        *,
        global_weights: np.ndarray | None = None,
    ) -> IndexEvent:
        """WAL-logged :meth:`LSIIndexManager.add_terms`."""
        counts = np.atleast_2d(np.asarray(counts, dtype=np.float64))
        with self._lock:
            manager = self.manager
            expected = manager.tdm.n_documents + manager.pending
            if counts.shape[1] != expected:
                raise ShapeError(
                    f"term block has {counts.shape[1]} columns for "
                    f"n={expected}"
                )
            gw = (
                None
                if global_weights is None
                else np.asarray(global_weights, dtype=np.float64)
            )
            return self._apply(
                "add_terms",
                {"counts": counts, "terms": list(terms), "global_weights": gw},
                lambda: manager.add_terms(
                    counts, list(terms), global_weights=gw
                ),
            )

    def consolidate(self) -> IndexEvent | None:
        """WAL-logged :meth:`LSIIndexManager.consolidate` (no-op when
        nothing is pending — nothing is logged either)."""
        with self._lock:
            if not self.manager.pending:
                return None
            return self._apply(
                "consolidate", {}, lambda: self.manager.consolidate()
            )

    # ------------------------------------------------------------------ #
    # snapshots and maintenance
    # ------------------------------------------------------------------ #
    def _train_ann(self, arrays: dict, meta: dict) -> None:
        """Train (or refresh) the checkpoint's coarse quantizer in place.

        Runs on the *captured* arrays — the manager never mutates them —
        so callers invoke this outside the writer lock.  Deterministic
        given the captured coordinates and the manager's seed, which
        keeps recovered-then-recheckpointed stores bit-identical.
        ``ann_clusters=0`` disables training (the checkpoint then serves
        via exact scan, like a format-1 one).
        """
        if self.ann_clusters == 0:
            return
        coords = np.asarray(arrays["model_V"]) * np.asarray(arrays["base_s"])
        if coords.shape[0] == 0:
            return
        t0 = time.perf_counter()
        with span("store.ann_train"):
            quantizer = CoarseQuantizer.train(
                coords, self.ann_clusters, seed=self.manager.seed
            )
        registry.observe("store.ann_train_seconds", time.perf_counter() - t0)
        registry.inc("store.ann_trainings_total")
        arrays.update(quantizer.to_arrays())
        meta["ann"] = {
            "n_clusters": quantizer.n_clusters,
            "n_documents": quantizer.n_documents,
            "seed": self.manager.seed,
        }

    def load_ann(self, *, mmap: bool = True):
        """The newest valid checkpoint's quantizer, memory-mapped.

        Returns ``None`` (and raises the ``store.ann_missing`` gauge)
        when the newest checkpoint predates format 2 or was written with
        ANN disabled — callers serve by exact scan until the next
        checkpoint retrains.
        """
        from repro.store.mmap_io import open_latest_ann

        return open_latest_ann(self.data_dir, mmap=mmap)

    def checkpoint(self, reason: str = "manual") -> pathlib.Path:
        """Snapshot current state into a fresh versioned checkpoint.

        Holds the writer lock only long enough to capture array
        references (the manager never mutates arrays in place);
        quantizer training, serialization, checksumming, and fsync run
        unlocked, so queries — which never take these locks — are
        unaffected and concurrent ``/add`` s block for microseconds at
        worst.

        Fenced: if another writer adopted the directory since this
        store opened (the lockfile generation moved — a standby
        promoted over what it judged a dead primary), the seal is
        refused with :class:`~repro.errors.StoreLockedError` rather
        than interleaving two writers' checkpoint lines.  The fence is
        checked once per seal, never on the per-record append path.
        """
        if self._dir_lock is not None and not self._dir_lock.check():
            raise StoreLockedError(
                f"{self.data_dir} was adopted by another writer "
                f"(lock generation moved past "
                f"{self._dir_lock.generation}); this handle is fenced "
                "and must close instead of sealing"
            )
        with self._checkpoint_lock:
            t0 = time.perf_counter()
            with span("store.checkpoint", reason=reason):
                with self._lock:
                    arrays, meta = capture_manager(self.manager)
                    wal_lsn = self._wal.last_lsn
                meta["wal_lsn"] = wal_lsn
                meta["epoch"] = wal_lsn  # logical index version
                meta["reason"] = reason
                self._train_ann(arrays, meta)
                info = write_checkpoint(self.checkpoints_dir, arrays, meta)
            self._last_checkpoint_lsn = wal_lsn
            self._last_checkpoint_time = time.time()
            self._last_checkpoint_bytes = checkpoint_bytes(info)
            self.last_seal = SealInfo(
                path=info.path,
                name=info.path.name,
                epoch=wal_lsn,
                wal_lsn=wal_lsn,
                n_documents=int(meta["n_documents"]),
            )
            elapsed = time.perf_counter() - t0
            registry.inc("store.checkpoints_total")
            registry.observe("store.checkpoint_seconds", elapsed)
            self._prune_checkpoints()
            self.publish_gauges()
            return info.path

    def seal(self, reason: str = "seal") -> SealInfo:
        """Snapshot current state and describe exactly what was sealed.

        Same operation as :meth:`checkpoint`, returning the
        :class:`SealInfo` an epoch bump needs (checkpoint name, epoch,
        covered document count) instead of just the path — the entry
        point the cluster's primary writer drives.
        """
        self.checkpoint(reason=reason)
        return self.last_seal

    def _prune_checkpoints(self) -> None:
        infos = list_checkpoints(self.checkpoints_dir)
        for info in infos[: max(0, len(infos) - self.retain)]:
            shutil.rmtree(info.path, ignore_errors=True)

    def compact(self) -> pathlib.Path:
        """Fold the WAL into a fresh checkpoint and truncate it.

        Blocks writers for the duration (an append between capture and
        truncation would be silently dropped otherwise); queries are
        unaffected.  Search results are bit-identical before and after
        — the checkpoint *is* the replayed state.
        """
        with self._checkpoint_lock, self._lock:
            arrays, meta = capture_manager(self.manager)
            wal_lsn = self._wal.last_lsn
            meta["wal_lsn"] = wal_lsn
            meta["epoch"] = wal_lsn
            meta["reason"] = "compact"
            self._train_ann(arrays, meta)
            with span("store.compact"):
                info = write_checkpoint(self.checkpoints_dir, arrays, meta)
                self._wal.truncate()
            self._last_checkpoint_lsn = wal_lsn
            self._last_checkpoint_time = time.time()
            self._last_checkpoint_bytes = checkpoint_bytes(info)
            registry.inc("store.checkpoints_total")
            registry.inc("store.compactions_total")
            self._prune_checkpoints()
            self.publish_gauges()
            return info.path

    def verify(self) -> list[str]:
        """Checksum-audit every checkpoint and the WAL; [] means clean."""
        problems: list[str] = []
        for info in list_checkpoints(self.checkpoints_dir):
            problems.extend(verify_checkpoint(info.path))
        problems.extend(verify_wal(self.paths(self.data_dir)[1]))
        return problems

    def inspect(self) -> dict:
        """A JSON-ready description of the on-disk store state."""
        checkpoints = [
            _checkpoint_summary(info)
            for info in list_checkpoints(self.checkpoints_dir)
        ]
        return {
            "data_dir": str(self.data_dir),
            "checkpoints": checkpoints,
            "ann": bool(checkpoints and checkpoints[-1]["ann"]),
            "wal": {
                "path": str(self._wal.path),
                "records": self._wal.n_records,
                "bytes": self._wal.size_bytes,
                "last_lsn": self._wal.last_lsn,
            },
            "dirty_records": self.dirty_records,
            "n_documents": self.manager.n_documents,
            "pending": self.manager.pending,
            "last_recovery_replayed": (
                self.last_recovery.replayed_records
                if self.last_recovery
                else 0
            ),
        }

    # ------------------------------------------------------------------ #
    # background checkpointing + lifecycle
    # ------------------------------------------------------------------ #
    def start_checkpointer(
        self,
        policy: CheckpointPolicy | None = None,
        *,
        poll_seconds: float = 1.0,
    ) -> Checkpointer:
        """Attach and start the background policy checkpointer."""
        if self._checkpointer is None:
            self._checkpointer = Checkpointer(
                self, policy, poll_seconds=poll_seconds
            )
        self._checkpointer.start()
        return self._checkpointer

    @property
    def checkpointer(self) -> Checkpointer | None:
        """The attached background checkpointer, if any."""
        return self._checkpointer

    def close(self, *, flush: bool = True) -> None:
        """Graceful shutdown: stop the checkpointer, flush, release.

        ``flush=True`` writes a final checkpoint when the WAL holds
        records no checkpoint covers — the SIGTERM drain path, so a
        clean restart replays nothing.
        """
        if self._closed:
            return
        if self._checkpointer is not None:
            self._checkpointer.stop()
        if flush and self.dirty_records > 0:
            self.checkpoint(reason="close")
        self._closed = True
        self._wal.close()
        if self._dir_lock is not None:
            self._dir_lock.release()


# --------------------------------------------------------------------- #
# lock-free read-only views (safe against a directory a live server owns)
# --------------------------------------------------------------------- #
def read_store_status(data_dir: pathlib.Path) -> dict:
    """Describe a store directory without opening it (same shape as
    :meth:`DurableIndexStore.inspect`).

    Scans checkpoint manifests and the WAL file read-only: no
    :class:`~repro.store.wal.WriteAheadLog` handle is created (so no
    tail truncation), nothing is written, and the single-writer lock is
    not taken.  Document and pending counts are reconstructed from the
    newest checkpoint's manifest plus the WAL suffix arithmetic
    (``add_counts`` grows both, ``consolidate`` zeroes pending), and
    ``last_recovery_replayed`` reports what a cold start *would* replay.
    """
    data_dir = pathlib.Path(data_dir)
    checkpoints_dir, wal_path = DurableIndexStore.paths(data_dir)
    infos = list_checkpoints(checkpoints_dir)
    scan = scan_wal(wal_path)
    newest = infos[-1] if infos else None
    ckpt_lsn = int(newest.meta.get("wal_lsn", 0)) if newest else 0
    n_documents = int(newest.meta.get("n_documents", 0)) if newest else 0
    pending = len(newest.meta.get("pending_ids", [])) if newest else 0
    would_replay = 0
    for record in scan.records:
        if record.lsn <= ckpt_lsn:
            continue
        would_replay += 1
        if record.op == "add_counts":
            added = len(record.payload.get("doc_ids", []))
            n_documents += added
            pending += added
        elif record.op == "consolidate":
            pending = 0
    return {
        "data_dir": str(data_dir),
        "checkpoints": [_checkpoint_summary(info) for info in infos],
        "ann": bool(newest and _checkpoint_summary(newest)["ann"]),
        "wal": {
            "path": str(wal_path),
            "records": len(scan.records),
            "bytes": scan.valid_end if wal_path.exists() else 0,
            "last_lsn": scan.last_lsn,
        },
        "dirty_records": max(0, scan.last_lsn - ckpt_lsn),
        "n_documents": n_documents,
        "pending": pending,
        "last_recovery_replayed": would_replay,
        "problems": list(scan.problems),
    }


def publish_store_gauges(data_dir: pathlib.Path) -> dict:
    """Publish the ``store.*`` gauges for ``repro stats --data-dir``.

    Read-only (see :func:`read_store_status`): unlike opening the
    store, this never recovers the index, takes the lock, or touches
    the live server's WAL.  Returns the status dict it derived the
    gauges from.
    """
    status = read_store_status(data_dir)
    newest = status["checkpoints"][-1] if status["checkpoints"] else None
    registry.set_gauge("store.wal_records", status["wal"]["records"])
    registry.set_gauge("store.wal_bytes", status["wal"]["bytes"])
    registry.set_gauge("store.dirty_records", status["dirty_records"])
    registry.set_gauge(
        "store.checkpoint_age_seconds",
        max(0.0, time.time() - float(newest["created_unix"]))
        if newest
        else 0.0,
    )
    registry.set_gauge(
        "store.checkpoint_bytes", newest["bytes"] if newest else 0
    )
    registry.set_gauge(
        "store.last_recovery_replayed", status["last_recovery_replayed"]
    )
    return status


class DurableServingState(ServingState):
    """A :class:`~repro.server.state.ServingState` whose writes survive.

    Same epoch-swap reader/writer contract as the base class; the only
    difference is the write path: each addition goes through the
    store's WAL-ahead discipline before the new epoch is published, and
    the registered swap hook pokes the background checkpointer's policy
    via the store.  Readers never touch the store.

    The coarse quantizer is opened zero-copy from the newest checkpoint
    at construction (``store.ann_missing`` reports when there is none —
    a pre-format-2 store serves by exact scan until its next
    checkpoint).  Background checkpoints retrain the on-disk quantizer
    but do not hot-swap the served one; documents added meanwhile are
    still searched exactly via the fresh-tail rule, and a restart picks
    up the newest training.
    """

    def __init__(self, store: DurableIndexStore, **kwargs):
        kwargs.setdefault("ann", store.load_ann())
        super().__init__(manager=store.manager, **kwargs)
        self.store = store
        self.add_swap_hook(self._on_swap)

    def _apply_add(self, texts, doc_ids):
        return self.store.add_texts(texts, doc_ids)

    @staticmethod
    def _on_swap(snapshot, event) -> None:
        registry.set_gauge("store.serving_epoch", snapshot.epoch)
