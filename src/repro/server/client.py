"""A small blocking client for the query server (stdlib ``http.client``).

The counterpart to :mod:`repro.server.http`: one connection per call,
JSON in and out, server-side failures mapped back onto the library's
exception hierarchy (429 → :class:`ServerOverloadError` with
``reason="queue_full"``, 503 → ``reason="draining"``, 504 →
:class:`DeadlineExceededError`, other non-2xx → :class:`ReproError`),
so a caller's retry/backoff logic reads the same whether it drives the
engine in-process or over the wire.

>>> client = ServerClient(port=8080)
>>> client.search("blood pressure age", top=5)["results"]
[[3, 0.89, 'M4'], ...]
"""

from __future__ import annotations

import http.client
import json
from typing import Sequence

from repro.errors import DeadlineExceededError, ReproError, ServerOverloadError

__all__ = ["ServerClient"]


class ServerClient:
    """Blocking JSON client for one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            data = {"error": raw.decode("utf-8", "replace")}
        if response.status == 429:
            raise ServerOverloadError(
                data.get("error", "overloaded"), reason="queue_full"
            )
        if response.status == 503:
            raise ServerOverloadError(
                data.get("error", "draining"), reason="draining"
            )
        if response.status == 504:
            raise DeadlineExceededError(data.get("error", "deadline exceeded"))
        if response.status >= 400:
            raise ReproError(
                f"server returned {response.status}: "
                f"{data.get('error', repr(raw[:200]))}"
            )
        return data

    # ------------------------------------------------------------------ #
    def search(
        self,
        query: str | Sequence[str],
        *,
        top: int | None = None,
        threshold: float | None = None,
        timeout_ms: float | None = None,
    ) -> dict:
        """Ranked search; ``results`` rows are ``[index, score, doc_id]``."""
        payload: dict = {"query": query}
        if top is not None:
            payload["top"] = top
        if threshold is not None:
            payload["threshold"] = threshold
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._request("POST", "/search", payload)

    def search_pairs(
        self,
        query: str | Sequence[str],
        *,
        top: int | None = None,
        threshold: float | None = None,
    ) -> list[tuple[int, float]]:
        """Engine-shaped ``(doc_index, score)`` pairs, for parity checks."""
        data = self.search(query, top=top, threshold=threshold)
        return [(int(j), float(score)) for j, score, _ in data["results"]]

    def add(
        self, texts: Sequence[str], doc_ids: Sequence[str] | None = None
    ) -> dict:
        """Live-add documents; returns the new epoch description."""
        payload: dict = {"texts": list(texts)}
        if doc_ids is not None:
            payload["doc_ids"] = list(doc_ids)
        return self._request("POST", "/add", payload)

    def healthz(self) -> dict:
        """The server's liveness/readiness summary."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """The server's observability snapshot."""
        return self._request("GET", "/stats")
