"""Compressed sparse column (CSC) format — the column-major compute format.

CSC stores column ``j`` in the slice ``indptr[j]:indptr[j+1]`` of
``indices`` (row ids) and ``data``.  In LSI the columns are *documents*:
fold-in extracts document columns, and appending new documents (the ``D``
block of Eq. 10) is a cheap column-wise concatenation in this format.

CSC of ``A`` and CSR of ``Aᵀ`` share the identical arrays, which is how
:meth:`CSCMatrix.transpose` and :meth:`repro.sparse.csr.CSRMatrix.transpose`
are O(1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ShapeError, SparseFormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csr import CSRMatrix

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """Immutable CSC sparse matrix."""

    __slots__ = ("shape", "indptr", "indices", "data", "_col_cache")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        m, n = int(shape[0]), int(shape[1])
        indptr = np.asarray(indptr, dtype=np.int64).ravel()
        indices = np.asarray(indices, dtype=np.int64).ravel()
        data = np.asarray(data, dtype=np.float64).ravel()
        if indptr.size != n + 1:
            raise SparseFormatError(f"indptr must have length n+1={n + 1}, got {indptr.size}")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise SparseFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if indices.size != data.size:
            raise SparseFormatError("indices and data must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= m):
            raise SparseFormatError("row index out of bounds")
        object.__setattr__(self, "shape", (m, n))
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "_col_cache", None)

    def __setattr__(self, name, value):
        raise AttributeError("CSCMatrix is immutable")

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """Stored fraction ``nnz / (m·n)``."""
        m, n = self.shape
        return self.nnz / (m * n) if m and n else 0.0

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"

    def col_nnz(self) -> np.ndarray:
        """Per-column stored-entry counts (length n)."""
        return np.diff(self.indptr)

    def expanded_cols(self) -> np.ndarray:
        """Per-nonzero column index (length nnz), cached after first use."""
        if self._col_cache is None:
            cols = np.repeat(
                np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr)
            )
            object.__setattr__(self, "_col_cache", cols)
        return self._col_cache

    # ------------------------------------------------------------------ #
    # linear algebra
    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` (scatter along columns)."""
        from repro.sparse.ops import csc_matvec

        return csc_matvec(self, x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Compute ``Aᵀ @ y`` — a gather, since rows of Aᵀ are our columns."""
        from repro.sparse.ops import csc_rmatvec

        return csc_rmatvec(self, y)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Compute ``A @ X`` for dense ``X``."""
        from repro.sparse.ops import csc_matmat

        return csc_matmat(self, X)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        """Compute ``Aᵀ @ Y`` for dense ``Y``."""
        from repro.sparse.ops import csc_rmatmat

        return csc_rmatmat(self, Y)

    def __matmul__(self, other):
        other = np.asarray(other, dtype=np.float64)
        if other.ndim == 1:
            return self.matvec(other)
        if other.ndim == 2:
            return self.matmat(other)
        raise ShapeError("CSCMatrix @ operand must be 1-D or 2-D")

    # ------------------------------------------------------------------ #
    # scaling / column access
    # ------------------------------------------------------------------ #
    def scale_rows(self, s: np.ndarray) -> "CSCMatrix":
        """Return ``diag(s) @ A``."""
        s = np.asarray(s, dtype=np.float64).ravel()
        if s.size != self.shape[0]:
            raise ShapeError(f"scale vector length {s.size} != m={self.shape[0]}")
        return CSCMatrix(self.shape, self.indptr, self.indices, self.data * s[self.indices])

    def scale_cols(self, s: np.ndarray) -> "CSCMatrix":
        """Return ``A @ diag(s)``."""
        s = np.asarray(s, dtype=np.float64).ravel()
        if s.size != self.shape[1]:
            raise ShapeError(f"scale vector length {s.size} != n={self.shape[1]}")
        return CSCMatrix(
            self.shape, self.indptr, self.indices, self.data * s[self.expanded_cols()]
        )

    def map_data(self, fn) -> "CSCMatrix":
        """Apply ``fn`` to stored values only (``fn`` must map 0 → 0)."""
        new = np.asarray(fn(self.data), dtype=np.float64)
        if new.shape != self.data.shape:
            raise SparseFormatError("map_data callback changed the data length")
        return CSCMatrix(self.shape, self.indptr, self.indices, new)

    def col_sums(self) -> np.ndarray:
        """Vector of column sums, length n."""
        cum = np.concatenate([[0.0], np.cumsum(self.data)])
        return cum[self.indptr[1:]] - cum[self.indptr[:-1]]

    def row_sums(self) -> np.ndarray:
        """Vector of row sums, length m."""
        return np.bincount(self.indices, weights=self.data, minlength=self.shape[0])

    def col_slice(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(row ids, values)`` of column ``j`` as views."""
        if not 0 <= j < self.shape[1]:
            raise ShapeError(f"column {j} out of range for n={self.shape[1]}")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_dense(self, j: int) -> np.ndarray:
        """Materialize column ``j`` as a dense length-m vector."""
        rows, vals = self.col_slice(j)
        out = np.zeros(self.shape[0], dtype=np.float64)
        out[rows] = vals
        return out

    def select_cols(self, cols: np.ndarray) -> "CSCMatrix":
        """Return the submatrix of the given columns, in the given order."""
        from repro.sparse.csr import _ranges

        cols = np.asarray(cols, dtype=np.int64).ravel()
        if cols.size and (cols.min() < 0 or cols.max() >= self.shape[1]):
            raise ShapeError("column selection out of bounds")
        counts = np.diff(self.indptr)[cols]
        new_indptr = np.zeros(cols.size + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        gather = _ranges(self.indptr[cols], counts)
        return CSCMatrix(
            (self.shape[0], cols.size), new_indptr, self.indices[gather], self.data[gather]
        )

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_coo(self) -> "COOMatrix":
        """Convert to coordinate format."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            self.shape, self.indices, self.expanded_cols(), self.data,
            sum_duplicates=False,
        )

    def to_csr(self) -> "CSRMatrix":
        """Convert to compressed sparse row format."""
        return self.to_coo().to_csr()

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense float64 array."""
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.indices, self.expanded_cols()] = self.data
        return out

    def transpose(self) -> "CSRMatrix":
        """O(1) transpose: reinterpret the CSC arrays as CSR of Aᵀ."""
        from repro.sparse.csr import CSRMatrix

        m, n = self.shape
        return CSRMatrix((n, m), self.indptr, self.indices, self.data)

    @property
    def T(self) -> "CSRMatrix":
        """The O(1) transpose (see :meth:`transpose`)."""
        return self.transpose()
