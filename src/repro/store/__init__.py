"""Durable index storage: checkpoints, write-ahead log, crash recovery.

The paper's toolchain keeps a persistent "LSI database" of ``U_k``,
``Σ_k``, ``V_k`` plus labellings (§2), and its updating machinery
(folding-in Eq. 7–8, SVD-updating Eq. 10–12) assumes an index that
survives and evolves across sessions.  This package is that substrate
for the serving stack — the durability layer that turns the in-memory
:class:`~repro.updating.manager.LSIIndexManager` into an index a
production system can restart, kill, and audit:

* :mod:`repro.store.checkpoint` — atomic, checksummed, versioned
  snapshots (temp dir + fsync + rename; CRC32 per array; JSON manifest
  with format version, epoch, doc count, scheme);
* :mod:`repro.store.wal` — the append-only, torn-tail-tolerant
  write-ahead log that records every fold-in / term update /
  consolidation between checkpoints, fsynced before acknowledgment;
* :mod:`repro.store.recovery` — cold start: load the newest valid
  checkpoint, replay the WAL suffix through the manager, verify the
  result against the manifest;
* :mod:`repro.store.mmap_io` — zero-copy ``np.load(mmap_mode="r")``
  model opening for read-only serving replicas;
* :mod:`repro.store.checkpointer` — the background policy thread
  (every N records / M seconds / on consolidation) that snapshots
  without blocking the query path;
* :mod:`repro.store.lock` — the single-writer ``flock`` every
  read-write open holds, so a second writer cannot truncate or swap
  the live WAL under a running server;
* :mod:`repro.store.durable` — :class:`DurableIndexStore` (the data
  directory owner) and :class:`DurableServingState` (the server
  integration).

CLI surface: ``python -m repro serve <src> --data-dir DIR`` (warm
restarts resume the exact pre-crash index) and ``python -m repro store
{inspect,verify,compact} DIR``.
"""

from repro.store.checkpoint import (
    CHECKPOINT_FORMAT,
    SUPPORTED_CHECKPOINT_FORMATS,
    CheckpointInfo,
    latest_valid_checkpoint,
    list_checkpoints,
    read_arrays,
    verify_checkpoint,
    write_checkpoint,
)
from repro.store.checkpointer import Checkpointer, CheckpointPolicy
from repro.store.durable import (
    STORE_LAYOUT,
    DurableIndexStore,
    DurableServingState,
    publish_store_gauges,
    read_store_status,
)
from repro.store.lock import StoreLock
from repro.store.mmap_io import (
    open_checkpoint_ann,
    open_checkpoint_model,
    open_latest_ann,
    open_latest_model,
)
from repro.store.recovery import (
    RecoveryReport,
    capture_manager,
    recover_manager,
    restore_manager,
)
from repro.store.wal import WalRecord, WriteAheadLog, scan_wal, verify_wal

__all__ = [
    "CHECKPOINT_FORMAT",
    "SUPPORTED_CHECKPOINT_FORMATS",
    "CheckpointInfo",
    "latest_valid_checkpoint",
    "list_checkpoints",
    "read_arrays",
    "verify_checkpoint",
    "write_checkpoint",
    "Checkpointer",
    "CheckpointPolicy",
    "STORE_LAYOUT",
    "DurableIndexStore",
    "DurableServingState",
    "StoreLock",
    "publish_store_gauges",
    "read_store_status",
    "open_checkpoint_ann",
    "open_checkpoint_model",
    "open_latest_ann",
    "open_latest_model",
    "RecoveryReport",
    "capture_manager",
    "recover_manager",
    "restore_manager",
    "WalRecord",
    "WriteAheadLog",
    "scan_wal",
    "verify_wal",
]
