"""Real-time index maintenance (§5.6) with the managed LSI index.

Run:  python examples/incremental_indexing.py

A database that changes frequently: documents arrive in batches, the
index must stay queryable, and the manager decides — per the Table 7
cost model — when cheap folding suffices and when to consolidate with a
true SVD-update.
"""

from repro.core import project_query, retrieve
from repro.corpus import SyntheticSpec, topic_collection
from repro.text import ParsingRules, build_tdm
from repro.updating import LSIIndexManager


def main() -> None:
    col = topic_collection(
        SyntheticSpec(n_topics=5, docs_per_topic=25, doc_length=40,
                      concepts_per_topic=12, queries_per_topic=1),
        seed=61,
    )
    initial, stream = col.documents[:75], col.documents[75:]

    manager = LSIIndexManager(
        build_tdm(initial, ParsingRules()),
        k=10,
        scheme=None,
        distortion_budget=0.1,   # consolidate once folds exceed 10% of n
    )
    print(f"initial index: {manager.model}")

    query = col.queries[0]
    for batch_no, lo in enumerate(range(0, len(stream), 5)):
        batch = stream[lo : lo + 5]
        event = manager.add_texts(batch)
        print(
            f"batch {batch_no}: +{len(batch)} docs → {event.action:<10s} "
            f"pending={manager.pending:<3d} drift={event.doc_loss:.3f}  "
            f"({event.reason[:60]})"
        )
        # The index answers queries after every batch, no waiting.
        qhat = project_query(manager.model, query)
        top = retrieve(manager.model, qhat, top=1)
        print(f"          queryable: top hit for user query = {top[0][0]}")

    print(f"\nfinal index: {manager.model}")
    actions = [e.action for e in manager.events]
    print(f"maintenance history: {actions}")
    print(f"documents in consolidated matrix: {manager.tdm.n_documents}, "
          f"pending fold-ins: {manager.pending}")


if __name__ == "__main__":
    main()
