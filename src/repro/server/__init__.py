"""The async query service: the layer that *serves* the fast path.

PR 1 made a single process score queries as fast as the hardware allows
(cached :class:`~repro.serving.index.DocumentIndex`, one GEMM kernel,
argpartition top-k); PR 2 made every stage observable.  Nothing served
them: each ``repro query`` invocation reloaded the model, and the
batched GEMM only helped callers who arrived pre-batched.  This package
is the long-lived service the ROADMAP's "heavy traffic" north star
needs, stdlib-asyncio only:

* :mod:`repro.server.state` — :class:`EpochSnapshot` /
  :class:`ServingState`, the atomic reader/writer model handoff that
  lets live additions (fold-in → §4.3-policy consolidation through the
  index manager) swap epochs under in-flight queries;
* :mod:`repro.server.batching` — :class:`MicroBatcher`, the dynamic
  micro-batching scheduler that coalesces concurrent single queries
  within a ``max_batch`` / ``max_wait_ms`` window into one batched
  GEMM, preserving per-request ``top``/``threshold`` and element-
  identical results vs. the unbatched engine;
* :mod:`repro.server.admission` — :class:`AdmissionController`, the
  bounded queue with fast overload rejection, per-request deadlines,
  and the drain latch for graceful shutdown;
* :mod:`repro.server.service` — :class:`QueryService`, the transport-
  independent composition of the three, emitting ``server.*`` metrics
  and spans;
* :mod:`repro.server.http` — the stdlib HTTP/JSON front end
  (``/search``, ``/add``, ``/healthz``, ``/stats``);
* :mod:`repro.server.client` — :class:`ServerClient`, a small blocking
  client mapping HTTP failures back onto the library's exceptions.

Run one with ``python -m repro serve <docs-or-model> --port 8080``.
"""

from repro.server.admission import AdmissionController
from repro.server.batching import MicroBatcher, SearchRequest
from repro.server.client import ServerClient
from repro.server.http import start_http_server
from repro.server.service import QueryService, ServerConfig
from repro.server.state import (
    EpochSnapshot,
    ServingState,
    manager_from_texts,
    state_from_texts,
)

__all__ = [
    "AdmissionController",
    "MicroBatcher",
    "SearchRequest",
    "ServerClient",
    "start_http_server",
    "QueryService",
    "ServerConfig",
    "EpochSnapshot",
    "ServingState",
    "manager_from_texts",
    "state_from_texts",
]
