"""ANN serving tier: probe-bounded scan vs exhaustive GEMM at scale.

The serving counterpart of ``bench_ann.py``'s §5.6 curve: the same
recall-vs-cost dial, measured where it matters — through
:class:`~repro.server.state.EpochSnapshot`, the object every request in
``repro serve`` scores against.  On a large hub-structured synthetic
collection (~1M documents locally, ~150k under ``BENCH_SMOKE``) this
sweeps the probe count and reports, per level:

* **recall@10** against the exhaustive exact scan,
* **QPS** of ``snapshot.search_ann`` (probe cells → gather → exact
  rerank) vs the exact per-query ``score_batch`` + ``ranked_order``
  baseline — the path a request without ``probes`` takes.

Acceptance: some probe level reaches ≥ 0.95 recall@10 while sustaining
≥ 10× the exact scan's QPS (≥ 3× under ``BENCH_SMOKE``, where the
collection is ~17× smaller and the exact GEMM correspondingly cheap).
The sweep is recorded as ``BENCH_ann_serving.json`` when
``$BENCH_OBS_EXPORT`` is set — CI uploads it as an artifact.

Run directly::

    BENCH_SMOKE=1 PYTHONPATH=src:benchmarks python -m pytest \
        benchmarks/bench_ann_serving.py -x -q -s --benchmark-disable
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import emit
from repro.core.model import LSIModel
from repro.serving.topk import ranked_order
from repro.server.state import ServingState
from repro.text.vocabulary import Vocabulary

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_DOCS = 150_000 if SMOKE else 1_000_000
K = 32
N_HUBS = 32 if SMOKE else 64
N_QUERIES = 32 if SMOKE else 48
TOP = 10
PROBE_SWEEP = (1, 2, 4, 8, 16, 32)
MIN_RECALL = 0.95
MIN_SPEEDUP = 3.0 if SMOKE else 10.0


def _serving_model(seed: int = 11) -> LSIModel:
    """Hub-structured document coordinates straight from random factors.

    Real collections cluster (that is the §5.6 premise); documents are
    drawn around ``N_HUBS`` hub directions with moderate noise, so the
    coarse quantizer has structure to find — and queries, drawn as
    perturbed documents, have concentrated neighbourhoods.
    """
    rng = np.random.default_rng(seed)
    hubs = rng.standard_normal((N_HUBS, K))
    V = (
        hubs[rng.integers(N_HUBS, size=N_DOCS)]
        + 0.25 * rng.standard_normal((N_DOCS, K))
    )
    vocab = Vocabulary(f"t{i}" for i in range(K))
    vocab.freeze()
    return LSIModel(
        U=np.eye(K),
        s=np.sort(rng.random(K) + 0.5)[::-1],
        V=V,
        vocabulary=vocab,
        doc_ids=[f"D{j}" for j in range(N_DOCS)],
    )


def _queries(model: LSIModel, seed: int = 23) -> np.ndarray:
    """Projected query vectors: perturbed document coordinates.

    ``search_ann`` takes the pre-scaled ``qhat`` (it applies ``Σ``
    itself, like ``score_batch``), so queries live in ``V``-space.
    """
    rng = np.random.default_rng(seed)
    picks = rng.choice(model.n_documents, size=N_QUERIES, replace=False)
    return (
        model.V[picks]
        + 0.15 * rng.standard_normal((N_QUERIES, model.k))
    )


def test_ann_serving_qps_recall_sweep():
    model = _serving_model()
    state = ServingState.for_model(model)
    n_clusters = max(1, int(np.sqrt(N_DOCS)))
    t0 = time.perf_counter()
    state.train_ann(n_clusters, seed=0)
    train_seconds = time.perf_counter() - t0
    snapshot = state.current()
    queries = _queries(model)

    # Exact baseline: the per-request path a probe-less search takes —
    # one (1, k) × (k, n) scoring pass plus top-k selection per query.
    def exact_one(q: np.ndarray) -> list[int]:
        row = snapshot.score_batch(q)[0]
        return [int(j) for j in ranked_order(row, top=TOP)]

    exact_one(queries[0])  # warm-up (BLAS spin-up, page faults)
    t0 = time.perf_counter()
    exact_top = [exact_one(q) for q in queries]
    exact_qps = N_QUERIES / (time.perf_counter() - t0)

    rows = [
        f"n={N_DOCS} documents, k={K}, {n_clusters} cells "
        f"(trained in {train_seconds:.1f}s), {N_QUERIES} queries",
        f"exact scan: {exact_qps:.1f} QPS (baseline)",
        f"{'probes':>7s}{'recall@10':>11s}{'QPS':>10s}{'speedup':>9s}"
        f"{'cand frac':>11s}",
    ]
    sweep = []
    for probes in PROBE_SWEEP:
        recalls, fracs = [], []
        snapshot.search_ann(queries[0], probes=probes, top=TOP)  # warm-up
        t0 = time.perf_counter()
        results = [
            snapshot.search_ann(q, probes=probes, top=TOP) for q in queries
        ]
        qps = N_QUERIES / (time.perf_counter() - t0)
        for (pairs, stats), want in zip(results, exact_top):
            got = {j for j, _ in pairs}
            recalls.append(len(got & set(want)) / TOP)
            fracs.append(stats["candidates"] / N_DOCS)
        level = {
            "probes": probes,
            "recall_at_10": float(np.mean(recalls)),
            "qps": float(qps),
            "speedup": float(qps / exact_qps),
            "candidate_fraction": float(np.mean(fracs)),
        }
        sweep.append(level)
        rows.append(
            f"{probes:>7d}{level['recall_at_10']:>11.3f}{qps:>10.1f}"
            f"{level['speedup']:>8.1f}x{level['candidate_fraction']:>11.4f}"
        )
    emit("ANN serving tier — QPS/recall@10 vs probes (EpochSnapshot)", rows)

    # Recall is monotone non-decreasing in probes (candidate nesting).
    recalls = [level["recall_at_10"] for level in sweep]
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:])), recalls

    # The acceptance floor: some probe level holds >= MIN_RECALL
    # recall@10 at >= MIN_SPEEDUP x the exact scan's QPS.
    passing = [
        level for level in sweep
        if level["recall_at_10"] >= MIN_RECALL
        and level["speedup"] >= MIN_SPEEDUP
    ]
    best = max(
        (level for level in sweep if level["recall_at_10"] >= MIN_RECALL),
        key=lambda level: level["speedup"],
        default=None,
    )
    if os.environ.get("BENCH_OBS_EXPORT"):
        blob = {
            "bench": "ann_serving",
            "n_documents": N_DOCS,
            "k": K,
            "n_clusters": n_clusters,
            "n_queries": N_QUERIES,
            "top": TOP,
            "smoke": SMOKE,
            "train_seconds": train_seconds,
            "exact_qps": exact_qps,
            "min_recall": MIN_RECALL,
            "min_speedup": MIN_SPEEDUP,
            "sweep": sweep,
            "best_passing": best,
        }
        path = pathlib.Path("BENCH_ann_serving.json")
        path.write_text(json.dumps(blob, indent=2, sort_keys=True))
        print(f"wrote {path}")
    assert passing, (
        f"no probe level reached recall@10 >= {MIN_RECALL} at "
        f">= {MIN_SPEEDUP}x exact QPS; best above recall floor: {best}"
    )


if __name__ == "__main__":
    test_ann_serving_qps_recall_sweep()
