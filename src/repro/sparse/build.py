"""Incremental sparse-matrix assembly.

Term counting produces a stream of ``(term_id, doc_id, count)`` triples;
:class:`MatrixBuilder` buffers them in growable Python lists (amortized O(1)
append) and converts to COO/CSR/CSC once at the end — the standard
assemble-then-compress pattern.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["MatrixBuilder", "from_dense", "from_triples"]


class MatrixBuilder:
    """Accumulates (row, col, value) triples and emits sparse matrices.

    Duplicate coordinates are summed on conversion, so callers can ``add``
    the same cell repeatedly (e.g. once per token occurrence).
    """

    def __init__(self, shape: tuple[int, int]):
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise ShapeError(f"negative dimensions in shape {shape}")
        self.shape = (m, n)
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._vals: list[float] = []

    def __len__(self) -> int:
        return len(self._vals)

    def add(self, i: int, j: int, value: float = 1.0) -> None:
        """Add ``value`` to cell ``(i, j)``."""
        if not (0 <= i < self.shape[0] and 0 <= j < self.shape[1]):
            raise ShapeError(f"coordinate ({i}, {j}) outside shape {self.shape}")
        self._rows.append(i)
        self._cols.append(j)
        self._vals.append(value)

    def add_many(
        self,
        rows: Iterable[int],
        cols: Iterable[int],
        values: Iterable[float] | None = None,
    ) -> None:
        """Bulk-add triples; ``values`` defaults to all ones."""
        rows = list(rows)
        cols = list(cols)
        if values is None:
            values = [1.0] * len(rows)
        else:
            values = list(values)
        if not (len(rows) == len(cols) == len(values)):
            raise ShapeError("rows/cols/values length mismatch in add_many")
        self._rows.extend(rows)
        self._cols.extend(cols)
        self._vals.extend(values)

    def add_column(self, j: int, rows: Sequence[int], values: Sequence[float]) -> None:
        """Add a whole column's entries at once (document ingestion)."""
        self.add_many(rows, [j] * len(rows), values)

    def to_coo(self) -> COOMatrix:
        """Emit the accumulated triples as a COO matrix (duplicates summed)."""
        return COOMatrix(
            self.shape,
            np.asarray(self._rows, dtype=np.int64),
            np.asarray(self._cols, dtype=np.int64),
            np.asarray(self._vals, dtype=np.float64),
        )

    def to_csr(self) -> CSRMatrix:
        """Emit as CSR (via COO)."""
        return self.to_coo().to_csr()

    def to_csc(self) -> CSCMatrix:
        """Emit as CSC (via COO)."""
        return self.to_coo().to_csc()


def from_dense(a: np.ndarray, *, tol: float = 0.0) -> COOMatrix:
    """Sparsify a dense array, keeping entries with ``|a_ij| > tol``."""
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise ShapeError(f"from_dense expects 2-D input, got ndim={arr.ndim}")
    row, col = np.nonzero(np.abs(arr) > tol)
    return COOMatrix(arr.shape, row, col, arr[row, col], sum_duplicates=False)


def from_triples(
    shape: tuple[int, int],
    triples: Iterable[tuple[int, int, float]],
) -> COOMatrix:
    """Build a COO matrix from an iterable of ``(i, j, value)`` triples."""
    rows, cols, vals = [], [], []
    for i, j, v in triples:
        rows.append(i)
        cols.append(j)
        vals.append(v)
    return COOMatrix(
        shape,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )
