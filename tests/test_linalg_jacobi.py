"""Tests for the one-sided Jacobi SVD."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import jacobi_svd


@pytest.mark.parametrize("shape", [(1, 1), (4, 4), (8, 3), (3, 8), (20, 12)])
def test_svd_reconstruction(shape, rng):
    A = rng.standard_normal(shape)
    U, s, V = jacobi_svd(A)
    r = min(shape)
    assert U.shape == (shape[0], r) and s.shape == (r,) and V.shape == (shape[1], r)
    assert np.allclose((U * s) @ V.T, A, atol=1e-9)
    assert np.allclose(U.T @ U, np.eye(r), atol=1e-9)
    assert np.allclose(V.T @ V, np.eye(r), atol=1e-9)
    assert np.all(np.diff(s) <= 1e-12)  # descending
    assert np.all(s >= 0)


def test_matches_lapack_singular_values(rng):
    A = rng.standard_normal((15, 9))
    _, s, _ = jacobi_svd(A)
    assert np.allclose(s, np.linalg.svd(A, compute_uv=False), atol=1e-9)


def test_rank_one_matrix(rng):
    A = np.outer(rng.standard_normal(7), rng.standard_normal(4))
    U, s, V = jacobi_svd(A)
    assert np.sum(s > 1e-10) == 1
    assert s[0] == pytest.approx(np.linalg.norm(A, 2), abs=1e-9)
    assert np.allclose((U * s) @ V.T, A, atol=1e-9)
    # U is completed to full orthonormality even for null singular values
    assert np.allclose(U.T @ U, np.eye(4), atol=1e-8)


def test_zero_matrix():
    U, s, V = jacobi_svd(np.zeros((5, 3)))
    assert np.allclose(s, 0)
    assert np.allclose(U.T @ U, np.eye(3), atol=1e-8)


def test_identity():
    U, s, V = jacobi_svd(np.eye(4))
    assert np.allclose(s, 1.0)


def test_diagonal_with_known_values():
    A = np.diag([5.0, 2.0, 0.5])
    _, s, _ = jacobi_svd(A)
    assert np.allclose(s, [5.0, 2.0, 0.5])


def test_tiny_singular_values_high_relative_accuracy():
    # Graded matrix: Jacobi computes small singular values accurately.
    A = np.diag([1.0, 1e-6, 1e-12])
    _, s, _ = jacobi_svd(A)
    assert s[1] == pytest.approx(1e-6, rel=1e-10)
    assert s[2] == pytest.approx(1e-12, rel=1e-8)


def test_empty_dimensions():
    U, s, V = jacobi_svd(np.zeros((0, 3)))
    assert s.size == 0 and U.shape == (0, 0) and V.shape == (3, 0)


def test_rejects_non_matrix():
    with pytest.raises(ShapeError):
        jacobi_svd(np.zeros(4))


def test_wide_matrix_transposes_internally(rng):
    A = rng.standard_normal((3, 10))
    U, s, V = jacobi_svd(A)
    assert U.shape == (3, 3) and V.shape == (10, 3)
    assert np.allclose((U * s) @ V.T, A, atol=1e-9)
