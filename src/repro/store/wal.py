"""Append-only write-ahead log for index mutations.

Every mutation the index manager applies between checkpoints —
``add_counts`` (which ``add_texts`` normalizes into), ``add_terms``,
``consolidate`` — is appended here and fsynced *before* it is applied,
so an acknowledged fold-in is never lost: after a crash, recovery
replays the log suffix on top of the newest checkpoint.

File layout::

    [8B magic "RPWAL001"][8B little-endian base LSN]        header
    [4B payload length][4B CRC32(payload)][payload] ...     records

Payloads are UTF-8 JSON with NumPy arrays encoded losslessly (dtype +
shape + base64 of the raw little-endian bytes), so a replayed
``add_counts`` block is bit-identical to the one the crashed process
applied.  Each record carries its log sequence number (LSN); the header
stores the base LSN so truncation (``repro store compact``) preserves
the global numbering checkpoint manifests refer to.

Torn tails are expected, not fatal: a crash mid-append leaves a final
record with too few bytes or a failing checksum.  :func:`scan_wal`
stops at the first invalid record and reports it; opening the log for
appending truncates the torn suffix so new records never land after
garbage.  A checksum failure *before* the end of file means real data
corruption — ``repro store verify`` reports every such record.
"""

from __future__ import annotations

import base64
import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import StoreCorruptError, StoreError

__all__ = [
    "WAL_MAGIC",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
    "verify_wal",
    "encode_array",
    "decode_array",
]

WAL_MAGIC = b"RPWAL001"
_HEADER = struct.Struct("<8sQ")  # magic, base LSN
_FRAME = struct.Struct("<II")  # payload length, CRC32(payload)

#: Upper bound on one record's payload; anything larger is corruption.
MAX_RECORD_BYTES = 1 << 31


def encode_array(array: np.ndarray) -> dict:
    """Lossless JSON encoding of an ndarray (dtype + shape + base64)."""
    shape = list(array.shape)  # ascontiguousarray promotes 0-d to (1,)
    array = np.ascontiguousarray(array)
    return {
        "__ndarray__": True,
        "dtype": array.dtype.str,
        "shape": shape,
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(obj: dict) -> np.ndarray:
    """Inverse of :func:`encode_array` (bit-exact round trip)."""
    raw = base64.b64decode(obj["data"])
    array = np.frombuffer(raw, dtype=np.dtype(obj["dtype"]))
    return array.reshape(obj["shape"]).copy()


def _decode_payload(payload: dict) -> dict:
    return {
        key: decode_array(value)
        if isinstance(value, dict) and value.get("__ndarray__")
        else value
        for key, value in payload.items()
    }


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: its LSN, operation, and payload."""

    lsn: int
    op: str
    payload: dict


@dataclass
class WalScan:
    """Result of walking a log file front to back."""

    records: list[WalRecord] = field(default_factory=list)
    valid_end: int = _HEADER.size
    base_lsn: int = 0
    problems: list[str] = field(default_factory=list)
    torn_tail: bool = False

    @property
    def last_lsn(self) -> int:
        """LSN of the final valid record (base LSN when empty)."""
        return self.records[-1].lsn if self.records else self.base_lsn


def scan_wal(path: pathlib.Path) -> WalScan:
    """Walk the log, collecting valid records and tail diagnostics.

    Never raises on content: a missing file yields an empty scan, and
    any invalid byte sequence ends the walk with ``torn_tail=True`` and
    a problem string saying what was wrong at which offset.  (After the
    first bad frame the record boundaries are unknowable, so whether
    the cause was a crash or corruption, everything beyond it is
    unrecoverable — callers decide how loud to be.)
    """
    path = pathlib.Path(path)
    scan = WalScan()
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return scan
    if len(blob) < _HEADER.size:
        scan.problems.append(f"{path.name}: short header ({len(blob)} bytes)")
        scan.torn_tail = True
        scan.valid_end = 0
        return scan
    magic, base_lsn = _HEADER.unpack_from(blob, 0)
    if magic != WAL_MAGIC:
        scan.problems.append(f"{path.name}: bad magic {magic!r}")
        scan.torn_tail = True
        scan.valid_end = 0
        return scan
    scan.base_lsn = base_lsn
    offset = _HEADER.size
    while offset < len(blob):
        if offset + _FRAME.size > len(blob):
            scan.problems.append(
                f"{path.name}: torn frame header at offset {offset}"
            )
            scan.torn_tail = True
            break
        length, crc = _FRAME.unpack_from(blob, offset)
        start = offset + _FRAME.size
        if length > MAX_RECORD_BYTES or start + length > len(blob):
            scan.problems.append(
                f"{path.name}: torn record at offset {offset} "
                f"(length {length}, {len(blob) - start} bytes remain)"
            )
            scan.torn_tail = True
            break
        payload = blob[start:start + length]
        if zlib.crc32(payload) != crc:
            scan.problems.append(
                f"{path.name}: checksum mismatch at offset {offset}"
            )
            scan.torn_tail = True
            break
        try:
            decoded = json.loads(payload.decode("utf-8"))
            record = WalRecord(
                int(decoded.pop("lsn")),
                str(decoded.pop("op")),
                _decode_payload(decoded),
            )
        except Exception as exc:
            scan.problems.append(
                f"{path.name}: undecodable record at offset {offset}: {exc}"
            )
            scan.torn_tail = True
            break
        scan.records.append(record)
        offset = start + length
        scan.valid_end = offset
    return scan


def verify_wal(path: pathlib.Path) -> list[str]:
    """Problem strings for a log file (empty = fully valid)."""
    return scan_wal(path).problems


class WriteAheadLog:
    """The append handle a live store writes through.

    Opening an existing log scans it once: torn tails from a crash are
    truncated away (the dropped byte count is reported via
    :attr:`recovered_drop`), the LSN counter resumes from the last valid
    record, and the file handle stays open for the store's lifetime so
    an append is one write + flush + fsync.
    """

    def __init__(
        self,
        path: pathlib.Path,
        *,
        sync: bool = True,
        base_lsn: int = 0,
    ):
        self.path = pathlib.Path(path)
        self.sync = sync
        self.recovered_drop = 0
        if self.path.exists():
            scan = scan_wal(self.path)
            if scan.valid_end == 0:
                raise StoreCorruptError(
                    f"{self.path} is not a write-ahead log: "
                    + "; ".join(scan.problems)
                )
            size = self.path.stat().st_size
            if size > scan.valid_end:
                self.recovered_drop = size - scan.valid_end
                with open(self.path, "r+b") as fh:
                    fh.truncate(scan.valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
            self._base_lsn = scan.base_lsn
            self._next_lsn = scan.last_lsn + 1
            self._n_records = len(scan.records)
            self._bytes = scan.valid_end
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "wb") as fh:
                fh.write(_HEADER.pack(WAL_MAGIC, base_lsn))
                fh.flush()
                os.fsync(fh.fileno())
            self._base_lsn = base_lsn
            self._next_lsn = base_lsn + 1
            self._n_records = 0
            self._bytes = _HEADER.size
        self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------ #
    @property
    def n_records(self) -> int:
        """Valid records currently in the file."""
        return self._n_records

    @property
    def last_lsn(self) -> int:
        """LSN of the most recent record (base LSN when empty)."""
        return self._next_lsn - 1

    @property
    def size_bytes(self) -> int:
        """Current file size in bytes (header + records)."""
        return self._bytes

    # ------------------------------------------------------------------ #
    def append(self, op: str, payload: dict | None = None) -> int:
        """Durably append one record; returns its LSN.

        NumPy arrays in ``payload`` are encoded losslessly.  The record
        is fsynced before this returns (unless the log was opened with
        ``sync=False``, e.g. for benchmarks) — an LSN handed back is the
        acknowledgment contract recovery honors.
        """
        if self._fh.closed:
            raise StoreError(f"write-ahead log {self.path} is closed")
        record = {"lsn": self._next_lsn, "op": op}
        for key, value in (payload or {}).items():
            record[key] = (
                encode_array(value) if isinstance(value, np.ndarray) else value
            )
        blob = json.dumps(record).encode("utf-8")
        self._fh.write(_FRAME.pack(len(blob), zlib.crc32(blob)) + blob)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        lsn = self._next_lsn
        self._next_lsn += 1
        self._n_records += 1
        self._bytes += _FRAME.size + len(blob)
        return lsn

    def records(self, after_lsn: int = 0) -> Iterator[WalRecord]:
        """Valid records with ``lsn > after_lsn``, oldest first."""
        for record in scan_wal(self.path).records:
            if record.lsn > after_lsn:
                yield record

    def truncate(self) -> None:
        """Drop every record; the LSN counter continues where it was.

        Used by ``repro store compact`` after the log's contents have
        been folded into a fresh checkpoint: the file is rewritten as
        header-only with the base LSN advanced to the last assigned LSN,
        so record numbering stays globally monotonic.
        """
        if self._fh.closed:
            raise StoreError(f"write-ahead log {self.path} is closed")
        self._fh.close()
        self._base_lsn = self._next_lsn - 1
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(_HEADER.pack(WAL_MAGIC, self._base_lsn))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._n_records = 0
        self._bytes = _HEADER.size
        self._fh = open(self.path, "ab")

    def close(self) -> None:
        """Release the file handle (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path}, records={self._n_records}, "
            f"last_lsn={self.last_lsn})"
        )
