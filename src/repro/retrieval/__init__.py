"""Retrieval engines and interactive-retrieval machinery.

* :mod:`repro.retrieval.keyword` — the standard keyword vector method
  (SMART-style), the baseline every §5 comparison is made against.
* :mod:`repro.retrieval.engine` — the LSI retrieval engine, plus the
  common engine protocol the evaluation harness consumes.
* :mod:`repro.retrieval.feedback` — relevance feedback (§5.1): replace
  the query with relevant document vectors, or Rocchio reweighting.
* :mod:`repro.retrieval.filtering` — information filtering (§5.3):
  standing interest profiles matched against a document stream.
"""

from repro.retrieval.engine import LSIRetrieval, RetrievalEngine
from repro.retrieval.keyword import KeywordRetrieval
from repro.retrieval.feedback import (
    mean_relevant_query,
    replace_with_relevant,
    rocchio,
)
from repro.retrieval.filtering import FilteringProfile, stream_filter
from repro.retrieval.multitopic import (
    MultiTopicQuery,
    multi_topic_scores,
    multi_topic_search,
)
from repro.retrieval.composite import CompositeQuery
from repro.retrieval.ann import ClusterIndex, kmeans

__all__ = [
    "RetrievalEngine",
    "LSIRetrieval",
    "KeywordRetrieval",
    "replace_with_relevant",
    "mean_relevant_query",
    "rocchio",
    "FilteringProfile",
    "stream_filter",
    "MultiTopicQuery",
    "multi_topic_scores",
    "multi_topic_search",
    "CompositeQuery",
    "ClusterIndex",
    "kmeans",
]
