"""Cold-start recovery: checkpoint load + write-ahead-log replay.

This module owns the mapping between a live
:class:`~repro.updating.manager.LSIIndexManager` and its durable form:

* :func:`capture_manager` flattens a manager into the ``(arrays, meta)``
  pair :mod:`repro.store.checkpoint` writes.  The split exploits the
  manager's structural invariant that the serving model differs from the
  consolidated base model only by folded-in document rows — ``U``,
  ``Σ``, and the global weights are stored once;
* :func:`restore_manager` is the exact inverse (bit-identical arrays,
  no refit);
* :func:`recover_manager` is the cold-start path: load the newest valid
  checkpoint (walking back past corrupt ones), cross-check the manifest
  document count against the rebuilt manager, then replay every WAL
  record past the checkpoint's LSN through the manager's normal entry
  points.  Because each maintenance action is a deterministic function
  of manager state, the replayed index is bit-identical to the one the
  crashed process would have had after its last fsynced record.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import LSIModel
from repro.errors import StoreCorruptError, StoreError
from repro.obs.metrics import registry
from repro.obs.tracing import span
from repro.sparse.csc import CSCMatrix
from repro.store.checkpoint import latest_valid_checkpoint, read_arrays
from repro.store.wal import WalRecord, scan_wal
from repro.text.tdm import TermDocumentMatrix
from repro.text.vocabulary import Vocabulary
from repro.updating.manager import IndexEvent, LSIIndexManager
from repro.weighting.schemes import WeightingScheme

__all__ = [
    "RecoveryReport",
    "capture_manager",
    "restore_manager",
    "apply_record",
    "recover_manager",
]


@dataclass
class RecoveryReport:
    """What one cold start did, for logs and the ``store inspect`` view."""

    checkpoint_id: int
    checkpoint_path: pathlib.Path
    wal_lsn_start: int
    replayed_records: int
    torn_tail: bool
    n_documents: int
    problems: list[str] = field(default_factory=list)


# --------------------------------------------------------------------- #
# scheme (de)serialization — the manager accepts None, a name string, or
# a WeightingScheme; all three must round-trip through manifest JSON.
# --------------------------------------------------------------------- #
def _scheme_to_json(scheme) -> dict | str | None:
    if scheme is None or isinstance(scheme, str):
        return scheme
    if isinstance(scheme, WeightingScheme):
        return {"local": scheme.local, "global": scheme.global_}
    raise StoreError(f"cannot serialize weighting scheme {scheme!r}")


def _scheme_from_json(obj):
    if obj is None or isinstance(obj, str):
        return obj
    return WeightingScheme(obj["local"], obj["global"])


# --------------------------------------------------------------------- #
# capture / restore
# --------------------------------------------------------------------- #
def capture_manager(
    manager: LSIIndexManager,
) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a manager into checkpointable ``(arrays, meta)``.

    Cheap: every returned array is a reference to state the manager
    never mutates in place (maintenance replaces arrays wholesale), so
    the caller can release any lock before the arrays hit disk.  Only
    the small pending block is concatenated here.
    """
    base = manager._base_model
    model = manager.model
    vocab = model.vocabulary.to_list()
    if base.vocabulary.to_list() != vocab or (
        manager.tdm.vocabulary.to_list() != vocab
    ):
        raise StoreError(
            "manager vocabulary diverged between model, base model, and "
            "raw matrix — cannot checkpoint"
        )
    pending = (
        np.hstack([np.asarray(b) for b in manager._pending_counts])
        if manager._pending_counts
        else np.empty((model.n_terms, 0))
    )
    arrays = {
        "base_U": base.U,
        "base_s": base.s,
        "base_V": base.V,
        "base_gw": base.global_weights,
        "model_V": model.V,
        "tdm_indptr": manager.tdm.matrix.indptr,
        "tdm_indices": manager.tdm.matrix.indices,
        "tdm_data": manager.tdm.matrix.data,
        "pending": pending,
    }
    if model.U is not base.U or model.s is not base.s:
        # Fold-in shares the base factors by reference, so the common
        # case stores U/Σ once.  The fast-update ingest kernel rotates
        # them per batch; capture the serving copies too so a checkpoint
        # taken mid-pending restores bit-identically.
        arrays["model_U"] = model.U
        arrays["model_s"] = model.s
    meta = {
        "k": manager.k,
        "seed": manager.seed,
        "scheme": _scheme_to_json(manager.scheme),
        "model_scheme": {
            "local": model.scheme.local,
            "global": model.scheme.global_,
        },
        "distortion_budget": manager.distortion_budget,
        "drift_cap": manager.drift_cap,
        "exact_updates": manager.exact_updates,
        "ingest_method": manager.ingest_method,
        "fast_update_rank": manager.fast_update_rank,
        "vocabulary": vocab,
        "doc_ids": list(model.doc_ids),
        "base_doc_ids": list(base.doc_ids),
        "tdm_doc_ids": list(manager.tdm.doc_ids),
        "tdm_shape": list(manager.tdm.shape),
        "pending_ids": list(manager._pending_ids),
        "provenance": model.provenance,
        "base_provenance": base.provenance,
        "n_documents": model.n_documents,
        "events": [
            {
                "action": e.action,
                "n_documents": e.n_documents,
                "pending_before": e.pending_before,
                "doc_loss": e.doc_loss,
                "reason": e.reason,
            }
            for e in manager.events
        ],
    }
    return arrays, meta


def restore_manager(
    arrays: dict[str, np.ndarray], meta: dict
) -> LSIIndexManager:
    """Inverse of :func:`capture_manager` — a manager with no refit."""
    vocabulary = Vocabulary(meta["vocabulary"]).freeze()
    model_scheme = WeightingScheme(
        meta["model_scheme"]["local"], meta["model_scheme"]["global"]
    )
    base = LSIModel(
        U=np.asarray(arrays["base_U"]),
        s=np.asarray(arrays["base_s"]),
        V=np.asarray(arrays["base_V"]),
        vocabulary=vocabulary,
        doc_ids=list(meta["base_doc_ids"]),
        scheme=model_scheme,
        global_weights=np.asarray(arrays["base_gw"]),
        provenance=meta["base_provenance"],
    )
    from dataclasses import replace

    model = replace(
        base,
        V=np.asarray(arrays["model_V"]),
        doc_ids=list(meta["doc_ids"]),
        provenance=meta["provenance"],
    )
    if "model_U" in arrays:
        model = replace(
            model,
            U=np.asarray(arrays["model_U"]),
            s=np.asarray(arrays["model_s"]),
        )
    m, n = (int(x) for x in meta["tdm_shape"])
    tdm = TermDocumentMatrix(
        CSCMatrix(
            (m, n),
            np.asarray(arrays["tdm_indptr"]),
            np.asarray(arrays["tdm_indices"]),
            np.asarray(arrays["tdm_data"]),
        ),
        vocabulary,
        list(meta["tdm_doc_ids"]),
    )
    pending = np.asarray(arrays["pending"], dtype=np.float64)
    return LSIIndexManager.restore(
        tdm=tdm,
        k=int(meta["k"]),
        model=model,
        base_model=base,
        pending_counts=[pending] if pending.shape[1] else [],
        pending_ids=meta["pending_ids"],
        events=[IndexEvent(**e) for e in meta["events"]],
        scheme=_scheme_from_json(meta["scheme"]),
        distortion_budget=float(meta["distortion_budget"]),
        drift_cap=float(meta["drift_cap"]),
        exact_updates=bool(meta["exact_updates"]),
        seed=int(meta["seed"]),
        # Absent in pre-writable-cluster checkpoints: default to the
        # historical fold-in behaviour.
        ingest_method=meta.get("ingest_method", "fold-in"),
        fast_update_rank=int(meta.get("fast_update_rank", 8)),
    )


# --------------------------------------------------------------------- #
# replay
# --------------------------------------------------------------------- #
def apply_record(manager: LSIIndexManager, record: WalRecord) -> None:
    """Apply one WAL record through the manager's normal entry points."""
    if record.op == "add_counts":
        manager.add_counts(
            record.payload["counts"], list(record.payload["doc_ids"])
        )
    elif record.op == "add_terms":
        manager.add_terms(
            record.payload["counts"],
            list(record.payload["terms"]),
            global_weights=record.payload.get("global_weights"),
        )
    elif record.op == "consolidate":
        manager.consolidate()
    else:
        raise StoreCorruptError(
            f"write-ahead log record {record.lsn} has unknown op "
            f"{record.op!r}"
        )


def recover_manager(
    checkpoints_dir: pathlib.Path, wal_path: pathlib.Path
) -> tuple[LSIIndexManager, RecoveryReport]:
    """Cold-start: newest valid checkpoint + WAL suffix replay.

    Raises :class:`StoreError` when no valid checkpoint exists, and
    :class:`StoreCorruptError` when the surviving state is internally
    inconsistent (manifest/doc-count mismatch, a gap between the
    checkpoint's WAL position and the log's first surviving record).
    """
    with span("store.recover"):
        info, skipped = latest_valid_checkpoint(checkpoints_dir)
        if info is None:
            detail = f" ({'; '.join(skipped)})" if skipped else ""
            raise StoreError(
                f"no valid checkpoint under {checkpoints_dir}{detail}"
            )
        manager = restore_manager(
            read_arrays(info.path, verify=True), info.meta
        )
        if manager.n_documents != int(info.meta["n_documents"]):
            raise StoreCorruptError(
                f"checkpoint {info.path.name} manifest records "
                f"{info.meta['n_documents']} documents but the recovered "
                f"index has {manager.n_documents}"
            )
        wal_lsn = int(info.meta.get("wal_lsn", 0))
        scan = scan_wal(wal_path)
        replayed = 0
        expected = wal_lsn + 1
        for record in scan.records:
            if record.lsn <= wal_lsn:
                continue
            if record.lsn != expected:
                raise StoreCorruptError(
                    f"write-ahead log gap: checkpoint "
                    f"{info.path.name} ends at LSN {wal_lsn} but the "
                    f"next surviving record is LSN {record.lsn} "
                    f"(expected {expected})"
                )
            apply_record(manager, record)
            replayed += 1
            expected += 1
        registry.set_gauge("store.last_recovery_replayed", replayed)
        registry.inc("store.recoveries_total")
        report = RecoveryReport(
            checkpoint_id=info.checkpoint_id,
            checkpoint_path=info.path,
            wal_lsn_start=wal_lsn,
            replayed_records=replayed,
            torn_tail=scan.torn_tail,
            n_documents=manager.n_documents,
            problems=list(skipped) + list(scan.problems),
        )
        return manager, report
