"""Fuzzy code search (§5.4): the NETLIB application.

"LSI has been incorporated as a fuzzy search option in NETLIB for
retrieving algorithms, code descriptions, and short articles."  The
searcher indexes routine descriptions with LSI, answers task-phrased
queries ("fit a regression line") with routines whose descriptions never
contain those words, and exposes the exact-name lookup that fuzzy search
replaced as the contrast baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.build import fit_lsi
from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.core.similarity import rank_documents
from repro.corpus.netlib_like import NetlibCatalogue
from repro.errors import ShapeError
from repro.weighting.schemes import WeightingScheme

__all__ = ["NetlibSearch"]


@dataclass
class NetlibSearch:
    """LSI-backed fuzzy search over a routine catalogue."""

    catalogue: NetlibCatalogue
    model: LSIModel

    @classmethod
    def build(
        cls,
        catalogue: NetlibCatalogue,
        *,
        k: int = 16,
        scheme: WeightingScheme | str | None = "log_entropy",
        seed=0,
    ) -> "NetlibSearch":
        """Index routine descriptions *and* digest articles together.

        The digests never come back as results, but they are what puts
        user wording ("regression", "fit") into the same latent factors
        as catalogue jargon ("least squares") and routine names — fuzzy
        search does not work without that bridge.
        """
        if not catalogue.descriptions:
            raise ShapeError("catalogue is empty")
        texts = list(catalogue.descriptions) + list(catalogue.digests)
        ids = list(catalogue.names) + [
            f"digest{i}" for i in range(len(catalogue.digests))
        ]
        model = fit_lsi(
            texts, min(k, len(texts)), scheme=scheme, doc_ids=ids, seed=seed
        )
        return cls(catalogue, model)

    # ------------------------------------------------------------------ #
    def fuzzy(self, query: str, *, top: int = 5) -> list[tuple[str, float]]:
        """Task-phrased fuzzy search: ranked routine names (digest
        articles are filtered from the results)."""
        qhat = project_query(self.model, query)
        routines = set(self.catalogue.names)
        ranked = [
            (d, c) for d, c in rank_documents(self.model, qhat)
            if d in routines
        ]
        return ranked[:top]

    def exact(self, name: str) -> list[str]:
        """The pre-LSI behaviour: exact (substring) name lookup."""
        needle = name.lower()
        return [n for n in self.catalogue.names if needle in n.lower()]

    def more_like(self, name: str, *, top: int = 5) -> list[tuple[str, float]]:
        """Routines similar to a known one (query-by-example)."""
        from repro.core.similarity import doc_doc_similarities

        import numpy as np

        sims = doc_doc_similarities(self.model, name)
        order = np.argsort(-sims, kind="stable")
        out = []
        for j in order:
            candidate = self.model.doc_ids[int(j)]
            if candidate == name:
                continue
            out.append((candidate, float(sims[j])))
            if len(out) >= top:
                break
        return out
