"""Tests for TestCollection and the MED worked-example corpus."""

import numpy as np
import pytest

from repro.corpus import TestCollection, med_collection, med_matrix, med_update_matrix
from repro.corpus.med import (
    MED_DOC_IDS,
    MED_TERMS,
    MED_TOPICS,
    MED_UPDATE_TOPICS,
    TABLE3,
    UPDATE_COLUMNS,
)
from repro.errors import EvaluationError


def test_collection_validation():
    with pytest.raises(EvaluationError):
        TestCollection(["a"], ["q"], [])  # judgment count mismatch
    with pytest.raises(EvaluationError):
        TestCollection(["a"], ["q"], [{5}])  # judges nonexistent doc
    with pytest.raises(EvaluationError):
        TestCollection(["a"], ["q"], [{0}], doc_ids=["x", "y"])


def test_collection_defaults():
    col = TestCollection(["a", "b"], ["q"], [{0}])
    assert col.doc_ids == ["D1", "D2"]
    assert col.query_ids == ["Q1"]
    assert col.n_documents == 2 and col.n_queries == 1
    assert col.relevant(0) == {0}


def test_split_documents():
    col = TestCollection(["a", "b", "c", "d"], ["q"], [{0, 2, 3}])
    head, tail_docs, tail_rel = col.split_documents(2)
    assert head.n_documents == 2
    assert head.relevant(0) == {0}
    assert tail_docs == ["c", "d"]
    assert tail_rel == [{0, 1}]
    with pytest.raises(EvaluationError):
        col.split_documents(0)
    with pytest.raises(EvaluationError):
        col.split_documents(9)


def test_subset_queries():
    col = TestCollection(["a", "b"], ["q1", "q2"], [{0}, {1}])
    sub = col.subset_queries([1])
    assert sub.n_queries == 1
    assert sub.relevant(0) == {1}
    assert sub.queries == ["q2"]


def test_with_documents_replacement():
    col = TestCollection(["a", "b"], ["q"], [{0}])
    rep = col.with_documents(["x", "y"])
    assert rep.documents == ["x", "y"]
    assert rep.relevant(0) == {0}
    with pytest.raises(EvaluationError):
        col.with_documents(["only-one"])


# --------------------------------------------------------------------- #
# MED example data
# --------------------------------------------------------------------- #
def test_med_topics_complete():
    assert len(MED_TOPICS) == 14
    assert len(MED_UPDATE_TOPICS) == 2
    assert list(MED_TOPICS) == MED_DOC_IDS


def test_table3_is_binary_and_matches_constants():
    assert TABLE3.shape == (18, 14)
    assert set(np.unique(TABLE3)) <= {0.0, 1.0}
    assert len(MED_TERMS) == 18
    # Row sums ≥ 2 (every keyword appears in more than one topic).
    assert np.all(TABLE3.sum(axis=1) >= 2)


def test_med_matrix_labels():
    tm = med_matrix()
    assert tm.vocabulary.to_list() == MED_TERMS
    assert tm.doc_ids == MED_DOC_IDS
    assert tm.vocabulary.frozen


def test_update_columns_match_topic_texts():
    # M15: behavior, oestrogen, rats, rise; M16: depressed, fast,
    # patients, pressure.
    m15_terms = {MED_TERMS[i] for i in np.flatnonzero(UPDATE_COLUMNS[:, 0])}
    m16_terms = {MED_TERMS[i] for i in np.flatnonzero(UPDATE_COLUMNS[:, 1])}
    assert m15_terms == {"behavior", "oestrogen", "rats", "rise"}
    assert m16_terms == {"depressed", "fast", "patients", "pressure"}
    um = med_update_matrix()
    assert um.doc_ids == ["M15", "M16"]


def test_med_collection_judgments():
    col = med_collection()
    assert col.n_documents == 14 and col.n_queries == 1
    rel_ids = {col.doc_ids[j] for j in col.relevant(0)}
    assert rel_ids == {"M8", "M9", "M12"}
