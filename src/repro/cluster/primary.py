"""The primary writer: the cluster's single ingest process.

Exactly one writer owns the durable store's ``flock`` (the workers are
lock-free checkpoint consumers), so the cluster's write path is the
store's write path: every ``/add`` batch is normalized to raw counts,
appended + fsynced to the write-ahead log, and applied to the live
:class:`~repro.updating.manager.LSIIndexManager` — acknowledged means
WAL-fsynced, and a SIGKILL mid-stream recovers bit-identically on
restart (the store's standing contract).  The default ingest kernel is
the Vecharynski-Saad fast update (:mod:`repro.updating.fast_update`):
near-fold-in cost per batch, but the factors stay orthonormal, so
sustained ingest does not accumulate the §4.3 drift folding-in would;
consolidation still runs the exact SVD-update on the pristine base.

Propagation is pull-free: on the seal policy (records or age), the
writer seals a format-v2 checkpoint (ANN quantizer retrained inside),
derives the next :class:`~repro.cluster.plan.ShardPlan` from the
:class:`~repro.store.durable.SealInfo`, points the supervisor's future
restarts at it, broadcasts a ``bump`` control frame to every live
worker, and only after the acks publishes the new
:class:`~repro.cluster.epochs.EpochHandle` to the front end.  That
ordering is the zero-drop guarantee: a query that snapshotted the old
handle keeps scattering with the old epoch, which every worker still
holds as *previous*; queries born after the publish carry the new
epoch, which every acked worker already serves.  Laggards (a worker
that timed out its bump) are re-bumped each poll and their rows simply
degrade that epoch's answers to ``partial`` in the interim.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import pathlib
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.epochs import EpochHandle, handle_for_checkpoint
from repro.errors import ClusterError
from repro.obs.metrics import registry
from repro.obs.tracing import span
from repro.store.durable import DurableIndexStore, SealInfo

__all__ = ["WriterConfig", "PrimaryWriter"]

#: GIL switch interval while ingest compute co-resides with the scatter
#: loop.  CPython's 5 ms default lets one store operation monopolize the
#: interpreter for 5 ms at a stretch — directly visible as query-latency
#: spikes on small machines.  1 ms keeps the scatter path responsive at
#: negligible throughput cost for the batch-sized kernels the writer runs.
_WRITER_SWITCH_INTERVAL_S = 0.001

#: Niceness delta for the writer's compute thread (Linux schedules
#: niceness per thread).  Ingest is throughput work; the scatter loop
#: and the shard workers are latency work — same trade RocksDB makes for
#: its compaction threads.
_WRITER_NICENESS = 5


def _deprioritize_current_thread() -> None:
    """Best-effort: lower the calling thread's scheduling priority.

    Linux schedules niceness per thread (threads are LWPs), so passing
    the native thread id to ``setpriority`` nices just this thread, not
    the process — the scatter loop keeps its priority.
    """
    with contextlib.suppress(AttributeError, OSError):
        os.setpriority(
            os.PRIO_PROCESS, threading.get_native_id(), _WRITER_NICENESS
        )


@dataclass(frozen=True)
class WriterConfig:
    """Tunables for the ingest tier (CLI flags map 1:1 onto these)."""

    #: Seal once this many WAL records are dirty; ``None`` disables.
    seal_every_records: int | None = 64
    #: Seal dirty state older than this many seconds; ``None`` disables.
    seal_interval_s: float | None = 15.0
    #: Seal-policy poll cadence (also the laggard re-bump cadence).
    poll_seconds: float = 0.5
    #: Per-batch ingest kernel: ``"fast-update"`` (default) or
    #: ``"fold-in"`` (the paper's Eq. 7 baseline).
    ingest_method: str = "fast-update"
    #: Residual sketch rank for the fast-update kernel.
    fast_update_rank: int = 8
    #: ANN cells per sealed checkpoint: ``None`` auto, ``0`` disables.
    ann_clusters: int | None = None
    #: Checkpoints retained on disk.  Must be >= 3 under a cluster: the
    #: serving epoch, its predecessor (the workers' bump window), and
    #: the next seal must coexist.
    retain: int = 3
    #: Per-bump-broadcast ack deadline, seconds.
    bump_timeout_s: float = 30.0


class PrimaryWriter:
    """Owns the store; seals, bumps, and publishes epochs.

    Constructing the writer opens (and therefore locks) the store and
    immediately seals — ``reason="recover"`` when the WAL held records
    past the last checkpoint (so the cluster boots serving *every*
    acknowledged document), ``reason="adopt"`` otherwise (so the first
    served checkpoint records this writer's ingest configuration, which
    WAL replay determinism depends on).  :meth:`start` then binds the
    serving side and runs the seal loop on its event loop.
    """

    def __init__(
        self,
        data_dir: pathlib.Path,
        config: WriterConfig | None = None,
    ):
        self.data_dir = pathlib.Path(data_dir)
        self.config = config or WriterConfig()
        if self.config.retain < 3:
            raise ClusterError(
                "a writable cluster needs retain >= 3 checkpoints "
                "(serving epoch + bump window + next seal)"
            )
        self.store = DurableIndexStore.open(
            self.data_dir,
            retain=self.config.retain,
            ann_clusters=self.config.ann_clusters,
        )
        manager = self.store.manager
        recovered_dirty = self.store.dirty_records
        reconfigured = (
            manager.ingest_method != self.config.ingest_method
            or manager.fast_update_rank != self.config.fast_update_rank
        )
        # Reconfigure *after* recovery replayed the WAL under the
        # checkpoint's persisted settings — changing the kernel mid-log
        # would break bit-identical replay.  The immediate seal below
        # stamps the new settings into the manifest before any new
        # record can land under them.
        manager.ingest_method = self.config.ingest_method
        manager.fast_update_rank = self.config.fast_update_rank
        if recovered_dirty > 0:
            self.store.seal(reason="recover")
        elif reconfigured or self.store.last_seal is None:
            self.store.seal(reason="adopt")
        self.seals_total = 0
        self.last_seal_unix = time.time()
        self._service = None
        self._task: asyncio.Task | None = None
        #: A sealed handle whose bump did not reach quorum yet: the old
        #: epoch keeps serving, and the poll loop retries the publish.
        self._pending_handle: EpochHandle | None = None
        self._stopped = False
        self._seal_guard = asyncio.Lock()
        # All store compute runs on this one de-prioritized thread: the
        # store is single-writer (one thread serializes adds and seals
        # structurally), and on small machines the scatter loop must
        # win the CPU whenever it is runnable — ingest is throughput
        # work, queries are latency work.
        self._pool = ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix="repro-writer",
            initializer=_deprioritize_current_thread,
        )
        self._prior_switch_interval: float | None = None
        self._publish_writer_gauges()

    # ------------------------------------------------------------------ #
    @property
    def sealed_epoch(self) -> int:
        """Epoch of the newest seal (== its WAL LSN)."""
        seal = self.store.last_seal
        return seal.epoch if seal is not None else 0

    @property
    def wal_lsn(self) -> int:
        """Last acknowledged WAL LSN — everything durable so far."""
        return self.store.wal.last_lsn

    def lag_records(self, serving_epoch: int) -> int:
        """Records acknowledged but not yet served at ``serving_epoch``."""
        return max(0, self.wal_lsn - int(serving_epoch))

    def describe(self, serving_epoch: int) -> dict:
        """The healthz/status ``writer`` block."""
        manager = self.store.manager
        return {
            "enabled": True,
            "wal_lsn": self.wal_lsn,
            "sealed_epoch": self.sealed_epoch,
            "lag_records": self.lag_records(serving_epoch),
            "pending_documents": manager.pending,
            "n_documents": manager.n_documents,
            "ingest_method": manager.ingest_method,
            "fast_update_rank": manager.fast_update_rank,
            "seals_total": self.seals_total,
            "last_seal_unix": self.last_seal_unix,
        }

    def _publish_writer_gauges(self) -> None:
        registry.set_gauge("cluster.writer.wal_lsn", self.wal_lsn)
        registry.set_gauge("cluster.writer.sealed_epoch", self.sealed_epoch)
        registry.set_gauge(
            "cluster.writer.pending_documents", self.store.manager.pending
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, service) -> None:
        """Bind the serving side and start the seal loop (idempotent)."""
        self._service = service
        if self._prior_switch_interval is None:
            current = sys.getswitchinterval()
            if current > _WRITER_SWITCH_INTERVAL_S:
                self._prior_switch_interval = current
                sys.setswitchinterval(_WRITER_SWITCH_INTERVAL_S)
        if self._task is None or self._task.done():
            self._stopped = False
            self._task = asyncio.ensure_future(self._seal_loop())

    async def stop(self, *, flush: bool = True) -> None:
        """Stop sealing and close the store (final flush checkpoint)."""
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(
            self._pool, lambda: self.store.close(flush=flush)
        )
        self._pool.shutdown(wait=True)
        if self._prior_switch_interval is not None:
            sys.setswitchinterval(self._prior_switch_interval)
            self._prior_switch_interval = None

    # ------------------------------------------------------------------ #
    # the write path
    # ------------------------------------------------------------------ #
    async def add_texts(
        self, texts: Sequence[str], doc_ids: Sequence[str] | None = None
    ) -> dict:
        """WAL-logged ingest; returns once the batch is durable.

        Runs the blocking store write on the writer's de-prioritized
        compute thread so the event loop keeps scattering queries (and
        concurrent batches serialize structurally — the pool has one
        thread).  The response's ``epoch`` is the
        WAL LSN that acknowledged the batch — queries see the documents
        after the next seal/bump, which ``lag_records`` tracks.
        """
        loop = asyncio.get_event_loop()
        texts = list(texts)
        ids = None if doc_ids is None else list(doc_ids)
        t0 = time.perf_counter()
        event = await loop.run_in_executor(
            self._pool, lambda: self.store.add_texts(texts, ids)
        )
        registry.observe(
            "cluster.writer.ingest_seconds", time.perf_counter() - t0
        )
        registry.inc("cluster.writer.documents_total", len(texts))
        self._publish_writer_gauges()
        return {
            "epoch": self.wal_lsn,
            "n_documents": self.store.manager.n_documents,
            "action": event.action,
            "reason": event.reason,
            "durable": True,
        }

    # ------------------------------------------------------------------ #
    # seal → bump → publish
    # ------------------------------------------------------------------ #
    def _seal_due(self) -> str | None:
        """The seal trigger that fired, or ``None`` (mirrors the
        checkpointer policy, evaluated writer-side so the bump can
        follow the seal synchronously)."""
        dirty = self.store.dirty_records
        cfg = self.config
        if cfg.seal_every_records is not None and (
            dirty >= cfg.seal_every_records
        ):
            return f"wal_records>={cfg.seal_every_records}"
        if (
            cfg.seal_interval_s is not None
            and dirty > 0
            and time.time() - self.last_seal_unix >= cfg.seal_interval_s
        ):
            return f"age>={cfg.seal_interval_s:g}s"
        return None

    async def seal_now(self, reason: str = "manual") -> EpochHandle:
        """Seal + bump + publish immediately (flush/maintenance path)."""
        async with self._seal_guard:
            return await self._seal_and_bump(reason)

    async def maybe_seal(self) -> EpochHandle | None:
        """Evaluate the policy once; seal/bump/publish when due."""
        async with self._seal_guard:
            reason = self._seal_due()
            if reason is None:
                return None
            return await self._seal_and_bump(reason)

    async def _seal_and_bump(self, reason: str) -> EpochHandle:
        service = self._service
        if service is None:
            raise ClusterError("primary writer is not bound to a service")
        loop = asyncio.get_event_loop()
        with span("cluster.writer.seal", reason=reason):
            t0 = time.perf_counter()
            seal: SealInfo = await loop.run_in_executor(
                self._pool, lambda: self.store.seal(reason=reason)
            )
            registry.observe(
                "cluster.writer.seal_seconds", time.perf_counter() - t0
            )
        self.seals_total += 1
        self.last_seal_unix = time.time()
        registry.inc("cluster.writer.seals_total")
        handle = handle_for_checkpoint(
            seal.path,
            {"epoch": seal.epoch},
            service.plan.n_workers,
            replication=service.plan.replication,
        )
        # Ordering is the zero-drop contract (module docstring): future
        # restarts first, then the workers, then — only once a quorum of
        # every range's replicas acked — the front end's handle.  A bump
        # that misses quorum parks the handle and the poll loop retries:
        # the old epoch keeps serving (every worker retains it) and no
        # write is lost — the WAL already holds the records the next
        # successful publish will serve.
        published = await service.propagate_handle(
            handle, bump_timeout=self.config.bump_timeout_s
        )
        self._pending_handle = None if published else handle
        self._publish_writer_gauges()
        return handle

    async def _rebump_laggards(self) -> None:
        """Re-broadcast the current plan to workers behind the epoch.

        Retries a quorum-parked handle first — once enough replicas
        remap, the publish completes here — then re-bumps any worker
        that is up but behind the *published* epoch (its rows would
        otherwise fail over to siblings until it catches up).
        """
        service = self._service
        if service is None:
            return
        pending = self._pending_handle
        if pending is not None and pending.epoch > service.plan.epoch:
            published = await service.propagate_handle(
                pending, bump_timeout=self.config.bump_timeout_s
            )
            if published:
                self._pending_handle = None
            return
        plan = service.plan
        behind = [
            row["worker"]
            for row in service.supervisor.describe()
            if row["state"] == "up" and row["epoch"] != plan.epoch
        ]
        if not behind:
            return
        acks = await service.router.broadcast_bump(
            plan, timeout=self.config.bump_timeout_s
        )
        for wid, epoch in acks.items():
            service.supervisor.note_epoch(wid, epoch)

    async def _seal_loop(self) -> None:
        while not self._stopped:
            await asyncio.sleep(self.config.poll_seconds)
            if self._stopped:
                return
            try:
                await self.maybe_seal()
                await self._rebump_laggards()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 — sealing must retry, not die
                registry.inc("cluster.writer.seal_errors_total")
