"""Collection/matrix diagnostics.

The paper characterizes its matrices by exactly these statistics — "Such
term by document matrices are quite sparse, containing only .001-.002%
non-zero entries" — and the SVD backend choice (dense vs Lanczos) as
well as the Table 7 cost model consume them.  :func:`matrix_profile`
computes the profile once; `repro.corpus` generators and the benches
print it so every experiment records the substrate it ran on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MatrixProfile", "matrix_profile"]


@dataclass(frozen=True)
class MatrixProfile:
    """Shape/sparsity/occupancy statistics of a term-document matrix.

    Attributes
    ----------
    shape:
        ``(m, n)``.
    nnz:
        Stored entries.
    density_pct:
        ``100 · nnz / (m·n)`` — the paper's percentage convention.
    row_nnz_mean / row_nnz_max:
        Occupancy of term rows (documents per term).
    col_nnz_mean / col_nnz_max:
        Occupancy of document columns (distinct terms per document).
    value_mean / value_max:
        Stored-value statistics (term frequencies before weighting).
    """

    shape: tuple[int, int]
    nnz: int
    density_pct: float
    row_nnz_mean: float
    row_nnz_max: int
    col_nnz_mean: float
    col_nnz_max: int
    value_mean: float
    value_max: float

    def summary(self) -> str:
        """One-line profile in the paper's density-percentage idiom."""
        m, n = self.shape
        return (
            f"{m}×{n}, nnz={self.nnz} ({self.density_pct:.4f}% non-zero), "
            f"terms/doc mean {self.col_nnz_mean:.1f} max {self.col_nnz_max}, "
            f"docs/term mean {self.row_nnz_mean:.1f} max {self.row_nnz_max}"
        )


def matrix_profile(matrix) -> MatrixProfile:
    """Profile any :mod:`repro.sparse` matrix (COO, CSR or CSC)."""
    m, n = matrix.shape
    nnz = matrix.nnz
    if hasattr(matrix, "expanded_rows"):       # CSR
        rows = matrix.expanded_rows()
        cols = matrix.indices
    elif hasattr(matrix, "expanded_cols"):     # CSC
        rows = matrix.indices
        cols = matrix.expanded_cols()
    else:                                      # COO
        rows = matrix.row
        cols = matrix.col
    row_counts = np.bincount(rows, minlength=m) if nnz else np.zeros(m, int)
    col_counts = np.bincount(cols, minlength=n) if nnz else np.zeros(n, int)
    values = matrix.data
    cells = m * n
    return MatrixProfile(
        shape=(m, n),
        nnz=int(nnz),
        density_pct=100.0 * nnz / cells if cells else 0.0,
        row_nnz_mean=float(row_counts.mean()) if m else 0.0,
        row_nnz_max=int(row_counts.max(initial=0)),
        col_nnz_mean=float(col_counts.mean()) if n else 0.0,
        col_nnz_max=int(col_counts.max(initial=0)),
        value_mean=float(values.mean()) if nnz else 0.0,
        value_max=float(values.max(initial=0.0)) if nnz else 0.0,
    )
