"""Scaled-down TREC analogue (§5.3, TREC).

What distinguished TREC from the earlier IR collections, per the paper:

* scale — too large to decompose whole, motivating the sample-then-fold
  pipeline ("a sample of about 70,000 documents ... Documents not in the
  original LSI analysis were folded-in");
* query style — "very long and detailed descriptions, averaging more than
  50 words", which *shrinks* LSI's advantage ("smaller advantages would be
  expected for LSI or any other methods that attempt to enhance users
  queries").

This generator reuses the synthetic topic model but emits long, detailed
queries built from many concepts of the target topic *including* multiple
surface forms — rich queries that already cover the synonym space.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.collection import TestCollection
from repro.corpus.synthetic import SyntheticSpec, _surface_forms, _zipf_probs
from repro.util.rng import ensure_rng

__all__ = ["trec_like_collection"]


def trec_like_collection(
    *,
    n_topics: int = 10,
    docs_per_topic: int = 60,
    doc_length: int = 80,
    query_length: int = 50,
    queries_per_topic: int = 2,
    synonyms_per_concept: int = 3,
    concepts_per_topic: int = 25,
    seed=0,
) -> TestCollection:
    """Generate a collection with TREC-style long queries.

    Queries sample ``query_length`` tokens from the target topic's
    concepts with *uniform* coverage of surface forms — the "good initial
    queries" the paper credits for LSI's reduced (but still positive)
    advantage on TREC.
    """
    spec = SyntheticSpec(
        n_topics=n_topics,
        concepts_per_topic=concepts_per_topic,
        synonyms_per_concept=synonyms_per_concept,
        docs_per_topic=docs_per_topic,
        doc_length=doc_length,
        queries_per_topic=0,  # queries generated here instead
        background_vocab=40,
        background_rate=0.12,
    )
    rng = ensure_rng(seed)
    forms = _surface_forms(spec, rng)
    background = [f"bg{w}" for w in range(spec.background_vocab)]

    documents: list[str] = []
    doc_topic: list[int] = []
    for t in range(n_topics):
        concept_probs = _zipf_probs(concepts_per_topic, rng)
        for _d in range(docs_per_topic):
            preferred = rng.integers(synonyms_per_concept, size=concepts_per_topic)
            tokens = []
            for _w in range(doc_length):
                if rng.random() < spec.background_rate:
                    tokens.append(background[int(rng.integers(len(background)))])
                    continue
                c = int(rng.choice(concepts_per_topic, p=concept_probs))
                tokens.append(forms[t][c][int(preferred[c])])
            documents.append(" ".join(tokens))
            doc_topic.append(t)

    queries: list[str] = []
    relevance: list[set[int]] = []
    for t in range(n_topics):
        rel = {j for j, dt in enumerate(doc_topic) if dt == t}
        for _q in range(queries_per_topic):
            tokens = []
            for _w in range(query_length):
                c = int(rng.integers(concepts_per_topic))
                s = int(rng.integers(synonyms_per_concept))
                tokens.append(forms[t][c][s])
            queries.append(" ".join(tokens))
            relevance.append(set(rel))

    return TestCollection(
        documents=documents,
        queries=queries,
        relevance=relevance,
        name=f"trec-like-{n_topics}x{docs_per_topic}",
    )
