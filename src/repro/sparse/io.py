"""Plain-text coordinate-format persistence for sparse matrices.

The format is the 1990s-era exchange style the paper's software ecosystem
(SVDPACKC, Harwell–Boeing tooling) grew out of, simplified to the
MatrixMarket-like coordinate layout::

    %%repro coordinate
    <m> <n> <nnz>
    <row> <col> <value>     (1-based indices, one entry per line)

Round-trips exactly for float64 values (written with repr precision).
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.coo import COOMatrix

__all__ = ["save_coordinate_text", "load_coordinate_text"]

_HEADER = "%%repro coordinate"


def save_coordinate_text(path: Union[str, os.PathLike], matrix) -> None:
    """Write any of the three sparse formats to ``path``.

    The matrix is converted to COO first; entries are written row-major.
    """
    coo = matrix if isinstance(matrix, COOMatrix) else matrix.to_coo()
    m, n = coo.shape
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"{_HEADER}\n{m} {n} {coo.nnz}\n")
        for i, j, v in zip(coo.row.tolist(), coo.col.tolist(), coo.data.tolist()):
            fh.write(f"{i + 1} {j + 1} {v!r}\n")


def load_coordinate_text(path: Union[str, os.PathLike]) -> COOMatrix:
    """Read a matrix previously written by :func:`save_coordinate_text`."""
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().strip()
        if header != _HEADER:
            raise SparseFormatError(f"unrecognized header {header!r} in {path}")
        dims = fh.readline().split()
        if len(dims) != 3:
            raise SparseFormatError("malformed dimension line")
        m, n, nnz = (int(d) for d in dims)
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = fh.readline().split()
            if len(parts) != 3:
                raise SparseFormatError(f"malformed entry line {k + 3} in {path}")
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = float(parts[2])
    return COOMatrix((m, n), rows, cols, vals, sum_duplicates=False)
