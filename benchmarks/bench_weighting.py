"""§5.1 (Term Weighting) — weighting-scheme ablation.

Regenerates: "A log transformation of the local cell entries combined
with a global entropy weight for terms is the most effective
term-weighting scheme ... log × entropy weighting was 40% more effective
than raw term weighting" — the local × global grid evaluated on
collections with bursty high-frequency noise (the property of natural
text that makes raw counts misleading), with the raw×none baseline
highlighted.  Times the log×entropy run.
"""

import numpy as np

from conftest import emit
from repro.corpus import SyntheticSpec, topic_collection
from repro.evaluation import evaluate_run, percent_improvement, run_engine
from repro.retrieval import LSIRetrieval
from repro.weighting import WeightingScheme


def _collection(seed):
    return topic_collection(
        SyntheticSpec(
            n_topics=8, docs_per_topic=18, doc_length=60,
            concepts_per_topic=14, synonyms_per_concept=4,
            queries_per_topic=2, query_length=1,
            query_synonym_shift=1.0, polysemy=0.35,
            background_vocab=8, background_rate=0.3, noise_burst=10,
        ),
        seed=seed,
    )


def _score(scheme: WeightingScheme, collections) -> float:
    vals = []
    for col in collections:
        eng = LSIRetrieval.from_texts(
            col.documents, k=16, scheme=scheme, seed=0
        )
        vals.append(
            evaluate_run(run_engine(eng, col), col)["mean_metric"]
        )
    return float(np.mean(vals))


def test_weighting_scheme_grid(benchmark):
    collections = [_collection(seed) for seed in (3, 11)]
    grid = [
        WeightingScheme(loc, glob)
        for loc in ("raw", "binary", "log", "sqrt")
        for glob in ("none", "idf", "entropy", "normal")
    ]
    scores = {}
    for scheme in grid:
        if scheme.name == "log×entropy":
            scores[scheme.name] = benchmark(_score, scheme, collections)
        else:
            scores[scheme.name] = _score(scheme, collections)

    raw = scores["raw×none"]
    ranked = sorted(scores.items(), key=lambda kv: -kv[1])
    rows = [f"{'scheme':<18s}{'3-pt avg prec':>14s}{'vs raw':>9s}"]
    for name, val in ranked:
        rows.append(
            f"{name:<18s}{val:>14.3f}{percent_improvement(val, raw):>+8.1f}%"
        )
    rows.append("paper: log×entropy ≈ +40% over raw term weighting, "
                "averaged over five collections")
    emit("§5.1 — term-weighting ablation (averaged over 2 collections)", rows)

    # Shape claims: log×entropy gains substantially over raw (the paper's
    # ~40% band: measured +44% here); raw×none is the worst scheme
    # (bursty frequency noise dominates it); log×entropy is within 10% of
    # the grid's best.  (On our synthetic counts the normalization-family
    # schemes edge slightly ahead of log×entropy — the paper compared a
    # smaller grid on natural text; the raw-vs-damped contrast is the
    # reproduced result.)
    gain = percent_improvement(scores["log×entropy"], raw)
    assert gain > 25.0
    names_ranked = [name for name, _ in ranked]
    assert names_ranked[-1] == "raw×none"
    best = ranked[0][1]
    assert scores["log×entropy"] > 0.9 * best
