"""Paired dual-language corpora for cross-language LSI (§5.4).

Landauer & Littman trained LSI on French-English "combined abstracts" —
each training document is the concatenation of the two language versions —
then folded in monolingual documents and matched queries across languages.
The crucial property is that the two languages express the *same latent
concepts with disjoint surface vocabularies*; this generator provides
exactly that: every concept ``c`` of topic ``t`` has an English form
``ent{t}c{c}`` and a French form ``frt{t}c{c}``, and a document is a
concept sequence rendered in one language (or both, for training pairs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.collection import TestCollection
from repro.util.rng import ensure_rng

__all__ = ["CrossLanguageSpec", "CrossLanguageCorpus", "crosslang_collection"]


@dataclass(frozen=True)
class CrossLanguageSpec:
    """Parameters of the dual-language generator."""

    n_topics: int = 6
    concepts_per_topic: int = 15
    training_pairs: int = 40
    test_docs_per_language: int = 30
    doc_length: int = 40
    query_length: int = 5

    def __post_init__(self):
        if min(self.n_topics, self.concepts_per_topic) < 1:
            raise ValueError("topics and concepts must be >= 1")
        if self.training_pairs < 2:
            raise ValueError("need at least 2 training pairs")


@dataclass
class CrossLanguageCorpus:
    """The generated cross-language evaluation material.

    Attributes
    ----------
    combined:
        Training documents — each the concatenation of an English and a
        French rendering of the same concept sequence.
    english, french:
        Monolingual *mate* documents: ``english[i]`` and ``french[i]``
        render the same concept sequence (different sampling of concepts
        than any training document).
    doc_topic:
        Topic of each mate pair.
    queries_en, queries_fr:
        Short monolingual queries; ``query_topic[i]`` gives the relevant
        topic.
    """

    combined: list[str]
    english: list[str]
    french: list[str]
    doc_topic: list[int]
    queries_en: list[str]
    queries_fr: list[str]
    query_topic: list[int]

    def monolingual_collection(self, language: str) -> TestCollection:
        """English-only (or French-only) collection for baseline runs."""
        if language not in ("en", "fr"):
            raise ValueError("language must be 'en' or 'fr'")
        docs = self.english if language == "en" else self.french
        queries = self.queries_en if language == "en" else self.queries_fr
        rel = [
            {j for j, t in enumerate(self.doc_topic) if t == qt}
            for qt in self.query_topic
        ]
        return TestCollection(
            documents=list(docs),
            queries=list(queries),
            relevance=rel,
            name=f"crosslang-{language}",
        )


def _render(concepts, topic, language, rng) -> str:
    prefix = {"en": "en", "fr": "fr"}[language]
    return " ".join(f"{prefix}t{topic}c{int(c)}" for c in concepts)


def crosslang_collection(
    spec: CrossLanguageSpec | None = None, *, seed=0
) -> CrossLanguageCorpus:
    """Generate the combined-training + monolingual-test corpus."""
    spec = spec or CrossLanguageSpec()
    rng = ensure_rng(seed)

    def concept_seq(topic: int, length: int) -> np.ndarray:
        probs = np.arange(1, spec.concepts_per_topic + 1, dtype=float) ** -1.0
        probs /= probs.sum()
        return rng.choice(spec.concepts_per_topic, size=length, p=probs)

    combined: list[str] = []
    for i in range(spec.training_pairs):
        t = i % spec.n_topics
        seq = concept_seq(t, spec.doc_length)
        combined.append(
            _render(seq, t, "en", rng) + " " + _render(seq, t, "fr", rng)
        )

    english, french, doc_topic = [], [], []
    for i in range(spec.test_docs_per_language):
        t = i % spec.n_topics
        seq = concept_seq(t, spec.doc_length)
        english.append(_render(seq, t, "en", rng))
        french.append(_render(seq, t, "fr", rng))
        doc_topic.append(t)

    queries_en, queries_fr, query_topic = [], [], []
    for t in range(spec.n_topics):
        seq = concept_seq(t, spec.query_length)
        queries_en.append(_render(seq, t, "en", rng))
        queries_fr.append(_render(seq, t, "fr", rng))
        query_topic.append(t)

    return CrossLanguageCorpus(
        combined=combined,
        english=english,
        french=french,
        doc_topic=doc_topic,
        queries_en=queries_en,
        queries_fr=queries_fr,
        query_topic=query_topic,
    )
