"""Append-only write-ahead log for index mutations.

Every mutation the index manager applies between checkpoints —
``add_counts`` (which ``add_texts`` normalizes into), ``add_terms``,
``consolidate`` — is appended here and fsynced *before* it is applied,
so an acknowledged fold-in is never lost: after a crash, recovery
replays the log suffix on top of the newest checkpoint.

File layout::

    [8B magic "RPWAL001"][8B little-endian base LSN]        header
    [4B payload length][4B CRC32(payload)][payload] ...     records

Payloads are UTF-8 JSON with NumPy arrays encoded losslessly: dense
(dtype + shape + base64 of the raw little-endian bytes) or, when the
array is mostly zeros — the shape of every fold-in count block — sparse
(flat indices + values), chosen per array by :func:`encode_array_auto`.
Both decode bit-identically, so a replayed ``add_counts`` block is
exactly the one the crashed process applied, and the log grows with the
*sparse* size of the data it records.  Each record carries its log
sequence number (LSN); the header stores the base LSN so truncation
(``repro store compact``) preserves the global numbering checkpoint
manifests refer to.

Torn tails are expected, not fatal: a crash mid-append leaves a final
record with too few bytes or a failing checksum.  :func:`scan_wal`
stops at the first invalid record and reports it; opening the log for
appending truncates the torn suffix so new records never land after
garbage.  A checksum failure *before* the end of file means real data
corruption — ``repro store verify`` reports every such record.
"""

from __future__ import annotations

import base64
import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import StoreCorruptError, StoreError

__all__ = [
    "WAL_MAGIC",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
    "verify_wal",
    "encode_array",
    "encode_array_auto",
    "decode_array",
]

WAL_MAGIC = b"RPWAL001"
_HEADER = struct.Struct("<8sQ")  # magic, base LSN
_FRAME = struct.Struct("<II")  # payload length, CRC32(payload)

#: Upper bound on one record's payload; anything larger is corruption.
MAX_RECORD_BYTES = 1 << 31


def encode_array(array: np.ndarray) -> dict:
    """Lossless JSON encoding of an ndarray (dtype + shape + base64)."""
    shape = list(array.shape)  # ascontiguousarray promotes 0-d to (1,)
    array = np.ascontiguousarray(array)
    return {
        "__ndarray__": True,
        "dtype": array.dtype.str,
        "shape": shape,
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


#: Flat-index dtype of the sparse encoding (fixed for cross-platform logs).
_INDEX_DTYPE = np.dtype("<i8")

#: dtype kinds eligible for sparse encoding (float / signed / unsigned int).
_SPARSE_KINDS = "fiu"


def encode_array_auto(array: np.ndarray) -> dict:
    """Pick the smaller lossless encoding: sparse when mostly zeros.

    Fold-in count blocks are overwhelmingly zero, so storing (flat
    index, value) pairs shrinks the log by orders of magnitude; dense
    arrays fall back to :func:`encode_array`.  Sparse is only used when
    it at least halves the raw byte count, and every dropped entry is
    bitwise ``+0.0`` (negative zeros are kept), so decoding is
    bit-identical either way.
    """
    if array.ndim == 0 or array.size == 0 or array.dtype.kind not in _SPARSE_KINDS:
        return encode_array(array)
    shape = list(array.shape)
    flat = np.ascontiguousarray(array).ravel()
    nonzero = flat != 0
    if flat.dtype.kind == "f":
        nonzero |= np.signbit(flat) & (flat == 0)
    indices = np.flatnonzero(nonzero)
    sparse_bytes = indices.size * (_INDEX_DTYPE.itemsize + flat.itemsize)
    if sparse_bytes * 2 >= flat.size * flat.itemsize:
        return encode_array(array)
    return {
        "__ndarray__": True,
        "dtype": array.dtype.str,
        "shape": shape,
        "indices": base64.b64encode(
            indices.astype(_INDEX_DTYPE, copy=False).tobytes()
        ).decode("ascii"),
        "values": base64.b64encode(
            np.ascontiguousarray(flat[indices]).tobytes()
        ).decode("ascii"),
    }


def decode_array(obj: dict) -> np.ndarray:
    """Inverse of :func:`encode_array` / :func:`encode_array_auto`
    (bit-exact round trip for both encodings)."""
    dtype = np.dtype(obj["dtype"])
    if "indices" in obj:
        indices = np.frombuffer(
            base64.b64decode(obj["indices"]), dtype=_INDEX_DTYPE
        )
        values = np.frombuffer(base64.b64decode(obj["values"]), dtype=dtype)
        size = 1
        for dim in obj["shape"]:
            size *= int(dim)
        flat = np.zeros(size, dtype=dtype)
        flat[indices] = values
        return flat.reshape(obj["shape"])
    raw = base64.b64decode(obj["data"])
    array = np.frombuffer(raw, dtype=dtype)
    return array.reshape(obj["shape"]).copy()


def _decode_payload(payload: dict) -> dict:
    return {
        key: decode_array(value)
        if isinstance(value, dict) and value.get("__ndarray__")
        else value
        for key, value in payload.items()
    }


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: its LSN, operation, and payload."""

    lsn: int
    op: str
    payload: dict


@dataclass
class WalScan:
    """Result of walking a log file front to back."""

    records: list[WalRecord] = field(default_factory=list)
    valid_end: int = _HEADER.size
    base_lsn: int = 0
    problems: list[str] = field(default_factory=list)
    torn_tail: bool = False

    @property
    def last_lsn(self) -> int:
        """LSN of the final valid record (base LSN when empty)."""
        return self.records[-1].lsn if self.records else self.base_lsn


def scan_wal(path: pathlib.Path) -> WalScan:
    """Walk the log, collecting valid records and tail diagnostics.

    Never raises on content: a missing file yields an empty scan, and
    any invalid byte sequence ends the walk with ``torn_tail=True`` and
    a problem string saying what was wrong at which offset.  (After the
    first bad frame the record boundaries are unknowable, so whether
    the cause was a crash or corruption, everything beyond it is
    unrecoverable — callers decide how loud to be.)
    """
    path = pathlib.Path(path)
    scan = WalScan()
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return scan
    # Buffered, frame-at-a-time reads: the log is never slurped whole,
    # so scanning a long-lived WAL costs O(largest record) memory for
    # the I/O (the decoded records the caller asked for still accrue).
    with fh:
        header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            scan.problems.append(
                f"{path.name}: short header ({len(header)} bytes)"
            )
            scan.torn_tail = True
            scan.valid_end = 0
            return scan
        magic, base_lsn = _HEADER.unpack(header)
        if magic != WAL_MAGIC:
            scan.problems.append(f"{path.name}: bad magic {magic!r}")
            scan.torn_tail = True
            scan.valid_end = 0
            return scan
        scan.base_lsn = base_lsn
        offset = _HEADER.size
        while True:
            frame = fh.read(_FRAME.size)
            if not frame:
                break
            if len(frame) < _FRAME.size:
                scan.problems.append(
                    f"{path.name}: torn frame header at offset {offset}"
                )
                scan.torn_tail = True
                break
            length, crc = _FRAME.unpack(frame)
            start = offset + _FRAME.size
            if length > MAX_RECORD_BYTES:
                remain = max(0, os.fstat(fh.fileno()).st_size - start)
                scan.problems.append(
                    f"{path.name}: torn record at offset {offset} "
                    f"(length {length}, {remain} bytes remain)"
                )
                scan.torn_tail = True
                break
            payload = fh.read(length)
            if len(payload) < length:
                scan.problems.append(
                    f"{path.name}: torn record at offset {offset} "
                    f"(length {length}, {len(payload)} bytes remain)"
                )
                scan.torn_tail = True
                break
            if zlib.crc32(payload) != crc:
                scan.problems.append(
                    f"{path.name}: checksum mismatch at offset {offset}"
                )
                scan.torn_tail = True
                break
            try:
                decoded = json.loads(payload.decode("utf-8"))
                record = WalRecord(
                    int(decoded.pop("lsn")),
                    str(decoded.pop("op")),
                    _decode_payload(decoded),
                )
            except Exception as exc:
                scan.problems.append(
                    f"{path.name}: undecodable record at offset {offset}: "
                    f"{exc}"
                )
                scan.torn_tail = True
                break
            scan.records.append(record)
            offset = start + length
            scan.valid_end = offset
    return scan


def verify_wal(path: pathlib.Path) -> list[str]:
    """Problem strings for a log file (empty = fully valid)."""
    return scan_wal(path).problems


class WriteAheadLog:
    """The append handle a live store writes through.

    Opening an existing log scans it once: torn tails from a crash are
    truncated away (the dropped byte count is reported via
    :attr:`recovered_drop`), the LSN counter resumes from the last valid
    record, and the file handle stays open for the store's lifetime so
    an append is one write + flush + fsync.
    """

    def __init__(
        self,
        path: pathlib.Path,
        *,
        sync: bool = True,
        base_lsn: int = 0,
    ):
        self.path = pathlib.Path(path)
        self.sync = sync
        self.recovered_drop = 0
        self._halted = False
        if self.path.exists():
            scan = scan_wal(self.path)
            if scan.valid_end == 0:
                raise StoreCorruptError(
                    f"{self.path} is not a write-ahead log: "
                    + "; ".join(scan.problems)
                )
            size = self.path.stat().st_size
            if size > scan.valid_end:
                self.recovered_drop = size - scan.valid_end
                with open(self.path, "r+b") as fh:
                    fh.truncate(scan.valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
            self._base_lsn = scan.base_lsn
            self._next_lsn = scan.last_lsn + 1
            self._n_records = len(scan.records)
            self._bytes = scan.valid_end
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "wb") as fh:
                fh.write(_HEADER.pack(WAL_MAGIC, base_lsn))
                fh.flush()
                os.fsync(fh.fileno())
            self._base_lsn = base_lsn
            self._next_lsn = base_lsn + 1
            self._n_records = 0
            self._bytes = _HEADER.size
        self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------ #
    @property
    def n_records(self) -> int:
        """Valid records currently in the file."""
        return self._n_records

    @property
    def last_lsn(self) -> int:
        """LSN of the most recent record (base LSN when empty)."""
        return self._next_lsn - 1

    @property
    def size_bytes(self) -> int:
        """Current file size in bytes (header + records)."""
        return self._bytes

    # ------------------------------------------------------------------ #
    def append(self, op: str, payload: dict | None = None) -> int:
        """Durably append one record; returns its LSN.

        NumPy arrays in ``payload`` are encoded losslessly.  The record
        is fsynced before this returns (unless the log was opened with
        ``sync=False``, e.g. for benchmarks) — an LSN handed back is the
        acknowledgment contract recovery honors.
        """
        if self._halted:
            raise StoreError(
                f"write-ahead log {self.path} halted after an unrepairable "
                "write failure; reopen the store to recover"
            )
        if self._fh.closed:
            raise StoreError(f"write-ahead log {self.path} is closed")
        record = {"lsn": self._next_lsn, "op": op}
        for key, value in (payload or {}).items():
            record[key] = (
                encode_array_auto(value)
                if isinstance(value, np.ndarray)
                else value
            )
        blob = json.dumps(record).encode("utf-8")
        try:
            self._fh.write(_FRAME.pack(len(blob), zlib.crc32(blob)) + blob)
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
        except BaseException:
            # A failed or partial write leaves a torn frame mid-file; if
            # later appends landed after it they would be unreachable
            # (scan stops at the first bad frame) and silently dropped
            # at the next open.  Restore the last-good boundary first.
            self._repair_tail()
            raise
        lsn = self._next_lsn
        self._next_lsn += 1
        self._n_records += 1
        self._bytes += _FRAME.size + len(blob)
        return lsn

    def _repair_tail(self) -> None:
        """Truncate back to the last-good record boundary after a failed
        append; on failure, halt the log so nothing writes after a torn
        frame."""
        try:
            try:
                # Close (not flush) the buffered handle: a partial frame
                # may still sit in its userspace buffer, and it must not
                # leak onto disk ahead of a future record.
                self._fh.close()
            except OSError:
                pass
            with open(self.path, "r+b") as fh:
                fh.truncate(self._bytes)
                fh.flush()
                os.fsync(fh.fileno())
            self._fh = open(self.path, "ab")
        except OSError:
            self._halted = True

    def mark(self) -> tuple[int, int, int]:
        """Opaque log position (for :meth:`rollback`) before an append."""
        return (self._bytes, self._next_lsn, self._n_records)

    def rollback(self, mark: tuple[int, int, int]) -> None:
        """Physically truncate the log back to ``mark``.

        Used by the store when the in-memory apply of a just-appended
        record fails: the record's LSN was never acknowledged to any
        caller, and leaving it in the log would make recovery replay a
        mutation the live index never absorbed.  Failure to truncate
        halts the log (appends refuse) rather than leave the orphan.
        """
        bytes_, next_lsn, n_records = mark
        if bytes_ > self._bytes:
            raise StoreError("cannot roll a write-ahead log forward")
        if self._fh.closed:
            raise StoreError(f"write-ahead log {self.path} is closed")
        try:
            self._fh.flush()
            os.ftruncate(self._fh.fileno(), bytes_)
            os.fsync(self._fh.fileno())
        except OSError as exc:
            self._halted = True
            raise StoreError(
                f"write-ahead log {self.path} rollback failed ({exc}); "
                "log halted"
            ) from exc
        self._bytes = bytes_
        self._next_lsn = next_lsn
        self._n_records = n_records

    def records(self, after_lsn: int = 0) -> Iterator[WalRecord]:
        """Valid records with ``lsn > after_lsn``, oldest first."""
        for record in scan_wal(self.path).records:
            if record.lsn > after_lsn:
                yield record

    def truncate(self) -> None:
        """Drop every record; the LSN counter continues where it was.

        Used by ``repro store compact`` after the log's contents have
        been folded into a fresh checkpoint: the file is rewritten as
        header-only with the base LSN advanced to the last assigned LSN,
        so record numbering stays globally monotonic.
        """
        if self._fh.closed:
            raise StoreError(f"write-ahead log {self.path} is closed")
        self._fh.close()
        self._base_lsn = self._next_lsn - 1
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(_HEADER.pack(WAL_MAGIC, self._base_lsn))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._n_records = 0
        self._bytes = _HEADER.size
        self._fh = open(self.path, "ab")

    def close(self) -> None:
        """Release the file handle (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path}, records={self._n_records}, "
            f"last_lsn={self.last_lsn})"
        )
