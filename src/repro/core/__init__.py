"""The LSI core: semantic space construction, queries, similarity.

The pipeline of §2:

1. :func:`fit_lsi` — parse → term-document matrix (Eq. 4) → weighting
   (Eq. 5) → truncated SVD (Eq. 2) → :class:`LSIModel`;
2. :func:`project_query` — Eq. 6, ``q̂ = qᵀ U_k Σ_k⁻¹``;
3. :func:`rank_documents` / :func:`retrieve` — cosine ranking against the
   document vectors, with the threshold semantics of §3.1.
"""

from repro.core.model import LSIModel
from repro.core.build import fit_lsi, fit_lsi_from_tdm
from repro.core.query import project_query, pseudo_document
from repro.core.similarity import (
    cosine_similarities,
    doc_doc_similarities,
    nearest_terms,
    rank_documents,
    retrieve,
    term_term_similarities,
)
from repro.core.persistence import load_model, save_model
from repro.core.kselect import (
    KSelection,
    choose_k_by_energy,
    choose_k_by_gap,
    choose_k_by_sweep,
)

__all__ = [
    "LSIModel",
    "fit_lsi",
    "fit_lsi_from_tdm",
    "project_query",
    "pseudo_document",
    "cosine_similarities",
    "rank_documents",
    "retrieve",
    "term_term_similarities",
    "doc_doc_similarities",
    "nearest_terms",
    "save_model",
    "load_model",
    "KSelection",
    "choose_k_by_energy",
    "choose_k_by_gap",
    "choose_k_by_sweep",
]
