"""Tests for the util subpackage and the error hierarchy."""

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    EvaluationError,
    ModelStateError,
    ReproError,
    ShapeError,
    SparseFormatError,
    VocabularyError,
)
from repro.util import (
    Stopwatch,
    check_axis,
    check_dense_matrix,
    check_positive,
    check_shape_match,
    check_vector,
    ensure_rng,
    format_seconds,
    spawn_rngs,
)


# --------------------------------------------------------------------- #
# rng
# --------------------------------------------------------------------- #
def test_ensure_rng_accepts_all_forms():
    assert isinstance(ensure_rng(None), np.random.Generator)
    assert isinstance(ensure_rng(42), np.random.Generator)
    g = np.random.default_rng(0)
    assert ensure_rng(g) is g
    assert isinstance(ensure_rng(np.random.SeedSequence(1)), np.random.Generator)


def test_ensure_rng_deterministic():
    a = ensure_rng(7).random(5)
    b = ensure_rng(7).random(5)
    assert np.array_equal(a, b)


def test_ensure_rng_rejects_garbage():
    with pytest.raises(TypeError):
        ensure_rng("seed")


def test_spawn_rngs_independent_and_stable():
    streams1 = spawn_rngs(3, 4)
    streams2 = spawn_rngs(3, 4)
    assert len(streams1) == 4
    for a, b in zip(streams1, streams2):
        assert np.array_equal(a.random(3), b.random(3))
    # children differ from each other
    vals = [g.random() for g in spawn_rngs(3, 4)]
    assert len(set(vals)) == 4
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #
def test_check_dense_matrix():
    out = check_dense_matrix([[1, 2], [3, 4]])
    assert out.dtype == np.float64
    with pytest.raises(ShapeError):
        check_dense_matrix(np.zeros(3))


def test_check_vector():
    v = check_vector([1.0, 2.0], 2)
    assert v.shape == (2,)
    with pytest.raises(ShapeError):
        check_vector(np.zeros((2, 2)))
    with pytest.raises(ShapeError):
        check_vector([1.0], 3)


def test_check_positive():
    check_positive(1)
    check_positive(0, strict=False)
    with pytest.raises(ShapeError):
        check_positive(0)
    with pytest.raises(ShapeError):
        check_positive(-1, strict=False)


def test_check_shape_match():
    check_shape_match((2, 3), (2, 3))
    with pytest.raises(ShapeError):
        check_shape_match((2, 3), (3, 2))


def test_check_axis():
    assert check_axis(0) == 0
    assert check_axis(-1) == 1
    with pytest.raises(ShapeError):
        check_axis(2)


# --------------------------------------------------------------------- #
# timing
# --------------------------------------------------------------------- #
def test_stopwatch_accumulates():
    sw = Stopwatch()
    with sw.lap("a"):
        pass
    with sw.lap("a"):
        pass
    with sw.lap("b"):
        pass
    assert set(sw.laps) == {"a", "b"}
    assert sw.total() >= 0
    assert "a" in sw.report()


def test_format_seconds_units():
    assert format_seconds(2.5).endswith(" s")
    assert format_seconds(2.5e-3).endswith(" ms")
    assert format_seconds(2.5e-6).endswith(" us")
    assert format_seconds(2.5e-9).endswith(" ns")


def test_stopwatch_lap_exception_safe():
    sw = Stopwatch()
    with pytest.raises(RuntimeError):
        with sw.lap("a"):
            raise RuntimeError("boom")
    assert sw.laps["a"] >= 0.0  # time recorded despite the exception


def test_stopwatch_lap_reentrant(monkeypatch):
    """One lap object nested inside itself must pair each exit with its
    own enter (the old shared ``_t0`` double-counted the outer enter)."""
    from repro.util import timing as timing_mod

    clock = iter([0.0, 10.0, 12.0, 100.0])  # enter, enter, exit, exit
    monkeypatch.setattr(timing_mod.time, "perf_counter", lambda: next(clock))
    sw = Stopwatch()
    lap = sw.lap("a")
    with lap:
        with lap:
            pass
    # inner: 12 − 10 = 2; outer: 100 − 0 = 100 → 102 total.
    # (shared-_t0 bug: inner exit overwrote outer's start → 2 + 88.)
    assert sw.laps["a"] == pytest.approx(102.0)


def test_perfcounters_snapshot_namespaces_timer_vs_counter():
    """Regression: a counter and a timer sharing a name used to clobber
    each other in the flat snapshot; timers now get ``_seconds``."""
    from repro.util.timing import PerfCounters, timer_key

    pc = PerfCounters()
    pc.incr("gemm", 3)
    pc.add_time("gemm", 0.5)
    snap = pc.snapshot()
    assert snap["gemm"] == 3
    assert snap["gemm_seconds"] == pytest.approx(0.5)
    assert timer_key("gemm") == "gemm_seconds"
    assert timer_key("gemm_seconds") == "gemm_seconds"  # idempotent


def test_perfcounters_timer_exception_safe_and_reentrant(monkeypatch):
    from repro.util import timing as timing_mod
    from repro.util.timing import PerfCounters

    pc = PerfCounters()
    with pytest.raises(RuntimeError):
        with pc.time("t"):
            raise RuntimeError("boom")
    assert pc.timers["t"] >= 0.0

    clock = iter([0.0, 1.0, 3.0, 7.0])
    monkeypatch.setattr(timing_mod.time, "perf_counter", lambda: next(clock))
    pc = PerfCounters()
    timer = pc.time("t")
    with timer:
        with timer:
            pass
    assert pc.timers["t"] == pytest.approx((3.0 - 1.0) + (7.0 - 0.0))


def test_perfcounters_reset_and_report():
    from repro.util.timing import PerfCounters

    pc = PerfCounters()
    pc.incr("hits")
    pc.add_time("gemm", 0.1)
    assert "hits" in pc.report() and "gemm" in pc.report()
    pc.reset()
    assert pc.snapshot() == {}


# --------------------------------------------------------------------- #
# error hierarchy
# --------------------------------------------------------------------- #
def test_all_errors_derive_from_repro_error():
    for exc in (
        ShapeError("x"),
        SparseFormatError("x"),
        ConvergenceError("x"),
        VocabularyError("x"),
        ModelStateError("x"),
        EvaluationError("x"),
    ):
        assert isinstance(exc, ReproError)


def test_shape_error_is_value_error():
    assert isinstance(ShapeError("x"), ValueError)


def test_convergence_error_carries_progress():
    exc = ConvergenceError("slow", iterations=10, achieved=3)
    assert exc.iterations == 10 and exc.achieved == 3
