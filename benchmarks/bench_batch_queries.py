"""Batched vs per-query scoring — the loop-to-GEMM rewrite.

The §5.6 open issue "efficiently comparing queries to documents" at the
evaluation-harness scale: hundreds of queries against one space.
Batching replaces the per-query loop with two dense matrix products;
results are identical (asserted), the bench measures the speedup.
"""

import numpy as np

from conftest import emit
from repro.core import fit_lsi, project_query
from repro.core.similarity import cosine_similarities
from repro.corpus import SyntheticSpec, topic_collection
from repro.parallel import batch_cosine_scores, batch_project_queries


def test_batch_query_scoring(benchmark):
    col = topic_collection(
        SyntheticSpec(
            n_topics=8, docs_per_topic=25, doc_length=40,
            concepts_per_topic=15, queries_per_topic=12, query_length=3,
        ),
        seed=71,
    )
    model = fit_lsi(col.documents, k=20, scheme="log_entropy", seed=0)
    queries = col.queries  # 96 queries

    Q = batch_project_queries(model, queries)

    batched = benchmark(batch_cosine_scores, model, Q)

    # Identical to the per-query path.
    import time

    t0 = time.perf_counter()
    singles = np.stack([
        cosine_similarities(model, project_query(model, q)) for q in queries
    ])
    loop_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_cosine_scores(model, Q)
    batch_time = time.perf_counter() - t0

    assert np.allclose(batched, singles, atol=1e-12)
    emit(
        "batched multi-query scoring",
        [
            f"{len(queries)} queries × {model.n_documents} documents, "
            f"k={model.k}",
            f"per-query loop: {loop_time * 1e3:.1f} ms "
            f"(includes projection)",
            f"batched GEMM:   {batch_time * 1e3:.2f} ms "
            f"(projection amortized)",
            "identical score matrices (max abs diff < 1e-12)",
        ],
    )