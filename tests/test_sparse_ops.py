"""Tests for the shared sparse kernels: stacking, norms, segment sums."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import from_dense, frobenius_norm, hstack_csc, vstack_csr
from repro.sparse.ops import _segment_sums


def test_frobenius_norm(rng):
    d = rng.random((8, 5)) * (rng.random((8, 5)) < 0.5)
    for mat in (from_dense(d), from_dense(d).to_csr(), from_dense(d).to_csc()):
        assert frobenius_norm(mat) == pytest.approx(np.linalg.norm(d))


def test_hstack_csc(rng):
    a = rng.random((5, 3)) * (rng.random((5, 3)) < 0.5)
    b = rng.random((5, 4)) * (rng.random((5, 4)) < 0.5)
    c = np.zeros((5, 2))
    stacked = hstack_csc([from_dense(x).to_csc() for x in (a, b, c)])
    assert np.allclose(stacked.to_dense(), np.hstack([a, b, c]))


def test_hstack_csc_rejects_mismatched_rows(rng):
    a = from_dense(rng.random((5, 3))).to_csc()
    b = from_dense(rng.random((4, 3))).to_csc()
    with pytest.raises(ShapeError):
        hstack_csc([a, b])
    with pytest.raises(ShapeError):
        hstack_csc([])


def test_vstack_csr(rng):
    a = rng.random((3, 6)) * (rng.random((3, 6)) < 0.5)
    b = np.zeros((1, 6))
    c = rng.random((4, 6)) * (rng.random((4, 6)) < 0.5)
    stacked = vstack_csr([from_dense(x).to_csr() for x in (a, b, c)])
    assert np.allclose(stacked.to_dense(), np.vstack([a, b, c]))


def test_vstack_csr_rejects_mismatched_cols(rng):
    a = from_dense(rng.random((3, 6))).to_csr()
    b = from_dense(rng.random((3, 5))).to_csr()
    with pytest.raises(ShapeError):
        vstack_csr([a, b])


def test_segment_sums_with_empty_segments():
    contrib = np.array([[1.0], [2.0], [3.0]])
    indptr = np.array([0, 0, 2, 2, 3])
    out = _segment_sums(contrib, indptr)
    assert np.allclose(out.ravel(), [0.0, 3.0, 0.0, 3.0])


def test_segment_sums_single_segment():
    contrib = np.arange(4.0)[:, None]
    out = _segment_sums(contrib, np.array([0, 4]))
    assert out.ravel()[0] == 6.0


def test_kernels_on_zero_nnz(rng):
    z = from_dense(np.zeros((4, 3)))
    csr, csc = z.to_csr(), z.to_csc()
    assert np.allclose(csr.matvec(np.ones(3)), 0)
    assert np.allclose(csr.rmatvec(np.ones(4)), 0)
    assert np.allclose(csc.matvec(np.ones(3)), 0)
    assert np.allclose(csc.rmatvec(np.ones(4)), 0)
    assert np.allclose(csr.matmat(np.ones((3, 2))), 0)
    assert np.allclose(csc.matmat(np.ones((3, 2))), 0)


def test_matmat_zero_columns(rng):
    d = rng.random((4, 3))
    csc = from_dense(d).to_csc()
    out = csc.matmat(np.zeros((3, 0)))
    assert out.shape == (4, 0)
