"""LRU cache of projected query vectors (Eq. 6 results).

Production query streams repeat: the same few hundred queries account
for most traffic.  Projection is cheap relative to scoring but not free
— an (m,)·(m, k) GEMV plus the weighting transform — and it is pure:
the projected vector depends only on the model and the query's term
counts.  The cache key is therefore the *normalized* token counts (the
canonical sparse form of the count vector), so ``"blood age"``,
``"age blood"`` and ``["age", "blood"]`` all hit the same entry, and
out-of-vocabulary noise that drops out of the counts cannot split it.

The cache belongs to whoever owns a model reference (the retrieval
engine); owners must :meth:`~QueryVectorCache.clear` it when their model
changes — :class:`repro.retrieval.engine.LSIRetrieval` does this by
identity check on every lookup.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.obs.metrics import registry as _metrics_registry
from repro.util.timing import serving_counters

__all__ = ["QueryVectorCache"]


class QueryVectorCache:
    """Bounded LRU mapping normalized query counts → projected vectors.

    ``maxsize <= 0`` disables caching (every lookup misses and nothing
    is stored), which keeps the call sites branch-free.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()

    @staticmethod
    def key_from_counts(counts: np.ndarray) -> tuple:
        """Canonical hashable form of a term-count vector.

        The sparse pattern (nonzero ids + their counts) plus the vector
        length, so models with different vocabularies cannot collide
        through a shared cache.  Indices are cast to ``int64`` before
        hashing: ``np.flatnonzero`` returns platform-``intp`` (32-bit on
        some platforms), and ``tobytes()`` of differently sized ints
        would key the same query differently across platforms.
        """
        c = np.asarray(counts)
        nz = np.flatnonzero(c).astype(np.int64, copy=False)
        return (c.size, nz.tobytes(), np.asarray(c[nz], dtype=np.float64).tobytes())

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> np.ndarray | None:
        """Cached projection for ``key``, or None (counts hits/misses)."""
        hit = self._entries.get(key)
        if hit is None:
            serving_counters.incr("query_cache_misses")
            return None
        self._entries.move_to_end(key)
        serving_counters.incr("query_cache_hits")
        return hit.copy()  # callers may mutate their query vector

    def put(self, key: tuple, vector: np.ndarray) -> None:
        """Store a projected vector (evicting the LRU entry when full)."""
        if self.maxsize <= 0:
            return
        self._entries[key] = np.array(vector, dtype=np.float64, copy=True)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        self._publish_size()

    def clear(self) -> None:
        """Drop every entry (model changed, or tests)."""
        self._entries.clear()
        self._publish_size()

    def _publish_size(self) -> None:
        """Expose occupancy as gauges (hit rate derives from the
        ``serving.query_cache_hits``/``_misses`` counters).

        Last-writer-wins across caches, which is the intended reading: a
        serving process has one live cache (per engine or per epoch) and
        ``/stats`` / ``repro stats`` report its current occupancy.
        """
        _metrics_registry.set_gauge("serving.query_cache_size", len(self._entries))
        _metrics_registry.set_gauge("serving.query_cache_capacity", self.maxsize)
