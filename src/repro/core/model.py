"""The fitted LSI model: ``A_k = U_k Σ_k V_kᵀ`` plus its labellings.

Table 1 of the paper maps the SVD components to their LSI interpretation:
``U`` holds term vectors, ``V`` document vectors, ``Σ`` the singular
values, and ``k`` the number of factors.  :class:`LSIModel` bundles those
with the vocabulary (row labels), document ids (column labels) and the
weighting configuration — the latter because queries and folded-in
documents must be weighted identically to the training documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ModelStateError, ShapeError
from repro.text.vocabulary import Vocabulary
from repro.weighting.schemes import WeightingScheme

__all__ = ["LSIModel"]


@dataclass
class LSIModel:
    """A truncated-SVD semantic space.

    Attributes
    ----------
    U:
        ``(m, k)`` term vectors.
    s:
        ``(k,)`` singular values, descending.
    V:
        ``(n, k)`` document vectors.
    vocabulary:
        Labels of the ``m`` term rows.
    doc_ids:
        Labels of the ``n`` document columns.
    scheme:
        The weighting scheme applied before decomposition.
    global_weights:
        ``(m,)`` global term weights ``G(i)`` — applied to query counts.
    provenance:
        How this model was produced: ``"svd"`` (direct decomposition),
        ``"fold-in"``, ``"svd-update"`` or ``"recompute"``.  Fold-in
        produces models whose ``U``/``V`` are no longer exactly orthonormal
        (§4.3); consumers that need true singular vectors can check this.
    """

    U: np.ndarray
    s: np.ndarray
    V: np.ndarray
    vocabulary: Vocabulary
    doc_ids: list[str]
    scheme: WeightingScheme = field(default_factory=WeightingScheme)
    global_weights: np.ndarray | None = None
    provenance: str = "svd"

    def __post_init__(self):
        self.U = np.asarray(self.U, dtype=np.float64)
        self.s = np.asarray(self.s, dtype=np.float64).ravel()
        self.V = np.asarray(self.V, dtype=np.float64)
        k = self.s.size
        if self.U.ndim != 2 or self.U.shape[1] != k:
            raise ShapeError(f"U must be (m, {k}), got {self.U.shape}")
        if self.V.ndim != 2 or self.V.shape[1] != k:
            raise ShapeError(f"V must be (n, {k}), got {self.V.shape}")
        if len(self.vocabulary) != self.U.shape[0]:
            raise ShapeError(
                f"vocabulary has {len(self.vocabulary)} terms for "
                f"{self.U.shape[0]} term vectors"
            )
        if len(self.doc_ids) != self.V.shape[0]:
            raise ShapeError(
                f"{len(self.doc_ids)} doc ids for {self.V.shape[0]} "
                "document vectors"
            )
        if self.global_weights is None:
            self.global_weights = np.ones(self.U.shape[0])
        else:
            self.global_weights = np.asarray(
                self.global_weights, dtype=np.float64
            ).ravel()
            if self.global_weights.size != self.U.shape[0]:
                raise ShapeError("global_weights length must equal m")

    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Number of retained factors."""
        return int(self.s.size)

    @property
    def n_terms(self) -> int:
        """Vocabulary size ``m``."""
        return self.U.shape[0]

    @property
    def n_documents(self) -> int:
        """Document count ``n``."""
        return self.V.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the (approximated) term-document matrix."""
        return (self.n_terms, self.n_documents)

    # ------------------------------------------------------------------ #
    # coordinate access (the Figure 4 plotting convention)
    # ------------------------------------------------------------------ #
    def term_coordinates(self) -> np.ndarray:
        """``U_k Σ_k`` — term positions in factor space (Fig. 4 axes)."""
        return self.U * self.s

    def doc_coordinates(self) -> np.ndarray:
        """``V_k Σ_k`` — document positions in factor space."""
        return self.V * self.s

    def term_vector(self, term: str) -> np.ndarray:
        """Row of ``U`` for ``term`` (raises if unknown)."""
        return self.U[self.vocabulary.id_of(term)]

    def doc_vector(self, doc_id: str) -> np.ndarray:
        """Row of ``V`` for the named document."""
        return self.V[self.doc_index(doc_id)]

    def doc_index(self, doc_id: str) -> int:
        """Position of ``doc_id`` among the document vectors."""
        try:
            return self.doc_ids.index(doc_id)
        except ValueError:
            raise ModelStateError(f"unknown document id {doc_id!r}") from None

    def reconstruct(self) -> np.ndarray:
        """Materialize the dense rank-k approximation ``A_k`` (Eq. 2)."""
        return (self.U * self.s) @ self.V.T

    # ------------------------------------------------------------------ #
    def truncated(self, k: int) -> "LSIModel":
        """A model using only the first ``k`` factors (for k-sweeps)."""
        if not 1 <= k <= self.k:
            raise ShapeError(f"cannot truncate k={self.k} model to {k}")
        return replace(
            self,
            U=self.U[:, :k].copy(),
            s=self.s[:k].copy(),
            V=self.V[:, :k].copy(),
        )

    def with_documents(
        self, V_new: np.ndarray, doc_ids_new: list[str], *, provenance: str
    ) -> "LSIModel":
        """Model with additional document vectors appended (fold-in path)."""
        V_new = np.asarray(V_new, dtype=np.float64)
        if V_new.ndim != 2 or V_new.shape[1] != self.k:
            raise ShapeError(
                f"appended document vectors must be (p, {self.k})"
            )
        if V_new.shape[0] != len(doc_ids_new):
            raise ShapeError("doc_ids_new length mismatch")
        return replace(
            self,
            V=np.vstack([self.V, V_new]),
            doc_ids=self.doc_ids + list(doc_ids_new),
            provenance=provenance,
        )

    def with_terms(
        self,
        U_new: np.ndarray,
        terms_new: list[str],
        global_weights_new: np.ndarray | None = None,
        *,
        provenance: str,
    ) -> "LSIModel":
        """Model with additional term vectors appended (fold-in path)."""
        U_new = np.asarray(U_new, dtype=np.float64)
        if U_new.ndim != 2 or U_new.shape[1] != self.k:
            raise ShapeError(f"appended term vectors must be (q, {self.k})")
        if U_new.shape[0] != len(terms_new):
            raise ShapeError("terms_new length mismatch")
        vocab = self.vocabulary.copy()
        for t in terms_new:
            if t in vocab:
                raise ShapeError(f"term {t!r} already present")
            vocab.add(t)
        if global_weights_new is None:
            global_weights_new = np.ones(U_new.shape[0])
        return replace(
            self,
            U=np.vstack([self.U, U_new]),
            vocabulary=vocab.freeze(),
            global_weights=np.concatenate(
                [self.global_weights, np.asarray(global_weights_new, float)]
            ),
            provenance=provenance,
        )

    def __repr__(self) -> str:
        return (
            f"LSIModel(m={self.n_terms}, n={self.n_documents}, k={self.k}, "
            f"scheme={self.scheme.name}, provenance={self.provenance!r})"
        )
