"""Quickstart: index a small corpus with LSI and query it.

Run:  python examples/quickstart.py

Walks the basic pipeline of the paper's §2 on the 14 MEDLINE topics of
Table 2: fit a k=2 model, pose the worked query, inspect the ranking,
compare with literal keyword matching, and persist the model.
"""

from repro import (
    LSIRetrieval,
    KeywordRetrieval,
    ParsingRules,
    fit_lsi,
    load_model,
    project_query,
    rank_documents,
    retrieve,
    save_model,
)
from repro.corpus.med import MED_QUERY, MED_TOPICS


def main() -> None:
    texts = list(MED_TOPICS.values())
    doc_ids = list(MED_TOPICS)

    # 1. Fit: parse → term-document matrix → truncated SVD (k=2).
    #    The parsing rule of the paper's example: keywords must appear in
    #    more than one topic.
    model = fit_lsi(
        texts, k=2, rules=ParsingRules(min_doc_freq=2), doc_ids=doc_ids
    )
    print(f"fitted: {model}")
    print(f"singular values: {model.s.round(4)}")

    # 2. Query (Eq. 6): q̂ = qᵀ U_k Σ_k⁻¹.  Stop words and unindexed
    #    words drop out automatically.
    print(f"\nquery: {MED_QUERY!r}")
    qhat = project_query(model, MED_QUERY)
    print(f"query coordinates in k-space: {qhat.round(4)}")

    # 3. Rank all documents by cosine; the paper's threshold view.
    print("\nLSI ranking (cosine ≥ 0.40):")
    for doc_id, cosine in retrieve(model, qhat, threshold=0.40):
        print(f"  {doc_id:<4s} {cosine:.2f}   {MED_TOPICS[doc_id][:58]}")

    # 4. Contrast with lexical matching (§3.2): it misses M9 — christmas
    #    disease, the most relevant topic — and returns irrelevant M1/M10.
    kw = KeywordRetrieval.from_texts(
        texts, rules=ParsingRules(min_doc_freq=2), doc_ids=doc_ids
    )
    lexical = sorted(doc_ids[j] for j in kw.matching_documents(MED_QUERY))
    print(f"\nlexical matching returns: {lexical}")
    print("note: M9 (childhood haemophilia) is missed by word overlap "
          "but retrieved by LSI.")

    # 5. Persist and reload.
    save_model(model, "/tmp/med_model.npz")
    reloaded = load_model("/tmp/med_model.npz")
    assert rank_documents(reloaded, qhat) == rank_documents(model, qhat)
    print("\nmodel round-tripped through /tmp/med_model.npz")

    # 6. The engine interface used by the evaluation harness.
    engine = LSIRetrieval(model)
    top = engine.search(MED_QUERY, top=3)
    print(f"engine.search top-3: {[(doc_ids[j], round(c, 2)) for j, c in top]}")


if __name__ == "__main__":
    main()
