"""Tests for the query-serving fast path (repro.serving).

The fast path's whole value proposition is "same answers, faster", so
most tests here compare against inline re-implementations of the seed
behaviour: full stable argsort + Python-level filtering, per-query
recomputation of ``V_k Σ_k`` and norms, and the pre-unification batch
scoring math.  The invalidation tests assert the updating-layer hooks
are load-bearing — with a hook monkeypatched out, the stale handle is
*not* detected, which is exactly the bug the hooks exist to prevent.
"""

import numpy as np
import pytest

from repro.core.model import LSIModel
from repro.core.query import project_query
from repro.core.similarity import cosine_similarities, nearest_terms
from repro.errors import ModelStateError
from repro.parallel import (
    batch_cosine_scores,
    batch_project_queries,
    batch_search,
    blocked_fold_in,
    sharded_batch_search,
)
from repro.retrieval import LSIRetrieval
from repro.serving import (
    DocumentIndex,
    QueryVectorCache,
    get_document_index,
    invalidate_model,
    ranked_pairs,
    topk_indices,
)
from repro.text.vocabulary import Vocabulary
from repro.updating import fold_in_documents, update_documents
from repro.updating.manager import LSIIndexManager
from repro.util.timing import serving_counters


def _random_model(rng, m=24, n=90, k=6) -> LSIModel:
    """A synthetic model without the cost of an SVD fit."""
    vocab = Vocabulary(f"t{i}" for i in range(m))
    vocab.freeze()
    return LSIModel(
        U=rng.standard_normal((m, k)),
        s=np.sort(rng.random(k) + 0.5)[::-1],
        V=rng.standard_normal((n, k)),
        vocabulary=vocab,
        doc_ids=[f"D{j}" for j in range(n)],
    )


def _seed_ranked_pairs(s, top=None, threshold=None):
    """The seed LSIRetrieval.search ranking: full stable sort, then
    Python-level threshold and top filters over all n pairs."""
    order = np.argsort(-s, kind="stable")
    out = [(int(j), float(s[j])) for j in order]
    if threshold is not None:
        out = [(j, c) for j, c in out if c >= threshold]
    if top is not None:
        out = out[:top]
    return out


# --------------------------------------------------------------------- #
# argpartition top-k == stable argsort, including ties
# --------------------------------------------------------------------- #
def test_topk_identical_to_stable_argsort_under_ties():
    rng = np.random.default_rng(0)
    for trial in range(200):
        n = int(rng.integers(1, 60))
        # Heavy quantization → many exact score ties, including at the
        # top-k boundary.
        s = rng.integers(0, 4, n) / 3.0
        full = np.argsort(-s, kind="stable")
        for top in (1, 2, 3, n // 2, n - 1, n, n + 5, None):
            if isinstance(top, int) and top < 1:
                continue
            got = topk_indices(s, top)
            want = full if top is None else full[:top]
            assert np.array_equal(got, want), (trial, top, s.tolist())


def test_topk_edge_cases():
    s = np.array([0.5, 0.5, 0.5])
    assert np.array_equal(topk_indices(s, 2), [0, 1])
    assert topk_indices(s, 0).size == 0
    assert topk_indices(np.empty(0), 3).size == 0
    # All-equal scores: stable order is index order.
    assert np.array_equal(topk_indices(np.zeros(5), None), np.arange(5))


def test_ranked_pairs_threshold_top_combinations():
    rng = np.random.default_rng(1)
    for trial in range(100):
        n = int(rng.integers(1, 50))
        s = rng.integers(-2, 3, n) / 2.0  # ties and negatives
        for top in (None, 1, 3, n):
            for threshold in (None, -0.5, 0.0, 0.25, 1.5):
                got = ranked_pairs(s, top=top, threshold=threshold)
                assert got == _seed_ranked_pairs(s, top, threshold)


def test_engine_search_matches_seed_path(small_collection, small_lsi):
    eng = LSIRetrieval(small_lsi)
    for q in small_collection.queries:
        s = eng.scores(q)
        for kwargs in (
            {},
            {"top": 5},
            {"threshold": 0.2},
            {"top": 3, "threshold": 0.1},
            {"top": 1000},
        ):
            assert eng.search(q, **kwargs) == _seed_ranked_pairs(
                s, kwargs.get("top"), kwargs.get("threshold")
            )


def test_randomized_rankings_identical_to_seed(rng):
    """Acceptance property: fast-path rankings byte-identical to the
    seed path (recompute-per-query + full stable argsort) on random
    models and queries."""
    local = np.random.default_rng(77)
    for _ in range(20):
        model = _random_model(local)
        qhat = local.standard_normal(model.k)
        # Seed scoring: recompute coordinates and norms per query.
        docs = model.V * model.s
        target = qhat * model.s
        norms = np.sqrt(np.sum(docs * docs, axis=1))
        tnorm = np.sqrt(np.dot(target, target))
        denom = norms * tnorm
        seed_scores = np.zeros(model.n_documents)
        ok = denom > 0
        seed_scores[ok] = (docs[ok] @ target) / denom[ok]
        seed = _seed_ranked_pairs(seed_scores, top=10)

        fast_scores = cosine_similarities(model, qhat)
        assert np.allclose(fast_scores, seed_scores, atol=1e-12)
        fast = ranked_pairs(fast_scores, top=10)
        assert [j for j, _ in fast] == [j for j, _ in seed]


def test_med_rankings_identical_to_seed(med_model):
    """The MEDLINE worked example: fast path reproduces the seed
    ranking byte-for-byte."""
    from repro.corpus.med import MED_QUERY

    qhat = project_query(med_model, MED_QUERY)
    seed_scores = cosine_similarities(med_model, qhat)
    seed = _seed_ranked_pairs(seed_scores)
    eng = LSIRetrieval(med_model)
    assert eng.search(MED_QUERY) == seed
    assert eng.search(MED_QUERY, top=5) == seed[:5]


# --------------------------------------------------------------------- #
# zero-vector queries
# --------------------------------------------------------------------- #
def test_zero_query_vector_scores_zero(med_model):
    idx = get_document_index(med_model)
    s = idx.scores(np.zeros(med_model.k))
    assert np.array_equal(s, np.zeros(med_model.n_documents))
    assert idx.search_vector(np.zeros(med_model.k), top=3) == [
        (0, 0.0), (1, 0.0), (2, 0.0),
    ]


def test_zero_norm_documents_score_zero(rng):
    local = np.random.default_rng(5)
    model = _random_model(local, n=12)
    model.V[4] = 0.0  # a zero document row, before any index is built
    invalidate_model(model)  # in-place edit: drop any cached state
    s = cosine_similarities(model, local.standard_normal(model.k))
    assert s[4] == 0.0
    idx = get_document_index(model)
    assert idx.zero_mask[4]
    assert not idx.zero_mask[3]


def test_engine_oov_query_scores_zero(small_lsi):
    eng = LSIRetrieval(small_lsi)
    assert np.array_equal(
        eng.scores("qqq zzz www"), np.zeros(small_lsi.n_documents)
    )


# --------------------------------------------------------------------- #
# batch scoring: one kernel, regression vs the old implementation
# --------------------------------------------------------------------- #
def _old_batch_cosine_scores(model, qhats):
    """The pre-unification batch_cosine_scores math, verbatim."""
    Q = np.atleast_2d(np.asarray(qhats, dtype=np.float64))
    docs = model.V * model.s
    Qs = Q * model.s
    dn = np.sqrt(np.sum(docs**2, axis=1))
    qn = np.sqrt(np.sum(Qs**2, axis=1))
    denom = qn[:, None] * dn[None, :]
    raw = Qs @ docs.T
    out = np.zeros_like(raw)
    ok = denom > 0
    out[ok] = raw[ok] / denom[ok]
    return out


def test_batch_scores_row_for_row_vs_old_implementation(small_lsi, small_collection):
    Q = batch_project_queries(small_lsi, small_collection.queries)
    new = batch_cosine_scores(small_lsi, Q)
    old = _old_batch_cosine_scores(small_lsi, Q)
    assert new.shape == old.shape
    for i in range(new.shape[0]):
        assert np.allclose(new[i], old[i], atol=1e-12), f"row {i}"
        # Rankings must be element-identical, ties included.
        assert np.array_equal(
            np.argsort(-new[i], kind="stable"),
            np.argsort(-old[i], kind="stable"),
        )


def test_single_query_is_row_of_batch(small_lsi, small_collection):
    """cosine_similarities is literally the q=1 case of the batch path."""
    Q = batch_project_queries(small_lsi, small_collection.queries)
    batched = batch_cosine_scores(small_lsi, Q)
    for i, q in enumerate(small_collection.queries):
        single = cosine_similarities(small_lsi, Q[i])
        assert np.allclose(single, batched[i], atol=1e-12)


def test_batch_search_matches_per_query_search(small_lsi, small_collection):
    eng = LSIRetrieval(small_lsi)
    batched = batch_search(small_lsi, small_collection.queries, top=7)
    for q, got in zip(small_collection.queries, batched):
        want = eng.search(q, top=7)
        assert [j for j, _ in got] == [j for j, _ in want]
        assert np.allclose([c for _, c in got], [c for _, c in want], atol=1e-12)


# --------------------------------------------------------------------- #
# shard-parallel search
# --------------------------------------------------------------------- #
def test_sharded_batch_search_matches_batch_search(small_lsi, small_collection):
    queries = small_collection.queries
    flat = batch_search(small_lsi, queries, top=6)
    for shards in (1, 2, 5):
        for workers in (None, 3):
            got = sharded_batch_search(
                small_lsi, queries, top=6, shards=shards, workers=workers
            )
            assert got == flat


def test_sharded_batch_search_accepts_projected_vectors(small_lsi, small_collection):
    Q = batch_project_queries(small_lsi, small_collection.queries)
    a = sharded_batch_search(small_lsi, Q, top=4, shards=3)
    b = sharded_batch_search(small_lsi, small_collection.queries, top=4, shards=3)
    assert a == b


def test_sharded_batch_search_empty_query_batch(small_lsi):
    """A (0, k) query matrix is a legal degenerate batch: no queries,
    no results, no shard errors."""
    Q = np.empty((0, small_lsi.k))
    for shards in (1, 3):
        assert sharded_batch_search(small_lsi, Q, top=4, shards=shards) == []


def test_sharded_batch_search_top_exceeds_n_documents(small_lsi, small_collection):
    """top > n clamps to the full ranking, identical to the sequential
    path (the per-shard heaps just return whole shards)."""
    queries = small_collection.queries[:3]
    n = small_lsi.n_documents
    flat = batch_search(small_lsi, queries, top=n + 25)
    got = sharded_batch_search(small_lsi, queries, top=n + 25, shards=4)
    assert got == flat
    assert all(len(ranking) == n for ranking in got)


def test_sharded_batch_search_single_shard_degenerate(small_lsi, small_collection):
    """shards=1 is the degenerate split: one (lo, hi) covering all rows,
    merge over one heap — must equal the flat batch path exactly."""
    queries = small_collection.queries[:4]
    assert sharded_batch_search(
        small_lsi, queries, top=6, shards=1
    ) == batch_search(small_lsi, queries, top=6)


def test_sharded_batch_search_tie_order():
    """Ties spanning shard boundaries resolve by ascending doc index,
    exactly as the flat stable sort does."""
    rng = np.random.default_rng(9)
    model = _random_model(rng, n=40)
    # Duplicate document rows → exact score ties everywhere.
    model.V[:] = np.tile(model.V[:4], (10, 1))
    invalidate_model(model)
    qhat = rng.standard_normal(model.k)
    flat = ranked_pairs(cosine_similarities(model, qhat), top=12)
    got = sharded_batch_search(model, qhat[None, :], top=12, shards=7)[0]
    assert [j for j, _ in got] == [j for j, _ in flat]


# --------------------------------------------------------------------- #
# DocumentIndex caching and invalidation
# --------------------------------------------------------------------- #
def test_index_is_cached_per_model(med_model):
    a = get_document_index(med_model)
    b = get_document_index(med_model)
    assert a is b
    assert a.coords.flags["C_CONTIGUOUS"]
    assert np.allclose(a.coords, med_model.V * med_model.s)


def test_fold_in_invalidates_source_index(med_model_k8, rng):
    model = med_model_k8.truncated(4)  # private model: fixtures stay clean
    idx = get_document_index(model)
    assert not idx.is_stale()
    counts = np.random.default_rng(3).integers(0, 3, (model.n_terms, 2))
    folded = fold_in_documents(model, counts.astype(float), ["N1", "N2"])
    assert idx.is_stale()
    with pytest.raises(ModelStateError):
        idx.scores(np.zeros(model.k))
    # Re-fetching serves the folded model's documents immediately.
    fresh = get_document_index(folded)
    assert fresh.n_documents == model.n_documents + 2
    assert not fresh.is_stale()


def test_svd_update_invalidates_source_index(med_model_k8):
    model = med_model_k8.truncated(4)
    idx = get_document_index(model)
    counts = np.random.default_rng(4).integers(0, 3, (model.n_terms, 2))
    update_documents(model, counts.astype(float), ["N1", "N2"])
    assert idx.is_stale()


def test_blocked_fold_in_invalidates_source_index(med_model_k8):
    model = med_model_k8.truncated(4)
    idx = get_document_index(model)
    counts = np.random.default_rng(6).integers(0, 3, (model.n_terms, 5))
    blocked_fold_in(model, counts.astype(float), [f"N{i}" for i in range(5)], block=2)
    assert idx.is_stale()


def test_stale_detection_requires_the_hook(med_model_k8, monkeypatch):
    """The invalidation hook is load-bearing: with it patched out, the
    pinned index does NOT notice the fold-in — precisely the stale-serve
    bug the hook exists to prevent.  (This is the 'must fail without the
    hook' assertion, expressed positively.)"""
    import repro.updating.folding as folding

    model = med_model_k8.truncated(4)
    counts = np.random.default_rng(5).integers(0, 3, (model.n_terms, 2))

    # Without the hook: handle stays (wrongly) fresh.
    monkeypatch.setattr(folding, "invalidate_model", lambda m: None)
    idx = get_document_index(model)
    folding.fold_in_documents(model, counts.astype(float), ["N1", "N2"])
    assert not idx.is_stale()  # the bug the hook prevents

    # With the real hook restored: same sequence flags the handle.
    monkeypatch.undo()
    idx2 = get_document_index(model)
    folding.fold_in_documents(model, counts.astype(float), ["N3", "N4"])
    assert idx2.is_stale()


def test_manager_serving_index_never_stale():
    """§5.6 real-time updating: documents added through the manager are
    visible to the next serving_index() fetch, across fold-in AND the
    consolidation (recompute/SVD-update) paths that replace the model
    wholesale."""
    from repro.corpus import med_matrix

    mgr = LSIIndexManager(med_matrix(), k=4, distortion_budget=0.05)
    pinned = mgr.serving_index()
    n0 = pinned.n_documents
    for i in range(6):  # small budget forces consolidations along the way
        mgr.add_texts([f"blood pressure age study number {i}"])
        fresh = mgr.serving_index()
        assert fresh.n_documents == n0 + i + 1
        assert not fresh.is_stale()
    assert {e.action for e in mgr.events} & {"recompute", "svd-update"}
    assert pinned.is_stale()
    with pytest.raises(ModelStateError):
        pinned.scores(np.zeros(mgr.k))


# --------------------------------------------------------------------- #
# query-vector LRU cache
# --------------------------------------------------------------------- #
def test_query_cache_hits_and_identical_results(small_lsi, small_collection):
    eng = LSIRetrieval(small_lsi, query_cache_size=8)
    q = small_collection.queries[0]
    cold = eng.search(q, top=5)
    before = serving_counters.counts.get("query_cache_hits", 0)
    warm = eng.search(q, top=5)
    assert warm == cold
    assert serving_counters.counts.get("query_cache_hits", 0) == before + 1


def test_query_cache_key_normalizes_token_order(small_lsi):
    eng = LSIRetrieval(small_lsi)
    v1 = eng.query_vector(["t_a", "t_b"])  # OOV-only: zero counts
    v2 = eng.query_vector(["t_b", "t_a"])
    assert np.array_equal(v1, v2)
    c1 = np.zeros(5)
    c1[2] = 2.0
    assert QueryVectorCache.key_from_counts(c1) == QueryVectorCache.key_from_counts(
        c1.copy()
    )
    c2 = np.zeros(6)
    c2[2] = 2.0
    assert QueryVectorCache.key_from_counts(c1) != QueryVectorCache.key_from_counts(c2)


def test_query_cache_key_is_platform_independent():
    """The index component of the key must hash as int64 regardless of
    the platform's ``intp`` width: 8 bytes per nonzero index, always."""
    c = np.zeros(12)
    c[[1, 7, 9]] = (2.0, 1.0, 3.0)
    size, index_bytes, value_bytes = QueryVectorCache.key_from_counts(c)
    assert size == 12
    assert len(index_bytes) == 3 * 8  # int64, not platform intp
    assert np.array_equal(
        np.frombuffer(index_bytes, dtype=np.int64), [1, 7, 9]
    )
    # A 32-bit index vector (what flatnonzero yields on 32-bit intp
    # platforms) produces the same key after the cast.
    original = np.flatnonzero
    try:
        np.flatnonzero = lambda a: original(a).astype(np.int32)
        narrow = QueryVectorCache.key_from_counts(c)
    finally:
        np.flatnonzero = original
    assert narrow == (size, index_bytes, value_bytes)


def test_query_cache_size_gauge_published():
    from repro.obs.metrics import registry

    cache = QueryVectorCache(maxsize=2)
    cache.put((1,), np.ones(2))
    assert registry.gauge("serving.query_cache_size") == 1
    assert registry.gauge("serving.query_cache_capacity") == 2
    cache.put((2,), np.ones(2))
    cache.put((3,), np.ones(2))  # evicts, size stays at the bound
    assert registry.gauge("serving.query_cache_size") == 2
    cache.clear()
    assert registry.gauge("serving.query_cache_size") == 0


def test_query_cache_cleared_on_model_swap(small_lsi, med_model):
    eng = LSIRetrieval(small_lsi, query_cache_size=8)
    eng.query_vector("apple")
    assert len(eng._query_cache) == 1
    eng.model = med_model  # users do this after fold-in/update
    s = eng.scores("blood age")
    assert s.shape == (med_model.n_documents,)
    assert eng._query_cache_model is med_model


def test_query_cache_lru_bound():
    cache = QueryVectorCache(maxsize=2)
    for i in range(5):
        cache.put((i,), np.arange(3, dtype=float))
    assert len(cache) == 2
    disabled = QueryVectorCache(maxsize=0)
    disabled.put((1,), np.ones(2))
    assert len(disabled) == 0 and disabled.get((1,)) is None


# --------------------------------------------------------------------- #
# counters & misc
# --------------------------------------------------------------------- #
def test_serving_counters_record_queries(med_model):
    serving_counters.reset()
    eng = LSIRetrieval(med_model)
    eng.search("blood age", top=3)
    snap = serving_counters.snapshot()
    assert snap.get("queries_served", 0) >= 1
    assert "gemm_seconds" in snap


def test_nearest_terms_matches_seed_ordering(med_model):
    cos = None
    from repro.core.similarity import term_term_similarities

    for term in ("blood", "age", "fast"):
        cos = term_term_similarities(med_model, term)
        order = np.argsort(-cos, kind="stable")
        self_id = med_model.vocabulary.id_of(term)
        seed = []
        for idx in order:
            if idx == self_id:
                continue
            seed.append((med_model.vocabulary[int(idx)], float(cos[idx])))
            if len(seed) >= 5:
                break
        assert nearest_terms(med_model, term, top=5) == seed
