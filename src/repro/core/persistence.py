"""Model persistence: the "LSI database of singular values and vectors".

The paper's toolchain stores a retrieval database of ``U_k``, ``Σ_k``,
``V_k`` plus the labellings; ours serializes to a single ``.npz`` with the
arrays and JSON-encoded metadata (vocabulary, doc ids, scheme) so a model
round-trips bit-exactly.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.core.model import LSIModel
from repro.errors import ModelStateError
from repro.text.vocabulary import Vocabulary
from repro.weighting.schemes import WeightingScheme

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1


def save_model(model: LSIModel, path: Union[str, os.PathLike]) -> None:
    """Serialize ``model`` to ``path`` (``.npz``)."""
    meta = {
        "version": _FORMAT_VERSION,
        "vocabulary": model.vocabulary.to_list(),
        "doc_ids": list(model.doc_ids),
        "scheme_local": model.scheme.local,
        "scheme_global": model.scheme.global_,
        "provenance": model.provenance,
    }
    np.savez(
        path,
        U=model.U,
        s=model.s,
        V=model.V,
        global_weights=model.global_weights,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_model(path: Union[str, os.PathLike]) -> LSIModel:
    """Load a model previously written by :func:`save_model`."""
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        except Exception as exc:  # malformed file
            raise ModelStateError(f"cannot parse model metadata: {exc}") from exc
        if meta.get("version") != _FORMAT_VERSION:
            raise ModelStateError(
                f"unsupported model format version {meta.get('version')}"
            )
        return LSIModel(
            U=data["U"],
            s=data["s"],
            V=data["V"],
            vocabulary=Vocabulary(meta["vocabulary"]).freeze(),
            doc_ids=list(meta["doc_ids"]),
            scheme=WeightingScheme(meta["scheme_local"], meta["scheme_global"]),
            global_weights=data["global_weights"],
            provenance=meta.get("provenance", "svd"),
        )
