"""Phrase indexing (§5.4): n-gram rows in the descriptor-object matrix.

"We typically use only single terms to describe documents, but phrases
or n-grams could also be included as rows in the matrix."  This module
extracts word n-grams (default: bigrams) that recur across documents and
emits them as additional pseudo-terms, so the standard pipeline —
weighting, SVD, queries — indexes phrases with zero further changes.

A phrase token is encoded as ``word1_word2`` (the tokenizer never
produces underscores, so phrase rows cannot collide with word rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ShapeError
from repro.text.parser import ParsingRules, parse_corpus
from repro.text.tdm import TermDocumentMatrix, tdm_from_parsed
from repro.text.tokenizer import tokenize

__all__ = ["PhraseRules", "extract_phrases", "build_phrase_tdm"]

PHRASE_JOINER = "_"


@dataclass(frozen=True)
class PhraseRules:
    """Which word n-grams qualify as indexed phrases.

    Attributes
    ----------
    n:
        Phrase length in words (2 = bigrams).
    min_doc_freq:
        A phrase must occur in at least this many documents.
    max_phrases:
        Keep only the most document-frequent phrases (None = all).
    """

    n: int = 2
    min_doc_freq: int = 2
    max_phrases: int | None = None

    def __post_init__(self):
        if self.n < 2:
            raise ShapeError("phrases need n >= 2 words")
        if self.min_doc_freq < 1:
            raise ShapeError("min_doc_freq must be >= 1")
        if self.max_phrases is not None and self.max_phrases < 1:
            raise ShapeError("max_phrases must be >= 1 when set")


def _doc_phrases(tokens: list[str], n: int) -> list[str]:
    return [
        PHRASE_JOINER.join(tokens[i : i + n])
        for i in range(len(tokens) - n + 1)
    ]


def extract_phrases(
    texts: Sequence[str], rules: PhraseRules | None = None
) -> list[str]:
    """The qualifying phrases of a corpus, most document-frequent first."""
    rules = rules or PhraseRules()
    df: dict[str, int] = {}
    for text in texts:
        toks = tokenize(text)
        for ph in set(_doc_phrases(toks, rules.n)):
            df[ph] = df.get(ph, 0) + 1
    qualified = [
        (ph, count) for ph, count in df.items()
        if count >= rules.min_doc_freq
    ]
    qualified.sort(key=lambda pc: (-pc[1], pc[0]))
    if rules.max_phrases is not None:
        qualified = qualified[: rules.max_phrases]
    return [ph for ph, _ in qualified]


def build_phrase_tdm(
    texts: Sequence[str],
    word_rules: ParsingRules | None = None,
    phrase_rules: PhraseRules | None = None,
    *,
    doc_ids: Sequence[str] | None = None,
) -> TermDocumentMatrix:
    """Term-document matrix whose rows are words *and* phrases.

    Word rows follow ``word_rules`` exactly as in :func:`build_tdm`;
    phrase rows are appended for every qualifying n-gram, counted per
    occurrence.  Queries against the resulting model match phrases
    whenever the query text contains them contiguously (tokenize the
    query and append its phrases the same way before counting).
    """
    phrase_rules = phrase_rules or PhraseRules()
    phrases = set(extract_phrases(texts, phrase_rules))
    # The phrase pseudo-tokens contain underscores, which the tokenizer
    # splits — so parse the word part normally and inject phrases into
    # the parsed token lists directly.
    parsed = parse_corpus(list(texts), word_rules)
    for j, text in enumerate(texts):
        toks = tokenize(text)
        parsed.tokens[j] = parsed.tokens[j] + [
            ph for ph in _doc_phrases(toks, phrase_rules.n) if ph in phrases
        ]
    for ph in sorted(phrases):
        parsed.vocabulary.add(ph)
    return tdm_from_parsed(parsed, doc_ids=doc_ids)


def query_with_phrases(
    query: str, vocabulary, n: int = 2
) -> list[str]:
    """Tokenize a query and append any vocabulary phrases it contains."""
    toks = tokenize(query)
    phrases = [
        ph for ph in _doc_phrases(toks, n) if ph in vocabulary
    ]
    return toks + phrases
