"""HPC substrate benches: sparse kernels and scoring execution shapes.

Covers the §5.6 open issue "efficiently comparing queries to documents"
at laptop scale: CSR/CSC matvec throughput, the matmat chunking ablation,
and blocked/sharded cosine scoring vs the flat path (identical results,
different execution shape — the DESIGN.md ablation).
"""

import numpy as np
import pytest

from conftest import emit
from repro.core.model import LSIModel
from repro.core.similarity import cosine_similarities
from repro.parallel import blocked_cosine_scores, sharded_search
from repro.sparse import from_dense
from repro.sparse.ops import csr_matmat
from repro.text import Vocabulary
from repro.util.rng import ensure_rng


@pytest.fixture(scope="module")
def big_sparse():
    rng = ensure_rng(9)
    m, n = 3000, 2000
    dense = np.zeros((m, n))
    for j in range(n):
        rows = rng.choice(m, size=15, replace=False)
        dense[rows, j] = 1.0
    return from_dense(dense)


def test_csr_matvec_throughput(benchmark, big_sparse):
    csr = big_sparse.to_csr()
    x = np.ones(csr.shape[1])
    y = benchmark(csr.matvec, x)
    assert y.shape == (csr.shape[0],)


def test_csc_rmatvec_throughput(benchmark, big_sparse):
    csc = big_sparse.to_csc()
    y = np.ones(csc.shape[0])
    x = benchmark(csc.rmatvec, y)
    assert x.shape == (csc.shape[1],)


@pytest.mark.parametrize("chunk", [4, 16, 64])
def test_matmat_chunk_ablation(benchmark, big_sparse, chunk):
    csr = big_sparse.to_csr()
    rng = ensure_rng(1)
    X = rng.standard_normal((csr.shape[1], 32))
    Y = benchmark(csr_matmat, csr, X, chunk)
    assert Y.shape == (csr.shape[0], 32)


@pytest.fixture(scope="module")
def scoring_model():
    rng = ensure_rng(4)
    n, k = 50_000, 50
    V = rng.standard_normal((n, k))
    s = np.sort(rng.random(k) + 0.5)[::-1]
    return LSIModel(
        U=np.eye(k),
        s=s,
        V=V,
        vocabulary=Vocabulary([f"t{i}" for i in range(k)]).freeze(),
        doc_ids=[f"d{j}" for j in range(n)],
    )


def test_flat_cosine_scoring(benchmark, scoring_model):
    qhat = ensure_rng(2).standard_normal(scoring_model.k)
    scores = benchmark(cosine_similarities, scoring_model, qhat)
    assert scores.shape == (scoring_model.n_documents,)


def test_blocked_cosine_scoring(benchmark, scoring_model):
    qhat = ensure_rng(2).standard_normal(scoring_model.k)
    flat = cosine_similarities(scoring_model, qhat)
    blocked = benchmark(
        blocked_cosine_scores, scoring_model, qhat, block=8192
    )
    assert np.allclose(blocked, flat)


def test_sharded_search_parallel(benchmark, scoring_model):
    qhat = ensure_rng(2).standard_normal(scoring_model.k)
    flat = cosine_similarities(scoring_model, qhat)
    best_flat = int(np.argmax(flat))

    top = benchmark(
        sharded_search, scoring_model, qhat, shards=4, top=10, workers=4
    )
    assert top[0][0] == best_flat
    emit(
        "near-neighbour scoring shapes",
        [f"n={scoring_model.n_documents} k={scoring_model.k}: flat, "
         "blocked and sharded paths return identical rankings"],
    )
